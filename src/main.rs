//! `memgaze` — command-line front end.
//!
//! Run one of the bundled workload models under the data-centric
//! profiler and print the requested views, like driving `hpcrun` +
//! `hpcviewer` from a terminal:
//!
//! ```sh
//! memgaze streamcluster --report ranking,topdown,advice
//! memgaze amg2006 --variant libnuma --metric remote --report ranking
//! memgaze nw --compare interleaved        # differential vs the fix
//! memgaze sweep3d --report flat --metric latency
//! ```
//!
//! The serving subcommands put a daemon in front of the same pipeline:
//!
//! ```sh
//! memgaze serve --addr 127.0.0.1:7811 &
//! memgaze push 127.0.0.1:7811 nw nw                 # profile + ingest
//! memgaze push 127.0.0.1:7811 nw-fix nw --variant interleaved
//! memgaze query 127.0.0.1:7811 ranking nw remote
//! memgaze query 127.0.0.1:7811 diff nw nw-fix remote
//! memgaze query 127.0.0.1:7811 shutdown
//! ```

use std::process::ExitCode;

use dcp_core::prelude::*;
use dcp_core::view::flat;
use dcp_machine::{MarkedEvent, PmuConfig};
use dcp_runtime::{Program, WorldConfig};

struct Args {
    workload: String,
    variant: String,
    compare: Option<String>,
    metric: Metric,
    reports: Vec<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: memgaze <workload> [options]\n\
         \n\
         workloads: amg2006 | sweep3d | lulesh | streamcluster | nw | fig1 | fig2\n\
         options:\n\
           --variant <name>     workload variant (default: original)\n\
                                amg2006: original|numactl|libnuma\n\
                                sweep3d: original|transposed\n\
                                lulesh:  original|interleaved|transposed|both\n\
                                streamcluster: original|firsttouch\n\
                                nw:      original|interleaved\n\
           --compare <variant>  also run <variant> and print a differential\n\
           --metric <m>         samples|latency|remote|tlb (default by workload)\n\
           --report <list>      comma list: ranking,topdown,bottomup,flat,advice\n\
                                (default: ranking,topdown)\n\
         \n\
         usage: memgaze serve [--addr host:port] [--budget bytes] [--sessions n]\n\
                              [--data-dir path] [--snapshot-every n]\n\
                              [--pending-cap bytes]\n\
           run the profile-serving daemon; prints `serving on <addr>` once\n\
           bound (port 0 picks an ephemeral port) and blocks until a\n\
           shutdown request drains it\n\
           --data-dir enables crash-safe durability: every ingest is\n\
           written ahead to <path>/ingest.wal before it is applied, and\n\
           the store is recovered from <path> on start (a `recovered ...`\n\
           line reports what was found); --snapshot-every folds the store\n\
           into <path>/store.snap and truncates the log every n ingests\n\
           (default 0: snapshot only on clean drain); --pending-cap\n\
           bounds per-set out-of-order buffering\n\
         \n\
         usage: memgaze route [--addr host:port] --shard a1[,a2...] [--shard ...]\n\
                              [--vnodes n] [--sessions n]\n\
           run the scatter-gather router over running shard daemons;\n\
           each --shard names one shard group as a comma list of replica\n\
           addresses; prints `routing on <addr>` once bound and blocks\n\
           until a shutdown request drains it (shards keep serving)\n\
         \n\
         usage: memgaze push <addr> <set> <workload> [--variant <name>]\n\
                              [--window n]\n\
           profile <workload> locally and ingest every node's bundle into\n\
           profile set <set> on the daemon at <addr>; --window keeps up\n\
           to n pushes in flight (default 1: strict request/response),\n\
           which feeds the daemon's group-commit batcher from one\n\
           connection\n\
         \n\
         usage: memgaze query <addr> <query...>\n\
           one request against the daemon; queries:\n\
             ranking <set> <metric> [limit]     topdown <set> <class> <metric>\n\
             bottomup <set> <metric>            flat <set> <class> <metric> [limit]\n\
             vars <set> <metric>                diff <set-a> <set-b> <metric>\n\
             export <set> <class>               sets\n\
           plus the control words: ping | stats | shutdown\n\
           metrics: samples|latency|remote|tlb|stores\n\
           classes: static|heap|stack|unknown|nomem"
    );
    ExitCode::from(2)
}

/// `memgaze serve [--addr a] [--budget n] [--sessions n] [--data-dir p]
/// [--snapshot-every n] [--pending-cap n]`.
fn run_serve(args: &[String]) -> Result<(), String> {
    let mut cfg = dcp_serve::ServerConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let val = |it: &mut std::slice::Iter<'_, String>| {
            it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = val(&mut it)?,
            "--budget" => {
                cfg.byte_budget =
                    val(&mut it)?.parse().map_err(|e| format!("bad --budget: {e}"))?
            }
            "--sessions" => {
                cfg.sessions = val(&mut it)?.parse().map_err(|e| format!("bad --sessions: {e}"))?
            }
            "--data-dir" => cfg.data_dir = Some(val(&mut it)?.into()),
            "--snapshot-every" => {
                cfg.snapshot_every =
                    val(&mut it)?.parse().map_err(|e| format!("bad --snapshot-every: {e}"))?
            }
            "--pending-cap" => {
                cfg.pending_cap =
                    val(&mut it)?.parse().map_err(|e| format!("bad --pending-cap: {e}"))?
            }
            other => return Err(format!("unknown serve flag {other:?}")),
        }
    }
    let server = dcp_serve::Server::bind(cfg).map_err(|e| e.to_string())?;
    if let Some(report) = server.recovery_report() {
        println!("{report}");
    }
    println!("serving on {}", server.local_addr().map_err(|e| e.to_string())?);
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.serve().map_err(|e| e.to_string())
}

/// `memgaze route [--addr a] --shard a1[,a2...] [--shard ...] [--vnodes n]
/// [--sessions n]`.
fn run_route(args: &[String]) -> Result<(), String> {
    let mut cfg = dcp_serve::RouterConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let val = |it: &mut std::slice::Iter<'_, String>| {
            it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = val(&mut it)?,
            "--shard" => {
                let group: Vec<String> =
                    val(&mut it)?.split(',').map(str::trim).map(str::to_string).collect();
                cfg.shards.push(group);
            }
            "--vnodes" => {
                cfg.vnodes = val(&mut it)?.parse().map_err(|e| format!("bad --vnodes: {e}"))?
            }
            "--sessions" => {
                cfg.sessions = val(&mut it)?.parse().map_err(|e| format!("bad --sessions: {e}"))?
            }
            other => return Err(format!("unknown route flag {other:?}")),
        }
    }
    if cfg.shards.is_empty() {
        return Err("route needs at least one --shard group".into());
    }
    let router = dcp_serve::Router::bind(cfg).map_err(|e| e.to_string())?;
    println!("routing on {}", router.local_addr().map_err(|e| e.to_string())?);
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    router.serve().map_err(|e| e.to_string())
}

/// `memgaze push <addr> <set> <workload> [--variant v] [--window n]`.
fn run_push(args: &[String]) -> Result<(), String> {
    let [addr, set, workload, rest @ ..] = args else {
        return Err("push needs <addr> <set> <workload>".into());
    };
    let mut variant = "original".to_string();
    let mut window: usize = 1;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let val = |it: &mut std::slice::Iter<'_, String>| {
            it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--variant" => variant = val(&mut it)?,
            "--window" => {
                window = val(&mut it)?.parse().map_err(|e| format!("bad --window: {e}"))?
            }
            _ => return Err("push options: [--variant <name>] [--window n]".into()),
        }
    }
    let (prog, mut world, pmu) = setup(workload, &variant)?;
    world.sim.pmu = Some(pmu);
    let run = run_profiled(&prog, &world, ProfilerConfig::default());
    let mut client = dcp_serve::Client::connect(addr).map_err(|e| e.to_string())?;
    // One bundle per node, pushed in node order over one connection —
    // the same union order the in-process analyzer uses.
    if window <= 1 {
        for m in &run.measurements {
            let bundle = dcp_core::encode_bundle(&dcp_core::bundle_from_measurement(&prog, m));
            let reply = client.ingest(set, None, bundle).map_err(|e| e.to_string())?;
            println!("{reply}");
        }
        return Ok(());
    }
    // Windowed: keep up to `window` pushes in flight so the daemon's
    // group-commit batcher can fold their WAL appends into one fsync.
    // Any per-bundle refusal fails the push with the relayed error.
    let mut pipe = client.pipeline(window);
    let print_ack = |ack: Result<dcp_serve::Ack, dcp_serve::ServeError>| -> Result<(), String> {
        let ack = ack.map_err(|e| e.to_string())?;
        println!("{}", dcp_serve::format_ingest_ack(&ack.set, ack.seq, ack.epoch));
        Ok(())
    };
    for m in &run.measurements {
        let bundle = dcp_core::encode_bundle(&dcp_core::bundle_from_measurement(&prog, m));
        if let Some(ack) = pipe.push(set, None, bundle).map_err(|e| e.to_string())? {
            print_ack(ack)?;
        }
    }
    for ack in pipe.drain().map_err(|e| e.to_string())? {
        print_ack(ack)?;
    }
    Ok(())
}

/// `memgaze query <addr> <words...>` — also `ping`, `stats`, `shutdown`.
fn run_query(args: &[String]) -> Result<(), String> {
    let [addr, words @ ..] = args else {
        return Err("query needs <addr> <query...>".into());
    };
    if words.is_empty() {
        return Err("query needs <addr> <query...>".into());
    }
    let mut client = dcp_serve::Client::connect(addr).map_err(|e| e.to_string())?;
    let reply = match (words[0].as_str(), words.len()) {
        ("ping", 1) => client.ping(),
        ("stats", 1) => client.stats(),
        ("shutdown", 1) => client.shutdown(),
        _ => client.query(&words.join(" ")),
    };
    println!("{}", reply.map_err(|e| e.to_string())?);
    Ok(())
}

fn parse() -> Result<Args, ()> {
    let mut it = std::env::args().skip(1);
    let workload = it.next().ok_or(())?;
    let mut a = Args {
        workload,
        variant: "original".into(),
        compare: None,
        metric: Metric::Remote,
        reports: vec!["ranking".into(), "topdown".into()],
    };
    let mut metric_set = false;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--variant" => a.variant = it.next().ok_or(())?,
            "--compare" => a.compare = Some(it.next().ok_or(())?),
            "--metric" => {
                a.metric = match it.next().ok_or(())?.as_str() {
                    "samples" => Metric::Samples,
                    "latency" => Metric::Latency,
                    "remote" => Metric::Remote,
                    "tlb" => Metric::TlbMiss,
                    _ => return Err(()),
                };
                metric_set = true;
            }
            "--report" => {
                a.reports = it.next().ok_or(())?.split(',').map(str::to_string).collect()
            }
            _ => return Err(()),
        }
    }
    // Latency is the natural default for the IBS-profiled workloads.
    if !metric_set && matches!(a.workload.as_str(), "sweep3d" | "lulesh" | "fig1" | "fig2") {
        a.metric = Metric::Latency;
    }
    Ok(a)
}

/// Build (program, world, pmu) for a workload/variant pair.
fn setup(workload: &str, variant: &str) -> Result<(Program, WorldConfig, PmuConfig), String> {
    use dcp_workloads as wl;
    let rmem = PmuConfig::Marked { event: MarkedEvent::DataFromRmem, threshold: 8, skid: 2 };
    let ibs = PmuConfig::Ibs { period: 128, skid: 2 };
    match workload {
        "amg2006" => {
            let v = match variant {
                "original" => wl::amg2006::AmgVariant::Original,
                "numactl" => wl::amg2006::AmgVariant::NumactlInterleave,
                "libnuma" => wl::amg2006::AmgVariant::LibnumaSelective,
                other => return Err(format!("unknown amg2006 variant {other:?}")),
            };
            let cfg = wl::amg2006::AmgConfig::small(v);
            Ok((wl::amg2006::build(&cfg), wl::amg2006::world(&cfg), rmem))
        }
        "sweep3d" => {
            let v = match variant {
                "original" => wl::sweep3d::SweepVariant::Original,
                "transposed" => wl::sweep3d::SweepVariant::Transposed,
                other => return Err(format!("unknown sweep3d variant {other:?}")),
            };
            let cfg = wl::sweep3d::SweepConfig::small(v);
            Ok((wl::sweep3d::build(&cfg), wl::sweep3d::world(&cfg), ibs))
        }
        "lulesh" => {
            let v = match variant {
                "original" => wl::lulesh::LuleshVariant::ORIGINAL,
                "interleaved" => wl::lulesh::LuleshVariant::INTERLEAVED,
                "transposed" => wl::lulesh::LuleshVariant::TRANSPOSED,
                "both" => wl::lulesh::LuleshVariant::BOTH,
                other => return Err(format!("unknown lulesh variant {other:?}")),
            };
            let cfg = wl::lulesh::LuleshConfig::small(v);
            Ok((wl::lulesh::build(&cfg), wl::lulesh::world(&cfg), ibs))
        }
        "streamcluster" => {
            let v = match variant {
                "original" => wl::streamcluster::ScVariant::Original,
                "firsttouch" => wl::streamcluster::ScVariant::ParallelFirstTouch,
                other => return Err(format!("unknown streamcluster variant {other:?}")),
            };
            let cfg = wl::streamcluster::ScConfig::small(v);
            Ok((wl::streamcluster::build(&cfg), wl::streamcluster::world(&cfg), rmem))
        }
        "nw" => {
            let v = match variant {
                "original" => wl::nw::NwVariant::Original,
                "interleaved" => wl::nw::NwVariant::Interleaved,
                other => return Err(format!("unknown nw variant {other:?}")),
            };
            let cfg = wl::nw::NwConfig::small(v);
            Ok((wl::nw::build(&cfg), wl::nw::world(&cfg), rmem))
        }
        "fig1" => {
            let prog = wl::micro::fig1_line_decomposition(&wl::micro::Fig1Config::default());
            Ok((prog, wl::micro::world(), PmuConfig::Ibs { period: 64, skid: 2 }))
        }
        "fig2" => {
            let prog = wl::micro::fig2_alloc_loop(100, 8192, 60_000);
            Ok((prog, wl::micro::world(), PmuConfig::Ibs { period: 64, skid: 2 }))
        }
        other => Err(format!("unknown workload {other:?}")),
    }
}

fn run(args: &Args) -> Result<(), String> {
    let (prog, mut world, pmu) = setup(&args.workload, &args.variant)?;
    world.sim.pmu = Some(pmu);
    let run = run_profiled(&prog, &world, ProfilerConfig::default());
    println!(
        "# {} ({}): wall {} cycles, {} samples, profile {} bytes, memory-boundedness {:.2}",
        args.workload,
        args.variant,
        run.wall,
        run.stats.samples,
        run.profile_bytes,
        run.memory_boundedness()
    );
    if !run.is_memory_bound() {
        println!("# note: not strongly memory-bound; data-centric analysis may be uninteresting");
    }
    println!();
    let wall = run.wall;
    let analysis = run.analyze(&prog);
    for report in &args.reports {
        match report.as_str() {
            "ranking" => println!("{}", ranking(&analysis, args.metric, 12)),
            "topdown" => println!(
                "{}",
                top_down(&analysis, StorageClass::Heap, args.metric, TopDownOpts::default())
            ),
            "bottomup" => println!("{}", bottom_up(&analysis, args.metric)),
            "flat" => println!("{}", flat(&analysis, StorageClass::Heap, args.metric, 12)),
            "advice" => println!(
                "{}",
                render_advice(&advise(&analysis, args.metric, &AdvisorConfig::default()))
            ),
            other => return Err(format!("unknown report {other:?}")),
        }
    }
    if let Some(cv) = &args.compare {
        let _ = wall;
        // Unprofiled walls for an honest speedup number.
        let (bprog, bworld, _) = setup(&args.workload, &args.variant)?;
        let (base_wall, _, _) = dcp_core::run_baseline(&bprog, &bworld);
        let (cprog, cworld, cpmu) = setup(&args.workload, cv)?;
        let (cmp_wall, _, _) = dcp_core::run_baseline(&cprog, &cworld);
        println!(
            "# compare vs {cv} (unprofiled walls): {} -> {} cycles ({:+.1}%)",
            base_wall,
            cmp_wall,
            100.0 * (cmp_wall as f64 - base_wall as f64) / base_wall as f64
        );
        let mut cworld = cworld;
        cworld.sim.pmu = Some(cpmu);
        let crun = run_profiled(&cprog, &cworld, ProfilerConfig::default());
        let cananalysis = crun.analyze(&cprog);
        println!("{}", analysis.compare(&cananalysis, args.metric));
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let sub = match argv.first().map(String::as_str) {
        Some("serve") => Some(run_serve(&argv[1..])),
        Some("route") => Some(run_route(&argv[1..])),
        Some("push") => Some(run_push(&argv[1..])),
        Some("query") => Some(run_query(&argv[1..])),
        _ => None,
    };
    if let Some(result) = sub {
        return match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                usage()
            }
        };
    }
    let Ok(args) = parse() else { return usage() };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}
