pub use dcp_cct as cct; pub use dcp_core as core; pub use dcp_machine as machine; pub use dcp_runtime as runtime; pub use dcp_workloads as workloads;
pub use dcp_serve as serve; pub use dcp_support as support;
