#!/usr/bin/env sh
# Cluster-scale weak scaling of the dcp-net fabric: run cluster_bench,
# which sweeps the halo and hypercube workloads from 16 up to 256 ranks
# over a 2-level fat-tree, asserts run-to-run determinism of wall and
# per-link counters at every point, and prints one BENCH_JSON line with
# the ranks-vs-throughput curve. Persist that line as BENCH_cluster.json.
#
# Pass --smoke for the tiny sweep (8 and 16 ranks only, CI stage); smoke
# is a determinism gate, not a measurement, so it writes to /tmp instead
# of clobbering the committed full-sweep artifact.
set -eu
cd "$(dirname "$0")/.."

out="BENCH_cluster.json"
bin="target/release/cluster_bench"

cargo build -q --release --offline -p dcp-bench --bin cluster_bench

args=""
if [ "${1:-}" = "--smoke" ]; then
    args="--smoke"
    out="/tmp/BENCH_cluster_smoke.json"
fi

output=$("$bin" $args)
printf '%s\n' "$output" | grep -v '^BENCH_JSON ' >&2
printf '%s\n' "$output" | sed -n 's/^BENCH_JSON //p' > "$out"
test -s "$out" || { echo "bench_cluster: no BENCH_JSON line emitted" >&2; exit 1; }
echo "wrote $out" >&2
