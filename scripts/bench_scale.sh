#!/usr/bin/env sh
# Host-parallelism scaling of the epoch-sharded scheduler: run the
# fingerprint workload set at DCP_THREADS in {1, 2, 4, 8}, timing each
# sweep, and persist BENCH_scale.json with accesses/sec per thread count
# plus a determinism verdict (every setting must print byte-identical
# digests — the fingerprint binary emits no timing, only simulation
# results).
#
# The pool size is latched once per process, so each setting is its own
# process invocation. Pass --smoke to sweep only {1, 2} on the smallest
# workload (CI stage).
set -eu
cd "$(dirname "$0")/.."

out="BENCH_scale.json"
bin="target/release/fingerprint"

cargo build -q --release --offline -p dcp-bench --bin fingerprint

if [ "${1:-}" = "--smoke" ]; then
    # Smoke is a determinism gate, not a measurement: don't clobber the
    # committed full-sweep artifact.
    sweep="1 2"
    workloads="streamcluster"
    out="/tmp/BENCH_scale_smoke.json"
else
    sweep="1 2 4 8"
    workloads="all"
fi

# Total simulated accesses in one sweep: sum of the accesses= fields
# (identical at every thread count, or determinism is broken anyway).
ref_digest=""
json="{\"workloads\": \"$workloads\", \"sweep\": ["
first=1
for t in $sweep; do
    start=$(date +%s.%N)
    digest=$(DCP_THREADS="$t" "$bin" "$workloads")
    secs=$(date +%s.%N | awk -v s="$start" '{printf "%.4f", $1 - s}')
    if [ -z "$ref_digest" ]; then
        ref_digest="$digest"
        accesses=$(printf '%s\n' "$digest" \
            | sed -n 's/.*accesses=\([0-9]*\).*/\1/p' \
            | awk '{sum += $1} END {print sum}')
    elif [ "$digest" != "$ref_digest" ]; then
        echo "bench_scale: DCP_THREADS=$t digest diverged — determinism broken" >&2
        printf '%s\n' "$digest" >&2
        exit 1
    fi
    aps=$(awk -v a="$accesses" -v s="$secs" 'BEGIN {printf "%.1f", a / s}')
    echo "DCP_THREADS=$t: $accesses accesses in ${secs}s = $aps acc/s" >&2
    [ "$first" = 1 ] || json="$json, "
    first=0
    json="$json{\"threads\": $t, \"host_secs\": $secs, \"accesses_per_sec\": $aps}"
done
json="$json], \"accesses_per_sweep\": $accesses, \"determinism\": \"ok\"}"

printf '%s\n' "$json" > "$out"
echo "wrote $out" >&2
