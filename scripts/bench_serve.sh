#!/usr/bin/env sh
# Serving-layer throughput: run serve_bench (loopback daemon, concurrent
# client pool, deterministic schedule, best-of-3 rounds with a built-in
# response-determinism assertion) and persist its machine-readable
# summary as BENCH_serve.json. The summary includes the sharded phase's
# per-instance vs aggregate warm-cache qps (a 2-group x 2-replica
# cluster behind the router) and their scale-up ratio, plus the
# durable-ingest phase: fsync-per-record baseline vs group-commit
# throughput against a --data-dir daemon (pipelined 16-deep windows)
# and the non-durable pipelined rate, and the interleaved phase:
# cold-epoch view qps while a pipelined ingest stream races the
# readers, measured with the incremental read path on vs off
# (interleaved_cold_qps / interleaved_baseline_qps / interleaved_speedup).
# Numbers are whatever this host honestly does; the determinism gates —
# plus the >=2x scale-up, >=5x group-commit, and >=3x interleaved
# floors on the 8-core reference host — are what fail the script, not
# an absolute throughput floor.
set -eu
cd "$(dirname "$0")/.."

out="BENCH_serve.json"

cargo run -q --release --offline -p dcp-bench --bin serve_bench -- "$@" \
    | tee /dev/stderr \
    | sed -n 's/^BENCH_JSON //p' > "$out"

# A run that produced no summary line is a failure, not an empty trend.
[ -s "$out" ] || { echo "bench_serve: no BENCH_JSON line produced" >&2; exit 1; }
echo "wrote $out" >&2
