#!/usr/bin/env sh
# Simulator hot-path throughput trajectory: run sim_bench (Table 1
# workloads, each executed three times as a built-in determinism harness,
# scoring the fastest run) and persist its machine-readable summary as
# BENCH_sim.json.
#
# The first ever run (before the hot-path optimisation) was saved as
# BENCH_sim_baseline.json; when that file exists it is passed back in so
# BENCH_sim.json carries before/after numbers and the speedup.
set -eu
cd "$(dirname "$0")/.."

out="BENCH_sim.json"
base="BENCH_sim_baseline.json"

if [ -f "$base" ]; then
    cargo run -q --release --offline -p dcp-bench --bin sim_bench -- --baseline "$base" \
        | tee /dev/stderr \
        | sed -n 's/^BENCH_JSON //p' > "$out"
else
    cargo run -q --release --offline -p dcp-bench --bin sim_bench \
        | tee /dev/stderr \
        | sed -n 's/^BENCH_JSON //p' > "$out"
    cp "$out" "$base"
    echo "recorded new baseline $base" >&2
fi

# A run that produced no summary line is a failure, not an empty trend.
[ -s "$out" ] || { echo "bench_sim: no BENCH_JSON line produced" >&2; exit 1; }
echo "wrote $out" >&2
