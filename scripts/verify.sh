#!/usr/bin/env sh
# Tier-1 verification: hermetic build + full test suite, fully offline.
# The workspace has no registry dependencies (see DESIGN.md, "Hermetic
# dependencies"), so this must pass on a machine that has never contacted
# crates.io.
set -eu
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline --workspace
