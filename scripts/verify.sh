#!/usr/bin/env sh
# Tier-1 verification: hermetic build + full test suite, fully offline.
# The workspace has no registry dependencies (see DESIGN.md, "Hermetic
# dependencies"), so this must pass on a machine that has never contacted
# crates.io.
set -eu
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline --workspace

# Codec smoke stage: the profile wire format and its streamed merge are
# the post-mortem scalability story, so they get an explicit pass.
cargo test -q --offline -p dcp-cct

# The thread pool reads DCP_THREADS once per process, so each pool shape
# needs its own test-process run: sequential (0), fixed (8), and the
# default (core count) already covered by the workspace run above. The
# streamed out-of-core merge must be byte-identical to the in-memory
# merge under every shape.
DCP_THREADS=0 cargo test -q --offline -p dcp-cct streamed
DCP_THREADS=8 cargo test -q --offline -p dcp-cct streamed

# Lint stage: the hot-path rewrite is held warning-free.
cargo clippy --workspace --release --offline -- -D warnings

# Simulator-throughput smoke stage: small configs, but the full pipeline
# and the built-in determinism harness (three runs per workload must
# agree bit-for-bit on stats, wall cycles, and profile bytes; throughput
# must be nonzero — sim_bench asserts both and exits nonzero otherwise).
cargo run -q --release --offline -p dcp-bench --bin sim_bench -- --smoke

# DCP_THREADS sweep stage: the epoch-sharded scheduler must produce
# byte-identical simulation results at every pool size. The smoke sweep
# runs the fingerprint digest at DCP_THREADS in {1, 2} and fails on any
# divergence; tests/thread_invariance.rs covers {0, 8} on every workload.
sh scripts/bench_scale.sh --smoke

# Serving-layer smoke stage: a daemon on an ephemeral port takes all
# five Table-1 workload profiles over the wire, answers one query of
# each kind, and drains cleanly. Any failed stage (bad ingest, bad
# query, hung shutdown) exits nonzero through set -eu.
serve_log="$(mktemp)"
./target/release/memgaze serve --addr 127.0.0.1:0 > "$serve_log" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -f "$serve_log"' EXIT
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^serving on //p' "$serve_log")"
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "verify: serve daemon never bound" >&2; exit 1; }
for w in amg2006 sweep3d lulesh streamcluster nw; do
    ./target/release/memgaze push "$addr" "$w" "$w" > /dev/null
done
./target/release/memgaze query "$addr" ping                        > /dev/null
./target/release/memgaze query "$addr" sets                        > /dev/null
./target/release/memgaze query "$addr" ranking streamcluster remote 5 > /dev/null
./target/release/memgaze query "$addr" topdown nw heap remote      > /dev/null
./target/release/memgaze query "$addr" bottomup amg2006 remote     > /dev/null
./target/release/memgaze query "$addr" flat lulesh heap latency 5  > /dev/null
./target/release/memgaze query "$addr" vars sweep3d latency        > /dev/null
./target/release/memgaze query "$addr" diff nw nw remote           > /dev/null
./target/release/memgaze query "$addr" export nw heap              > /dev/null
./target/release/memgaze query "$addr" stats                       > /dev/null
./target/release/memgaze query "$addr" shutdown                    > /dev/null
wait "$serve_pid"
trap - EXIT
rm -f "$serve_log"
echo "verify: serve smoke stage ok (5 workloads ingested, every query kind served, clean drain)" >&2

# Durable-ingest smoke stage: a daemon with a data directory takes all
# five Table-1 workload profiles through pipelined pushes (--window 8,
# feeding the group-commit batcher), a spread of views is captured, the
# daemon is killed with SIGKILL (no drain, no snapshot opportunity),
# and a fresh daemon over the same directory must answer every one of
# those views with byte-identical output — ack implies durable, under
# batched fsyncs too.
dur_dir="$(mktemp -d)"
dur_log="$(mktemp)"
./target/release/memgaze serve --addr 127.0.0.1:0 --data-dir "$dur_dir" --snapshot-every 2 > "$dur_log" &
dur_pid=$!
trap 'kill -9 "$dur_pid" 2>/dev/null || true; rm -rf "$dur_dir" "$dur_log"' EXIT
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^serving on //p' "$dur_log")"
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "verify: durable daemon never bound" >&2; exit 1; }
for w in amg2006 sweep3d lulesh streamcluster nw; do
    ./target/release/memgaze push "$addr" "$w" "$w" --window 8 > /dev/null
done
dur_views() {
    ./target/release/memgaze query "$1" sets
    ./target/release/memgaze query "$1" export nw heap
    ./target/release/memgaze query "$1" export lulesh static
    ./target/release/memgaze query "$1" ranking streamcluster remote 5
    ./target/release/memgaze query "$1" vars sweep3d latency
    ./target/release/memgaze query "$1" diff nw amg2006 remote
}
before="$(dur_views "$addr")"
kill -9 "$dur_pid"
wait "$dur_pid" 2>/dev/null || true
: > "$dur_log"
./target/release/memgaze serve --addr 127.0.0.1:0 --data-dir "$dur_dir" > "$dur_log" &
dur_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^serving on //p' "$dur_log")"
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "verify: recovered daemon never bound" >&2; exit 1; }
grep -q '^recovered ' "$dur_log" || { echo "verify: recovered daemon printed no recovery report" >&2; exit 1; }
after="$(dur_views "$addr")"
[ "$before" = "$after" ] || { echo "verify: recovered views differ from pre-kill views" >&2; exit 1; }
./target/release/memgaze query "$addr" shutdown > /dev/null
wait "$dur_pid"
trap - EXIT
rm -rf "$dur_dir" "$dur_log"
echo "verify: durable-ingest smoke stage ok (5 workloads pushed --window 8, SIGKILL, recovery byte-identical)" >&2

# Sharded smoke stage: four shard daemons (2 groups x 2 replicas) on
# ephemeral ports behind a router. All five Table-1 workload profiles
# go in through the router (fanned to the owning group's replicas),
# every query kind is answered from recombined shard partials, and the
# router drains first, then the shards — clean exits all around.
shard_addrs=""
shard_pids=""
shard_logs=""
for i in 1 2 3 4; do
    log="$(mktemp)"
    ./target/release/memgaze serve --addr 127.0.0.1:0 > "$log" &
    shard_pids="$shard_pids $!"
    shard_logs="$shard_logs $log"
done
route_log="$(mktemp)"
trap 'kill $shard_pids 2>/dev/null || true; rm -f $shard_logs "$route_log"' EXIT
for log in $shard_logs; do
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^serving on //p' "$log")"
        [ -n "$addr" ] && break
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "verify: shard daemon never bound" >&2; exit 1; }
    shard_addrs="$shard_addrs $addr"
done
set -- $shard_addrs
./target/release/memgaze route --addr 127.0.0.1:0 --shard "$1,$2" --shard "$3,$4" > "$route_log" &
route_pid=$!
trap 'kill "$route_pid" $shard_pids 2>/dev/null || true; rm -f $shard_logs "$route_log"' EXIT
raddr=""
for _ in $(seq 1 100); do
    raddr="$(sed -n 's/^routing on //p' "$route_log")"
    [ -n "$raddr" ] && break
    sleep 0.1
done
[ -n "$raddr" ] || { echo "verify: router never bound" >&2; exit 1; }
for w in amg2006 sweep3d lulesh streamcluster nw; do
    ./target/release/memgaze push "$raddr" "$w" "$w" > /dev/null
done
./target/release/memgaze query "$raddr" ping                        > /dev/null
./target/release/memgaze query "$raddr" sets                        > /dev/null
./target/release/memgaze query "$raddr" ranking streamcluster remote 5 > /dev/null
./target/release/memgaze query "$raddr" topdown nw heap remote      > /dev/null
./target/release/memgaze query "$raddr" bottomup amg2006 remote     > /dev/null
./target/release/memgaze query "$raddr" flat lulesh heap latency 5  > /dev/null
./target/release/memgaze query "$raddr" vars sweep3d latency        > /dev/null
./target/release/memgaze query "$raddr" diff nw nw remote           > /dev/null
./target/release/memgaze query "$raddr" export nw heap              > /dev/null
./target/release/memgaze query "$raddr" stats                       > /dev/null
./target/release/memgaze query "$raddr" shutdown                    > /dev/null
wait "$route_pid"
for a in $shard_addrs; do
    ./target/release/memgaze query "$a" shutdown > /dev/null
done
for p in $shard_pids; do
    wait "$p"
done
trap - EXIT
rm -f $shard_logs "$route_log"
echo "verify: sharded smoke stage ok (2x2 cluster behind router, every query kind, clean drain)" >&2

# Interleaved-serve smoke stage: view queries race a live pipelined
# ingest stream (--window 8), exercising the incremental read path —
# every query lands on a freshly bumped epoch, so snapshots rebuild
# only dirty classes and partials splice cached encodings. The racing
# queries only need to succeed (their bytes depend on arrival timing);
# the gate is afterwards: once the writers are drained, the quiesced
# views must be byte-identical to a fresh daemon fed the same stream
# with no readers attached.
int_log="$(mktemp)"
./target/release/memgaze serve --addr 127.0.0.1:0 > "$int_log" &
int_pid=$!
trap 'kill "$int_pid" 2>/dev/null || true; rm -f "$int_log"' EXIT
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^serving on //p' "$int_log")"
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "verify: interleaved daemon never bound" >&2; exit 1; }
# Seed the sets so the racing readers never query an empty store.
./target/release/memgaze push "$addr" streamcluster streamcluster > /dev/null
./target/release/memgaze push "$addr" nw nw > /dev/null
push_pids=""
for w in streamcluster nw; do
    ./target/release/memgaze push "$addr" "$w" "$w" --window 8 > /dev/null &
    push_pids="$push_pids $!"
done
for _ in $(seq 1 12); do
    ./target/release/memgaze query "$addr" ranking streamcluster remote 5 > /dev/null
    ./target/release/memgaze query "$addr" vars nw remote                 > /dev/null
    ./target/release/memgaze query "$addr" topdown streamcluster heap remote > /dev/null
done
for p in $push_pids; do
    wait "$p"
done
int_views() {
    ./target/release/memgaze query "$1" sets
    ./target/release/memgaze query "$1" ranking streamcluster remote 5
    ./target/release/memgaze query "$1" topdown streamcluster heap remote
    ./target/release/memgaze query "$1" vars nw remote
    ./target/release/memgaze query "$1" export nw heap
    ./target/release/memgaze query "$1" export streamcluster static
}
raced="$(int_views "$addr")"
./target/release/memgaze query "$addr" stats | grep -q '^dirty_class_rebuilds ' \
    || { echo "verify: stats lack dirty_class_rebuilds" >&2; exit 1; }
./target/release/memgaze query "$addr" shutdown > /dev/null
wait "$int_pid"
trap - EXIT
: > "$int_log"
./target/release/memgaze serve --addr 127.0.0.1:0 > "$int_log" &
int_pid=$!
trap 'kill "$int_pid" 2>/dev/null || true; rm -f "$int_log"' EXIT
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^serving on //p' "$int_log")"
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "verify: quiet daemon never bound" >&2; exit 1; }
./target/release/memgaze push "$addr" streamcluster streamcluster > /dev/null
./target/release/memgaze push "$addr" nw nw > /dev/null
for w in streamcluster nw; do
    ./target/release/memgaze push "$addr" "$w" "$w" --window 8 > /dev/null
done
quiet="$(int_views "$addr")"
[ "$raced" = "$quiet" ] || { echo "verify: interleaved views differ from the quiet daemon" >&2; exit 1; }
./target/release/memgaze query "$addr" shutdown > /dev/null
wait "$int_pid"
trap - EXIT
rm -f "$int_log"
echo "verify: interleaved smoke stage ok (queries raced --window 8 ingest, quiesced views byte-identical)" >&2

# Cluster fabric smoke: the multi-node network model must complete both
# cluster workloads on a small fat-tree with run-to-run-identical wall
# and per-link counters (asserted inside cluster_bench), and the
# fingerprint of the profiled multi-node runs must not depend on
# DCP_THREADS.
scripts/bench_cluster.sh --smoke
cluster_a="$(DCP_THREADS=0 ./target/release/fingerprint cluster_halo cluster_hypercube)"
cluster_b="$(DCP_THREADS=4 ./target/release/fingerprint cluster_halo cluster_hypercube)"
[ "$cluster_a" = "$cluster_b" ] \
    || { echo "verify: cluster fingerprint depends on DCP_THREADS" >&2; exit 1; }
echo "verify: cluster fabric smoke stage ok (deterministic sweep + thread-invariant fingerprints)" >&2
