#!/usr/bin/env sh
# Tier-1 verification: hermetic build + full test suite, fully offline.
# The workspace has no registry dependencies (see DESIGN.md, "Hermetic
# dependencies"), so this must pass on a machine that has never contacted
# crates.io.
set -eu
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline --workspace

# Codec smoke stage: the profile wire format and its streamed merge are
# the post-mortem scalability story, so they get an explicit pass.
cargo test -q --offline -p dcp-cct

# The thread pool reads DCP_THREADS once per process, so each pool shape
# needs its own test-process run: sequential (0), fixed (8), and the
# default (core count) already covered by the workspace run above. The
# streamed out-of-core merge must be byte-identical to the in-memory
# merge under every shape.
DCP_THREADS=0 cargo test -q --offline -p dcp-cct streamed
DCP_THREADS=8 cargo test -q --offline -p dcp-cct streamed

# Lint stage: the hot-path rewrite is held warning-free.
cargo clippy --workspace --release --offline -- -D warnings

# Simulator-throughput smoke stage: small configs, but the full pipeline
# and the built-in determinism harness (three runs per workload must
# agree bit-for-bit on stats, wall cycles, and profile bytes; throughput
# must be nonzero — sim_bench asserts both and exits nonzero otherwise).
cargo run -q --release --offline -p dcp-bench --bin sim_bench -- --smoke

# DCP_THREADS sweep stage: the epoch-sharded scheduler must produce
# byte-identical simulation results at every pool size. The smoke sweep
# runs the fingerprint digest at DCP_THREADS in {1, 2} and fails on any
# divergence; tests/thread_invariance.rs covers {0, 8} on every workload.
sh scripts/bench_scale.sh --smoke
