#!/usr/bin/env sh
# Codec performance trajectory: run the Table 1 binary (which reports
# v1-vs-v2 profile bytes and post-mortem merge wall time alongside the
# paper's overhead columns) and persist its machine-readable summary as
# BENCH_codec.json so successive PRs can track the space/time trend.
set -eu
cd "$(dirname "$0")/.."

out="BENCH_codec.json"
cargo run -q --release --offline -p dcp-bench --bin table1 \
    | tee /dev/stderr \
    | sed -n 's/^BENCH_JSON //p' > "$out"

# A run that produced no summary line is a failure, not an empty trend.
[ -s "$out" ] || { echo "bench_codec: no BENCH_JSON line produced" >&2; exit 1; }
echo "wrote $out" >&2
