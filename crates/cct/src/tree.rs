//! The calling context tree.
//!
//! A CCT coalesces call paths by common prefix: the root represents the
//! thread start, internal nodes are call sites, and leaves are the
//! statements where samples were triggered (§4.1.2 of the paper). For
//! data-centric profiles two extra frame kinds appear: *variable* dummy
//! nodes that group all accesses to one static variable, and the
//! *heap-data marker* that separates an allocation call path (above) from
//! the access call paths (below) — the paper's Figure 4 structure.
//!
//! Metrics are dense per-node `u64` vectors; the metric schema (what
//! column 0 means) is owned by the profiler, not the tree.

use dcp_support::FxHashMap;

/// One CCT frame. Payloads are opaque `u64`s (instruction addresses,
/// procedure ids, symbol handles); the post-mortem analyzer interprets
/// them against the program's symbol tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Frame {
    /// Synthetic tree root.
    Root,
    /// A thread-root procedure (e.g. `main` or an outlined region body).
    Proc(u64),
    /// A call site (IP of the call statement).
    CallSite(u64),
    /// A sampled statement (leaf).
    Stmt(u64),
    /// Dummy node naming a static variable (encoded symbol handle).
    StaticVar(u64),
    /// Dummy node separating a heap variable's allocation path from the
    /// accesses to it ("heap data accesses" in the paper's GUI).
    HeapMarker,
}

/// Node index within one [`Cct`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub u32);

/// The root node id (always 0).
pub const ROOT: NodeId = NodeId(0);

#[derive(Debug, Clone)]
struct Node {
    frame: Frame,
    parent: u32,
    /// Child node ids in creation order (deterministic).
    children: Vec<u32>,
}

/// A calling context tree with `width` metric columns per node.
#[derive(Debug, Clone)]
pub struct Cct {
    nodes: Vec<Node>,
    /// Flat metrics: `metrics[node * width + m]`.
    metrics: Vec<u64>,
    width: usize,
    /// (parent, frame) -> node lookup for O(1) insertion.
    index: FxHashMap<(u32, Frame), u32>,
}

impl Cct {
    /// Empty tree with `width` metric columns.
    pub fn new(width: usize) -> Self {
        Self {
            nodes: vec![Node { frame: Frame::Root, parent: 0, children: Vec::new() }],
            metrics: vec![0; width],
            width,
            index: FxHashMap::default(),
        }
    }

    /// Number of metric columns.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of nodes (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if only the root exists and it has no metric mass.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1 && self.metrics.iter().all(|&m| m == 0)
    }

    /// Get or create the child of `parent` labeled `frame`.
    pub fn child(&mut self, parent: NodeId, frame: Frame) -> NodeId {
        if let Some(&id) = self.index.get(&(parent.0, frame)) {
            return NodeId(id);
        }
        let id = self.nodes.len() as u32;
        assert!(id < u32::MAX, "CCT node overflow");
        self.nodes.push(Node { frame, parent: parent.0, children: Vec::new() });
        self.metrics.extend(std::iter::repeat_n(0, self.width));
        self.nodes[parent.0 as usize].children.push(id);
        self.index.insert((parent.0, frame), id);
        NodeId(id)
    }

    /// Find (without creating) the child of `parent` labeled `frame`.
    pub fn find_child(&self, parent: NodeId, frame: Frame) -> Option<NodeId> {
        self.index.get(&(parent.0, frame)).map(|&id| NodeId(id))
    }

    /// Insert `frames` as a path under the root (creating nodes as
    /// needed) and add `value` to metric `metric` at the final node.
    pub fn insert_path<I>(&mut self, frames: I, metric: usize, value: u64) -> NodeId
    where
        I: IntoIterator<Item = Frame>,
    {
        let mut cur = ROOT;
        for f in frames {
            cur = self.child(cur, f);
        }
        self.add(cur, metric, value);
        cur
    }

    /// Extend a path from an arbitrary interior node (used to hang access
    /// paths below a variable's dummy node).
    pub fn insert_path_at<I>(&mut self, start: NodeId, frames: I) -> NodeId
    where
        I: IntoIterator<Item = Frame>,
    {
        let mut cur = start;
        for f in frames {
            cur = self.child(cur, f);
        }
        cur
    }

    /// Add `value` to metric column `metric` of `node` (exclusive value).
    /// Saturates at `u64::MAX`: decoded profiles feed untrusted values
    /// through here, and saturation keeps hostile input from tripping a
    /// debug-build overflow panic.
    pub fn add(&mut self, node: NodeId, metric: usize, value: u64) {
        assert!(metric < self.width, "metric column out of range");
        let cell = &mut self.metrics[node.0 as usize * self.width + metric];
        *cell = cell.saturating_add(value);
    }

    /// Exclusive metrics of `node`.
    pub fn metrics(&self, node: NodeId) -> &[u64] {
        let s = node.0 as usize * self.width;
        &self.metrics[s..s + self.width]
    }

    /// The frame labeling `node`.
    pub fn frame(&self, node: NodeId) -> Frame {
        self.nodes[node.0 as usize].frame
    }

    /// Parent of `node` (the root is its own parent).
    pub fn parent(&self, node: NodeId) -> NodeId {
        NodeId(self.nodes[node.0 as usize].parent)
    }

    /// Children of `node` in creation order.
    pub fn children(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes[node.0 as usize].children.iter().map(|&c| NodeId(c))
    }

    /// Frames from the root (exclusive) down to `node` (inclusive).
    pub fn path_to(&self, node: NodeId) -> Vec<Frame> {
        let mut path = Vec::new();
        let mut cur = node;
        while cur != ROOT {
            path.push(self.frame(cur));
            cur = self.parent(cur);
        }
        path.reverse();
        path
    }

    /// All node ids in preorder.
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![ROOT];
        while let Some(n) = stack.pop() {
            out.push(n);
            // Push children reversed so the first child is visited first.
            let ch = &self.nodes[n.0 as usize].children;
            for &c in ch.iter().rev() {
                stack.push(NodeId(c));
            }
        }
        out
    }

    /// Inclusive metric values (self + descendants) for column `metric`,
    /// indexed by node id.
    pub fn inclusive(&self, metric: usize) -> Vec<u64> {
        assert!(metric < self.width);
        let mut inc: Vec<u64> =
            (0..self.nodes.len()).map(|i| self.metrics[i * self.width + metric]).collect();
        // Nodes are created parents-first, so walking ids backwards
        // accumulates children before their parents.
        for i in (1..self.nodes.len()).rev() {
            let p = self.nodes[i].parent as usize;
            inc[p] += inc[i];
        }
        inc
    }

    /// Total (root-inclusive) value of `metric`.
    pub fn total(&self, metric: usize) -> u64 {
        (0..self.nodes.len()).map(|i| self.metrics[i * self.width + metric]).sum()
    }

    /// Merge `other` into `self`: matching paths coalesce, metrics add
    /// (saturating, like [`Cct::add`]).
    pub fn merge_from(&mut self, other: &Cct) {
        assert_eq!(self.width, other.width, "metric width mismatch in merge");
        // Map other-node-id -> self-node-id. Nodes are created
        // parents-first (a child's id always exceeds its parent's), so a
        // single id-order walk sees every parent before its children.
        // Walking in id order — not preorder — matters: it replays
        // `other`'s creation order exactly, which is what keeps the
        // streamed out-of-core merge byte-identical to this one after
        // re-encoding.
        let mut map = vec![0u32; other.nodes.len()];
        for oid in 1..other.nodes.len() {
            let parent = NodeId(map[other.nodes[oid].parent as usize]);
            map[oid] = self.child(parent, other.nodes[oid].frame).0;
        }
        for (oid, &mid) in map.iter().enumerate() {
            let s = mid as usize * self.width;
            let o = oid * self.width;
            for m in 0..self.width {
                self.metrics[s + m] = self.metrics[s + m].saturating_add(other.metrics[o + m]);
            }
        }
    }

    /// Canonical form for equality tests: sorted (path, metrics) pairs of
    /// every node carrying metric mass.
    pub fn canonical(&self) -> Vec<(Vec<Frame>, Vec<u64>)> {
        let mut out: Vec<(Vec<Frame>, Vec<u64>)> = self
            .preorder()
            .into_iter()
            .filter(|&n| self.metrics(n).iter().any(|&m| m != 0))
            .map(|n| (self.path_to(n), self.metrics(n).to_vec()))
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(ids: &[u64]) -> Vec<Frame> {
        let mut v = vec![Frame::Proc(ids[0])];
        v.extend(ids[1..].iter().map(|&i| Frame::CallSite(i)));
        v
    }

    #[test]
    fn common_prefixes_coalesce() {
        let mut t = Cct::new(1);
        t.insert_path(path(&[1, 2, 3]), 0, 10);
        t.insert_path(path(&[1, 2, 4]), 0, 5);
        // root + proc1 + cs2 + cs3 + cs4 = 5 nodes
        assert_eq!(t.len(), 5);
        assert_eq!(t.total(0), 15);
    }

    #[test]
    fn inclusive_aggregates_descendants() {
        let mut t = Cct::new(1);
        let a = t.insert_path(path(&[1, 2]), 0, 10);
        let b = t.insert_path(path(&[1, 2, 3]), 0, 7);
        let inc = t.inclusive(0);
        assert_eq!(inc[ROOT.0 as usize], 17);
        assert_eq!(inc[a.0 as usize], 17); // own 10 + child 7
        assert_eq!(inc[b.0 as usize], 7);
    }

    #[test]
    fn path_to_roundtrips() {
        let mut t = Cct::new(1);
        let p = path(&[9, 8, 7]);
        let n = t.insert_path(p.clone(), 0, 1);
        assert_eq!(t.path_to(n), p);
    }

    #[test]
    fn dummy_nodes_group_variables() {
        // Static-variable grouping: variable dummy at the root, access
        // paths below.
        let mut t = Cct::new(1);
        let var = t.child(ROOT, Frame::StaticVar(42));
        let l1 = t.insert_path_at(var, path(&[1, 2]));
        t.add(l1, 0, 3);
        let l2 = t.insert_path_at(var, path(&[1, 5]));
        t.add(l2, 0, 4);
        let inc = t.inclusive(0);
        assert_eq!(inc[var.0 as usize], 7, "variable node aggregates all its accesses");
    }

    #[test]
    fn merge_coalesces_and_adds() {
        let mut a = Cct::new(2);
        a.insert_path(path(&[1, 2]), 0, 10);
        a.insert_path(path(&[1, 3]), 1, 2);
        let mut b = Cct::new(2);
        b.insert_path(path(&[1, 2]), 0, 5);
        b.insert_path(path(&[4]), 0, 1);
        a.merge_from(&b);
        assert_eq!(a.total(0), 16);
        assert_eq!(a.total(1), 2);
        // path [1,2] exists once with 15.
        let p1 = a.find_child(ROOT, Frame::Proc(1)).unwrap();
        let n = a.find_child(p1, Frame::CallSite(2)).unwrap();
        assert_eq!(a.metrics(n)[0], 15);
    }

    #[test]
    fn merge_is_commutative_in_canonical_form() {
        let mut a1 = Cct::new(1);
        a1.insert_path(path(&[1, 2, 3]), 0, 10);
        a1.insert_path(path(&[1, 9]), 0, 4);
        let mut b1 = Cct::new(1);
        b1.insert_path(path(&[1, 2]), 0, 6);
        b1.insert_path(path(&[7]), 0, 2);

        let mut ab = a1.clone();
        ab.merge_from(&b1);
        let mut ba = b1.clone();
        ba.merge_from(&a1);
        assert_eq!(ab.canonical(), ba.canonical());
    }

    #[test]
    fn preorder_visits_every_node_once() {
        let mut t = Cct::new(1);
        t.insert_path(path(&[1, 2, 3]), 0, 1);
        t.insert_path(path(&[1, 4]), 0, 1);
        t.insert_path(path(&[5]), 0, 1);
        let po = t.preorder();
        assert_eq!(po.len(), t.len());
        let mut seen: Vec<u32> = po.iter().map(|n| n.0).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), t.len());
        assert_eq!(po[0], ROOT);
    }

    #[test]
    #[should_panic(expected = "metric column out of range")]
    fn metric_bounds_checked() {
        let mut t = Cct::new(1);
        t.add(ROOT, 1, 1);
    }
}
