//! # dcp-cct — calling context trees for data-centric profiles
//!
//! The central data structure of the `memgaze` profiler (reproduction of
//! Liu & Mellor-Crummey, SC'13): calling context trees with per-node
//! metric vectors, data-centric dummy frames (static-variable nodes and
//! the heap-data marker), a compact LEB128 binary profile codec (the
//! paper's space-overhead story), and scalable reduction-tree merging
//! (the paper's analysis-scalability story).

pub mod codec;
pub mod diff;
pub mod merge;
pub mod tree;

pub use codec::{decode, encode, CodecError};
pub use diff::{diff, DiffEntry, ProfileDiff};
pub use merge::{merge_reduction_tree, merge_sequential};
pub use tree::{Cct, Frame, NodeId, ROOT};

#[cfg(test)]
mod proptests {
    use dcp_support::prop::{vec, Just, Strategy, StrategyExt};
    use dcp_support::{one_of, props};

    use crate::codec::{decode, encode};
    use crate::merge::{merge_reduction_tree, merge_sequential};
    use crate::tree::{Cct, Frame, ROOT};

    fn arb_frame() -> impl Strategy<Value = Frame> {
        one_of![
            (0u64..20).prop_map(Frame::Proc),
            (0u64..50).prop_map(Frame::CallSite),
            (0u64..50).prop_map(Frame::Stmt),
            (0u64..10).prop_map(Frame::StaticVar),
            Just(Frame::HeapMarker),
        ]
    }

    fn arb_cct() -> impl Strategy<Value = Cct> {
        // Random paths with random metric additions.
        vec((vec(arb_frame(), 1..8), 0u64..1_000_000, 0usize..2), 0..40).prop_map(|paths| {
            let mut t = Cct::new(2);
            for (path, v, m) in paths {
                t.insert_path(path, m, v);
            }
            t
        })
    }

    props! {
        cases = 64;

        /// Codec roundtrip preserves everything observable.
        fn codec_roundtrip(t in arb_cct()) {
            let back = decode(encode(&t)).unwrap();
            assert_eq!(t.canonical(), back.canonical());
            assert_eq!(t.len(), back.len());
        }

        /// Merging conserves metric totals.
        fn merge_conserves_totals(ts in vec(arb_cct(), 0..12)) {
            let want0: u64 = ts.iter().map(|t| t.total(0)).sum();
            let want1: u64 = ts.iter().map(|t| t.total(1)).sum();
            let merged = merge_reduction_tree(ts, 2);
            assert_eq!(merged.total(0), want0);
            assert_eq!(merged.total(1), want1);
        }

        /// The parallel reduction tree matches the sequential fold.
        fn tree_matches_sequential(ts in vec(arb_cct(), 0..10)) {
            let tree = merge_reduction_tree(ts.clone(), 2);
            let seq = merge_sequential(ts, 2);
            assert_eq!(tree.canonical(), seq.canonical());
        }

        /// Inclusive(root) equals the metric total, for every column.
        fn inclusive_root_is_total(t in arb_cct()) {
            for m in 0..2 {
                let inc = t.inclusive(m);
                assert_eq!(inc[ROOT.0 as usize], t.total(m));
            }
        }

        /// Inclusive value of a parent is at least that of each child.
        fn inclusive_is_monotone(t in arb_cct()) {
            let inc = t.inclusive(0);
            for n in t.preorder() {
                for c in t.children(n) {
                    assert!(inc[n.0 as usize] >= inc[c.0 as usize]);
                }
            }
        }
    }
}
