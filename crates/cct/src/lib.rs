//! # dcp-cct — calling context trees for data-centric profiles
//!
//! The central data structure of the `memgaze` profiler (reproduction of
//! Liu & Mellor-Crummey, SC'13): calling context trees with per-node
//! metric vectors, data-centric dummy frames (static-variable nodes and
//! the heap-data marker), a compact versioned binary profile codec (the
//! paper's space-overhead story — LEB128 v1 plus the delta/sparse v2
//! with streaming, hardened decoding), and scalable reduction-tree
//! merging both in memory and out-of-core over encoded profiles (the
//! paper's analysis-scalability story).

pub mod codec;
pub mod diff;
pub mod merge;
pub mod tree;

pub use codec::{
    decode, decode_named, encode, encode_named, encode_v1, merge_into, validate, CodecError,
    MetricRecord, NodeRecord, ProfileEvent, ProfileNames, ProfileReader, ProfileSummary,
    StringTable,
};
pub use diff::{diff, DiffEntry, ProfileDiff};
pub use merge::{
    merge_encoded, merge_encoded_sequential, merge_reduction_tree, merge_sequential,
    IncrementalMerge,
};
pub use tree::{Cct, Frame, NodeId, ROOT};

#[cfg(test)]
mod proptests {
    use dcp_support::prop::{vec, Just, Strategy, StrategyExt};
    use dcp_support::{one_of, props};

    use crate::codec::{
        decode, decode_named, encode, encode_named, encode_v1, ProfileNames, ProfileReader,
    };
    use crate::merge::{merge_encoded, merge_reduction_tree, merge_sequential};
    use crate::tree::{Cct, Frame, ROOT};

    fn arb_frame() -> impl Strategy<Value = Frame> {
        one_of![
            (0u64..20).prop_map(Frame::Proc),
            (0u64..50).prop_map(Frame::CallSite),
            (0u64..50).prop_map(Frame::Stmt),
            (0u64..10).prop_map(Frame::StaticVar),
            Just(Frame::HeapMarker),
        ]
    }

    /// Frames with payloads spread across the whole u64 range, so the
    /// zigzag deltas see large magnitudes of both signs.
    fn arb_wide_frame() -> impl Strategy<Value = Frame> {
        one_of![
            (0u64..u64::MAX).prop_map(Frame::Proc),
            (0u64..u64::MAX).prop_map(Frame::CallSite),
            (0u64..u64::MAX).prop_map(Frame::Stmt),
            (0u64..u64::MAX).prop_map(Frame::StaticVar),
            Just(Frame::HeapMarker),
        ]
    }

    fn arb_cct() -> impl Strategy<Value = Cct> {
        // Random paths with random metric additions.
        vec((vec(arb_frame(), 1..8), 0u64..1_000_000, 0usize..2), 0..40).prop_map(|paths| {
            let mut t = Cct::new(2);
            for (path, v, m) in paths {
                t.insert_path(path, m, v);
            }
            t
        })
    }

    /// Deeper, sparser trees with extreme payloads and metric values:
    /// the stress shape for the wire format (arbitrary depth, sparsity).
    fn arb_deep_cct() -> impl Strategy<Value = Cct> {
        vec((vec(arb_wide_frame(), 1..20), 0u64..u64::MAX, 0usize..3), 0..24).prop_map(|paths| {
            let mut t = Cct::new(3);
            for (path, v, m) in paths {
                t.insert_path(path, m, v);
            }
            t
        })
    }

    /// Unicode-ish names: ASCII, Greek, CJK, and an emoji, so the string
    /// table proves it carries arbitrary UTF-8, not just identifiers.
    fn arb_name() -> impl Strategy<Value = String> {
        vec(
            one_of![0x20u32..0x7f, 0x3b1u32..0x3ca, 0x4e00u32..0x4e20, Just(0x1f600u32)],
            0..12,
        )
        .prop_map(|cps| cps.into_iter().filter_map(char::from_u32).collect())
    }

    props! {
        cases = 64;

        /// v2 roundtrip preserves everything observable.
        fn codec_roundtrip(t in arb_cct()) {
            let back = decode(encode(&t)).unwrap();
            assert_eq!(t.canonical(), back.canonical());
            assert_eq!(t.len(), back.len());
        }

        /// v1 roundtrip: the legacy format still decodes, losslessly.
        fn codec_v1_roundtrip(t in arb_cct()) {
            let back = decode(encode_v1(&t)).unwrap();
            assert_eq!(t.canonical(), back.canonical());
            assert_eq!(t.len(), back.len());
        }

        /// Deep trees with extreme payloads roundtrip through both
        /// formats, and v2 re-encoding is a fixed point (encode∘decode
        /// is the identity on the byte stream).
        fn codec_roundtrip_deep(t in arb_deep_cct()) {
            let v2 = encode(&t);
            let back = decode(v2.clone()).unwrap();
            assert_eq!(t.canonical(), back.canonical());
            assert_eq!(encode(&back), v2);
            let back1 = decode(encode_v1(&t)).unwrap();
            assert_eq!(t.canonical(), back1.canonical());
        }

        /// Frame names survive the v2 name section, including unicode
        /// and duplicate strings (which must dedup, not collide).
        fn codec_named_roundtrip(t in arb_cct(), names in vec((0u64..20, arb_name()), 0..10)) {
            let mut pn = ProfileNames::default();
            for (p, name) in &names {
                pn.name(Frame::Proc(*p), name);
            }
            let bytes = encode_named(&t, &pn);
            let (back, got) = decode_named(bytes.clone()).unwrap();
            assert_eq!(t.canonical(), back.canonical());
            for (p, _) in &names {
                // Later names for the same frame overwrite earlier ones,
                // so compare against the encoder's own view.
                assert_eq!(got.lookup(Frame::Proc(*p)), pn.lookup(Frame::Proc(*p)));
            }
            // The streaming reader sees the same names without decoding.
            let reader = ProfileReader::new(bytes).unwrap();
            for (p, _) in &names {
                assert_eq!(reader.names().lookup(Frame::Proc(*p)), pn.lookup(Frame::Proc(*p)));
            }
        }

        /// Out-of-core merge over encoded profiles re-encodes to the
        /// exact bytes of the in-memory reduction merge.
        fn streamed_merge_matches_in_memory(ts in vec(arb_cct(), 0..10)) {
            let blobs = ts.iter().map(encode).collect();
            let streamed = merge_encoded(blobs, 2).unwrap();
            let in_mem = merge_reduction_tree(ts, 2);
            assert_eq!(encode(&streamed), encode(&in_mem));
        }

        /// Merging conserves metric totals.
        fn merge_conserves_totals(ts in vec(arb_cct(), 0..12)) {
            let want0: u64 = ts.iter().map(|t| t.total(0)).sum();
            let want1: u64 = ts.iter().map(|t| t.total(1)).sum();
            let merged = merge_reduction_tree(ts, 2);
            assert_eq!(merged.total(0), want0);
            assert_eq!(merged.total(1), want1);
        }

        /// The parallel reduction tree matches the sequential fold.
        fn tree_matches_sequential(ts in vec(arb_cct(), 0..10)) {
            let tree = merge_reduction_tree(ts.clone(), 2);
            let seq = merge_sequential(ts, 2);
            assert_eq!(tree.canonical(), seq.canonical());
        }

        /// Inclusive(root) equals the metric total, for every column.
        fn inclusive_root_is_total(t in arb_cct()) {
            for m in 0..2 {
                let inc = t.inclusive(m);
                assert_eq!(inc[ROOT.0 as usize], t.total(m));
            }
        }

        /// Inclusive value of a parent is at least that of each child.
        fn inclusive_is_monotone(t in arb_cct()) {
            let inc = t.inclusive(0);
            for n in t.preorder() {
                for c in t.children(n) {
                    assert!(inc[n.0 as usize] >= inc[c.0 as usize]);
                }
            }
        }
    }
}
