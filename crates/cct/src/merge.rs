//! Scalable profile merging.
//!
//! The paper's post-mortem analyzer merges per-thread profiles across
//! threads and processes with an MPI reduction tree so that merge time
//! grows logarithmically with parallelism (§4.2, citing Tallent et al.).
//! Our equivalent is a rayon-based binary reduction tree: halves of the
//! profile list merge recursively in parallel. Merging is associative and
//! commutative on canonical tree content, so the parallel reduction is
//! deterministic in everything observable.

use dcp_support::pool::join;

use crate::tree::Cct;

/// Merge a list of profiles with a binary reduction tree. Returns an
/// empty tree of `width` columns when the list is empty.
pub fn merge_reduction_tree(mut profiles: Vec<Cct>, width: usize) -> Cct {
    match profiles.len() {
        0 => Cct::new(width),
        1 => profiles.pop().expect("len checked"),
        _ => reduce(profiles),
    }
}

fn reduce(mut profiles: Vec<Cct>) -> Cct {
    debug_assert!(profiles.len() >= 2);
    if profiles.len() == 2 {
        let b = profiles.pop().expect("len 2");
        let mut a = profiles.pop().expect("len 2");
        a.merge_from(&b);
        return a;
    }
    let right = profiles.split_off(profiles.len() / 2);
    let (mut l, r) = join(|| merge_half(profiles), || merge_half(right));
    l.merge_from(&r);
    l
}

fn merge_half(profiles: Vec<Cct>) -> Cct {
    match profiles.len() {
        1 => profiles.into_iter().next().expect("len 1"),
        _ => reduce(profiles),
    }
}

/// Sequential fold merge, used as the reference implementation in tests
/// and as the baseline in the merge-scaling benchmark.
pub fn merge_sequential(profiles: Vec<Cct>, width: usize) -> Cct {
    let mut it = profiles.into_iter();
    let mut acc = it.next().unwrap_or_else(|| Cct::new(width));
    for p in it {
        acc.merge_from(&p);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{Frame, ROOT};

    fn make_profile(seed: u64, paths: usize) -> Cct {
        let mut t = Cct::new(2);
        for i in 0..paths as u64 {
            let p = t.child(ROOT, Frame::Proc(1 + (seed + i) % 3));
            let c = t.child(p, Frame::CallSite(100 + (seed * 7 + i) % 10));
            let s = t.child(c, Frame::Stmt(1000 + i % 5));
            t.add(s, 0, seed + i);
            t.add(s, 1, 1);
        }
        t
    }

    #[test]
    fn tree_merge_equals_sequential() {
        let mk = || (0..17).map(|s| make_profile(s, 23)).collect::<Vec<_>>();
        let tree = merge_reduction_tree(mk(), 2);
        let seq = merge_sequential(mk(), 2);
        assert_eq!(tree.canonical(), seq.canonical());
        assert_eq!(tree.total(0), seq.total(0));
        assert_eq!(tree.total(1), seq.total(1));
    }

    #[test]
    fn empty_input_yields_empty_tree() {
        let t = merge_reduction_tree(Vec::new(), 4);
        assert!(t.is_empty());
        assert_eq!(t.width(), 4);
    }

    #[test]
    fn single_profile_passthrough() {
        let p = make_profile(3, 5);
        let want = p.canonical();
        let got = merge_reduction_tree(vec![p], 2);
        assert_eq!(got.canonical(), want);
    }

    #[test]
    fn totals_are_conserved() {
        let profiles: Vec<Cct> = (0..64).map(|s| make_profile(s, 11)).collect();
        let want0: u64 = profiles.iter().map(|p| p.total(0)).sum();
        let want1: u64 = profiles.iter().map(|p| p.total(1)).sum();
        let merged = merge_reduction_tree(profiles, 2);
        assert_eq!(merged.total(0), want0);
        assert_eq!(merged.total(1), want1);
    }

    #[test]
    fn oversubscribed_pool_merges_correctly() {
        // Far more profiles than the pool has workers (the pool is sized
        // from DCP_THREADS or the core count — single digits either way),
        // so the reduction tree must queue, steal, and help without
        // deadlocking, and still match the sequential fold.
        let n = 512 * dcp_support::pool::parallelism();
        let mk = || (0..n as u64).map(|s| make_profile(s, 7)).collect::<Vec<_>>();
        let tree = merge_reduction_tree(mk(), 2);
        let seq = merge_sequential(mk(), 2);
        assert_eq!(tree.canonical(), seq.canonical());
        assert_eq!(tree.total(0), seq.total(0));
        assert_eq!(tree.total(1), seq.total(1));
    }

    #[test]
    fn merged_size_is_compact() {
        // 64 threads with identical path sets coalesce to one path set.
        let profiles: Vec<Cct> = (0..64).map(|_| make_profile(1, 23)).collect();
        let one_size = profiles[0].len();
        let merged = merge_reduction_tree(profiles, 2);
        assert_eq!(merged.len(), one_size, "identical profiles must fully coalesce");
    }
}
