//! Scalable profile merging.
//!
//! The paper's post-mortem analyzer merges per-thread profiles across
//! threads and processes with an MPI reduction tree so that merge time
//! grows logarithmically with parallelism (§4.2, citing Tallent et al.).
//! Our equivalent is a rayon-based binary reduction tree: halves of the
//! profile list merge recursively in parallel. Merging is associative and
//! commutative on canonical tree content, so the parallel reduction is
//! deterministic in everything observable.
//!
//! Two input shapes are supported. [`merge_reduction_tree`] takes
//! already-materialized [`Cct`]s. [`merge_encoded`] takes *encoded*
//! profiles and streams each one into its reduction-branch accumulator
//! via [`crate::codec::merge_into`], so peak memory is bounded by the
//! accumulators live on active branches — O(active workers × merged
//! profile), not O(sum of all K inputs) — which is what lets a
//! post-mortem pass over thousands of per-thread profiles run on a
//! laptop. Both walks visit nodes in creation order, so the two paths
//! produce byte-identical re-encodings (a property the tests pin).

use std::sync::Arc;

use dcp_support::bytes::Bytes;
use dcp_support::pool::join;

use crate::codec::{merge_into, CodecError};
use crate::tree::Cct;

/// Merge a list of profiles with a binary reduction tree. Returns an
/// empty tree of `width` columns when the list is empty.
pub fn merge_reduction_tree(mut profiles: Vec<Cct>, width: usize) -> Cct {
    match profiles.len() {
        0 => Cct::new(width),
        1 => profiles.pop().expect("len checked"),
        _ => reduce(profiles),
    }
}

fn reduce(mut profiles: Vec<Cct>) -> Cct {
    debug_assert!(profiles.len() >= 2);
    if profiles.len() == 2 {
        let b = profiles.pop().expect("len 2");
        let mut a = profiles.pop().expect("len 2");
        a.merge_from(&b);
        return a;
    }
    let right = profiles.split_off(profiles.len() / 2);
    let (mut l, r) = join(|| merge_half(profiles), || merge_half(right));
    l.merge_from(&r);
    l
}

fn merge_half(profiles: Vec<Cct>) -> Cct {
    match profiles.len() {
        1 => profiles.into_iter().next().expect("len 1"),
        _ => reduce(profiles),
    }
}

/// Sequential fold merge, used as the reference implementation in tests
/// and as the baseline in the merge-scaling benchmark.
pub fn merge_sequential(profiles: Vec<Cct>, width: usize) -> Cct {
    let mut it = profiles.into_iter();
    let mut acc = it.next().unwrap_or_else(|| Cct::new(width));
    for p in it {
        acc.merge_from(&p);
    }
    acc
}

/// Out-of-core reduction-tree merge over *encoded* profiles (either wire
/// version, mixed freely). Each leaf blob streams into its branch's
/// accumulator without ever materializing the input tree; the reduction
/// recursion mirrors [`merge_reduction_tree`] exactly, so re-encoding the
/// result is byte-identical to decoding everything up front and merging
/// in memory. Fails fast with the decode error of the first bad blob.
pub fn merge_encoded(mut blobs: Vec<Bytes>, width: usize) -> Result<Cct, CodecError> {
    match blobs.len() {
        0 => Ok(Cct::new(width)),
        1 => stream_one(blobs.pop().expect("len checked"), width),
        _ => reduce_encoded(blobs, width),
    }
}

/// Sequential streaming fold: one accumulator, every blob streamed in.
/// Peak memory is a single merged profile — the tightest bound — at the
/// cost of no parallelism. Reference implementation for the tests and
/// the baseline for the merge benchmark.
pub fn merge_encoded_sequential(blobs: Vec<Bytes>, width: usize) -> Result<Cct, CodecError> {
    let mut it = blobs.into_iter();
    let mut acc = match it.next() {
        Some(b) => stream_one(b, width)?,
        None => return Ok(Cct::new(width)),
    };
    for b in it {
        merge_into(&mut acc, b)?;
    }
    Ok(acc)
}

/// Decode one blob by streaming it into a fresh accumulator, enforcing
/// the expected metric width.
fn stream_one(bytes: Bytes, width: usize) -> Result<Cct, CodecError> {
    let mut acc = Cct::new(width);
    merge_into(&mut acc, bytes)?;
    Ok(acc)
}

fn reduce_encoded(mut blobs: Vec<Bytes>, width: usize) -> Result<Cct, CodecError> {
    debug_assert!(blobs.len() >= 2);
    if blobs.len() == 2 {
        let b = blobs.pop().expect("len 2");
        let a = blobs.pop().expect("len 2");
        let mut acc = stream_one(a, width)?;
        merge_into(&mut acc, b)?;
        return Ok(acc);
    }
    let right = blobs.split_off(blobs.len() / 2);
    let (l, r) = join(|| half_encoded(blobs, width), || half_encoded(right, width));
    let mut l = l?;
    l.merge_from(&r?);
    Ok(l)
}

fn half_encoded(blobs: Vec<Bytes>, width: usize) -> Result<Cct, CodecError> {
    match blobs.len() {
        1 => stream_one(blobs.into_iter().next().expect("len 1"), width),
        _ => reduce_encoded(blobs, width),
    }
}

/// Amortized incremental merge: an accumulator plus a buffer of pending
/// encoded blobs. [`push`](IncrementalMerge::push) is O(1); each
/// [`fold`](IncrementalMerge::fold) reduction-tree-merges the pending
/// batch ([`merge_encoded`], parallel on the pool) and folds the batch
/// into the accumulator, so adding K blobs to an N-blob set costs one
/// batch merge plus one tree merge — never a re-merge of all N+K inputs.
///
/// **Invariant** (pinned by tests): after any sequence of pushes and
/// folds, `tree()` re-encodes byte-identically to
/// [`merge_encoded_sequential`] over the same blobs in push order. This
/// holds because every merge path appends first-touch nodes in the
/// walked operand's creation order, so the final creation order is the
/// order of first appearance across the flattened blob list regardless
/// of how the folds were bracketed. The serving layer's concurrent
/// ingest leans on this: fold blobs in client-assigned sequence order
/// and the served profile is deterministic.
///
/// The accumulator lives behind an [`Arc`] so readers can take a
/// zero-copy handle ([`shared_tree`](Self::shared_tree)) — a snapshot of
/// an unchanged class is one refcount bump. A later fold copies the
/// tree only if a reader still holds it (`Arc::make_mut`), so the deep
/// clone happens at most once per outstanding snapshot, and never for
/// classes no ingest touched.
pub struct IncrementalMerge {
    acc: Arc<Cct>,
    pending: Vec<Bytes>,
    pending_bytes: usize,
    blobs: u64,
    folds: u64,
}

impl IncrementalMerge {
    /// An empty accumulator for profiles of `width` metric columns.
    pub fn new(width: usize) -> Self {
        Self::from_tree(Cct::new(width))
    }

    /// An accumulator seeded with an already-merged tree — the restore
    /// path installs a decoded snapshot directly instead of re-folding
    /// its own encoding.
    pub fn from_tree(tree: Cct) -> Self {
        Self { acc: Arc::new(tree), pending: Vec::new(), pending_bytes: 0, blobs: 0, folds: 0 }
    }

    pub fn width(&self) -> usize {
        self.acc.width()
    }

    /// Buffer one encoded profile. The blob is not validated here; a bad
    /// blob surfaces as a typed error from the next [`fold`].
    pub fn push(&mut self, blob: Bytes) {
        self.pending_bytes += blob.len();
        self.pending.push(blob);
        self.blobs += 1;
    }

    /// Number of blobs buffered since the last fold.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Encoded bytes buffered since the last fold.
    pub fn pending_bytes(&self) -> usize {
        self.pending_bytes
    }

    /// Total blobs ever pushed.
    pub fn blobs(&self) -> u64 {
        self.blobs
    }

    /// Number of folds performed (for the server's merge counter).
    pub fn folds(&self) -> u64 {
        self.folds
    }

    /// Merge the pending batch into the accumulator. A no-op when
    /// nothing is pending. On a decode error the accumulator is
    /// unchanged and the pending batch is dropped (the caller is
    /// expected to have validated blobs it cares about before pushing).
    pub fn fold(&mut self) -> Result<(), CodecError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let batch = std::mem::take(&mut self.pending);
        self.pending_bytes = 0;
        let merged = merge_encoded(batch, self.acc.width())?;
        Arc::make_mut(&mut self.acc).merge_from(&merged);
        self.folds += 1;
        Ok(())
    }

    /// Fold anything pending and return the merged tree.
    pub fn tree(&mut self) -> Result<&Cct, CodecError> {
        self.fold()?;
        Ok(&self.acc)
    }

    /// Fold anything pending and return a shared handle to the merged
    /// tree. When nothing was pending this clones nothing — the same
    /// `Arc` is handed out again, which is what makes snapshotting an
    /// untouched class free.
    pub fn shared_tree(&mut self) -> Result<Arc<Cct>, CodecError> {
        self.fold()?;
        Ok(Arc::clone(&self.acc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{encode, encode_v1};
    use crate::tree::{Frame, ROOT};

    fn make_profile(seed: u64, paths: usize) -> Cct {
        let mut t = Cct::new(2);
        for i in 0..paths as u64 {
            let p = t.child(ROOT, Frame::Proc(1 + (seed + i) % 3));
            let c = t.child(p, Frame::CallSite(100 + (seed * 7 + i) % 10));
            let s = t.child(c, Frame::Stmt(1000 + i % 5));
            t.add(s, 0, seed + i);
            t.add(s, 1, 1);
        }
        t
    }

    #[test]
    fn tree_merge_equals_sequential() {
        let mk = || (0..17).map(|s| make_profile(s, 23)).collect::<Vec<_>>();
        let tree = merge_reduction_tree(mk(), 2);
        let seq = merge_sequential(mk(), 2);
        assert_eq!(tree.canonical(), seq.canonical());
        assert_eq!(tree.total(0), seq.total(0));
        assert_eq!(tree.total(1), seq.total(1));
    }

    #[test]
    fn empty_input_yields_empty_tree() {
        let t = merge_reduction_tree(Vec::new(), 4);
        assert!(t.is_empty());
        assert_eq!(t.width(), 4);
    }

    #[test]
    fn single_profile_passthrough() {
        let p = make_profile(3, 5);
        let want = p.canonical();
        let got = merge_reduction_tree(vec![p], 2);
        assert_eq!(got.canonical(), want);
    }

    #[test]
    fn totals_are_conserved() {
        let profiles: Vec<Cct> = (0..64).map(|s| make_profile(s, 11)).collect();
        let want0: u64 = profiles.iter().map(|p| p.total(0)).sum();
        let want1: u64 = profiles.iter().map(|p| p.total(1)).sum();
        let merged = merge_reduction_tree(profiles, 2);
        assert_eq!(merged.total(0), want0);
        assert_eq!(merged.total(1), want1);
    }

    #[test]
    fn oversubscribed_pool_merges_correctly() {
        // Far more profiles than the pool has workers (the pool is sized
        // from DCP_THREADS or the core count — single digits either way),
        // so the reduction tree must queue, steal, and help without
        // deadlocking, and still match the sequential fold.
        let n = 512 * dcp_support::pool::parallelism();
        let mk = || (0..n as u64).map(|s| make_profile(s, 7)).collect::<Vec<_>>();
        let tree = merge_reduction_tree(mk(), 2);
        let seq = merge_sequential(mk(), 2);
        assert_eq!(tree.canonical(), seq.canonical());
        assert_eq!(tree.total(0), seq.total(0));
        assert_eq!(tree.total(1), seq.total(1));
    }

    #[test]
    fn merged_size_is_compact() {
        // 64 threads with identical path sets coalesce to one path set.
        let profiles: Vec<Cct> = (0..64).map(|_| make_profile(1, 23)).collect();
        let one_size = profiles[0].len();
        let merged = merge_reduction_tree(profiles, 2);
        assert_eq!(merged.len(), one_size, "identical profiles must fully coalesce");
    }

    #[test]
    fn streamed_merge_is_byte_identical_to_in_memory() {
        // The acceptance bar: out-of-core and in-memory merges must not
        // just agree canonically — their re-encodings must be the same
        // bytes. 37 forces an uneven reduction tree.
        let profiles: Vec<Cct> = (0..37).map(|s| make_profile(s, 13)).collect();
        let blobs: Vec<Bytes> = profiles.iter().map(encode).collect();
        let in_mem = merge_reduction_tree(profiles, 2);
        let streamed = merge_encoded(blobs, 2).expect("valid blobs");
        assert_eq!(encode(&streamed), encode(&in_mem));
    }

    #[test]
    fn streamed_merge_oversubscribed_pool_is_byte_identical() {
        // 512 profiles per worker: the reduction must queue, steal, and
        // help without deadlocking, and still produce the exact bytes of
        // the in-memory merge.
        let n = 512 * dcp_support::pool::parallelism();
        let profiles: Vec<Cct> = (0..n as u64).map(|s| make_profile(s, 5)).collect();
        let blobs: Vec<Bytes> = profiles.iter().map(encode).collect();
        let in_mem = merge_reduction_tree(profiles, 2);
        let streamed = merge_encoded(blobs, 2).expect("valid blobs");
        assert_eq!(encode(&streamed), encode(&in_mem));
    }

    #[test]
    fn streamed_merge_accepts_mixed_wire_versions() {
        // Old v1 profiles and new v2 profiles merge together seamlessly.
        let profiles: Vec<Cct> = (0..12).map(|s| make_profile(s, 9)).collect();
        let blobs: Vec<Bytes> = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| if i % 2 == 0 { encode(p) } else { encode_v1(p) })
            .collect();
        let in_mem = merge_reduction_tree(profiles, 2);
        let streamed = merge_encoded(blobs, 2).expect("valid blobs");
        assert_eq!(encode(&streamed), encode(&in_mem));
    }

    #[test]
    fn streamed_sequential_fold_matches_in_memory_fold() {
        let profiles: Vec<Cct> = (0..19).map(|s| make_profile(s, 7)).collect();
        let blobs: Vec<Bytes> = profiles.iter().map(encode).collect();
        let in_mem = merge_sequential(profiles, 2);
        let streamed = merge_encoded_sequential(blobs, 2).expect("valid blobs");
        assert_eq!(encode(&streamed), encode(&in_mem));
    }

    #[test]
    fn streamed_merge_empty_and_single() {
        let empty = merge_encoded(Vec::new(), 3).unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.width(), 3);

        let p = make_profile(4, 6);
        let merged = merge_encoded(vec![encode(&p)], 2).unwrap();
        assert_eq!(encode(&merged), encode(&p), "single blob round-trips");
    }

    #[test]
    fn incremental_merge_is_byte_identical_to_sequential_fold() {
        // Fold at several irregular points; the result must still be the
        // exact bytes of one sequential fold over the whole push order.
        let profiles: Vec<Cct> = (0..29).map(|s| make_profile(s, 11)).collect();
        let blobs: Vec<Bytes> = profiles.iter().map(encode).collect();

        let mut inc = IncrementalMerge::new(2);
        for (i, b) in blobs.iter().enumerate() {
            inc.push(b.clone());
            if i % 7 == 3 {
                inc.fold().expect("valid blobs");
            }
        }
        assert!(inc.pending() > 0, "test must exercise a trailing fold");
        let want = merge_encoded_sequential(blobs, 2).expect("valid blobs");
        assert_eq!(encode(inc.tree().expect("valid blobs")), encode(&want));
        assert_eq!(inc.blobs(), 29);
        assert!(inc.folds() >= 4);
        assert_eq!(inc.pending_bytes(), 0);
    }

    #[test]
    fn incremental_merge_empty_yields_empty_tree() {
        // The empty-ingest edge: a set nobody ever ingested into must
        // serve a defined, empty profile — never an error or panic.
        let mut inc = IncrementalMerge::new(3);
        let t = inc.tree().expect("empty is defined");
        assert!(t.is_empty());
        assert_eq!(t.width(), 3);
        assert_eq!(encode(t), encode(&Cct::new(3)));
    }

    #[test]
    fn incremental_merge_bad_blob_keeps_accumulator() {
        let good = encode(&make_profile(2, 6));
        let mut inc = IncrementalMerge::new(2);
        inc.push(good.clone());
        inc.fold().expect("valid blob");
        let before = encode(inc.tree().expect("folded"));

        inc.push(good.slice(0..good.len() - 3));
        assert_eq!(inc.fold().unwrap_err(), CodecError::Truncated);
        assert_eq!(inc.pending(), 0, "bad batch is dropped");
        assert_eq!(encode(inc.tree().expect("acc intact")), before);
    }

    #[test]
    fn shared_tree_is_copy_on_write() {
        let mut inc = IncrementalMerge::new(2);
        inc.push(encode(&make_profile(1, 5)));
        let a = inc.shared_tree().expect("valid");
        let b = inc.shared_tree().expect("valid");
        assert!(Arc::ptr_eq(&a, &b), "no ingest between snapshots: same handle");
        let before = encode(&a);

        // A fold while a reader holds the tree must not mutate the
        // reader's view — the accumulator copies, the handle doesn't.
        inc.push(encode(&make_profile(2, 5)));
        let c = inc.shared_tree().expect("valid");
        assert!(!Arc::ptr_eq(&a, &c), "fold under an outstanding handle re-arcs");
        assert_eq!(encode(&a), before, "outstanding snapshot is immutable");
        assert_ne!(encode(&c), before);
    }

    #[test]
    fn from_tree_installs_without_folding() {
        let t = make_profile(3, 7);
        let want = encode(&t);
        let mut inc = IncrementalMerge::from_tree(t);
        assert_eq!(inc.folds(), 0);
        assert_eq!(encode(inc.tree().expect("no pending")), want);
        assert_eq!(inc.folds(), 0, "reading an installed tree folds nothing");
        assert_eq!(inc.width(), 2);
    }

    #[test]
    fn streamed_merge_propagates_decode_errors() {
        let good = encode(&make_profile(1, 4));
        let bad = good.slice(0..good.len() - 2);
        let blobs = vec![good.clone(), bad, good.clone()];
        assert_eq!(merge_encoded(blobs, 2).unwrap_err(), CodecError::Truncated);

        // Width mismatches are typed errors too, not asserts.
        let err = merge_encoded(vec![good], 5).unwrap_err();
        assert_eq!(err, CodecError::WidthMismatch { expected: 5, found: 2 });
    }
}
