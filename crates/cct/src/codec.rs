//! Compact binary profile encoding.
//!
//! Space overhead is a first-class concern in the paper (§2.2): a
//! million-thread execution must not produce terabytes of measurement
//! data, which is why the profiler keeps *profiles* (CCTs), never traces.
//! This codec is how we measure that claim: profiles serialize to a
//! LEB128-packed byte stream whose size the Table 1 reproduction reports,
//! and which the trace-vs-profile ablation compares against a
//! MemProf-style sample trace.
//!
//! Layout: magic, version, metric width, node count; then per node (in id
//! order, parents before children): frame tag byte, frame payload varint,
//! parent id varint, metric values varints.

use dcp_support::bytes::{Bytes, BytesMut};

use crate::tree::{Cct, Frame, NodeId, ROOT};

const MAGIC: u32 = 0x4443_5031; // "DCP1"

/// Errors from [`decode`].
#[derive(Debug, PartialEq, Eq)]
pub enum CodecError {
    BadMagic,
    Truncated,
    BadFrameTag(u8),
    BadParent,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a dcp profile (bad magic)"),
            CodecError::Truncated => write!(f, "truncated profile"),
            CodecError::BadFrameTag(t) => write!(f, "unknown frame tag {t}"),
            CodecError::BadParent => write!(f, "child precedes parent"),
        }
    }
}

impl std::error::Error for CodecError {}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(b);
            return;
        }
        buf.put_u8(b | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        if !buf.has_remaining() {
            return Err(CodecError::Truncated);
        }
        let b = buf.get_u8();
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(CodecError::Truncated);
        }
    }
}

fn frame_parts(f: Frame) -> (u8, u64) {
    match f {
        Frame::Root => (0, 0),
        Frame::Proc(p) => (1, p),
        Frame::CallSite(ip) => (2, ip),
        Frame::Stmt(ip) => (3, ip),
        Frame::StaticVar(s) => (4, s),
        Frame::HeapMarker => (5, 0),
    }
}

fn frame_from(tag: u8, payload: u64) -> Result<Frame, CodecError> {
    Ok(match tag {
        0 => Frame::Root,
        1 => Frame::Proc(payload),
        2 => Frame::CallSite(payload),
        3 => Frame::Stmt(payload),
        4 => Frame::StaticVar(payload),
        5 => Frame::HeapMarker,
        t => return Err(CodecError::BadFrameTag(t)),
    })
}

/// Serialize a CCT to its compact byte representation.
pub fn encode(cct: &Cct) -> Bytes {
    let mut buf = BytesMut::with_capacity(cct.len() * 8);
    buf.put_u32(MAGIC);
    put_varint(&mut buf, cct.width() as u64);
    put_varint(&mut buf, cct.len() as u64);
    for id in 0..cct.len() as u32 {
        let n = NodeId(id);
        let (tag, payload) = frame_parts(cct.frame(n));
        buf.put_u8(tag);
        put_varint(&mut buf, payload);
        put_varint(&mut buf, cct.parent(n).0 as u64);
        for &m in cct.metrics(n) {
            put_varint(&mut buf, m);
        }
    }
    buf.freeze()
}

/// Deserialize a profile produced by [`encode`].
pub fn decode(mut bytes: Bytes) -> Result<Cct, CodecError> {
    if bytes.remaining() < 4 || bytes.get_u32() != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let width = get_varint(&mut bytes)? as usize;
    let count = get_varint(&mut bytes)? as usize;
    let mut cct = Cct::new(width);
    for id in 0..count {
        let tag = if bytes.has_remaining() {
            bytes.get_u8()
        } else {
            return Err(CodecError::Truncated);
        };
        let payload = get_varint(&mut bytes)?;
        let frame = frame_from(tag, payload)?;
        let parent = get_varint(&mut bytes)? as u32;
        if id == 0 {
            // Root is implicit in the fresh tree; consume its metrics.
            for m in 0..width {
                let v = get_varint(&mut bytes)?;
                if v > 0 {
                    cct.add(ROOT, m, v);
                }
            }
            continue;
        }
        if parent as usize >= id {
            return Err(CodecError::BadParent);
        }
        let node = cct.child(NodeId(parent), frame);
        debug_assert_eq!(node.0 as usize, id, "id-stable decode");
        for m in 0..width {
            let v = get_varint(&mut bytes)?;
            if v > 0 {
                cct.add(node, m, v);
            }
        }
    }
    Ok(cct)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> Cct {
        let mut t = Cct::new(2);
        let v = t.child(ROOT, Frame::StaticVar(7));
        let a = t.insert_path_at(v, [Frame::Proc(1), Frame::CallSite(0x10002), Frame::Stmt(0x10007)]);
        t.add(a, 0, 123456);
        t.add(a, 1, 3);
        let h = t.child(ROOT, Frame::HeapMarker);
        let b = t.insert_path_at(h, [Frame::Proc(1), Frame::Stmt(0x10009)]);
        t.add(b, 0, 42);
        t
    }

    #[test]
    fn roundtrip_preserves_canonical_form() {
        let t = sample_tree();
        let bytes = encode(&t);
        let back = decode(bytes).expect("decodes");
        assert_eq!(t.canonical(), back.canonical());
        assert_eq!(t.len(), back.len());
        assert_eq!(t.width(), back.width());
    }

    #[test]
    fn encoding_is_compact() {
        // A 1000-node chain with small metrics must stay well under
        // 16 bytes/node (the varints do their job).
        let mut t = Cct::new(1);
        let mut cur = ROOT;
        for i in 0..1000u64 {
            cur = t.child(cur, Frame::CallSite(i));
            t.add(cur, 0, i % 5);
        }
        let bytes = encode(&t);
        assert!(bytes.len() < 16 * 1000, "profile too large: {} bytes", bytes.len());
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = Bytes::from_static(b"nope");
        assert_eq!(decode(bytes).unwrap_err(), CodecError::BadMagic);
    }

    #[test]
    fn truncated_rejected() {
        let t = sample_tree();
        let full = encode(&t);
        let cut = full.slice(0..full.len() - 3);
        assert_eq!(decode(cut).unwrap_err(), CodecError::Truncated);
    }

    #[test]
    fn empty_tree_roundtrips() {
        let t = Cct::new(3);
        let back = decode(encode(&t)).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.width(), 3);
    }

    #[test]
    fn varint_boundaries() {
        let mut buf = BytesMut::new();
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            put_varint(&mut buf, v);
        }
        let mut b = buf.freeze();
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            assert_eq!(get_varint(&mut b).unwrap(), v);
        }
    }
}
