//! Compact binary profile encoding (wire formats v1 and v2).
//!
//! Space overhead is a first-class concern in the paper (§2.2): a
//! million-thread execution must not produce terabytes of measurement
//! data, which is why the profiler keeps *profiles* (CCTs), never traces.
//! This codec is how we measure that claim: profiles serialize to a
//! LEB128-packed byte stream whose size the Table 1 reproduction reports,
//! and which the trace-vs-profile ablation compares against a
//! MemProf-style sample trace.
//!
//! Two wire formats coexist, distinguished by their magic:
//!
//! * **v1** (`DCP1`) — the original fixed layout: magic, metric width,
//!   node count; then per node (in id order, parents before children)
//!   frame tag byte, frame payload varint, parent id varint, and one
//!   varint per metric column (zeros included). Kept so profiles written
//!   before v2 existed still decode; [`encode_v1`] still produces it.
//! * **v2** (`DCP2`) — the compact default produced by [`encode`]:
//!   frame payloads are zigzag deltas against the previous payload of
//!   the same tag (call-site/statement IPs cluster, so deltas are
//!   short), parents are stored as `id - parent` (small for the chains
//!   CCTs are made of), the root record is implicit, metrics move into
//!   per-column sparse runs (interior nodes carry no metric mass and
//!   cost zero metric bytes), and an optional deduplicating string
//!   table names frames (procedures, static variables) so a profile is
//!   self-describing off the machine that produced it.
//!
//! Decoding treats its input as **untrusted bytes**: every failure mode
//! — truncation, unknown tag or flag, overflowing varint, out-of-range
//! string index, parent or node id — surfaces as a typed [`CodecError`];
//! nothing panics and no loop runs unbounded. [`ProfileReader`] exposes
//! the same decode path as a streaming event iterator so consumers (the
//! out-of-core merge in [`crate::merge`]) never materialize an input
//! tree.

use dcp_support::bytes::{Bytes, BytesMut};
use dcp_support::FxHashMap;

use crate::tree::{Cct, Frame, NodeId, ROOT};

const MAGIC_V1: u32 = 0x4443_5031; // "DCP1"
const MAGIC_V2: u32 = 0x4443_5032; // "DCP2"

/// Number of distinct frame tag values (indexes per-tag delta state).
const NUM_TAGS: usize = 6;

/// Parent distances at or above this value escape from the packed node
/// byte (high 5 bits) to an explicit varint.
const PD_ESCAPE: u32 = 31;

/// Decoders reject headers claiming more metric columns than this: the
/// column count scales every per-node allocation, and no real schema is
/// anywhere near it (the profiler's is 5).
pub const MAX_WIDTH: u64 = 256;

/// Errors from [`decode`] and [`ProfileReader`]. Every way a byte stream
/// can be malformed maps to a variant here; decoding untrusted input
/// never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The stream does not start with a known profile magic.
    BadMagic,
    /// The stream ended before the structure the header promised.
    Truncated,
    /// A frame tag byte outside the known range.
    BadFrameTag(u8),
    /// A child claimed a parent at or after itself (or outside the tree).
    BadParent,
    /// A varint ran past 64 bits.
    VarintOverflow,
    /// A v2 header carried flag bits this decoder does not know.
    BadFlags(u64),
    /// The header's metric width exceeds [`MAX_WIDTH`].
    BadWidth(u64),
    /// A count field the input cannot possibly back (node count larger
    /// than the remaining bytes, or a metric column claiming more
    /// entries than the tree has nodes).
    BadCount(u64),
    /// A string table entry is not valid UTF-8.
    BadString,
    /// A frame-name record referenced a string table slot that does not
    /// exist.
    BadStringIndex(u64),
    /// A metric record referenced a node outside the tree.
    BadNodeId(u64),
    /// The profile's metric width does not match the destination tree's.
    WidthMismatch { expected: usize, found: usize },
    /// A keyed record section (bundle names, hints) repeated a key. A
    /// well-formed producer never emits duplicates, and accepting them
    /// would let first-wins and last-wins consumers disagree on the same
    /// bytes — so the wire rejects them outright.
    DuplicateKey,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a dcp profile (bad magic)"),
            CodecError::Truncated => write!(f, "truncated profile"),
            CodecError::BadFrameTag(t) => write!(f, "unknown frame tag {t}"),
            CodecError::BadParent => write!(f, "child precedes parent"),
            CodecError::VarintOverflow => write!(f, "varint overflows 64 bits"),
            CodecError::BadFlags(v) => write!(f, "unknown header flags {v:#x}"),
            CodecError::BadWidth(w) => write!(f, "metric width {w} exceeds limit {MAX_WIDTH}"),
            CodecError::BadCount(c) => write!(f, "implausible count {c}"),
            CodecError::BadString => write!(f, "string table entry is not UTF-8"),
            CodecError::BadStringIndex(i) => write!(f, "string index {i} out of range"),
            CodecError::BadNodeId(n) => write!(f, "node id {n} out of range"),
            CodecError::WidthMismatch { expected, found } => {
                write!(f, "metric width mismatch: tree has {expected}, profile has {found}")
            }
            CodecError::DuplicateKey => write!(f, "duplicate key in a record section"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append one LEB128 varint. Public so sibling codecs (the dcp-core
/// profile bundle, the serve wire frames) share one varint dialect.
pub fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(b);
            return;
        }
        buf.put_u8(b | 0x80);
    }
}

/// Read one LEB128 varint with the hardened overflow/truncation checks.
pub fn get_varint(buf: &mut Bytes) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(CodecError::Truncated);
        }
        let b = buf.get_u8();
        // The 10th byte holds only the top bit of a u64: anything else
        // (including a continuation bit) overflows.
        if shift == 63 && b > 1 {
            return Err(CodecError::VarintOverflow);
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::VarintOverflow);
        }
    }
}

/// Map a signed delta onto the unsigned varint space (small magnitudes
/// of either sign stay short).
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Split `n` bytes off the front of `buf`, or fail without panicking.
/// Split off the next `n` bytes as a zero-copy sub-view, or fail with
/// `Truncated`. Public for sibling codecs sharing the varint dialect.
pub fn get_slice(buf: &mut Bytes, n: usize) -> Result<Bytes, CodecError> {
    if buf.remaining() < n {
        return Err(CodecError::Truncated);
    }
    let out = buf.slice(0..n);
    *buf = buf.slice(n..buf.len());
    Ok(out)
}

fn frame_parts(f: Frame) -> (u8, u64) {
    match f {
        Frame::Root => (0, 0),
        Frame::Proc(p) => (1, p),
        Frame::CallSite(ip) => (2, ip),
        Frame::Stmt(ip) => (3, ip),
        Frame::StaticVar(s) => (4, s),
        Frame::HeapMarker => (5, 0),
    }
}

fn frame_from(tag: u8, payload: u64) -> Result<Frame, CodecError> {
    Ok(match tag {
        0 => Frame::Root,
        1 => Frame::Proc(payload),
        2 => Frame::CallSite(payload),
        3 => Frame::Stmt(payload),
        4 => Frame::StaticVar(payload),
        5 => Frame::HeapMarker,
        t => return Err(CodecError::BadFrameTag(t)),
    })
}

/// Deduplicating string interner backing the v2 name section.
#[derive(Debug, Clone, Default)]
pub struct StringTable {
    strings: Vec<String>,
    index: FxHashMap<String, u32>,
}

impl StringTable {
    /// Intern `s`, returning the id of its (single) table slot.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.index.get(s) {
            return i;
        }
        let i = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.index.insert(s.to_string(), i);
        i
    }

    /// Append without deduplicating — the decode path, where ids must
    /// stay wire-faithful even if a producer wrote duplicates.
    fn push_raw(&mut self, s: &str) -> u32 {
        let i = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.index.entry(s.to_string()).or_insert(i);
        i
    }

    /// The string at slot `i`.
    pub fn get(&self, i: u32) -> Option<&str> {
        self.strings.get(i as usize).map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// All strings in slot order.
    pub fn strings(&self) -> &[String] {
        &self.strings
    }
}

/// Display names attached to frames of a profile — the v2 name section.
/// Procedure and static-variable frames carry opaque `u64` handles that
/// only resolve against the producing program's symbol tables; naming
/// them at encode time makes a profile self-describing post-mortem.
#[derive(Debug, Clone, Default)]
pub struct ProfileNames {
    table: StringTable,
    frames: FxHashMap<Frame, u32>,
}

impl ProfileNames {
    /// Name `frame` (interned; naming many frames with one string costs
    /// the string once).
    pub fn name(&mut self, frame: Frame, name: &str) {
        let id = self.table.intern(name);
        self.frames.insert(frame, id);
    }

    /// The name attached to `frame`, if any.
    pub fn lookup(&self, frame: Frame) -> Option<&str> {
        self.frames.get(&frame).and_then(|&i| self.table.get(i))
    }

    /// The backing string table.
    pub fn table(&self) -> &StringTable {
        &self.table
    }

    /// Number of named frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

/// Serialize a CCT to the compact v2 byte representation (no names).
pub fn encode(cct: &Cct) -> Bytes {
    encode_named(cct, &ProfileNames::default())
}

/// Serialize a CCT to v2 with a frame-name section.
pub fn encode_named(cct: &Cct, names: &ProfileNames) -> Bytes {
    let width = cct.width();
    let len = cct.len() as u32;
    let mut buf = BytesMut::with_capacity(cct.len() * 4 + 16);
    buf.put_u32(MAGIC_V2);
    put_varint(&mut buf, 0); // flags (none defined yet)
    put_varint(&mut buf, width as u64);
    put_varint(&mut buf, len as u64);

    // String table; dedup happened at intern time.
    put_varint(&mut buf, names.table.strings.len() as u64);
    for s in &names.table.strings {
        put_varint(&mut buf, s.len() as u64);
        buf.put_slice(s.as_bytes());
    }
    // Frame-name records, sorted so the byte stream is deterministic.
    let mut frames: Vec<(Frame, u32)> = names.frames.iter().map(|(&f, &i)| (f, i)).collect();
    frames.sort();
    put_varint(&mut buf, frames.len() as u64);
    for (f, sid) in frames {
        let (tag, payload) = frame_parts(f);
        buf.put_u8(tag);
        put_varint(&mut buf, payload);
        put_varint(&mut buf, sid as u64);
    }

    // Node topology (root implicit). Each record leads with one packed
    // byte: tag in the low 3 bits, parent distance `id - parent` in the
    // high 5 bits (1..=30 inline; 31 escapes to a trailing varint; 0 is
    // invalid since the distance is always positive). Then the payload
    // as a zigzag delta against the previous payload of the same tag.
    let mut last = [0u64; NUM_TAGS];
    for id in 1..len {
        let n = NodeId(id);
        let (tag, payload) = frame_parts(cct.frame(n));
        let pd = id - cct.parent(n).0;
        buf.put_u8(tag | (pd.min(PD_ESCAPE) as u8) << 3);
        let d = (payload as i64).wrapping_sub(last[tag as usize] as i64);
        put_varint(&mut buf, zigzag(d));
        last[tag as usize] = payload;
        if pd >= PD_ESCAPE {
            put_varint(&mut buf, pd as u64);
        }
    }

    // Sparse metric columns: per column, entry count then ascending
    // (id-delta, value) runs. Zero cells cost nothing.
    for m in 0..width {
        let nnz = (0..len).filter(|&i| cct.metrics(NodeId(i))[m] != 0).count();
        put_varint(&mut buf, nnz as u64);
        let mut prev = 0u32;
        let mut first = true;
        for id in 0..len {
            let v = cct.metrics(NodeId(id))[m];
            if v == 0 {
                continue;
            }
            put_varint(&mut buf, if first { id } else { id - prev } as u64);
            first = false;
            prev = id;
            put_varint(&mut buf, v);
        }
    }
    buf.freeze()
}

/// Serialize a CCT to the legacy v1 byte representation.
pub fn encode_v1(cct: &Cct) -> Bytes {
    let mut buf = BytesMut::with_capacity(cct.len() * 8);
    buf.put_u32(MAGIC_V1);
    put_varint(&mut buf, cct.width() as u64);
    put_varint(&mut buf, cct.len() as u64);
    for id in 0..cct.len() as u32 {
        let n = NodeId(id);
        let (tag, payload) = frame_parts(cct.frame(n));
        buf.put_u8(tag);
        put_varint(&mut buf, payload);
        put_varint(&mut buf, cct.parent(n).0 as u64);
        for &m in cct.metrics(n) {
            put_varint(&mut buf, m);
        }
    }
    buf.freeze()
}

/// One decoded topology record: node `id` is the child of `parent`
/// (already yielded) labeled `frame`. The root (id 0) is implicit and
/// never yielded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRecord {
    pub id: u32,
    pub frame: Frame,
    pub parent: u32,
}

/// One decoded metric cell: add `value` to column `metric` of `node`.
/// Zero cells are never yielded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricRecord {
    pub node: u32,
    pub metric: u32,
    pub value: u64,
}

/// The streaming decode event. For any version, a node's `Node` event
/// precedes every `Metric` event that references it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileEvent {
    Node(NodeRecord),
    Metric(MetricRecord),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReadState {
    Nodes,
    Columns,
    Done,
}

/// Streaming profile decoder: parses the header (and, for v2, the name
/// section) eagerly, then yields [`ProfileEvent`]s one record at a time
/// without ever materializing the tree. Both wire formats stream; the
/// out-of-core merge and [`decode`] are built on it.
pub struct ProfileReader {
    buf: Bytes,
    version: u8,
    width: usize,
    count: u32,
    names: ProfileNames,
    state: ReadState,
    next_id: u32,
    // v1 interleaved metric cursor.
    cur_node: u32,
    cols_left: usize,
    // v2 per-tag payload delta state.
    last_payload: [u64; NUM_TAGS],
    // v2 sparse-column cursor.
    col: usize,
    col_open: bool,
    col_left: u64,
    col_prev: u32,
    col_first: bool,
}

impl ProfileReader {
    /// Parse the header of an encoded profile (either wire version).
    pub fn new(buf: Bytes) -> Result<Self, CodecError> {
        Self::new_inner(buf, true)
    }

    /// Header parse shared by [`new`](Self::new) and [`validate`]. With
    /// `collect_names` off, the v2 name section is walked with the exact
    /// same checks (lengths, UTF-8, string-index bounds) but nothing is
    /// stored — no string, no map entry — so a validate-only pass never
    /// allocates per record. The accept/reject behavior is identical by
    /// construction: both modes run this one loop.
    fn new_inner(mut buf: Bytes, collect_names: bool) -> Result<Self, CodecError> {
        if buf.remaining() < 4 {
            return Err(CodecError::BadMagic);
        }
        let version = match buf.get_u32() {
            MAGIC_V1 => 1,
            MAGIC_V2 => 2,
            _ => return Err(CodecError::BadMagic),
        };
        if version == 2 {
            let flags = get_varint(&mut buf)?;
            if flags != 0 {
                return Err(CodecError::BadFlags(flags));
            }
        }
        let w = get_varint(&mut buf)?;
        if w > MAX_WIDTH {
            return Err(CodecError::BadWidth(w));
        }
        let width = w as usize;
        let c = get_varint(&mut buf)?;
        // Every node after the root costs at least one wire byte, so a
        // count the input cannot back is rejected before any allocation
        // is sized from it.
        if c > u32::MAX as u64 || c.saturating_sub(1) > buf.remaining() as u64 {
            return Err(CodecError::BadCount(c));
        }
        let count = c as u32;

        let mut names = ProfileNames::default();
        if version == 2 {
            let sc = get_varint(&mut buf)?;
            if sc > buf.remaining() as u64 {
                return Err(CodecError::Truncated);
            }
            let mut strings = 0u64;
            for _ in 0..sc {
                let len = get_varint(&mut buf)?;
                if len > buf.remaining() as u64 {
                    return Err(CodecError::Truncated);
                }
                let raw = get_slice(&mut buf, len as usize)?;
                let s = std::str::from_utf8(raw.as_slice()).map_err(|_| CodecError::BadString)?;
                if collect_names {
                    names.table.push_raw(s);
                }
                strings += 1;
            }
            let nc = get_varint(&mut buf)?;
            if nc > buf.remaining() as u64 {
                return Err(CodecError::Truncated);
            }
            for _ in 0..nc {
                if !buf.has_remaining() {
                    return Err(CodecError::Truncated);
                }
                let tag = buf.get_u8();
                let payload = get_varint(&mut buf)?;
                let sid = get_varint(&mut buf)?;
                let frame = frame_from(tag, payload)?;
                if sid >= strings {
                    return Err(CodecError::BadStringIndex(sid));
                }
                if collect_names {
                    names.frames.insert(frame, sid as u32);
                }
            }
        }

        Ok(Self {
            buf,
            version,
            width,
            count,
            names,
            state: ReadState::Nodes,
            // v1 streams the root's record; v2 leaves the root implicit.
            next_id: if version == 1 { 0 } else { 1 },
            cur_node: 0,
            cols_left: 0,
            last_payload: [0; NUM_TAGS],
            col: 0,
            col_open: false,
            col_left: 0,
            col_prev: 0,
            col_first: true,
        })
    }

    /// Metric columns per node.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total node count (including the implicit root).
    pub fn node_count(&self) -> usize {
        self.count as usize
    }

    /// Wire format version (1 or 2).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Frame names carried by the profile (empty for v1).
    pub fn names(&self) -> &ProfileNames {
        &self.names
    }

    /// Take ownership of the frame names.
    pub fn into_names(self) -> ProfileNames {
        self.names
    }

    /// The next decode event, `Ok(None)` at a clean end of stream.
    pub fn next_event(&mut self) -> Result<Option<ProfileEvent>, CodecError> {
        loop {
            match self.state {
                ReadState::Done => return Ok(None),
                ReadState::Nodes if self.version == 1 => {
                    if self.cols_left > 0 {
                        let metric = (self.width - self.cols_left) as u32;
                        self.cols_left -= 1;
                        let value = get_varint(&mut self.buf)?;
                        if value != 0 {
                            return Ok(Some(ProfileEvent::Metric(MetricRecord {
                                node: self.cur_node,
                                metric,
                                value,
                            })));
                        }
                        continue;
                    }
                    if self.next_id >= self.count {
                        self.state = ReadState::Done;
                        continue;
                    }
                    let id = self.next_id;
                    self.next_id += 1;
                    if !self.buf.has_remaining() {
                        return Err(CodecError::Truncated);
                    }
                    let tag = self.buf.get_u8();
                    let payload = get_varint(&mut self.buf)?;
                    let frame = frame_from(tag, payload)?;
                    let parent = get_varint(&mut self.buf)?;
                    if id > 0 && parent >= id as u64 {
                        return Err(CodecError::BadParent);
                    }
                    self.cur_node = id;
                    self.cols_left = self.width;
                    if id == 0 {
                        // The root exists in every tree; only its
                        // metrics are interesting.
                        continue;
                    }
                    return Ok(Some(ProfileEvent::Node(NodeRecord {
                        id,
                        frame,
                        parent: parent as u32,
                    })));
                }
                ReadState::Nodes => {
                    if self.next_id >= self.count {
                        self.state = ReadState::Columns;
                        continue;
                    }
                    let id = self.next_id;
                    self.next_id += 1;
                    if !self.buf.has_remaining() {
                        return Err(CodecError::Truncated);
                    }
                    let packed = self.buf.get_u8();
                    let tag = packed & 0x07;
                    if tag as usize >= NUM_TAGS {
                        return Err(CodecError::BadFrameTag(tag));
                    }
                    let d = unzigzag(get_varint(&mut self.buf)?);
                    let payload = (self.last_payload[tag as usize] as i64).wrapping_add(d) as u64;
                    self.last_payload[tag as usize] = payload;
                    let frame = frame_from(tag, payload)?;
                    let pd = match (packed >> 3) as u32 {
                        0 => return Err(CodecError::BadParent),
                        PD_ESCAPE => get_varint(&mut self.buf)?,
                        inline => inline as u64,
                    };
                    if pd == 0 || pd > id as u64 {
                        return Err(CodecError::BadParent);
                    }
                    return Ok(Some(ProfileEvent::Node(NodeRecord {
                        id,
                        frame,
                        parent: id - pd as u32,
                    })));
                }
                ReadState::Columns => {
                    if self.col >= self.width {
                        self.state = ReadState::Done;
                        continue;
                    }
                    if !self.col_open {
                        let nnz = get_varint(&mut self.buf)?;
                        if nnz > self.count as u64 {
                            return Err(CodecError::BadCount(nnz));
                        }
                        self.col_open = true;
                        self.col_left = nnz;
                        self.col_first = true;
                        self.col_prev = 0;
                    }
                    if self.col_left == 0 {
                        self.col += 1;
                        self.col_open = false;
                        continue;
                    }
                    self.col_left -= 1;
                    let d = get_varint(&mut self.buf)?;
                    let node = if self.col_first {
                        d
                    } else {
                        if d == 0 {
                            return Err(CodecError::BadNodeId(d));
                        }
                        (self.col_prev as u64).checked_add(d).ok_or(CodecError::BadNodeId(d))?
                    };
                    if node >= self.count as u64 {
                        return Err(CodecError::BadNodeId(node));
                    }
                    self.col_first = false;
                    self.col_prev = node as u32;
                    let value = get_varint(&mut self.buf)?;
                    return Ok(Some(ProfileEvent::Metric(MetricRecord {
                        node: node as u32,
                        metric: self.col as u32,
                        value,
                    })));
                }
            }
        }
    }
}

impl Iterator for ProfileReader {
    type Item = Result<ProfileEvent, CodecError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_event() {
            Ok(Some(ev)) => Some(Ok(ev)),
            Ok(None) => None,
            Err(e) => {
                self.state = ReadState::Done;
                Some(Err(e))
            }
        }
    }
}

/// Replay a reader's events into `acc` (which must match its width).
/// Nodes stream in wire order — the producer's creation order — so
/// replaying into a fresh tree reproduces it id-for-id, and replaying
/// into a non-empty accumulator is exactly a merge.
fn absorb(acc: &mut Cct, reader: &mut ProfileReader) -> Result<(), CodecError> {
    debug_assert_eq!(acc.width(), reader.width());
    // wire id -> accumulator id. The root always maps to the root.
    let mut map: Vec<u32> = Vec::with_capacity(reader.node_count().min(1 << 16));
    map.push(ROOT.0);
    while let Some(ev) = reader.next_event()? {
        match ev {
            ProfileEvent::Node(n) => {
                debug_assert_eq!(n.id as usize, map.len(), "wire ids are dense and in order");
                let parent = map.get(n.parent as usize).copied().ok_or(CodecError::BadParent)?;
                map.push(acc.child(NodeId(parent), n.frame).0);
            }
            ProfileEvent::Metric(m) => {
                let node =
                    map.get(m.node as usize).copied().ok_or(CodecError::BadNodeId(m.node as u64))?;
                acc.add(NodeId(node), m.metric as usize, m.value);
            }
        }
    }
    Ok(())
}

/// Deserialize a profile produced by [`encode`] (v2) or [`encode_v1`].
pub fn decode(bytes: Bytes) -> Result<Cct, CodecError> {
    let mut reader = ProfileReader::new(bytes)?;
    let mut cct = Cct::new(reader.width());
    absorb(&mut cct, &mut reader)?;
    Ok(cct)
}

/// Deserialize a profile together with its frame names (empty for v1).
pub fn decode_named(bytes: Bytes) -> Result<(Cct, ProfileNames), CodecError> {
    let mut reader = ProfileReader::new(bytes)?;
    let mut cct = Cct::new(reader.width());
    absorb(&mut cct, &mut reader)?;
    Ok((cct, reader.into_names()))
}

/// Merge an encoded profile into `acc` by streaming its records — the
/// out-of-core building block: the input tree is never materialized.
pub fn merge_into(acc: &mut Cct, bytes: Bytes) -> Result<(), CodecError> {
    let mut reader = ProfileReader::new(bytes)?;
    if reader.width() != acc.width() {
        return Err(CodecError::WidthMismatch { expected: acc.width(), found: reader.width() });
    }
    absorb(acc, &mut reader)
}

/// The header facts a [`validate`] walk surfaces without decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileSummary {
    /// Wire format version (1 or 2).
    pub version: u8,
    /// Metric columns per node.
    pub width: usize,
    /// Total node count (including the implicit root).
    pub nodes: usize,
}

/// Check an untrusted encoded profile without materializing anything:
/// the header is parsed in validate-only mode (name strings are
/// UTF-8- and bounds-checked but never stored) and every node/metric
/// record is driven through [`ProfileReader::next_event`] — the same
/// parse loop [`decode`] runs — with the events discarded. Zero nodes
/// are built and no per-node or per-string allocation happens.
///
/// `validate(b).is_ok() == decode(b).is_ok()`, with equal errors, for
/// every input: both run the identical reader loop, and the only checks
/// `decode` adds on top (the id lookups in its replay map) are
/// unreachable because the reader already enforces dense in-order node
/// ids, parents strictly before children, and metric node ids below the
/// header count. The robustness suite grinds this equivalence over
/// truncations, bit flips, and random bytes.
pub fn validate(bytes: Bytes) -> Result<ProfileSummary, CodecError> {
    let mut reader = ProfileReader::new_inner(bytes, false)?;
    while reader.next_event()?.is_some() {}
    Ok(ProfileSummary {
        version: reader.version(),
        width: reader.width(),
        nodes: reader.node_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> Cct {
        let mut t = Cct::new(2);
        let v = t.child(ROOT, Frame::StaticVar(7));
        let a = t.insert_path_at(v, [Frame::Proc(1), Frame::CallSite(0x10002), Frame::Stmt(0x10007)]);
        t.add(a, 0, 123456);
        t.add(a, 1, 3);
        let h = t.child(ROOT, Frame::HeapMarker);
        let b = t.insert_path_at(h, [Frame::Proc(1), Frame::Stmt(0x10009)]);
        t.add(b, 0, 42);
        t
    }

    #[test]
    fn roundtrip_preserves_canonical_form() {
        let t = sample_tree();
        for bytes in [encode(&t), encode_v1(&t)] {
            let back = decode(bytes).expect("decodes");
            assert_eq!(t.canonical(), back.canonical());
            assert_eq!(t.len(), back.len());
            assert_eq!(t.width(), back.width());
        }
    }

    #[test]
    fn v2_reencode_is_byte_identical() {
        // decode reproduces the producer's node ids exactly, so
        // re-encoding yields the identical stream.
        let t = sample_tree();
        let bytes = encode(&t);
        let back = decode(bytes.clone()).unwrap();
        assert_eq!(encode(&back), bytes);
    }

    #[test]
    fn encoding_is_compact() {
        // A 1000-node chain with small metrics must stay well under
        // 16 bytes/node (the varints do their job).
        let mut t = Cct::new(1);
        let mut cur = ROOT;
        for i in 0..1000u64 {
            cur = t.child(cur, Frame::CallSite(i));
            t.add(cur, 0, i % 5);
        }
        let v1 = encode_v1(&t);
        assert!(v1.len() < 16 * 1000, "v1 profile too large: {} bytes", v1.len());
        // v2's delta payloads and sparse metrics beat v1 on the same tree.
        let v2 = encode(&t);
        assert!(v2.len() < v1.len(), "v2 ({}) not smaller than v1 ({})", v2.len(), v1.len());
    }

    #[test]
    fn v2_is_much_smaller_on_wide_sparse_trees() {
        // Realistic shape: 5 metric columns, metric mass only at leaves,
        // clustered IPs. This is where the sparse columns + deltas pay.
        let mut t = Cct::new(5);
        for p in 0..8u64 {
            for leaf in 0..64u64 {
                let n = t.insert_path(
                    [
                        Frame::Proc(p),
                        Frame::CallSite(0x4000_0000 + p * 0x100 + leaf),
                        Frame::Stmt(0x4000_8000 + p * 0x100 + leaf),
                    ],
                    0,
                    leaf + 1,
                );
                t.add(n, 1, 100 + leaf);
            }
        }
        let v1 = encode_v1(&t).len();
        let v2 = encode(&t).len();
        assert!(
            (v2 as f64) <= 0.6 * v1 as f64,
            "v2 ({v2} B) must be >= 40% smaller than v1 ({v1} B)"
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = Bytes::from_static(b"nope");
        assert_eq!(decode(bytes).unwrap_err(), CodecError::BadMagic);
        assert_eq!(decode(Bytes::from_static(b"")).unwrap_err(), CodecError::BadMagic);
    }

    #[test]
    fn truncated_rejected() {
        let t = sample_tree();
        for full in [encode(&t), encode_v1(&t)] {
            let cut = full.slice(0..full.len() - 3);
            assert_eq!(decode(cut).unwrap_err(), CodecError::Truncated);
        }
    }

    #[test]
    fn empty_tree_roundtrips() {
        let t = Cct::new(3);
        for bytes in [encode(&t), encode_v1(&t)] {
            let back = decode(bytes).unwrap();
            assert!(back.is_empty());
            assert_eq!(back.width(), 3);
        }
    }

    #[test]
    fn varint_boundaries() {
        let mut buf = BytesMut::new();
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            put_varint(&mut buf, v);
        }
        let mut b = buf.freeze();
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            assert_eq!(get_varint(&mut b).unwrap(), v);
        }
    }

    #[test]
    fn overlong_varint_rejected() {
        // 11 continuation bytes: runs past 64 bits.
        let mut buf = BytesMut::new();
        for _ in 0..11 {
            buf.put_u8(0xff);
        }
        assert_eq!(get_varint(&mut buf.freeze()).unwrap_err(), CodecError::VarintOverflow);
        // Exactly 10 bytes but with payload bits above bit 63.
        let mut buf = BytesMut::new();
        for _ in 0..9 {
            buf.put_u8(0x80);
        }
        buf.put_u8(0x02);
        assert_eq!(get_varint(&mut buf.freeze()).unwrap_err(), CodecError::VarintOverflow);
    }

    #[test]
    fn zigzag_roundtrips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 0x7fff_ffff, -0x8000_0000] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes of either sign stay small on the wire.
        assert!(zigzag(-3) < 8);
        assert!(zigzag(3) < 8);
    }

    #[test]
    fn unknown_flags_rejected() {
        let t = sample_tree();
        let good = encode(&t);
        let mut buf = BytesMut::new();
        buf.put_u32(0x4443_5032);
        put_varint(&mut buf, 0x40); // unknown flag bit
        buf.put_slice(&good.as_slice()[5..]);
        assert_eq!(decode(buf.freeze()).unwrap_err(), CodecError::BadFlags(0x40));
    }

    #[test]
    fn hostile_width_and_count_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(0x4443_5032);
        put_varint(&mut buf, 0);
        put_varint(&mut buf, 1 << 20); // absurd width
        put_varint(&mut buf, 1);
        assert_eq!(decode(buf.freeze()).unwrap_err(), CodecError::BadWidth(1 << 20));

        let mut buf = BytesMut::new();
        buf.put_u32(0x4443_5032);
        put_varint(&mut buf, 0);
        put_varint(&mut buf, 2);
        put_varint(&mut buf, u64::MAX); // node count no input could back
        assert_eq!(decode(buf.freeze()).unwrap_err(), CodecError::BadCount(u64::MAX));
    }

    #[test]
    fn string_table_dedups_and_roundtrips() {
        let mut names = ProfileNames::default();
        names.name(Frame::Proc(1), "hypre_CAlloc");
        names.name(Frame::Proc(2), "hypre_CAlloc"); // same string, one slot
        names.name(Frame::StaticVar(7), "f_élem_π"); // non-ASCII survives
        assert_eq!(names.table().len(), 2);

        let t = sample_tree();
        let bytes = encode_named(&t, &names);
        let (back, got) = decode_named(bytes.clone()).unwrap();
        assert_eq!(t.canonical(), back.canonical());
        assert_eq!(got.lookup(Frame::Proc(1)), Some("hypre_CAlloc"));
        assert_eq!(got.lookup(Frame::Proc(2)), Some("hypre_CAlloc"));
        assert_eq!(got.lookup(Frame::StaticVar(7)), Some("f_élem_π"));
        assert_eq!(got.lookup(Frame::HeapMarker), None);

        // The reader exposes the same names without materializing a tree.
        let reader = ProfileReader::new(bytes).unwrap();
        assert_eq!(reader.names().lookup(Frame::Proc(1)), Some("hypre_CAlloc"));
    }

    #[test]
    fn bad_string_index_rejected() {
        // Hand-build a v2 header whose single name record points past
        // the (empty) string table.
        let mut buf = BytesMut::new();
        buf.put_u32(0x4443_5032);
        put_varint(&mut buf, 0); // flags
        put_varint(&mut buf, 1); // width
        put_varint(&mut buf, 1); // count (root only)
        put_varint(&mut buf, 0); // strings: none
        put_varint(&mut buf, 1); // names: one record
        buf.put_u8(1); // Proc
        put_varint(&mut buf, 0); // payload
        put_varint(&mut buf, 9); // string id 9: out of range
        assert_eq!(decode(buf.freeze()).unwrap_err(), CodecError::BadStringIndex(9));
    }

    #[test]
    fn invalid_utf8_string_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(0x4443_5032);
        put_varint(&mut buf, 0);
        put_varint(&mut buf, 1);
        put_varint(&mut buf, 1);
        put_varint(&mut buf, 1); // one string
        put_varint(&mut buf, 2); // of length 2
        buf.put_slice(&[0xff, 0xfe]); // not UTF-8
        put_varint(&mut buf, 0); // no names
        assert_eq!(decode(buf.freeze()).unwrap_err(), CodecError::BadString);
    }

    #[test]
    fn width_mismatch_detected_when_merging() {
        let t = sample_tree(); // width 2
        let mut acc = Cct::new(3);
        assert_eq!(
            merge_into(&mut acc, encode(&t)).unwrap_err(),
            CodecError::WidthMismatch { expected: 3, found: 2 }
        );
    }

    #[test]
    fn validate_reports_header_facts_and_agrees_with_decode() {
        let t = sample_tree();
        for bytes in [encode(&t), encode_v1(&t)] {
            let s = validate(bytes.clone()).expect("corpus is valid");
            assert_eq!(s.width, t.width());
            assert_eq!(s.nodes, t.len());
            assert_eq!(s.version, if bytes.as_slice()[3] == b'2' { 2 } else { 1 });
            // Same verdict, same error, at every truncation point.
            for cut in 0..bytes.len() {
                let v = validate(bytes.slice(0..cut));
                let d = decode(bytes.slice(0..cut)).map(|_| ());
                assert_eq!(v.clone().map(|_| ()), d, "cut {cut}");
                assert_eq!(v.err(), d.err(), "cut {cut}");
            }
        }
        let named = {
            let mut names = ProfileNames::default();
            names.name(Frame::Proc(1), "p_one");
            encode_named(&t, &names)
        };
        assert!(validate(named).is_ok());
    }

    #[test]
    fn streaming_reader_yields_nodes_before_their_metrics() {
        let t = sample_tree();
        for bytes in [encode(&t), encode_v1(&t)] {
            let reader = ProfileReader::new(bytes).unwrap();
            let mut seen = vec![true]; // root is implicit
            let mut metrics = 0;
            for ev in reader {
                match ev.unwrap() {
                    ProfileEvent::Node(n) => {
                        assert_eq!(n.id as usize, seen.len(), "dense, in-order ids");
                        assert!((n.parent as usize) < seen.len(), "parent before child");
                        seen.push(true);
                    }
                    ProfileEvent::Metric(m) => {
                        assert!((m.node as usize) < seen.len(), "metric after its node");
                        assert!(m.value > 0, "zero cells are never yielded");
                        metrics += 1;
                    }
                }
            }
            assert_eq!(seen.len(), t.len());
            assert_eq!(metrics, 3, "three nonzero metric cells in the sample tree");
        }
    }

    #[test]
    fn merge_into_accumulates_across_profiles() {
        let t = sample_tree();
        let mut acc = Cct::new(2);
        merge_into(&mut acc, encode(&t)).unwrap();
        merge_into(&mut acc, encode_v1(&t)).unwrap();
        assert_eq!(acc.total(0), 2 * t.total(0));
        assert_eq!(acc.total(1), 2 * t.total(1));
        assert_eq!(acc.len(), t.len(), "identical paths coalesce");
    }
}
