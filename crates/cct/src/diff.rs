//! Differential profiles: compare two CCTs path-by-path.
//!
//! The workflow the paper's case studies imply — measure, fix, measure
//! again — needs a way to see *what changed*. A differential profile
//! aligns two trees on their canonical paths and reports per-path metric
//! deltas, so "the remote accesses to `block` disappeared and nothing
//! else regressed" is a query, not an eyeball job.

use dcp_support::FxHashMap;

use crate::tree::{Cct, Frame};

/// One aligned path with its metric values in both profiles.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    pub path: Vec<Frame>,
    /// Exclusive metrics in the "before" profile (zeros if absent).
    pub before: Vec<u64>,
    /// Exclusive metrics in the "after" profile (zeros if absent).
    pub after: Vec<u64>,
}

impl DiffEntry {
    /// Signed change of metric `m` (after - before).
    pub fn delta(&self, m: usize) -> i64 {
        self.after[m] as i64 - self.before[m] as i64
    }
}

/// A full structural diff of two profiles.
#[derive(Debug)]
pub struct ProfileDiff {
    pub width: usize,
    pub entries: Vec<DiffEntry>,
}

impl ProfileDiff {
    /// Total signed change of metric `m` across all paths.
    pub fn total_delta(&self, m: usize) -> i64 {
        self.entries.iter().map(|e| e.delta(m)).sum()
    }

    /// Entries sorted by the magnitude of their change in metric `m`,
    /// largest first.
    pub fn ranked(&self, m: usize) -> Vec<&DiffEntry> {
        let mut v: Vec<&DiffEntry> = self.entries.iter().collect();
        v.sort_by_key(|e| std::cmp::Reverse(e.delta(m).unsigned_abs()));
        v
    }

    /// Paths that only exist in the "after" profile (new behaviour).
    pub fn appeared(&self) -> impl Iterator<Item = &DiffEntry> {
        self.entries.iter().filter(|e| e.before.iter().all(|&v| v == 0))
    }

    /// Paths that only exist in the "before" profile (removed behaviour).
    pub fn disappeared(&self) -> impl Iterator<Item = &DiffEntry> {
        self.entries.iter().filter(|e| e.after.iter().all(|&v| v == 0))
    }
}

/// Diff two profiles. Only paths carrying metric mass in either tree
/// appear; entries are ordered by path for determinism.
///
/// # Panics
/// Panics if the metric widths differ.
pub fn diff(before: &Cct, after: &Cct) -> ProfileDiff {
    assert_eq!(before.width(), after.width(), "metric width mismatch");
    let width = before.width();
    let mut map: FxHashMap<Vec<Frame>, (Vec<u64>, Vec<u64>)> = FxHashMap::default();
    for (path, metrics) in before.canonical() {
        map.entry(path).or_insert_with(|| (vec![0; width], vec![0; width])).0 = metrics;
    }
    for (path, metrics) in after.canonical() {
        map.entry(path).or_insert_with(|| (vec![0; width], vec![0; width])).1 = metrics;
    }
    let mut entries: Vec<DiffEntry> = map
        .into_iter()
        .map(|(path, (b, a))| DiffEntry { path, before: b, after: a })
        .collect();
    entries.sort_by(|x, y| x.path.cmp(&y.path));
    ProfileDiff { width, entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(paths: &[(&[u64], u64)]) -> Cct {
        let mut t = Cct::new(1);
        for (ids, v) in paths {
            let frames: Vec<Frame> = ids.iter().map(|&i| Frame::CallSite(i)).collect();
            t.insert_path(frames, 0, *v);
        }
        t
    }

    #[test]
    fn identical_trees_have_zero_deltas() {
        let a = tree(&[(&[1, 2], 10), (&[3], 4)]);
        let b = tree(&[(&[1, 2], 10), (&[3], 4)]);
        let d = diff(&a, &b);
        assert_eq!(d.total_delta(0), 0);
        assert!(d.entries.iter().all(|e| e.delta(0) == 0));
    }

    #[test]
    fn deltas_and_totals() {
        let before = tree(&[(&[1, 2], 10), (&[3], 4)]);
        let after = tree(&[(&[1, 2], 3), (&[4], 7)]);
        let d = diff(&before, &after);
        assert_eq!(d.total_delta(0), (3 + 7) as i64 - (10 + 4) as i64);
        let ranked = d.ranked(0);
        // Largest magnitude first: [1,2] changed by -7, [4] by +7, [3] by -4.
        assert_eq!(ranked[0].delta(0).unsigned_abs(), 7);
        assert_eq!(ranked[2].delta(0), -4);
    }

    #[test]
    fn appeared_and_disappeared() {
        let before = tree(&[(&[1], 5)]);
        let after = tree(&[(&[2], 6)]);
        let d = diff(&before, &after);
        let gone: Vec<_> = d.disappeared().collect();
        let new: Vec<_> = d.appeared().collect();
        assert_eq!(gone.len(), 1);
        assert_eq!(gone[0].path, vec![Frame::CallSite(1)]);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].path, vec![Frame::CallSite(2)]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let a = Cct::new(1);
        let b = Cct::new(2);
        let _ = diff(&a, &b);
    }
}
