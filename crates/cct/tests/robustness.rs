//! Decoder robustness sweep (fuzz-style, deterministic seeds).
//!
//! The codec's hardening claim is absolute: *no* crafted input makes the
//! decoder panic or loop — every malformed stream surfaces as a typed
//! `Err(CodecError)`. These tests grind that claim against a corpus of
//! valid profiles mutated three ways: truncation at every byte offset,
//! single-bit flips at every position, and outright random bytes behind
//! a valid magic. Everything is seeded deterministically, so a failure
//! here is a reproduction recipe, not a flake.

use dcp_cct::{
    decode, encode, encode_named, encode_v1, validate, Cct, CodecError, Frame, ProfileNames, ROOT,
};
use dcp_support::bytes::{Bytes, BytesMut};
use dcp_support::rng::SmallRng;

/// Deterministic pseudo-random profile: `seed` fixes shape, payload
/// spread, and metric sparsity.
fn random_profile(seed: u64) -> Cct {
    let mut g = SmallRng::seed_from_u64(seed);
    let width = g.gen_range(1usize..6);
    let mut t = Cct::new(width);
    let paths = g.gen_range(0usize..30);
    for _ in 0..paths {
        let depth = g.gen_range(1usize..10);
        let mut cur = ROOT;
        for _ in 0..depth {
            let frame = match g.gen_range(0u32..5) {
                0 => Frame::Proc(g.gen_range(0u64..8)),
                1 => Frame::CallSite(g.next_u64() >> g.gen_range(0u32..40)),
                2 => Frame::Stmt(g.next_u64() >> g.gen_range(0u32..40)),
                3 => Frame::StaticVar(g.gen_range(0u64..16)),
                _ => Frame::HeapMarker,
            };
            cur = t.child(cur, frame);
        }
        if g.gen_bool(0.7) {
            t.add(cur, g.gen_range(0usize..width), g.next_u64() >> g.gen_range(0u32..56));
        }
    }
    t
}

/// A corpus of encoded profiles covering both wire versions, named and
/// unnamed, degenerate and deep.
fn corpus() -> Vec<Bytes> {
    let mut out = Vec::new();
    for seed in 0..8u64 {
        let t = random_profile(seed);
        out.push(encode(&t));
        out.push(encode_v1(&t));
    }
    // Empty tree, both versions.
    out.push(encode(&Cct::new(3)));
    out.push(encode_v1(&Cct::new(3)));
    // Named profile: exercises the string-table sections.
    let t = random_profile(99);
    let mut names = ProfileNames::default();
    for p in 0..8u64 {
        names.name(Frame::Proc(p), &format!("proc_{p}_π"));
    }
    names.name(Frame::StaticVar(3), "theglobal");
    out.push(encode_named(&t, &names));
    out
}

#[test]
fn every_truncation_is_a_typed_error() {
    // Every byte of a valid stream is load-bearing: any strict prefix
    // must fail to decode (and must fail with an error, not a panic).
    for bytes in corpus() {
        for cut in 0..bytes.len() {
            let err = match decode(bytes.slice(0..cut)) {
                Ok(_) => panic!("decode accepted a {cut}-byte prefix of a {}-byte profile", bytes.len()),
                Err(e) => e,
            };
            // Typed, never a catch-all: truncation inside the magic is
            // BadMagic, anywhere later is Truncated — except when the
            // cut starves the header's node count, which trips the
            // can't-possibly-back-this-count plausibility guard first.
            assert!(
                matches!(
                    err,
                    CodecError::Truncated | CodecError::BadMagic | CodecError::BadCount(_)
                ),
                "unexpected error {err:?} at cut {cut}"
            );
        }
        // Sanity: the untruncated stream decodes.
        decode(bytes).expect("corpus entries are valid");
    }
}

#[test]
fn every_single_bit_flip_is_handled() {
    // Flip each bit of each byte of each corpus profile. The decoder
    // may accept the mutation (a flipped metric value is still a valid
    // profile) but must never panic, hang, or mis-type an error; flips
    // inside the 4-byte magic must always be rejected, because the v1
    // and v2 magics differ in two bits — no single flip converts one
    // valid header into the other.
    for bytes in corpus() {
        for pos in 0..bytes.len() {
            for bit in 0..8u8 {
                let mut mutated = bytes.as_slice().to_vec();
                mutated[pos] ^= 1 << bit;
                let mut buf = BytesMut::with_capacity(mutated.len());
                buf.put_slice(&mutated);
                let result = decode(buf.freeze());
                if pos < 4 {
                    assert_eq!(
                        result.expect_err("flipped magic must be rejected"),
                        CodecError::BadMagic,
                        "flip at byte {pos} bit {bit}"
                    );
                }
                // Past the magic: Ok or any Err is fine — reaching this
                // line at all is the assertion (no panic, no hang).
            }
        }
    }
}

#[test]
fn random_bytes_behind_a_valid_magic_never_panic() {
    // Pure fuzz: a valid v1 or v2 magic followed by garbage. 4096
    // deterministic cases per version.
    for (case, magic) in [(0u64, 0x4443_5031u32), (1, 0x4443_5032)] {
        let mut g = SmallRng::seed_from_u64(0xdcb0 + case);
        for _ in 0..4096 {
            let len = g.gen_range(0usize..200);
            let mut buf = BytesMut::with_capacity(len + 4);
            buf.put_u32(magic);
            for _ in 0..len {
                buf.put_u8((g.next_u64() & 0xff) as u8);
            }
            // Must return — Ok or Err — without panicking or looping.
            let _ = decode(buf.freeze());
        }
    }
}

/// `validate` and `decode` must agree exactly on any input: the same
/// accept/reject verdict, the same typed error on reject, and on accept
/// the same header facts. This is the differential proof behind
/// `decode_bundle` trusting a validate-only walk.
fn assert_validate_decode_agree(bytes: Bytes, what: &str) {
    let v = validate(bytes.clone());
    let d = decode(bytes);
    match (&v, &d) {
        (Ok(s), Ok(t)) => {
            assert_eq!(s.width, t.width(), "{what}: width disagrees");
            // A mutated-but-accepted stream may carry duplicate node
            // records that materialization dedups, so the declared count
            // bounds the tree size rather than equalling it — and the
            // implicit root exists even when the count says 0. (Strict
            // equality on canonical encodings is asserted separately.)
            assert!(s.nodes.max(1) >= t.len(), "{what}: fewer records than nodes");
        }
        (Err(ev), Err(ed)) => assert_eq!(ev, ed, "{what}: error type disagrees"),
        (Ok(_), Err(e)) => panic!("{what}: validate accepted what decode rejects ({e:?})"),
        (Err(e), Ok(_)) => panic!("{what}: validate rejected ({e:?}) what decode accepts"),
    }
}

#[test]
fn validate_accepts_exactly_what_decode_accepts() {
    // The full mutation battery, run differentially: corpus, every
    // truncation, every single-bit flip, random bytes behind a valid
    // magic, and composed truncate-and-flip.
    for bytes in corpus() {
        // Canonical encodings: the summary's node count is exact.
        let s = validate(bytes.clone()).expect("corpus entries validate");
        let t = decode(bytes.clone()).expect("corpus entries decode");
        assert_eq!(s.width, t.width());
        assert_eq!(s.nodes, t.len(), "canonical node count must be exact");
        for cut in 0..bytes.len() {
            assert_validate_decode_agree(bytes.slice(0..cut), &format!("truncation at {cut}"));
        }
        for pos in 0..bytes.len() {
            for bit in 0..8u8 {
                let mut mutated = bytes.as_slice().to_vec();
                mutated[pos] ^= 1 << bit;
                let mut buf = BytesMut::with_capacity(mutated.len());
                buf.put_slice(&mutated);
                assert_validate_decode_agree(
                    buf.freeze(),
                    &format!("flip at byte {pos} bit {bit}"),
                );
            }
        }
    }
    for (case, magic) in [(0u64, 0x4443_5031u32), (1, 0x4443_5032)] {
        let mut g = SmallRng::seed_from_u64(0xd1ff + case);
        for i in 0..2048 {
            let len = g.gen_range(0usize..200);
            let mut buf = BytesMut::with_capacity(len + 4);
            buf.put_u32(magic);
            for _ in 0..len {
                buf.put_u8((g.next_u64() & 0xff) as u8);
            }
            assert_validate_decode_agree(buf.freeze(), &format!("random case {case}/{i}"));
        }
    }
    let mut g = SmallRng::seed_from_u64(0x5eed_d1ff);
    for bytes in corpus() {
        for i in 0..128 {
            let cut = g.gen_range(5usize..bytes.len().max(6)).min(bytes.len());
            let mut mutated = bytes.slice(0..cut).as_slice().to_vec();
            if !mutated.is_empty() {
                let pos = g.gen_range(0usize..mutated.len());
                mutated[pos] ^= 1 << g.gen_range(0u32..8);
            }
            let mut buf = BytesMut::with_capacity(mutated.len());
            buf.put_slice(&mutated);
            assert_validate_decode_agree(buf.freeze(), &format!("truncate+flip {i}"));
        }
    }
}

#[test]
fn truncation_and_flips_compose() {
    // Truncate AND flip: the mutations interact (a flip can change a
    // count that a truncation then starves). Deterministic spot-check.
    let mut g = SmallRng::seed_from_u64(0x5eed);
    for bytes in corpus() {
        for _ in 0..256 {
            let cut = g.gen_range(5usize..bytes.len().max(6));
            let cut = cut.min(bytes.len());
            let mut mutated = bytes.slice(0..cut).as_slice().to_vec();
            if !mutated.is_empty() {
                let pos = g.gen_range(0usize..mutated.len());
                mutated[pos] ^= 1 << g.gen_range(0u32..8);
            }
            let mut buf = BytesMut::with_capacity(mutated.len());
            buf.put_slice(&mutated);
            let _ = decode(buf.freeze());
        }
    }
}
