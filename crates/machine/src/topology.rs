//! Machine topology: sockets, cores, hardware threads, NUMA domains.
//!
//! The paper's two testbeds are (a) a POWER7 node with four sockets, each
//! socket its own NUMA domain with a private memory controller, 32
//! hardware threads per socket (8 cores x SMT4); and (b) a 48-core AMD
//! Magny-Cours server with 8 NUMA domains (each package carries two dies,
//! each die a domain with 6 cores). [`Topology`] captures the mapping from
//! hardware thread to core to NUMA domain, plus inter-domain hop counts.

/// Identifies one hardware thread (SMT context). Threads of a simulated
/// program are pinned to hardware threads by the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u32);

/// Identifies one NUMA domain (one memory controller).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub u32);

/// Static description of the simulated machine's processor layout.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Number of NUMA domains (= number of memory controllers).
    pub domains: u32,
    /// Physical cores per NUMA domain.
    pub cores_per_domain: u32,
    /// SMT contexts per physical core.
    pub smt: u32,
}

impl Topology {
    /// Create a topology with `domains` NUMA domains, `cores_per_domain`
    /// physical cores each, and `smt` hardware threads per core.
    ///
    /// # Panics
    /// Panics if any parameter is zero.
    pub fn new(domains: u32, cores_per_domain: u32, smt: u32) -> Self {
        assert!(domains > 0 && cores_per_domain > 0 && smt > 0);
        Self { domains, cores_per_domain, smt }
    }

    /// Total number of hardware threads on the machine.
    pub fn hw_threads(&self) -> u32 {
        self.domains * self.cores_per_domain * self.smt
    }

    /// Total number of physical cores on the machine.
    pub fn physical_cores(&self) -> u32 {
        self.domains * self.cores_per_domain
    }

    /// The physical core index (0-based, machine wide) that a hardware
    /// thread runs on. SMT siblings share a physical core and therefore
    /// share its caches, TLB and prefetcher.
    #[inline]
    pub fn physical_core_of(&self, hw: CoreId) -> u32 {
        assert!(hw.0 < self.hw_threads(), "hw thread {} out of range", hw.0);
        hw.0 / self.smt
    }

    /// The NUMA domain a hardware thread belongs to.
    #[inline]
    pub fn domain_of(&self, hw: CoreId) -> DomainId {
        DomainId(self.physical_core_of(hw) / self.cores_per_domain)
    }

    /// First hardware thread of every physical core in `domain`, in order.
    /// Useful for pinning one software thread per core.
    pub fn primary_threads(&self, domain: DomainId) -> impl Iterator<Item = CoreId> + '_ {
        let base = domain.0 * self.cores_per_domain;
        (0..self.cores_per_domain).map(move |c| CoreId((base + c) * self.smt))
    }

    /// Number of interconnect hops between two domains.
    ///
    /// Domains are arranged on a ring (a reasonable abstraction of both
    /// HyperTransport meshes and POWER7 fabric): hop count is the shorter
    /// ring distance, and zero for the same domain.
    pub fn hops(&self, a: DomainId, b: DomainId) -> u32 {
        assert!(a.0 < self.domains && b.0 < self.domains);
        let d = a.0.abs_diff(b.0);
        d.min(self.domains - d)
    }

    /// Round-robin pinning: software thread `t` of `n` total gets hardware
    /// thread `t` if it exists, wrapping otherwise. Threads are laid out
    /// breadth-first across cores before SMT siblings so that small thread
    /// counts spread over domains the way OpenMP runtimes place them with
    /// `OMP_PROC_BIND=spread` disabled (i.e., plain linear pinning).
    pub fn pin_linear(&self, t: u32) -> CoreId {
        CoreId(t % self.hw_threads())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power7_like_counts() {
        let t = Topology::new(4, 8, 4);
        assert_eq!(t.hw_threads(), 128);
        assert_eq!(t.physical_cores(), 32);
    }

    #[test]
    fn smt_siblings_share_core() {
        let t = Topology::new(4, 8, 4);
        assert_eq!(t.physical_core_of(CoreId(0)), t.physical_core_of(CoreId(3)));
        assert_ne!(t.physical_core_of(CoreId(3)), t.physical_core_of(CoreId(4)));
    }

    #[test]
    fn domain_mapping_is_contiguous() {
        let t = Topology::new(4, 8, 4);
        // hw threads 0..32 -> domain 0; 32..64 -> domain 1, etc.
        assert_eq!(t.domain_of(CoreId(0)), DomainId(0));
        assert_eq!(t.domain_of(CoreId(31)), DomainId(0));
        assert_eq!(t.domain_of(CoreId(32)), DomainId(1));
        assert_eq!(t.domain_of(CoreId(127)), DomainId(3));
    }

    #[test]
    fn ring_hops_symmetric_and_bounded() {
        let t = Topology::new(8, 6, 1);
        for a in 0..8 {
            for b in 0..8 {
                let h = t.hops(DomainId(a), DomainId(b));
                assert_eq!(h, t.hops(DomainId(b), DomainId(a)));
                assert!(h <= 4);
                if a == b {
                    assert_eq!(h, 0);
                } else {
                    assert!(h >= 1);
                }
            }
        }
    }

    #[test]
    fn primary_threads_one_per_core() {
        let t = Topology::new(4, 8, 4);
        let prims: Vec<_> = t.primary_threads(DomainId(1)).collect();
        assert_eq!(prims.len(), 8);
        assert_eq!(prims[0], CoreId(32));
        assert_eq!(prims[7], CoreId(60));
        for w in prims.windows(2) {
            assert_ne!(t.physical_core_of(w[0]), t.physical_core_of(w[1]));
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_hw_thread_panics() {
        let t = Topology::new(2, 2, 1);
        t.physical_core_of(CoreId(4));
    }
}
