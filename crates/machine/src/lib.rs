//! # dcp-machine — deterministic multi-socket NUMA machine simulator
//!
//! This crate is the hardware substrate for the `memgaze` data-centric
//! profiler, a reproduction of *"A Data-centric Profiler for Parallel
//! Programs"* (Liu & Mellor-Crummey, SC'13). The paper measures real
//! programs on POWER7 and AMD Magny-Cours machines using PMU hardware
//! (AMD instruction-based sampling and POWER7 marked events). This crate
//! provides a synthetic equivalent: a cycle-approximate, fully
//! deterministic model of a multi-socket machine, including
//!
//! * per-core set-associative L1/L2 caches and a shared per-socket L3
//!   ([`cache`]),
//! * per-core TLBs ([`tlb`]),
//! * a per-core stride prefetcher that long-stride and indirect access
//!   patterns defeat ([`prefetch`]),
//! * per-NUMA-domain DRAM controllers whose queueing models memory
//!   bandwidth contention ([`dram`]),
//! * an interconnect with per-hop latency for remote accesses
//!   ([`interconnect`]),
//! * a page table implementing the first-touch, interleaved, and bound
//!   NUMA placement policies that `numactl`/`libnuma` expose ([`page`]),
//! * PMU models for AMD-style instruction-based sampling and POWER7-style
//!   marked-event sampling, including out-of-order "skid" on sample
//!   delivery ([`pmu`]).
//!
//! The central entry point is [`Machine`], which resolves one memory
//! operation at a time through the full hierarchy and reports the latency
//! and data source — exactly the fields the profiler's sample handler
//! consumes.
//!
//! Everything is deterministic: identical inputs produce identical
//! latencies, data sources, and PMU samples, which the test suite relies
//! on heavily.

pub mod access;
pub mod cache;
pub mod config;
pub mod dram;
pub mod epoch;
pub mod interconnect;
pub mod mshr;
pub mod page;
pub mod pmu;
pub mod prefetch;
pub mod tlb;
pub mod topology;

pub use access::{AccessKind, AccessResult, DataSource, Machine, MachineStats};
pub use cache::EpochKey;
pub use config::{CacheConfig, MachineConfig, PrefetchConfig};
pub use epoch::{DeferredAccess, FrozenNode, MachineShard, ShardAccessOutcome};
pub use page::{PagePolicy, PageTable};
pub use pmu::{MarkedEvent, Pmu, PmuConfig, Sample, SampleOrigin};
pub use topology::{CoreId, DomainId, Topology};

/// Simulated cycle count. All latencies and clocks in the simulator are
/// expressed in cycles of a nominal core clock.
pub type Cycles = u64;

#[cfg(test)]
mod proptests {
    use dcp_support::prop::vec;
    use dcp_support::props;

    use dcp_support::FxHashMap;

    use crate::access::{AccessKind, DataSource, Machine};
    use crate::cache::{Cache, VersionTable};
    use crate::config::{CacheConfig, MachineConfig};
    use crate::dram::Dram;
    use crate::mshr::{PfEntry, PfMshr};
    use crate::page::{PagePolicy, PageTable};
    use crate::topology::{CoreId, DomainId};

    props! {
        cases = 64;

        /// A cache lookup immediately after a fill of the same line at the
        /// same version always hits, for any geometry.
        fn fill_then_lookup_hits(
            assoc in 1u32..8,
            sets_pow in 1u32..6,
            line in 0u64..100_000,
            version in 0u32..4,
        ) {
            let capacity = 64u64 * assoc as u64 * (1 << sets_pow);
            let mut c = Cache::new(&CacheConfig { capacity, assoc, latency: 1 }, 64);
            c.fill(line, version);
            assert!(c.lookup(line, version));
        }

        /// A cache never reports a hit for a version other than the one
        /// filled (coherence safety).
        fn stale_versions_never_hit(line in 0u64..1000, v1 in 0u32..5, bump in 1u32..5) {
            let v2 = (v1 + bump) % 5;
            if v1 == v2 {
                return; // bump wrapped onto v1; nothing to test
            }
            let mut c = Cache::new(&CacheConfig { capacity: 1024, assoc: 2, latency: 1 }, 64);
            c.fill(line, v1);
            assert!(!c.lookup(line, v2));
        }

        /// First-touch placement is sticky: whoever touches first owns the
        /// page forever (until unmap), regardless of later touchers.
        fn first_touch_is_sticky(
            touchers in vec(0u32..4, 1..20),
            vaddr in 0u64..1_000_000,
        ) {
            let mut pt = PageTable::new(4096, 4);
            let first = DomainId(touchers[0]);
            let placed = pt.touch(vaddr, first);
            assert_eq!(placed, first);
            for &t in &touchers[1..] {
                assert_eq!(pt.touch(vaddr, DomainId(t)), first);
            }
        }

        /// Interleaved placement balances: over 4k consecutive pages, no
        /// domain holds more than its fair share plus one.
        fn interleave_is_balanced(domains in 1u32..8, pages in 1u64..256) {
            let mut pt = PageTable::new(4096, domains);
            pt.set_default_policy(PagePolicy::Interleave);
            for p in 0..pages {
                pt.touch(p * 4096, DomainId(0));
            }
            let h = pt.placement_histogram();
            let max = *h.iter().max().unwrap();
            let min = *h.iter().min().unwrap();
            assert!(max - min <= 1, "{h:?}");
        }

        /// DRAM backlog never exceeds requests x service, and drains to
        /// zero given enough time.
        fn dram_backlog_bounded(reqs in 1u64..200, service in 1u32..16) {
            let mut d = Dram::new(1, service);
            for _ in 0..reqs {
                d.request(0, 0);
            }
            assert!(d.backlog(0, 0) <= reqs * service as u64);
            assert_eq!(d.backlog(0, reqs * service as u64 + 1), 0);
        }

        /// The access pipeline is deterministic and its latency is always
        /// at least the L1 hit latency.
        fn access_latency_sane(
            addrs in vec(0u64..(1u64 << 22), 1..200),
            core in 0u32..4,
            home in 0u32..2,
        ) {
            let run = || {
                let mut m = Machine::new(MachineConfig::tiny_test());
                let mut t = 0u64;
                let mut lats = Vec::new();
                for (i, &a) in addrs.iter().enumerate() {
                    let kind = if i % 3 == 0 { AccessKind::Store } else { AccessKind::Load };
                    let r = m.access(CoreId(core), a, kind, DomainId(home), 7, t);
                    t += r.latency as u64;
                    lats.push((r.latency, r.source));
                }
                lats
            };
            let a = run();
            let b = run();
            assert_eq!(&a, &b, "machine must be deterministic");
            let l1 = MachineConfig::tiny_test().l1.latency;
            for (lat, _) in a {
                assert!(lat >= l1);
            }
        }

        /// Differential test: the fixed-capacity open-addressed [`PfMshr`]
        /// behaves exactly like a hash map for any op sequence that stays
        /// within the prefetch budget — insert/replace, remove with
        /// backward-shift deletion, membership, lookup, and retain all
        /// agree, as does the final table contents.
        fn pf_mshr_matches_hashmap_model(
            ops in vec((0u8..5, 0u64..48, 1u64..1000), 1..300),
        ) {
            let mut mshr = PfMshr::new();
            let mut model: FxHashMap<u64, PfEntry> = FxHashMap::default();
            let same = |a: &PfEntry, b: &PfEntry| {
                a.ready == b.ready && a.version == b.version && a.src == b.src
            };
            for &(op, line, x) in &ops {
                match op {
                    0 | 1 => {
                        // Keep strictly below capacity like the access
                        // pipeline's PF_BUDGET watermark does.
                        if model.len() < 96 || model.contains_key(&line) {
                            let e = PfEntry {
                                ready: x,
                                version: (x % 7) as u32,
                                src: if x % 2 == 0 { DataSource::L2 } else { DataSource::LocalDram },
                            };
                            mshr.insert(line, e);
                            model.insert(line, e);
                        }
                    }
                    2 => {
                        let a = mshr.remove(line);
                        let b = model.remove(&line);
                        assert_eq!(a.is_some(), b.is_some());
                        if let (Some(a), Some(b)) = (a, b) {
                            assert!(same(&a, &b));
                        }
                    }
                    3 => {
                        assert_eq!(mshr.contains(line), model.contains_key(&line));
                        match (mshr.get(line), model.get(&line)) {
                            (Some(a), Some(b)) => assert!(same(a, b)),
                            (None, None) => {}
                            _ => panic!("get() disagrees for line {line}"),
                        }
                    }
                    _ => {
                        mshr.retain(|_, e| e.ready > x);
                        model.retain(|_, e| e.ready > x);
                    }
                }
                assert_eq!(mshr.len(), model.len());
            }
            for (&line, e) in &model {
                assert!(matches!(mshr.get(line), Some(a) if same(a, e)));
            }
        }

        /// Differential test: the paged, memo-cached [`VersionTable`]
        /// agrees with a flat map model on versions and last writers for
        /// any interleaving of bumps and queries (including `version_hot`,
        /// whose direct-mapped page cache and negative entries must never
        /// go stale).
        fn version_table_matches_map_model(
            ops in vec((0u8..4, 0u64..96, 0u32..4), 1..300),
            lines_pow in 0u32..5,
        ) {
            let mut vt = VersionTable::with_lines_per_page(1 << lines_pow);
            let mut model: FxHashMap<u64, (u32, u32)> = FxHashMap::default();
            for &(op, line, domain) in &ops {
                match op {
                    0 => {
                        let v = vt.bump(line, domain);
                        let m = model.entry(line).or_insert((0, 0));
                        m.0 = m.0.wrapping_add(1);
                        m.1 = domain + 1;
                        assert_eq!(v, m.0);
                    }
                    1 => assert_eq!(
                        vt.version(line),
                        model.get(&line).map_or(0, |m| m.0)
                    ),
                    2 => assert_eq!(
                        vt.version_hot(line),
                        model.get(&line).map_or(0, |m| m.0)
                    ),
                    _ => assert_eq!(
                        vt.last_writer(line),
                        model.get(&line).map(|m| m.1 - 1)
                    ),
                }
            }
            assert_eq!(vt.written_lines(), model.len());
            for (&line, &(v, w)) in &model {
                assert_eq!(vt.version_hot(line), v);
                assert_eq!(vt.last_writer(line), Some(w - 1));
            }
        }
    }
}
