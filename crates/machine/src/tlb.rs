//! A small fully-associative data TLB with LRU replacement.
//!
//! TLB misses matter for the Sweep3D case study: a column-major array
//! traversed along the wrong dimension touches a new page almost every
//! access, so "elevated TLB miss rates" show up in the sampled latencies
//! exactly as the paper describes.

/// Per-core data TLB caching virtual-page-number translations.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (vpn, lru tick)
    capacity: usize,
    /// Direct-mapped index hints into `entries`, keyed by the low vpn
    /// bits. A hint is only trusted after re-checking the entry's vpn, so
    /// stale hints (evicted or swapped entries) are harmless; they just
    /// fall back to the scan. `usize::MAX` when unknown.
    memo: [usize; TLB_MEMO],
    tick: u64,
    hits: u64,
    misses: u64,
}

/// Slots in the [`Tlb`] index-hint memo (power of two).
const TLB_MEMO: usize = 64;

impl Tlb {
    /// Create a TLB holding `capacity` translations.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB needs at least one entry");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            memo: [usize::MAX; TLB_MEMO],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Translate the virtual page `vpn`; returns `true` on a TLB hit.
    /// A miss installs the translation (evicting LRU if full).
    pub fn access(&mut self, vpn: u64) -> bool {
        self.tick += 1;
        let slot = (vpn as usize) & (TLB_MEMO - 1);
        if let Some(e) = self.entries.get_mut(self.memo[slot]) {
            if e.0 == vpn {
                e.1 = self.tick;
                self.hits += 1;
                return true;
            }
        }
        // One pass: find `vpn`, tracking the first-minimal LRU entry as we
        // go so a miss already knows its victim.
        let mut victim = 0usize;
        let mut victim_lru = u64::MAX;
        let mut found = usize::MAX;
        for (i, e) in self.entries.iter().enumerate() {
            if e.0 == vpn {
                found = i;
                break;
            }
            if e.1 < victim_lru {
                victim = i;
                victim_lru = e.1;
            }
        }
        if found != usize::MAX {
            self.entries[found].1 = self.tick;
            self.memo[slot] = found;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() == self.capacity {
            self.entries.swap_remove(victim);
        }
        self.entries.push((vpn, self.tick));
        self.memo[slot] = self.entries.len() - 1;
        false
    }

    /// Drop the translation for `vpn` (page unmapped / policy change).
    pub fn flush_page(&mut self, vpn: u64) {
        self.entries.retain(|e| e.0 != vpn);
        self.memo = [usize::MAX; TLB_MEMO]; // retain may have shifted indices
    }

    /// (hits, misses) counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_install() {
        let mut t = Tlb::new(4);
        assert!(!t.access(1));
        assert!(t.access(1));
        assert_eq!(t.stats(), (1, 1));
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2);
        t.access(1);
        t.access(2);
        t.access(1); // 2 becomes LRU
        t.access(3); // evicts 2
        assert!(t.access(1));
        assert!(t.access(3));
        assert!(!t.access(2));
    }

    #[test]
    fn flush_removes_entry() {
        let mut t = Tlb::new(4);
        t.access(9);
        t.flush_page(9);
        assert!(!t.access(9));
    }

    #[test]
    fn strided_page_walks_thrash() {
        // Touching more distinct pages than entries in a cycle never hits.
        let mut t = Tlb::new(4);
        for round in 0..3 {
            for vpn in 0..8u64 {
                let hit = t.access(vpn);
                if round > 0 {
                    // With 8 pages cycling through 4 entries, LRU never
                    // retains the page long enough.
                    assert!(!hit, "vpn {vpn} unexpectedly hit");
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _ = Tlb::new(0);
    }
}
