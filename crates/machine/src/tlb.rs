//! A small fully-associative data TLB with LRU replacement.
//!
//! TLB misses matter for the Sweep3D case study: a column-major array
//! traversed along the wrong dimension touches a new page almost every
//! access, so "elevated TLB miss rates" show up in the sampled latencies
//! exactly as the paper describes.

/// Per-core data TLB caching virtual-page-number translations.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<(u64, u64)>, // (vpn, lru tick)
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Create a TLB holding `capacity` translations.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB needs at least one entry");
        Self { entries: Vec::with_capacity(capacity), capacity, tick: 0, hits: 0, misses: 0 }
    }

    /// Translate the virtual page `vpn`; returns `true` on a TLB hit.
    /// A miss installs the translation (evicting LRU if full).
    pub fn access(&mut self, vpn: u64) -> bool {
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == vpn) {
            e.1 = self.tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.entries.len() == self.capacity {
            let (idx, _) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .expect("non-empty");
            self.entries.swap_remove(idx);
        }
        self.entries.push((vpn, self.tick));
        false
    }

    /// Drop the translation for `vpn` (page unmapped / policy change).
    pub fn flush_page(&mut self, vpn: u64) {
        self.entries.retain(|e| e.0 != vpn);
    }

    /// (hits, misses) counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_install() {
        let mut t = Tlb::new(4);
        assert!(!t.access(1));
        assert!(t.access(1));
        assert_eq!(t.stats(), (1, 1));
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2);
        t.access(1);
        t.access(2);
        t.access(1); // 2 becomes LRU
        t.access(3); // evicts 2
        assert!(t.access(1));
        assert!(t.access(3));
        assert!(!t.access(2));
    }

    #[test]
    fn flush_removes_entry() {
        let mut t = Tlb::new(4);
        t.access(9);
        t.flush_page(9);
        assert!(!t.access(9));
    }

    #[test]
    fn strided_page_walks_thrash() {
        // Touching more distinct pages than entries in a cycle never hits.
        let mut t = Tlb::new(4);
        for round in 0..3 {
            for vpn in 0..8u64 {
                let hit = t.access(vpn);
                if round > 0 {
                    // With 8 pages cycling through 4 entries, LRU never
                    // retains the page long enough.
                    assert!(!hit, "vpn {vpn} unexpectedly hit");
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _ = Tlb::new(0);
    }
}
