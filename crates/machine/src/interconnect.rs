//! Inter-socket interconnect (HyperTransport / QuickPath abstraction).
//!
//! Remote memory traffic pays a per-hop latency on top of the remote
//! controller's own latency. The hop count comes from the ring distance
//! in [`crate::topology::Topology`]; each ring edge additionally carries
//! a work-conserving occupancy queue (the same fluid-backlog model as
//! [`crate::dram`], and for the same reason: absolute-time reservations
//! amplify clock skew between threads into runaway delays, whereas
//! backlog is skew-invariant).

use crate::topology::{DomainId, Topology};
use crate::Cycles;

/// Link state between adjacent ring neighbours.
#[derive(Debug, Clone)]
struct Link {
    last_now: Cycles,
    backlog: Cycles,
    transfers: u64,
}

impl Link {
    fn request(&mut self, now: Cycles, service: u32) -> Cycles {
        if now > self.last_now {
            self.backlog = self.backlog.saturating_sub(now - self.last_now);
            self.last_now = now;
        }
        let delay = self.backlog;
        self.backlog += service as Cycles;
        self.transfers += 1;
        delay
    }
}

/// The machine's socket interconnect.
#[derive(Debug, Clone)]
pub struct Interconnect {
    hop_latency: u32,
    /// Cycles one line transfer occupies each link it crosses.
    link_service: u32,
    links: Vec<Link>, // one per ring edge
    domains: u32,
}

impl Interconnect {
    /// Build the ring interconnect for `topo` with `hop_latency` cycles
    /// per hop. Link occupancy is an eighth of the hop latency — links
    /// are fast relative to DRAM but not infinite.
    pub fn new(topo: &Topology, hop_latency: u32) -> Self {
        Self {
            hop_latency,
            link_service: (hop_latency / 8).max(1),
            links: (0..topo.domains)
                .map(|_| Link { last_now: 0, backlog: 0, transfers: 0 })
                .collect(),
            domains: topo.domains,
        }
    }

    /// Latency for one line to travel from `from` to `to` starting at
    /// `now`, including link queueing. Zero if the domains are equal.
    pub fn traverse(
        &mut self,
        topo: &Topology,
        from: DomainId,
        to: DomainId,
        now: Cycles,
    ) -> Cycles {
        let hops = topo.hops(from, to);
        if hops == 0 {
            return 0;
        }
        // Walk the shorter ring direction, queueing on each edge.
        let forward = {
            let d = (to.0 + self.domains - from.0) % self.domains;
            d <= self.domains - d
        };
        let mut t = now;
        let mut cur = from.0;
        for _ in 0..hops {
            let edge = if forward {
                cur as usize
            } else {
                ((cur + self.domains - 1) % self.domains) as usize
            };
            let delay = self.links[edge].request(t, self.link_service);
            t += delay + self.hop_latency as Cycles;
            cur = if forward {
                (cur + 1) % self.domains
            } else {
                (cur + self.domains - 1) % self.domains
            };
        }
        t - now
    }

    /// Read-only estimate of [`Interconnect::traverse`]: the latency a
    /// transfer starting at `now` would observe against the *current*
    /// link backlogs, without consuming link occupancy. The epoch-
    /// parallel access path uses this against the frozen interconnect to
    /// price deferred remote accesses optimistically; the commit phase
    /// then performs the real, occupancy-consuming traversal.
    pub fn traverse_est(
        &self,
        topo: &Topology,
        from: DomainId,
        to: DomainId,
        now: Cycles,
    ) -> Cycles {
        let hops = topo.hops(from, to);
        if hops == 0 {
            return 0;
        }
        let forward = {
            let d = (to.0 + self.domains - from.0) % self.domains;
            d <= self.domains - d
        };
        let mut t = now;
        let mut cur = from.0;
        for _ in 0..hops {
            let edge = if forward {
                cur as usize
            } else {
                ((cur + self.domains - 1) % self.domains) as usize
            };
            let l = &self.links[edge];
            let delay = l.backlog.saturating_sub(t.saturating_sub(l.last_now));
            t += delay + self.hop_latency as Cycles;
            cur = if forward {
                (cur + 1) % self.domains
            } else {
                (cur + self.domains - 1) % self.domains
            };
        }
        t - now
    }

    /// Total line transfers across all links.
    pub fn transfers(&self) -> u64 {
        self.links.iter().map(|l| l.transfers).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Topology, Interconnect) {
        let topo = Topology::new(4, 2, 1);
        let ic = Interconnect::new(&topo, 100);
        (topo, ic)
    }

    #[test]
    fn same_domain_is_free() {
        let (topo, mut ic) = setup();
        assert_eq!(ic.traverse(&topo, DomainId(1), DomainId(1), 0), 0);
    }

    #[test]
    fn latency_scales_with_hops() {
        let (topo, mut ic) = setup();
        let one = ic.traverse(&topo, DomainId(0), DomainId(1), 1_000_000);
        let two = ic.traverse(&topo, DomainId(0), DomainId(2), 2_000_000);
        assert!((100..200).contains(&one), "{one}");
        assert!((200..400).contains(&two), "{two}");
    }

    #[test]
    fn congested_link_queues() {
        let (topo, mut ic) = setup();
        let first = ic.traverse(&topo, DomainId(0), DomainId(1), 0);
        let mut prev = first;
        // Repeated transfers at t=0 over the same edge keep queueing.
        for _ in 0..16 {
            let next = ic.traverse(&topo, DomainId(0), DomainId(1), 0);
            assert!(next >= prev);
            prev = next;
        }
        assert!(prev > first, "link occupancy must accumulate");
    }

    #[test]
    fn laggards_not_charged_for_clock_gaps() {
        let (topo, mut ic) = setup();
        // A far-future transfer...
        ic.traverse(&topo, DomainId(0), DomainId(1), 5_000_000);
        // ...must not make an earlier-clock transfer wait 5M cycles.
        let d = ic.traverse(&topo, DomainId(0), DomainId(1), 10);
        assert!(d < 1_000, "laggard delayed {d}");
    }

    #[test]
    fn transfer_counting() {
        let (topo, mut ic) = setup();
        ic.traverse(&topo, DomainId(0), DomainId(2), 0); // 2 hops = 2 link transfers
        ic.traverse(&topo, DomainId(3), DomainId(0), 0); // 1 hop
        assert_eq!(ic.transfers(), 3);
    }
}
