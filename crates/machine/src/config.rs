//! Machine configuration and presets for the paper's two testbeds.
//!
//! Cache capacities are scaled down relative to the real machines because
//! the simulated workloads are scaled down too; what matters for the
//! reproduction is the *ratio* of working-set size to cache size and the
//! latency ordering L1 < L2 < L3 < local DRAM < remote DRAM.

use crate::topology::Topology;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be a multiple of `line_size * assoc`.
    pub capacity: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Hit latency in cycles (charged when data is found at this level).
    pub latency: u32,
}

impl CacheConfig {
    /// Number of sets given a line size.
    pub fn sets(&self, line_size: u64) -> u64 {
        let lines = self.capacity / line_size;
        assert!(
            lines.is_multiple_of(self.assoc as u64),
            "capacity {} not divisible into {}-way sets of {}-byte lines",
            self.capacity,
            self.assoc,
            line_size
        );
        lines / self.assoc as u64
    }
}

/// Stride-prefetcher parameters.
#[derive(Debug, Clone, Copy)]
pub struct PrefetchConfig {
    /// Entries in the per-core reference prediction table.
    pub table_entries: usize,
    /// Number of consecutive same-stride accesses needed before the
    /// prefetcher starts issuing.
    pub confidence: u8,
    /// How many lines ahead to prefetch once confident.
    pub degree: u32,
    /// Maximum stride, in bytes, the prefetcher will train on. Strides
    /// beyond one page defeat real prefetchers; we use the same rule.
    pub max_stride: i64,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        Self { table_entries: 64, confidence: 2, degree: 4, max_stride: 4096 }
    }
}

/// Full description of the simulated machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    pub topology: Topology,
    /// Cache line size in bytes (power of two).
    pub line_size: u64,
    /// Page size in bytes (power of two, multiple of `line_size`).
    pub page_size: u64,
    pub l1: CacheConfig,
    pub l2: CacheConfig,
    /// L3 is shared per NUMA domain.
    pub l3: CacheConfig,
    /// Data TLB entries per core (fully associative).
    pub dtlb_entries: usize,
    /// Cycles added by a TLB miss (page-walk cost).
    pub tlb_miss_penalty: u32,
    /// DRAM access latency (row access), excluding queueing, in cycles.
    pub dram_latency: u32,
    /// Cycles one DRAM line transfer occupies its controller; the inverse
    /// of per-controller bandwidth. Queueing behind a saturated controller
    /// is what makes "every thread hitting the master's domain" slow.
    pub dram_service: u32,
    /// Extra latency per interconnect hop for remote DRAM or remote cache.
    pub hop_latency: u32,
    /// Latency of a cache-to-cache transfer from a remote L3 (added to
    /// hop latency).
    pub remote_cache_latency: u32,
    pub prefetch: PrefetchConfig,
}

impl MachineConfig {
    /// A four-socket POWER7-like node: 4 NUMA domains, 8 cores x SMT4 per
    /// domain = 128 hardware threads, 128-byte cache lines.
    pub fn power7_node() -> Self {
        Self {
            topology: Topology::new(4, 8, 4),
            line_size: 128,
            page_size: 4096,
            l1: CacheConfig { capacity: 16 << 10, assoc: 8, latency: 2 },
            l2: CacheConfig { capacity: 64 << 10, assoc: 8, latency: 8 },
            l3: CacheConfig { capacity: 1 << 20, assoc: 16, latency: 25 },
            dtlb_entries: 64,
            tlb_miss_penalty: 40,
            dram_latency: 220,
            dram_service: 12,
            hop_latency: 110,
            remote_cache_latency: 60,
            prefetch: PrefetchConfig::default(),
        }
    }

    /// A 48-core AMD Magny-Cours-like server: 8 NUMA domains of 6 cores
    /// (no SMT), 64-byte lines.
    pub fn magny_cours() -> Self {
        Self {
            topology: Topology::new(8, 6, 1),
            line_size: 64,
            page_size: 4096,
            l1: CacheConfig { capacity: 64 << 10, assoc: 2, latency: 3 },
            l2: CacheConfig { capacity: 128 << 10, assoc: 16, latency: 12 },
            l3: CacheConfig { capacity: 512 << 10, assoc: 16, latency: 28 },
            dtlb_entries: 48,
            tlb_miss_penalty: 35,
            dram_latency: 190,
            dram_service: 10,
            hop_latency: 90,
            remote_cache_latency: 70,
            prefetch: PrefetchConfig::default(),
        }
    }

    /// A deliberately tiny machine for unit tests: 2 domains x 2 cores,
    /// small caches so tests can force evictions cheaply.
    pub fn tiny_test() -> Self {
        Self {
            topology: Topology::new(2, 2, 1),
            line_size: 64,
            page_size: 4096,
            l1: CacheConfig { capacity: 1 << 10, assoc: 2, latency: 2 },
            l2: CacheConfig { capacity: 4 << 10, assoc: 4, latency: 8 },
            l3: CacheConfig { capacity: 16 << 10, assoc: 8, latency: 20 },
            dtlb_entries: 8,
            tlb_miss_penalty: 30,
            dram_latency: 200,
            dram_service: 4,
            hop_latency: 100,
            remote_cache_latency: 50,
            prefetch: PrefetchConfig::default(),
        }
    }

    /// Sanity-check internal consistency; called by `Machine::new`.
    pub fn validate(&self) {
        assert!(self.line_size.is_power_of_two(), "line size must be a power of two");
        assert!(self.page_size.is_power_of_two(), "page size must be a power of two");
        assert!(self.page_size.is_multiple_of(self.line_size), "page must hold whole lines");
        // Trigger set-count assertions early.
        let _ = self.l1.sets(self.line_size);
        let _ = self.l2.sets(self.line_size);
        let _ = self.l3.sets(self.line_size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        MachineConfig::power7_node().validate();
        MachineConfig::magny_cours().validate();
        MachineConfig::tiny_test().validate();
    }

    #[test]
    fn set_counts() {
        let c = CacheConfig { capacity: 32 << 10, assoc: 8, latency: 2 };
        assert_eq!(c.sets(64), 64);
        assert_eq!(c.sets(128), 32);
    }

    #[test]
    #[should_panic]
    fn bad_geometry_panics() {
        let c = CacheConfig { capacity: 1024, assoc: 3, latency: 1 };
        let _ = c.sets(64);
    }

    #[test]
    fn latency_ordering_in_presets() {
        for cfg in [MachineConfig::power7_node(), MachineConfig::magny_cours()] {
            assert!(cfg.l1.latency < cfg.l2.latency);
            assert!(cfg.l2.latency < cfg.l3.latency);
            assert!((cfg.l3.latency as u64) < cfg.dram_latency as u64);
            assert!(cfg.hop_latency > 0, "remote accesses must cost more than local");
        }
    }
}
