//! Set-associative cache with LRU replacement and version-based coherence.
//!
//! Coherence between the many caches of a multi-socket machine is modeled
//! with *line versions* instead of broadcast invalidation: a global
//! version table (owned by [`crate::access::Machine`]) assigns each
//! written line a monotonically increasing version. Every cached copy
//! remembers the version it was filled with; a lookup only hits if the
//! cached version is still current. A store bumps the global version,
//! which implicitly invalidates every other copy in O(1) — the same
//! observable behaviour as write-invalidate MESI without walking 128
//! caches per store.
//!
//! Layout note: this is the simulator's hottest data. Ways are stored as
//! two parallel arrays — a packed `tags` array the set-scan touches and a
//! `meta` array holding (version, lru) — so the scan that runs on every
//! access reads one dense cache-line-sized strip instead of striding over
//! fat structs. The version table is a two-level page-indexed structure:
//! one hash lookup per *page* (usually served by a one-entry cache of the
//! last page), then a dense index for the line within the page.

use dcp_support::FxHashMap;

use crate::config::CacheConfig;

/// Tag value marking an empty way. Line addresses are byte addresses
/// shifted right by the line bits, so `u64::MAX` can never be a real line.
const TAG_INVALID: u64 = u64::MAX;

/// The one set-scan every path shares: position of `line` within a set's
/// packed tag slice, or `None`. `lookup`, `probe`, `fill` and
/// `invalidate` all go through here so their notion of "present" cannot
/// drift.
#[inline(always)]
fn scan(tags: &[u64], line: u64) -> Option<usize> {
    tags.iter().position(|&t| t == line)
}

/// A set-associative, write-allocate cache level.
///
/// The cache stores *line addresses* (byte address divided by the line
/// size); index and tag extraction happen internally.
#[derive(Debug, Clone)]
pub struct Cache {
    /// Per-way line address, `TAG_INVALID` when the way is empty. Indexed
    /// `set * assoc + way`.
    tags: Vec<u64>,
    /// Per-way (coherence version, LRU timestamp), parallel to `tags`.
    meta: Vec<(u32, u64)>,
    assoc: usize,
    sets: u64,
    /// `sets - 1` when `sets` is a power of two (the common geometry):
    /// set selection is then a mask instead of a hardware divide.
    /// `u64::MAX` when sets is not a power of two.
    set_mask: u64,
    latency: u32,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build a cache from a level configuration and the machine line size.
    pub fn new(cfg: &CacheConfig, line_size: u64) -> Self {
        let sets = cfg.sets(line_size);
        let ways = (sets * cfg.assoc as u64) as usize;
        Self {
            tags: vec![TAG_INVALID; ways],
            meta: vec![(0, 0); ways],
            assoc: cfg.assoc as usize,
            sets,
            set_mask: if sets.is_power_of_two() { sets - 1 } else { u64::MAX },
            latency: cfg.latency,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Hit latency of this level in cycles.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    #[inline(always)]
    fn set_start(&self, line: u64) -> usize {
        let set =
            if self.set_mask != u64::MAX { line & self.set_mask } else { line % self.sets };
        set as usize * self.assoc
    }

    /// Look up `line`; a hit requires the cached copy's version to match
    /// `current_version`. A stale copy is treated as a miss and
    /// invalidated. Returns `true` on hit and refreshes LRU state.
    pub fn lookup(&mut self, line: u64, current_version: u32) -> bool {
        debug_assert_ne!(line, TAG_INVALID);
        self.tick += 1;
        let start = self.set_start(line);
        if let Some(i) = scan(&self.tags[start..start + self.assoc], line) {
            let w = start + i;
            if self.meta[w].0 == current_version {
                self.meta[w].1 = self.tick;
                self.hits += 1;
                return true;
            }
            // Stale: coherence invalidation.
            self.tags[w] = TAG_INVALID;
        }
        self.misses += 1;
        false
    }

    /// Peek without updating LRU or hit/miss statistics (used by remote-L3
    /// probes, which on real hardware go through the directory rather than
    /// perturbing the remote cache's replacement state).
    #[inline]
    pub fn probe(&self, line: u64, current_version: u32) -> bool {
        let start = self.set_start(line);
        match scan(&self.tags[start..start + self.assoc], line) {
            Some(i) => self.meta[start + i].0 == current_version,
            None => false,
        }
    }

    /// Install `line` at `version`, evicting the LRU way of its set if
    /// needed. Returns the evicted line address, if any.
    ///
    /// One pass over the set finds, in priority order, (a) the line itself
    /// (refresh in place), (b) the first empty way, (c) the first-minimal
    /// LRU victim — the same choices three separate scans would make.
    pub fn fill(&mut self, line: u64, version: u32) -> Option<u64> {
        debug_assert_ne!(line, TAG_INVALID);
        self.tick += 1;
        let start = self.set_start(line);
        let mut empty = usize::MAX;
        let mut victim = start;
        let mut victim_lru = u64::MAX;
        for w in start..start + self.assoc {
            let t = self.tags[w];
            if t == line {
                // Already present (e.g. refilled after a version bump).
                self.meta[w] = (version, self.tick);
                return None;
            }
            if t == TAG_INVALID {
                if empty == usize::MAX {
                    empty = w;
                }
            } else if self.meta[w].1 < victim_lru {
                victim = w;
                victim_lru = self.meta[w].1;
            }
        }
        if empty != usize::MAX {
            self.tags[empty] = line;
            self.meta[empty] = (version, self.tick);
            return None;
        }
        let evicted = self.tags[victim];
        self.tags[victim] = line;
        self.meta[victim] = (version, self.tick);
        Some(evicted)
    }

    /// Remove `line` if present (used when a page is unmapped).
    pub fn invalidate(&mut self, line: u64) {
        let start = self.set_start(line);
        if let Some(i) = scan(&self.tags[start..start + self.assoc], line) {
            self.tags[start + i] = TAG_INVALID;
        }
    }

    /// (hits, misses) counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Global coherence version table shared by every cache on the machine.
///
/// Only lines that have ever been written occupy an entry; read-only lines
/// are version 0 everywhere.
///
/// Storage is two-level and page-indexed: a hash map from page number to a
/// dense per-page slab of `(version, writer)` pairs, allocated on the
/// first write to the page. The hot read path (`version_hot`) keeps a
/// one-entry cache of the last page resolved, so streaming access
/// patterns pay the hash lookup once per page instead of once per access.
#[derive(Debug)]
pub struct VersionTable {
    /// log2(lines per slab).
    shift: u32,
    /// lines-per-slab − 1 (slab sizes are powers of two).
    mask: u64,
    /// page number → index into `slabs`; populated on first write.
    pages: FxHashMap<u64, u32>,
    /// Dense per-page `(version, writer + 1)` pairs; `writer + 1 == 0`
    /// means that line was never written (version is then always 0).
    slabs: Vec<Box<[(u32, u32)]>>,
    /// Direct-mapped cache of recently resolved pages, indexed by the low
    /// page bits: `(page, slab + 1)` with 0 meaning "empty slot" and
    /// [`NO_SLAB`] meaning "this page is known to have no slab" (a
    /// negative entry — read-only pages are the common case, and without
    /// it every read of an unwritten page pays a full hash lookup).
    last: [(u64, u32); PAGE_CACHE],
    written: usize,
}

/// Slots in the [`VersionTable`] direct-mapped page cache (power of two).
const PAGE_CACHE: usize = 256;

/// Negative-cache marker for [`VersionTable::last`]: the cached page is
/// known absent. Unreachable as a real `slab + 1` value (4 billion slabs
/// would exceed memory long before).
const NO_SLAB: u32 = u32::MAX;

impl Default for VersionTable {
    fn default() -> Self {
        Self::new()
    }
}

impl VersionTable {
    /// Lines-per-slab used by [`VersionTable::new`]; matches a 4 KiB page
    /// of 64-byte lines.
    const DEFAULT_LINES_PER_PAGE: u64 = 64;

    pub fn new() -> Self {
        Self::with_lines_per_page(Self::DEFAULT_LINES_PER_PAGE)
    }

    /// Build a table whose slabs cover `lines_per_page` lines each (the
    /// machine passes page_size / line_size; both are powers of two).
    pub fn with_lines_per_page(lines_per_page: u64) -> Self {
        assert!(lines_per_page.is_power_of_two(), "lines per page must be a power of two");
        Self {
            shift: lines_per_page.trailing_zeros(),
            mask: lines_per_page - 1,
            pages: FxHashMap::default(),
            slabs: Vec::new(),
            last: [(0, 0); PAGE_CACHE],
            written: 0,
        }
    }

    #[inline(always)]
    fn cache_slot(page: u64) -> usize {
        (page as usize) & (PAGE_CACHE - 1)
    }

    #[inline(always)]
    fn slab_of(&self, page: u64) -> Option<usize> {
        let (lp, ls) = self.last[Self::cache_slot(page)];
        if ls != 0 && lp == page {
            if ls == NO_SLAB {
                return None;
            }
            return Some((ls - 1) as usize);
        }
        self.pages.get(&page).map(|&s| s as usize)
    }

    /// Current version of `line` (0 if never written).
    pub fn version(&self, line: u64) -> u32 {
        match self.slab_of(line >> self.shift) {
            Some(s) => self.slabs[s][(line & self.mask) as usize].0,
            None => 0,
        }
    }

    /// Hot-path [`VersionTable::version`]: identical result, but refreshes
    /// the one-entry page cache so a streaming scan resolves the hash map
    /// once per page.
    #[inline]
    pub fn version_hot(&mut self, line: u64) -> u32 {
        let page = line >> self.shift;
        let slot = Self::cache_slot(page);
        let (lp, ls) = self.last[slot];
        if ls != 0 && lp == page {
            if ls == NO_SLAB {
                return 0;
            }
            return self.slabs[(ls - 1) as usize][(line & self.mask) as usize].0;
        }
        match self.pages.get(&page) {
            Some(&s) => {
                self.last[slot] = (page, s + 1);
                self.slabs[s as usize][(line & self.mask) as usize].0
            }
            None => {
                // Cache the miss too: `bump` refreshes this page's slot
                // whenever a slab is created, so a negative entry can
                // never go stale.
                self.last[slot] = (page, NO_SLAB);
                0
            }
        }
    }

    /// Domain of the last writer, if the line has been written.
    pub fn last_writer(&self, line: u64) -> Option<u32> {
        let s = self.slab_of(line >> self.shift)?;
        let w = self.slabs[s][(line & self.mask) as usize].1;
        w.checked_sub(1)
    }

    /// Record a store to `line` from `domain`, invalidating all cached
    /// copies filled at earlier versions. Returns the new version.
    pub fn bump(&mut self, line: u64, domain: u32) -> u32 {
        let page = line >> self.shift;
        let s = match self.slab_of(page) {
            Some(s) => s,
            None => {
                let s = self.slabs.len();
                self.slabs
                    .push(vec![(0u32, 0u32); (self.mask + 1) as usize].into_boxed_slice());
                self.pages.insert(page, s as u32);
                s
            }
        };
        self.last[Self::cache_slot(page)] = (page, s as u32 + 1);
        let e = &mut self.slabs[s][(line & self.mask) as usize];
        if e.1 == 0 {
            self.written += 1;
        }
        e.0 = e.0.wrapping_add(1);
        e.1 = domain + 1;
        e.0
    }

    /// Number of distinct lines ever written (test/diagnostic aid).
    pub fn written_lines(&self) -> usize {
        self.written
    }

    /// Read-only version lookup through a caller-owned, stamp-validated
    /// direct-mapped page memo (entries are `(page, slab + 1, stamp)`
    /// with [`NO_SLAB`] as the negative marker). Sound only while the
    /// table is frozen for the memo's stamp period — the epoch-parallel
    /// access path freezes the base table for one epoch and bumps the
    /// stamp at each epoch boundary, so stale entries self-invalidate
    /// without any clearing cost. `memo.len()` must be a power of two.
    pub fn version_memoized(&self, line: u64, memo: &mut [(u64, u32, u32)], stamp: u32) -> u32 {
        let page = line >> self.shift;
        let slot = (page as usize) & (memo.len() - 1);
        let m = &mut memo[slot];
        let slab_plus = if m.2 == stamp && m.0 == page {
            m.1
        } else {
            let sp = match self.pages.get(&page) {
                Some(&s) => s + 1,
                None => NO_SLAB,
            };
            *m = (page, sp, stamp);
            sp
        };
        if slab_plus == NO_SLAB {
            0
        } else {
            self.slabs[(slab_plus - 1) as usize][(line & self.mask) as usize].0
        }
    }

    /// Commit-phase bulk form of [`VersionTable::bump`]: advance `line`
    /// by `n` versions in one step and set its last writer to `writer`.
    /// Used when merging per-shard version overlays at the end of an
    /// epoch — the overlay already knows how many stores each shard made
    /// to the line, so the base table replays them wholesale. `n == 0`
    /// only (re)sets the writer (conflict resolution between shards).
    /// Returns the resulting version.
    pub fn apply_bumps(&mut self, line: u64, n: u32, writer: u32) -> u32 {
        let page = line >> self.shift;
        let s = match self.slab_of(page) {
            Some(s) => s,
            None => {
                let s = self.slabs.len();
                self.slabs
                    .push(vec![(0u32, 0u32); (self.mask + 1) as usize].into_boxed_slice());
                self.pages.insert(page, s as u32);
                s
            }
        };
        self.last[Self::cache_slot(page)] = (page, s as u32 + 1);
        let e = &mut self.slabs[s][(line & self.mask) as usize];
        if e.1 == 0 {
            self.written += 1;
        }
        e.0 = e.0.wrapping_add(n);
        e.1 = writer + 1;
        e.0
    }
}

/// Ordering key of one event inside an epoch: `(cycle, thread id,
/// per-thread sequence number)`. Commit processes shared-resource events
/// in this order, making results a pure function of simulated time.
pub type EpochKey = (crate::Cycles, u32, u64);

/// One shard's private view of coherence versions during an epoch.
///
/// The base [`VersionTable`] is frozen while shards execute in parallel;
/// each shard layers its own stores on top via this overlay and reads
/// through it. Cross-shard stores made during the same epoch are
/// invisible until the commit phase merges every overlay back into the
/// base in deterministic shard order — a bounded coherence lag of at
/// most one epoch window, analogous to store-buffer delay on real
/// hardware.
#[derive(Debug, Default)]
pub struct VersionOverlay {
    map: FxHashMap<u64, OverlayEntry>,
}

/// Per-line overlay state: the shard-local view plus the replay
/// information the commit merge needs.
#[derive(Debug, Clone, Copy)]
pub struct OverlayEntry {
    /// Version as seen by this shard (base + own bumps).
    pub version: u32,
    /// Domain of this shard (last writer from this shard's view).
    pub writer: u32,
    /// Number of bumps this shard made this epoch.
    pub bumps: u32,
    /// Key of this shard's last store to the line, for cross-shard
    /// last-writer resolution at commit.
    pub key: EpochKey,
}

impl VersionOverlay {
    /// Current version of `line`: overlay if this shard wrote it this
    /// epoch, else the frozen base.
    #[inline]
    pub fn version(&self, base: &VersionTable, line: u64) -> u32 {
        if self.map.is_empty() {
            return base.version(line);
        }
        match self.map.get(&line) {
            Some(e) => e.version,
            None => base.version(line),
        }
    }

    /// This shard's own overlay version for `line`, if it stored to it
    /// this epoch (`None` means "read the frozen base").
    #[inline]
    pub fn local(&self, line: u64) -> Option<u32> {
        if self.map.is_empty() {
            return None;
        }
        self.map.get(&line).map(|e| e.version)
    }

    /// Last writer of `line` through the overlay.
    #[inline]
    pub fn last_writer(&self, base: &VersionTable, line: u64) -> Option<u32> {
        if !self.map.is_empty() {
            if let Some(e) = self.map.get(&line) {
                return Some(e.writer);
            }
        }
        base.last_writer(line)
    }

    /// Record a store by `domain` at `key`; returns the new shard-local
    /// version.
    pub fn bump(&mut self, base: &VersionTable, line: u64, domain: u32, key: EpochKey) -> u32 {
        let e = self.map.entry(line).or_insert_with(|| OverlayEntry {
            version: base.version(line),
            writer: domain,
            bumps: 0,
            key,
        });
        e.version = e.version.wrapping_add(1);
        e.writer = domain;
        e.bumps += 1;
        e.key = key;
        e.version
    }

    /// True if no stores were recorded this epoch.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drain the overlay's entries (iteration order is a deterministic
    /// function of the store sequence — `FxHashMap` has no randomness).
    pub fn drain(&mut self) -> impl Iterator<Item = (u64, OverlayEntry)> + '_ {
        self.map.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn small() -> Cache {
        // 4 sets x 2 ways of 64B lines = 512B.
        Cache::new(&CacheConfig { capacity: 512, assoc: 2, latency: 2 }, 64)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert!(!c.lookup(10, 0));
        c.fill(10, 0);
        assert!(c.lookup(10, 0));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Lines 0, 4, 8 all map to set 0 (line % 4).
        c.fill(0, 0);
        c.fill(4, 0);
        assert!(c.lookup(0, 0)); // 0 is now MRU, 4 is LRU
        let evicted = c.fill(8, 0);
        assert_eq!(evicted, Some(4));
        assert!(c.lookup(0, 0));
        assert!(!c.lookup(4, 0));
        assert!(c.lookup(8, 0));
    }

    #[test]
    fn version_mismatch_is_miss() {
        let mut c = small();
        c.fill(7, 0);
        assert!(c.lookup(7, 0));
        // A writer elsewhere bumped the version: our copy is stale.
        assert!(!c.lookup(7, 1));
        // And the stale copy was invalidated, so even the old version
        // misses now.
        assert!(!c.lookup(7, 0));
    }

    #[test]
    fn refill_updates_version_in_place() {
        let mut c = small();
        c.fill(7, 0);
        let evicted = c.fill(7, 3);
        assert_eq!(evicted, None);
        assert!(c.lookup(7, 3));
    }

    #[test]
    fn probe_does_not_touch_lru() {
        let mut c = small();
        c.fill(0, 0);
        c.fill(4, 0);
        // Probing 4 must not make it MRU.
        assert!(c.probe(4, 0));
        // lookup(0) then fill(8): with probe not updating LRU, 4 was
        // filled later than 0... make 0 MRU explicitly:
        assert!(c.lookup(0, 0));
        let evicted = c.fill(8, 0);
        assert_eq!(evicted, Some(4));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.fill(12, 0);
        c.invalidate(12);
        assert!(!c.lookup(12, 0));
    }

    #[test]
    fn version_table_bumps_and_tracks_writer() {
        let mut vt = VersionTable::new();
        assert_eq!(vt.version(99), 0);
        assert_eq!(vt.last_writer(99), None);
        assert_eq!(vt.bump(99, 2), 1);
        assert_eq!(vt.bump(99, 3), 2);
        assert_eq!(vt.version(99), 2);
        assert_eq!(vt.last_writer(99), Some(3));
        assert_eq!(vt.written_lines(), 1);
    }

    #[test]
    fn version_hot_matches_cold_reads() {
        let mut vt = VersionTable::with_lines_per_page(16);
        // Lines 3 and 19 share nothing; 3 and 4 share a slab.
        vt.bump(3, 0);
        vt.bump(19, 1);
        for line in [3u64, 4, 19, 20, 1000] {
            let cold = vt.version(line);
            assert_eq!(vt.version_hot(line), cold, "line {line}");
        }
        // Unwritten line in a written page: slab exists, version 0.
        assert_eq!(vt.version_hot(4), 0);
        assert_eq!(vt.last_writer(4), None);
    }

    #[test]
    fn negative_page_cache_invalidated_by_bump() {
        let mut vt = VersionTable::with_lines_per_page(16);
        // Read an unwritten page twice: second read served by the
        // negative entry.
        assert_eq!(vt.version_hot(100), 0);
        assert_eq!(vt.version_hot(101), 0);
        assert_eq!(vt.version(100), 0);
        // Writing the page must evict the negative entry.
        assert_eq!(vt.bump(100, 1), 1);
        assert_eq!(vt.version_hot(100), 1);
        assert_eq!(vt.version_hot(101), 0);
        // Negative entry for page A, then bump page B, then re-read A.
        assert_eq!(vt.version_hot(500), 0);
        vt.bump(900, 0);
        assert_eq!(vt.version_hot(500), 0);
        assert_eq!(vt.version_hot(900), 1);
    }
}
