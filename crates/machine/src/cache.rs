//! Set-associative cache with LRU replacement and version-based coherence.
//!
//! Coherence between the many caches of a multi-socket machine is modeled
//! with *line versions* instead of broadcast invalidation: a global
//! version table (owned by [`crate::access::Machine`]) assigns each
//! written line a monotonically increasing version. Every cached copy
//! remembers the version it was filled with; a lookup only hits if the
//! cached version is still current. A store bumps the global version,
//! which implicitly invalidates every other copy in O(1) — the same
//! observable behaviour as write-invalidate MESI without walking 128
//! caches per store.

use dcp_support::FxHashMap;

use crate::config::CacheConfig;

/// One cached line: its tag and the coherence version it was filled at.
#[derive(Debug, Clone, Copy)]
struct Way {
    /// Line address (full address >> line_bits), not just the tag, so we
    /// can invalidate precisely.
    line: u64,
    version: u32,
    /// LRU timestamp: larger = more recently used.
    lru: u64,
    valid: bool,
}

const INVALID: Way = Way { line: 0, version: 0, lru: 0, valid: false };

/// A set-associative, write-allocate cache level.
///
/// The cache stores *line addresses* (byte address divided by the line
/// size); index and tag extraction happen internally.
#[derive(Debug, Clone)]
pub struct Cache {
    ways: Vec<Way>,
    assoc: usize,
    sets: u64,
    latency: u32,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build a cache from a level configuration and the machine line size.
    pub fn new(cfg: &CacheConfig, line_size: u64) -> Self {
        let sets = cfg.sets(line_size);
        Self {
            ways: vec![INVALID; (sets * cfg.assoc as u64) as usize],
            assoc: cfg.assoc as usize,
            sets,
            latency: cfg.latency,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Hit latency of this level in cycles.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let set = (line % self.sets) as usize;
        let start = set * self.assoc;
        start..start + self.assoc
    }

    /// Look up `line`; a hit requires the cached copy's version to match
    /// `current_version`. A stale copy is treated as a miss and
    /// invalidated. Returns `true` on hit and refreshes LRU state.
    pub fn lookup(&mut self, line: u64, current_version: u32) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        for way in &mut self.ways[range] {
            if way.valid && way.line == line {
                if way.version == current_version {
                    way.lru = tick;
                    self.hits += 1;
                    return true;
                }
                // Stale: coherence invalidation.
                way.valid = false;
                break;
            }
        }
        self.misses += 1;
        false
    }

    /// Peek without updating LRU or hit/miss statistics (used by remote-L3
    /// probes, which on real hardware go through the directory rather than
    /// perturbing the remote cache's replacement state).
    pub fn probe(&self, line: u64, current_version: u32) -> bool {
        let range = self.set_range(line);
        self.ways[range]
            .iter()
            .any(|w| w.valid && w.line == line && w.version == current_version)
    }

    /// Install `line` at `version`, evicting the LRU way of its set if
    /// needed. Returns the evicted line address, if any.
    pub fn fill(&mut self, line: u64, version: u32) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        let ways = &mut self.ways[range];
        // Already present (e.g. refilled after a version bump): refresh.
        if let Some(w) = ways.iter_mut().find(|w| w.valid && w.line == line) {
            w.version = version;
            w.lru = tick;
            return None;
        }
        if let Some(w) = ways.iter_mut().find(|w| !w.valid) {
            *w = Way { line, version, lru: tick, valid: true };
            return None;
        }
        let victim = ways.iter_mut().min_by_key(|w| w.lru).expect("assoc > 0");
        let evicted = victim.line;
        *victim = Way { line, version, lru: tick, valid: true };
        Some(evicted)
    }

    /// Remove `line` if present (used when a page is unmapped).
    pub fn invalidate(&mut self, line: u64) {
        let range = self.set_range(line);
        for w in &mut self.ways[range] {
            if w.valid && w.line == line {
                w.valid = false;
            }
        }
    }

    /// (hits, misses) counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// Global coherence version table shared by every cache on the machine.
///
/// Only lines that have ever been written occupy an entry; read-only lines
/// are version 0 everywhere.
#[derive(Debug, Default)]
pub struct VersionTable {
    versions: FxHashMap<u64, (u32, u32)>, // line -> (version, last writer domain)
}

impl VersionTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current version of `line` (0 if never written).
    pub fn version(&self, line: u64) -> u32 {
        self.versions.get(&line).map_or(0, |v| v.0)
    }

    /// Domain of the last writer, if the line has been written.
    pub fn last_writer(&self, line: u64) -> Option<u32> {
        self.versions.get(&line).map(|v| v.1)
    }

    /// Record a store to `line` from `domain`, invalidating all cached
    /// copies filled at earlier versions. Returns the new version.
    pub fn bump(&mut self, line: u64, domain: u32) -> u32 {
        let e = self.versions.entry(line).or_insert((0, domain));
        e.0 = e.0.wrapping_add(1);
        e.1 = domain;
        e.0
    }

    /// Number of distinct lines ever written (test/diagnostic aid).
    pub fn written_lines(&self) -> usize {
        self.versions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn small() -> Cache {
        // 4 sets x 2 ways of 64B lines = 512B.
        Cache::new(&CacheConfig { capacity: 512, assoc: 2, latency: 2 }, 64)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert!(!c.lookup(10, 0));
        c.fill(10, 0);
        assert!(c.lookup(10, 0));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Lines 0, 4, 8 all map to set 0 (line % 4).
        c.fill(0, 0);
        c.fill(4, 0);
        assert!(c.lookup(0, 0)); // 0 is now MRU, 4 is LRU
        let evicted = c.fill(8, 0);
        assert_eq!(evicted, Some(4));
        assert!(c.lookup(0, 0));
        assert!(!c.lookup(4, 0));
        assert!(c.lookup(8, 0));
    }

    #[test]
    fn version_mismatch_is_miss() {
        let mut c = small();
        c.fill(7, 0);
        assert!(c.lookup(7, 0));
        // A writer elsewhere bumped the version: our copy is stale.
        assert!(!c.lookup(7, 1));
        // And the stale copy was invalidated, so even the old version
        // misses now.
        assert!(!c.lookup(7, 0));
    }

    #[test]
    fn refill_updates_version_in_place() {
        let mut c = small();
        c.fill(7, 0);
        let evicted = c.fill(7, 3);
        assert_eq!(evicted, None);
        assert!(c.lookup(7, 3));
    }

    #[test]
    fn probe_does_not_touch_lru() {
        let mut c = small();
        c.fill(0, 0);
        c.fill(4, 0);
        // Probing 4 must not make it MRU.
        assert!(c.probe(4, 0));
        // lookup(0) then fill(8): with probe not updating LRU, 4 was
        // filled later than 0... make 0 MRU explicitly:
        assert!(c.lookup(0, 0));
        let evicted = c.fill(8, 0);
        assert_eq!(evicted, Some(4));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.fill(12, 0);
        c.invalidate(12);
        assert!(!c.lookup(12, 0));
    }

    #[test]
    fn version_table_bumps_and_tracks_writer() {
        let mut vt = VersionTable::new();
        assert_eq!(vt.version(99), 0);
        assert_eq!(vt.last_writer(99), None);
        assert_eq!(vt.bump(99, 2), 1);
        assert_eq!(vt.bump(99, 3), 2);
        assert_eq!(vt.version(99), 2);
        assert_eq!(vt.last_writer(99), Some(3));
        assert_eq!(vt.written_lines(), 1);
    }
}
