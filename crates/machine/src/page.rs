//! Virtual-to-NUMA-domain page placement.
//!
//! Linux places a page on the domain of the first CPU to *touch* it
//! ("first touch") unless a policy says otherwise. The paper's
//! optimizations revolve around exactly this mechanism:
//!
//! * `calloc` by the master thread touches every page during zero-fill, so
//!   the whole array lands on the master's domain (the AMG2006 /
//!   Streamcluster / NW pathology);
//! * `numactl --interleave` interleaves *every* allocation in the process
//!   round-robin across domains (Table 2's middle row);
//! * `libnuma`'s interleaved allocator applies interleaving to *selected
//!   ranges* only (Table 2's bottom row);
//! * switching `calloc` to `malloc` leaves pages unplaced until the
//!   computation touches them, so parallel loops place pages near their
//!   users.
//!
//! [`PageTable`] models one process's address space at page granularity.

use std::collections::BTreeMap;

use dcp_support::FxHashMap;

use crate::topology::DomainId;

/// NUMA placement policy for a page range or a whole process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagePolicy {
    /// Place on the domain of the first toucher (Linux default).
    FirstTouch,
    /// Interleave pages across all domains by page number
    /// (numactl/libnuma interleave). Like Linux's interleave policy the
    /// target node is a pure function of the page's position, so
    /// placement is independent of touch order.
    Interleave,
    /// Always place on one fixed domain (numactl --membind).
    Bind(DomainId),
}

/// Per-process page table mapping virtual pages to NUMA domains.
#[derive(Debug)]
pub struct PageTable {
    page_bits: u32,
    domains: u32,
    placed: FxHashMap<u64, DomainId>,
    /// Process-wide default policy (what `numactl` sets).
    default_policy: PagePolicy,
    /// Range policies (what `libnuma` sets per allocation): keyed by start
    /// vpn, value (end_vpn_exclusive, policy). Non-overlapping.
    ranges: BTreeMap<u64, (u64, PagePolicy)>,
    /// Direct-mapped cache of pages resolved by [`PageTable::touch`],
    /// indexed by the low vpn bits: `(vpn, domain + 1)`, 0 meaning
    /// "empty". Placement is sticky until unmap, so only `unmap` needs to
    /// invalidate it.
    last: [(u64, u32); TOUCH_CACHE],
    pages_placed: u64,
}

/// Slots in the [`PageTable`] direct-mapped touch cache (power of two).
const TOUCH_CACHE: usize = 256;

impl PageTable {
    /// Create a page table for `domains` NUMA domains and `page_size`-byte
    /// pages (must be a power of two).
    pub fn new(page_size: u64, domains: u32) -> Self {
        assert!(page_size.is_power_of_two() && domains > 0);
        Self {
            page_bits: page_size.trailing_zeros(),
            domains,
            placed: FxHashMap::default(),
            default_policy: PagePolicy::FirstTouch,
            ranges: BTreeMap::new(),
            last: [(0, 0); TOUCH_CACHE],
            pages_placed: 0,
        }
    }

    /// Virtual page number of a byte address.
    pub fn vpn(&self, vaddr: u64) -> u64 {
        vaddr >> self.page_bits
    }

    /// Set the process-wide default policy (models `numactl`). Affects
    /// only pages placed afterwards.
    pub fn set_default_policy(&mut self, p: PagePolicy) {
        self.default_policy = p;
    }

    /// Apply `policy` to the byte range `[start, start+len)` (models
    /// `libnuma` per-allocation policies). Pages already placed keep their
    /// placement; the policy governs future first touches.
    ///
    /// # Panics
    /// Panics if the range overlaps an existing range policy; the runtime
    /// removes a range when the allocation is freed.
    pub fn set_range_policy(&mut self, start: u64, len: u64, policy: PagePolicy) {
        if len == 0 {
            return;
        }
        let s = self.vpn(start);
        let e = self.vpn(start + len - 1) + 1;
        if let Some((&rs, &(re, _))) = self.ranges.range(..e).next_back() {
            assert!(re <= s || rs >= e, "overlapping range policy [{s},{e}) vs [{rs},{re})");
        }
        self.ranges.insert(s, (e, policy));
    }

    /// Remove the range policy starting at byte address `start`, if any.
    pub fn clear_range_policy(&mut self, start: u64) {
        let s = self.vpn(start);
        self.ranges.remove(&s);
    }

    /// Forget placement for every page of `[start, start+len)`; called
    /// when memory is freed so a later reuse gets re-placed. Returns the
    /// vpns dropped (the caches/TLBs of the machine flush them).
    pub fn unmap(&mut self, start: u64, len: u64) -> Vec<u64> {
        if len == 0 {
            return Vec::new();
        }
        let s = self.vpn(start);
        let e = self.vpn(start + len - 1) + 1;
        let mut dropped = Vec::new();
        for vpn in s..e {
            if self.placed.remove(&vpn).is_some() {
                dropped.push(vpn);
            }
        }
        self.last = [(0, 0); TOUCH_CACHE];
        dropped
    }

    fn policy_for(&self, vpn: u64) -> PagePolicy {
        if let Some((&_, &(end, pol))) = self.ranges.range(..=vpn).next_back() {
            if vpn < end {
                return pol;
            }
        }
        self.default_policy
    }

    /// Resolve the domain of the page containing `vaddr`, placing it
    /// according to policy if this is the first touch. `toucher` is the
    /// domain of the accessing core.
    pub fn touch(&mut self, vaddr: u64, toucher: DomainId) -> DomainId {
        let vpn = self.vpn(vaddr);
        let slot = (vpn as usize) & (TOUCH_CACHE - 1);
        let (lv, ld) = self.last[slot];
        if ld != 0 && lv == vpn {
            return DomainId(ld - 1);
        }
        if let Some(&d) = self.placed.get(&vpn) {
            self.last[slot] = (vpn, d.0 + 1);
            return d;
        }
        let d = match self.policy_for(vpn) {
            PagePolicy::FirstTouch => toucher,
            PagePolicy::Bind(d) => d,
            PagePolicy::Interleave => DomainId((vpn % self.domains as u64) as u32),
        };
        self.placed.insert(vpn, d);
        self.last[slot] = (vpn, d.0 + 1);
        self.pages_placed += 1;
        d
    }

    /// Domain of `vaddr`'s page if it has been placed.
    pub fn domain_of(&self, vaddr: u64) -> Option<DomainId> {
        self.placed.get(&self.vpn(vaddr)).copied()
    }

    /// Predict, without mutating any placement state, which domain an
    /// access to `vaddr` by a core on `toucher` would resolve to. For
    /// placed pages and pages governed by an interleave or bind policy
    /// this is exact (interleave placement is a pure function of the
    /// page number); for unplaced first-touch pages it assumes `toucher`
    /// wins the race — the authoritative placement happens at [`touch`].
    ///
    /// [`touch`]: PageTable::touch
    pub fn predict(&self, vaddr: u64, toucher: DomainId) -> DomainId {
        let vpn = self.vpn(vaddr);
        if let Some(&d) = self.placed.get(&vpn) {
            return d;
        }
        match self.policy_for(vpn) {
            PagePolicy::FirstTouch => toucher,
            PagePolicy::Bind(d) => d,
            PagePolicy::Interleave => DomainId((vpn % self.domains as u64) as u32),
        }
    }

    /// Number of pages placed so far.
    pub fn pages_placed(&self) -> u64 {
        self.pages_placed
    }

    /// Histogram of placed pages per domain (diagnostics and tests).
    pub fn placement_histogram(&self) -> Vec<u64> {
        let mut h = vec![0u64; self.domains as usize];
        for d in self.placed.values() {
            h[d.0 as usize] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt() -> PageTable {
        PageTable::new(4096, 4)
    }

    #[test]
    fn first_touch_places_on_toucher() {
        let mut p = pt();
        assert_eq!(p.touch(0x1000, DomainId(2)), DomainId(2));
        // Second touch from elsewhere does not move the page.
        assert_eq!(p.touch(0x1008, DomainId(0)), DomainId(2));
    }

    #[test]
    fn interleave_round_robins() {
        let mut p = pt();
        p.set_default_policy(PagePolicy::Interleave);
        let ds: Vec<_> = (0..8).map(|i| p.touch(i * 4096, DomainId(0)).0).collect();
        assert_eq!(ds, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(p.placement_histogram(), vec![2, 2, 2, 2]);
    }

    #[test]
    fn bind_ignores_toucher() {
        let mut p = pt();
        p.set_default_policy(PagePolicy::Bind(DomainId(3)));
        assert_eq!(p.touch(0, DomainId(1)), DomainId(3));
    }

    #[test]
    fn range_policy_overrides_default() {
        let mut p = pt();
        p.set_range_policy(0x10000, 4 * 4096, PagePolicy::Interleave);
        // Inside the range: interleaved.
        assert_eq!(p.touch(0x10000, DomainId(3)), DomainId(0));
        assert_eq!(p.touch(0x11000, DomainId(3)), DomainId(1));
        // Outside: first touch.
        assert_eq!(p.touch(0x20000, DomainId(3)), DomainId(3));
    }

    #[test]
    fn clear_range_policy_restores_default() {
        let mut p = pt();
        p.set_range_policy(0x10000, 4096, PagePolicy::Bind(DomainId(1)));
        p.clear_range_policy(0x10000);
        assert_eq!(p.touch(0x10000, DomainId(2)), DomainId(2));
    }

    #[test]
    #[should_panic]
    fn overlapping_range_policies_panic() {
        let mut p = pt();
        p.set_range_policy(0x10000, 8192, PagePolicy::Interleave);
        p.set_range_policy(0x11000, 4096, PagePolicy::Interleave);
    }

    #[test]
    fn unmap_forgets_placement() {
        let mut p = pt();
        p.touch(0x5000, DomainId(1));
        let dropped = p.unmap(0x5000, 4096);
        assert_eq!(dropped, vec![5]);
        assert_eq!(p.domain_of(0x5000), None);
        // Re-touch places fresh.
        assert_eq!(p.touch(0x5000, DomainId(0)), DomainId(0));
    }

    #[test]
    fn calloc_master_vs_parallel_first_touch_shape() {
        // The AMG pathology in miniature: master zero-fill concentrates
        // pages; parallel touch spreads them.
        let mut master = pt();
        for i in 0..16u64 {
            master.touch(i * 4096, DomainId(0));
        }
        assert_eq!(master.placement_histogram(), vec![16, 0, 0, 0]);

        let mut parallel = pt();
        for i in 0..16u64 {
            parallel.touch(i * 4096, DomainId((i % 4) as u32));
        }
        assert_eq!(parallel.placement_histogram(), vec![4, 4, 4, 4]);
    }
}
