//! Per-core stride prefetcher (reference prediction table).
//!
//! Each entry tracks the last address and stride observed for one program
//! counter. After `confidence` consecutive accesses with the same stride,
//! the prefetcher predicts the next `degree` lines and hands them to the
//! access pipeline to install in L2. Unit-stride loops therefore run at
//! near-L2 speed while long-stride (> `max_stride`) or indirect accesses
//! get no help — this is the mechanism behind the Sweep3D and LULESH
//! spatial-locality findings.
//!
//! Predictions are written into a caller-provided [`Predictions`] buffer
//! (a fixed array on the caller's stack) — `observe` runs on every
//! simulated access and must not allocate.

use crate::config::PrefetchConfig;

/// Upper bound on [`PrefetchConfig::degree`]; sizes the fixed prediction
/// buffer.
pub const MAX_DEGREE: usize = 8;

/// Fixed-capacity output buffer for one `observe` call. Cheap to create
/// on the stack and `Copy`, so callers can snapshot it past borrows.
#[derive(Debug, Clone, Copy, Default)]
pub struct Predictions {
    addrs: [u64; MAX_DEGREE],
    len: usize,
}

impl Predictions {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn clear(&mut self) {
        self.len = 0;
    }

    #[inline]
    fn push(&mut self, addr: u64) {
        self.addrs[self.len] = addr;
        self.len += 1;
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn as_slice(&self) -> &[u64] {
        &self.addrs[..self.len]
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    pc: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
    lru: u64,
    valid: bool,
}

const EMPTY: Entry =
    Entry { pc: 0, last_addr: 0, stride: 0, confidence: 0, lru: 0, valid: false };

/// Stride prefetcher state for one physical core.
#[derive(Debug, Clone)]
pub struct Prefetcher {
    table: Vec<Entry>,
    cfg: PrefetchConfig,
    /// Index of the entry that matched the previous call; a loop body
    /// re-observing the same pc skips the table scan. `usize::MAX` when
    /// unknown.
    last: usize,
    tick: u64,
    issued: u64,
}

impl Prefetcher {
    pub fn new(cfg: PrefetchConfig) -> Self {
        assert!(cfg.table_entries > 0);
        assert!(
            cfg.degree as usize <= MAX_DEGREE,
            "prefetch degree {} exceeds the fixed buffer ({MAX_DEGREE})",
            cfg.degree
        );
        Self { table: vec![EMPTY; cfg.table_entries], cfg, last: usize::MAX, tick: 0, issued: 0 }
    }

    /// Observe a demand access by `pc` to byte address `addr`; writes the
    /// byte addresses the prefetcher wants brought in to `out` (cleared
    /// first; left empty when not confident). `line_size` is used to step
    /// whole lines.
    pub fn observe(&mut self, pc: u64, addr: u64, line_size: u64, out: &mut Predictions) {
        out.clear();
        self.tick += 1;
        let tick = self.tick;
        let cached = matches!(self.table.get(self.last), Some(e) if e.valid && e.pc == pc);
        let idx = if cached {
            self.last
        } else {
            match self.table.iter().position(|e| e.valid && e.pc == pc) {
                Some(i) => {
                    self.last = i;
                    i
                }
                None => {
                    let i = self
                        .table
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| if e.valid { e.lru } else { 0 })
                        .map(|(i, _)| i)
                        .expect("non-empty table");
                    self.table[i] = Entry {
                        pc,
                        last_addr: addr,
                        stride: 0,
                        confidence: 0,
                        lru: tick,
                        valid: true,
                    };
                    self.last = i;
                    return;
                }
            }
        };
        let e = &mut self.table[idx];
        e.lru = tick;
        let stride = addr as i64 - e.last_addr as i64;
        e.last_addr = addr;
        if stride == 0 {
            return;
        }
        if stride.abs() >= self.cfg.max_stride {
            // At or beyond the page-stride limit: every access lands on a
            // new page, which real prefetchers will not follow.
            e.stride = 0;
            e.confidence = 0;
            return;
        }
        if stride == e.stride {
            e.confidence = e.confidence.saturating_add(1);
        } else {
            e.stride = stride;
            e.confidence = 1;
        }
        if e.confidence < self.cfg.confidence {
            return;
        }
        // Confident: prefetch the next `degree` *lines* along the stride.
        // For sub-line strides step whole lines so we do not re-fetch the
        // same line `degree` times.
        let step = if stride.unsigned_abs() < line_size {
            if stride > 0 { line_size as i64 } else { -(line_size as i64) }
        } else {
            stride
        };
        let mut a = addr as i64;
        for _ in 0..self.cfg.degree {
            a += step;
            if a < 0 {
                break;
            }
            out.push(a as u64);
        }
        self.issued += out.len() as u64;
    }

    /// Number of prefetches issued since construction.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> Prefetcher {
        Prefetcher::new(PrefetchConfig { table_entries: 4, confidence: 2, degree: 2, max_stride: 4096 })
    }

    fn obs(p: &mut Prefetcher, pc: u64, addr: u64) -> Vec<u64> {
        let mut out = Predictions::new();
        p.observe(pc, addr, 64, &mut out);
        out.as_slice().to_vec()
    }

    #[test]
    fn unit_stride_trains_and_issues() {
        let mut p = pf();
        assert!(obs(&mut p, 1, 0).is_empty()); // allocate entry
        assert!(obs(&mut p, 1, 8).is_empty()); // stride=8, conf=1
        let pred = obs(&mut p, 1, 16); // conf=2 -> issue
        // Sub-line stride steps whole lines: 16+64, 16+128.
        assert_eq!(pred, vec![80, 144]);
    }

    #[test]
    fn large_stride_within_limit_prefetches_along_stride() {
        let mut p = pf();
        obs(&mut p, 2, 0);
        obs(&mut p, 2, 1024);
        let pred = obs(&mut p, 2, 2048);
        assert_eq!(pred, vec![3072, 4096]);
    }

    #[test]
    fn page_crossing_stride_defeats_prefetcher() {
        let mut p = pf();
        obs(&mut p, 3, 0);
        for i in 1..10u64 {
            let pred = obs(&mut p, 3, i * 8192);
            assert!(pred.is_empty(), "stride > max must never prefetch");
        }
    }

    #[test]
    fn irregular_pattern_never_gains_confidence() {
        let mut p = pf();
        let addrs = [0u64, 64, 400, 32, 4000, 128, 900];
        let mut issued = 0;
        for &a in &addrs {
            issued += obs(&mut p, 4, a).len();
        }
        assert_eq!(issued, 0);
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn table_lru_replacement_keeps_hot_pcs() {
        let mut p = pf();
        // Fill the 4-entry table.
        for pc in 0..4u64 {
            obs(&mut p, pc, 0);
        }
        // Touch pc 0 to keep it hot, then add a 5th pc.
        obs(&mut p, 0, 8);
        obs(&mut p, 99, 0);
        // pc 0 still trains to confidence.
        let pred = obs(&mut p, 0, 16);
        assert!(!pred.is_empty());
    }

    #[test]
    fn negative_stride_prefetches_downward() {
        let mut p = pf();
        obs(&mut p, 5, 10_000);
        obs(&mut p, 5, 9_936);
        let pred = obs(&mut p, 5, 9_872);
        assert_eq!(pred, vec![9_808, 9_744]);
    }

    #[test]
    fn buffer_is_cleared_between_calls() {
        // A confident call followed by a non-confident one must not leave
        // stale predictions in the reused buffer.
        let mut p = pf();
        let mut out = Predictions::new();
        p.observe(6, 0, 64, &mut out);
        p.observe(6, 64, 64, &mut out);
        p.observe(6, 128, 64, &mut out);
        assert!(!out.is_empty());
        p.observe(6, 128, 64, &mut out); // stride 0: no predictions
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic]
    fn degree_beyond_buffer_panics() {
        let _ = Prefetcher::new(PrefetchConfig {
            table_entries: 4,
            confidence: 2,
            degree: MAX_DEGREE as u32 + 1,
            max_stride: 4096,
        });
    }
}
