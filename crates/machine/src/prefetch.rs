//! Per-core stride prefetcher (reference prediction table).
//!
//! Each entry tracks the last address and stride observed for one program
//! counter. After `confidence` consecutive accesses with the same stride,
//! the prefetcher predicts the next `degree` lines and hands them to the
//! access pipeline to install in L2. Unit-stride loops therefore run at
//! near-L2 speed while long-stride (> `max_stride`) or indirect accesses
//! get no help — this is the mechanism behind the Sweep3D and LULESH
//! spatial-locality findings.

use crate::config::PrefetchConfig;

#[derive(Debug, Clone, Copy)]
struct Entry {
    pc: u64,
    last_addr: u64,
    stride: i64,
    confidence: u8,
    lru: u64,
    valid: bool,
}

const EMPTY: Entry =
    Entry { pc: 0, last_addr: 0, stride: 0, confidence: 0, lru: 0, valid: false };

/// Stride prefetcher state for one physical core.
#[derive(Debug, Clone)]
pub struct Prefetcher {
    table: Vec<Entry>,
    cfg: PrefetchConfig,
    tick: u64,
    issued: u64,
}

impl Prefetcher {
    pub fn new(cfg: PrefetchConfig) -> Self {
        assert!(cfg.table_entries > 0);
        Self { table: vec![EMPTY; cfg.table_entries], cfg, tick: 0, issued: 0 }
    }

    /// Observe a demand access by `pc` to byte address `addr`; returns the
    /// byte addresses the prefetcher wants brought in (empty when not
    /// confident). `line_size` is used to step whole lines.
    pub fn observe(&mut self, pc: u64, addr: u64, line_size: u64) -> Vec<u64> {
        self.tick += 1;
        let tick = self.tick;
        let idx = match self.table.iter().position(|e| e.valid && e.pc == pc) {
            Some(i) => i,
            None => {
                let i = self
                    .table
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| if e.valid { e.lru } else { 0 })
                    .map(|(i, _)| i)
                    .expect("non-empty table");
                self.table[i] =
                    Entry { pc, last_addr: addr, stride: 0, confidence: 0, lru: tick, valid: true };
                return Vec::new();
            }
        };
        let e = &mut self.table[idx];
        e.lru = tick;
        let stride = addr as i64 - e.last_addr as i64;
        e.last_addr = addr;
        if stride == 0 {
            return Vec::new();
        }
        if stride.abs() >= self.cfg.max_stride {
            // At or beyond the page-stride limit: every access lands on a
            // new page, which real prefetchers will not follow.
            e.stride = 0;
            e.confidence = 0;
            return Vec::new();
        }
        if stride == e.stride {
            e.confidence = e.confidence.saturating_add(1);
        } else {
            e.stride = stride;
            e.confidence = 1;
        }
        if e.confidence < self.cfg.confidence {
            return Vec::new();
        }
        // Confident: prefetch the next `degree` *lines* along the stride.
        // For sub-line strides step whole lines so we do not re-fetch the
        // same line `degree` times.
        let step = if stride.unsigned_abs() < line_size {
            if stride > 0 { line_size as i64 } else { -(line_size as i64) }
        } else {
            stride
        };
        let mut out = Vec::with_capacity(self.cfg.degree as usize);
        let mut a = addr as i64;
        for _ in 0..self.cfg.degree {
            a += step;
            if a < 0 {
                break;
            }
            out.push(a as u64);
        }
        self.issued += out.len() as u64;
        out
    }

    /// Number of prefetches issued since construction.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> Prefetcher {
        Prefetcher::new(PrefetchConfig { table_entries: 4, confidence: 2, degree: 2, max_stride: 4096 })
    }

    #[test]
    fn unit_stride_trains_and_issues() {
        let mut p = pf();
        assert!(p.observe(1, 0, 64).is_empty()); // allocate entry
        assert!(p.observe(1, 8, 64).is_empty()); // stride=8, conf=1
        let pred = p.observe(1, 16, 64); // conf=2 -> issue
        // Sub-line stride steps whole lines: 16+64, 16+128.
        assert_eq!(pred, vec![80, 144]);
    }

    #[test]
    fn large_stride_within_limit_prefetches_along_stride() {
        let mut p = pf();
        p.observe(2, 0, 64);
        p.observe(2, 1024, 64);
        let pred = p.observe(2, 2048, 64);
        assert_eq!(pred, vec![3072, 4096]);
    }

    #[test]
    fn page_crossing_stride_defeats_prefetcher() {
        let mut p = pf();
        p.observe(3, 0, 64);
        for i in 1..10u64 {
            let pred = p.observe(3, i * 8192, 64);
            assert!(pred.is_empty(), "stride > max must never prefetch");
        }
    }

    #[test]
    fn irregular_pattern_never_gains_confidence() {
        let mut p = pf();
        let addrs = [0u64, 64, 400, 32, 4000, 128, 900];
        let mut issued = 0;
        for &a in &addrs {
            issued += p.observe(4, a, 64).len();
        }
        assert_eq!(issued, 0);
        assert_eq!(p.issued(), 0);
    }

    #[test]
    fn table_lru_replacement_keeps_hot_pcs() {
        let mut p = pf();
        // Fill the 4-entry table.
        for pc in 0..4u64 {
            p.observe(pc, 0, 64);
        }
        // Touch pc 0 to keep it hot, then add a 5th pc.
        p.observe(0, 8, 64);
        p.observe(99, 0, 64);
        // pc 0 still trains to confidence.
        let pred = p.observe(0, 16, 64);
        assert!(!pred.is_empty());
    }

    #[test]
    fn negative_stride_prefetches_downward() {
        let mut p = pf();
        p.observe(5, 10_000, 64);
        p.observe(5, 9_936, 64);
        let pred = p.observe(5, 9_872, 64);
        assert_eq!(pred, vec![9_808, 9_744]);
    }
}
