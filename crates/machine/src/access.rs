//! The memory access pipeline: one load/store resolved through TLB, the
//! cache hierarchy, remote caches, and DRAM.
//!
//! [`Machine`] owns every stateful hardware structure. The runtime resolves
//! NUMA page placement first (page tables are per process) and passes the
//! home domain in; the machine then walks the hierarchy and reports where
//! the data came from and what it cost — the exact tuple the paper's PMU
//! hardware exposes to the profiler (§3: latency, data source, cache/TLB
//! miss flags).

use crate::cache::{Cache, VersionTable};
use crate::config::MachineConfig;
use crate::dram::Dram;
use crate::interconnect::Interconnect;
use crate::mshr::{PfEntry, PfMshr};
use crate::prefetch::{Predictions, Prefetcher};
use crate::tlb::Tlb;
use crate::topology::{CoreId, DomainId, Topology};
use crate::Cycles;

/// Whether a memory operation reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    Load,
    Store,
}

/// Where the data for an access was found. Mirrors the data-source encodes
/// of AMD IBS and POWER7 marked events (`PM_MRK_DATA_FROM_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataSource {
    L1,
    L2,
    /// Own socket's shared L3.
    L3,
    /// Another socket's L3 (cache-to-cache transfer).
    RemoteL3,
    /// DRAM attached to the accessing core's own domain.
    LocalDram,
    /// DRAM attached to another domain (a *remote access* in the paper's
    /// terminology; the event `PM_MRK_DATA_FROM_RMEM` counts these).
    RemoteDram,
}

impl DataSource {
    /// True for the two DRAM sources.
    pub fn is_dram(self) -> bool {
        matches!(self, DataSource::LocalDram | DataSource::RemoteDram)
    }

    /// True when the access left the socket (remote cache or remote DRAM).
    pub fn is_remote(self) -> bool {
        matches!(self, DataSource::RemoteL3 | DataSource::RemoteDram)
    }
}

/// Outcome of one memory access.
#[derive(Debug, Clone, Copy)]
pub struct AccessResult {
    /// Total latency in cycles, including TLB miss penalty, queueing and
    /// interconnect time.
    pub latency: u32,
    pub source: DataSource,
    pub tlb_miss: bool,
    /// The NUMA domain the target page lives on.
    pub home: DomainId,
}

/// Aggregate hardware event counters (machine-wide).
#[derive(Debug, Default, Clone)]
pub struct MachineStats {
    pub accesses: u64,
    pub loads: u64,
    pub stores: u64,
    pub total_latency: u64,
    pub l1_hits: u64,
    pub l2_hits: u64,
    pub l3_hits: u64,
    pub remote_l3_hits: u64,
    pub local_dram: u64,
    pub remote_dram: u64,
    pub tlb_misses: u64,
    pub prefetch_fills: u64,
    /// Demand accesses fully hidden by a timely prefetch.
    pub prefetch_hidden: u64,
    /// Demand accesses that met an in-flight (late) prefetch: they still
    /// observe the DRAM source with partial latency, as real IBS reports.
    pub prefetch_late: u64,
}

impl MachineStats {
    /// Fold another counter block into this one (epoch commit merges the
    /// per-shard counters into the machine-wide block in shard order).
    pub fn merge(&mut self, o: &MachineStats) {
        self.accesses += o.accesses;
        self.loads += o.loads;
        self.stores += o.stores;
        self.total_latency = self.total_latency.wrapping_add(o.total_latency);
        self.l1_hits += o.l1_hits;
        self.l2_hits += o.l2_hits;
        self.l3_hits += o.l3_hits;
        self.remote_l3_hits += o.remote_l3_hits;
        self.local_dram += o.local_dram;
        self.remote_dram += o.remote_dram;
        self.tlb_misses += o.tlb_misses;
        self.prefetch_fills += o.prefetch_fills;
        self.prefetch_hidden += o.prefetch_hidden;
        self.prefetch_late += o.prefetch_late;
    }
}

/// The simulated machine: every core's private structures, every socket's
/// L3, the DRAM controllers, and the interconnect.
#[derive(Debug)]
pub struct Machine {
    pub(crate) cfg: MachineConfig,
    pub(crate) line_bits: u32,
    pub(crate) page_bits: u32,
    /// Hardware thread → physical core, precomputed from the topology so
    /// the per-access path indexes instead of dividing.
    pub(crate) pcore_of: Vec<u32>,
    /// Hardware thread → NUMA domain, precomputed likewise.
    pub(crate) domain_of: Vec<u32>,
    pub(crate) l1: Vec<Cache>,
    pub(crate) l2: Vec<Cache>,
    pub(crate) l3: Vec<Cache>,
    pub(crate) tlb: Vec<Tlb>,
    pub(crate) prefetch: Vec<Prefetcher>,
    pub(crate) dram: Dram,
    pub(crate) interconnect: Interconnect,
    pub(crate) versions: VersionTable,
    /// Per-physical-core in-flight prefetch buffers (MSHRs).
    pub(crate) pfbuf: Vec<PfMshr>,
    pub(crate) stats: MachineStats,
    /// Per-domain epoch state for the shard-parallel access path (see
    /// [`crate::epoch`]); lives here so buffer capacity is reused across
    /// epochs. Empty until [`Machine::split_epoch`] is first called.
    pub(crate) epoch: Vec<crate::epoch::ShardEpochState>,
}

/// Maximum in-flight prefetches per core (MSHR budget).
pub(crate) const PF_BUDGET: usize = 96;

impl Machine {
    /// Build a machine from its configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        cfg.validate();
        let cores = cfg.topology.physical_cores() as usize;
        let domains = cfg.topology.domains as usize;
        Self {
            line_bits: cfg.line_size.trailing_zeros(),
            page_bits: cfg.page_size.trailing_zeros(),
            pcore_of: (0..cfg.topology.hw_threads())
                .map(|t| cfg.topology.physical_core_of(CoreId(t)))
                .collect(),
            domain_of: (0..cfg.topology.hw_threads())
                .map(|t| cfg.topology.domain_of(CoreId(t)).0)
                .collect(),
            l1: (0..cores).map(|_| Cache::new(&cfg.l1, cfg.line_size)).collect(),
            l2: (0..cores).map(|_| Cache::new(&cfg.l2, cfg.line_size)).collect(),
            l3: (0..domains).map(|_| Cache::new(&cfg.l3, cfg.line_size)).collect(),
            tlb: (0..cores).map(|_| Tlb::new(cfg.dtlb_entries)).collect(),
            prefetch: (0..cores).map(|_| Prefetcher::new(cfg.prefetch)).collect(),
            dram: Dram::new(cfg.topology.domains, cfg.dram_service),
            interconnect: Interconnect::new(&cfg.topology, cfg.hop_latency),
            versions: VersionTable::with_lines_per_page(cfg.page_size / cfg.line_size),
            pfbuf: (0..cores).map(|_| PfMshr::new()).collect(),
            cfg,
            stats: MachineStats::default(),
            epoch: Vec::new(),
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The machine's topology.
    pub fn topology(&self) -> &Topology {
        &self.cfg.topology
    }

    /// Machine-wide event counters.
    pub fn stats(&self) -> &MachineStats {
        &self.stats
    }

    /// Per-domain DRAM access counts (bandwidth demand picture).
    pub fn dram_histogram(&self) -> Vec<u64> {
        self.dram.access_histogram()
    }

    fn line_of(&self, vaddr: u64) -> u64 {
        vaddr >> self.line_bits
    }

    /// Execute one memory access.
    ///
    /// * `core` — hardware thread performing the access.
    /// * `vaddr` — virtual address (globally unique across processes; the
    ///   runtime gives each rank a disjoint address range).
    /// * `home` — NUMA domain of the page, resolved by the caller's page
    ///   table (placement is a per-process concern).
    /// * `pc` — instruction address, used by the stride prefetcher.
    /// * `now` — the accessing thread's clock, for queueing.
    pub fn access(
        &mut self,
        core: CoreId,
        vaddr: u64,
        kind: AccessKind,
        home: DomainId,
        pc: u64,
        now: Cycles,
    ) -> AccessResult {
        let pcore = self.pcore_of[core.0 as usize] as usize;
        let my_domain = DomainId(self.domain_of[core.0 as usize]);
        let line = self.line_of(vaddr);
        let version = self.versions.version_hot(line);

        let mut latency: u32 = 0;
        let vpn = vaddr >> self.page_bits;
        let tlb_miss = !self.tlb[pcore].access(vpn);
        if tlb_miss {
            latency += self.cfg.tlb_miss_penalty;
            self.stats.tlb_misses += 1;
        }

        // Walk the hierarchy (read-for-ownership for stores too:
        // write-allocate).
        let source = if self.l1[pcore].lookup(line, version) {
            latency += self.cfg.l1.latency;
            self.stats.l1_hits += 1;
            DataSource::L1
        } else if self.l2[pcore].lookup(line, version) {
            latency += self.cfg.l2.latency;
            self.l1[pcore].fill(line, version);
            self.stats.l2_hits += 1;
            DataSource::L2
        } else if self.l3[my_domain.0 as usize].lookup(line, version) {
            latency += self.cfg.l3.latency;
            self.l2[pcore].fill(line, version);
            self.l1[pcore].fill(line, version);
            self.stats.l3_hits += 1;
            DataSource::L3
        } else if let Some(pf) = self.take_prefetch(pcore, line, version) {
            // The line was prefetched. A timely prefetch hides the miss
            // entirely (looks like an L2 hit); a late one exposes its true
            // source with whatever latency remains — exactly how real
            // hardware samples report partially-hidden misses.
            let now_eff = now + latency as Cycles;
            self.fill_local(pcore, my_domain, line, version);
            if pf.ready <= now_eff {
                latency += self.cfg.l2.latency;
                self.stats.prefetch_hidden += 1;
                DataSource::L2
            } else {
                let wait = (pf.ready - now_eff).min(u32::MAX as Cycles) as u32;
                latency = latency.saturating_add(wait.max(self.cfg.l2.latency));
                self.stats.prefetch_late += 1;
                match pf.src {
                    DataSource::RemoteDram => self.stats.remote_dram += 1,
                    _ => self.stats.local_dram += 1,
                }
                pf.src
            }
        } else if let Some(owner) = self.remote_l3_owner(line, version, my_domain) {
            // Cache-to-cache transfer from another socket.
            let hop = self.interconnect.traverse(
                &self.cfg.topology,
                my_domain,
                owner,
                now + latency as Cycles,
            );
            latency = latency
                .saturating_add(self.cfg.remote_cache_latency)
                .saturating_add(hop.min(u32::MAX as Cycles) as u32);
            self.fill_local(pcore, my_domain, line, version);
            self.stats.remote_l3_hits += 1;
            DataSource::RemoteL3
        } else {
            // DRAM at the page's home domain.
            let t = now + latency as Cycles;
            let queue = self.dram.request(home.0, t);
            latency = latency
                .saturating_add(self.cfg.dram_latency)
                .saturating_add(queue.min(u32::MAX as Cycles) as u32);
            let src = if home == my_domain {
                self.stats.local_dram += 1;
                DataSource::LocalDram
            } else {
                let hop =
                    self.interconnect.traverse(&self.cfg.topology, my_domain, home, t);
                latency = latency.saturating_add(hop.min(u32::MAX as Cycles) as u32);
                self.stats.remote_dram += 1;
                DataSource::RemoteDram
            };
            self.fill_local(pcore, my_domain, line, version);
            src
        };

        // Stores publish a new version, invalidating every other copy, and
        // refresh the local copies.
        if kind == AccessKind::Store {
            let nv = self.versions.bump(line, my_domain.0);
            self.fill_local(pcore, my_domain, line, nv);
            self.stats.stores += 1;
        } else {
            self.stats.loads += 1;
        }

        // Train the prefetcher and launch predictions as *timed* in-flight
        // requests. Each prefetch consumes DRAM bandwidth at the demand
        // access's home domain (predictions are near the demand address,
        // so this is almost always the right controller) and arrives after
        // the full memory latency — a demand access that comes too soon
        // still observes the DRAM source.
        let mut preds = Predictions::new();
        self.prefetch[pcore].observe(pc, vaddr, self.cfg.line_size, &mut preds);
        if !preds.is_empty() {
            let now_eff = now + latency as Cycles;
            for &p in preds.as_slice() {
                let pl = self.line_of(p);
                let pv = self.versions.version_hot(pl);
                // All three checks are pure, so evaluation order is free:
                // the MSHR probe is a single hash slot and hits most often
                // (this line was usually predicted last access too), so it
                // goes first and skips both set scans.
                if self.pfbuf[pcore].contains(pl)
                    || self.l2[pcore].probe(pl, pv)
                    || self.l3[my_domain.0 as usize].probe(pl, pv)
                {
                    continue;
                }
                if self.pfbuf[pcore].len() >= PF_BUDGET {
                    // Drop completed entries; if genuinely full, skip (MSHRs
                    // exhausted — real prefetchers throttle the same way).
                    self.pfbuf[pcore].retain(|_, e| e.ready > now_eff);
                    if self.pfbuf[pcore].len() >= PF_BUDGET {
                        continue;
                    }
                }
                // Throttle under memory pressure: a saturated controller
                // gets demand requests only.
                if self.dram.backlog(home.0, now_eff)
                    > 64 * self.cfg.dram_service as Cycles
                {
                    continue;
                }
                let queue = self.dram.request(home.0, now_eff);
                let (hop, src) = if home == my_domain {
                    (0, DataSource::LocalDram)
                } else {
                    (
                        self.interconnect.traverse(&self.cfg.topology, my_domain, home, now_eff),
                        DataSource::RemoteDram,
                    )
                };
                let ready = now_eff + self.cfg.dram_latency as Cycles + queue + hop;
                self.pfbuf[pcore].insert(pl, PfEntry { ready, version: pv, src });
                self.stats.prefetch_fills += 1;
            }
        }

        self.stats.accesses += 1;
        self.stats.total_latency += latency as u64;
        AccessResult { latency, source, tlb_miss, home }
    }

    /// Find a remote L3 that can source `line` via cache-to-cache
    /// transfer. Directory-based coherence only intervenes for lines in
    /// Owned/Modified state — held by the *last writer's* socket. Copies
    /// that were merely read into other sockets' L3s are Shared and are
    /// re-fetched from memory, as on real hardware.
    pub(crate) fn remote_l3_owner(&self, line: u64, version: u32, me: DomainId) -> Option<DomainId> {
        if version == 0 {
            // Never-written lines are not tracked by the directory.
            return None;
        }
        let w = self.versions.last_writer(line)?;
        let wd = DomainId(w);
        if wd != me && self.l3[w as usize].probe(line, version) {
            Some(wd)
        } else {
            None
        }
    }

    /// Consume an in-flight prefetch for `line` if one exists at the
    /// current coherence version. Stale entries are dropped.
    fn take_prefetch(&mut self, pcore: usize, line: u64, version: u32) -> Option<PfEntry> {
        let e = self.pfbuf[pcore].remove(line)?;
        if e.version == version {
            Some(e)
        } else {
            None
        }
    }

    fn fill_local(&mut self, pcore: usize, domain: DomainId, line: u64, version: u32) {
        self.l3[domain.0 as usize].fill(line, version);
        self.l2[pcore].fill(line, version);
        self.l1[pcore].fill(line, version);
    }

    /// Flush one page's translation from every TLB (called on munmap).
    /// Cached data lines are deliberately left in place: on real hardware
    /// freed-and-reused memory stays cached, and our allocator reuses
    /// address ranges the same way libc does.
    pub fn flush_page(&mut self, vpn: u64) {
        for t in &mut self.tlb {
            t.flush_page(vpn);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::tiny_test())
    }

    const D0: DomainId = DomainId(0);
    const D1: DomainId = DomainId(1);

    #[test]
    fn first_access_is_dram_second_is_l1() {
        let mut m = machine();
        let r1 = m.access(CoreId(0), 0x1000, AccessKind::Load, D0, 1, 0);
        assert_eq!(r1.source, DataSource::LocalDram);
        assert!(r1.tlb_miss);
        let r2 = m.access(CoreId(0), 0x1000, AccessKind::Load, D0, 1, 100);
        assert_eq!(r2.source, DataSource::L1);
        assert!(!r2.tlb_miss);
        assert!(r2.latency < r1.latency);
    }

    #[test]
    fn remote_page_pays_interconnect() {
        let mut m = machine();
        let local = m.access(CoreId(0), 0x1000, AccessKind::Load, D0, 1, 0);
        let remote = m.access(CoreId(0), 0x2000, AccessKind::Load, D1, 2, 0);
        assert_eq!(remote.source, DataSource::RemoteDram);
        assert!(remote.latency > local.latency + m.config().hop_latency / 2);
    }

    #[test]
    fn same_socket_sharing_hits_l3() {
        let mut m = machine();
        // Core 0 pulls the line in; core 1 (same domain in tiny_test:
        // cores 0,1 -> domain 0) finds it in the shared L3.
        m.access(CoreId(0), 0x3000, AccessKind::Load, D0, 1, 0);
        let r = m.access(CoreId(1), 0x3000, AccessKind::Load, D0, 1, 0);
        assert_eq!(r.source, DataSource::L3);
    }

    #[test]
    fn cross_socket_sharing_after_write_is_remote_cache() {
        let mut m = machine();
        // Core 0 (domain 0) writes the line, so it is versioned and
        // resident in domain 0's caches.
        m.access(CoreId(0), 0x4000, AccessKind::Store, D0, 1, 0);
        // Core 2 (domain 1) reads it: cache-to-cache from domain 0's L3.
        let r = m.access(CoreId(2), 0x4000, AccessKind::Load, D0, 2, 0);
        assert_eq!(r.source, DataSource::RemoteL3);
        assert!(r.source.is_remote());
    }

    #[test]
    fn store_invalidates_other_copies() {
        let mut m = machine();
        m.access(CoreId(0), 0x5000, AccessKind::Load, D0, 1, 0);
        m.access(CoreId(2), 0x5000, AccessKind::Load, D0, 2, 0);
        // Both sockets now hold the line. Core 2 writes it.
        m.access(CoreId(2), 0x5000, AccessKind::Store, D0, 3, 0);
        // Core 0's copy is stale: it must go remote (to domain 1's L3).
        let r = m.access(CoreId(0), 0x5000, AccessKind::Load, D0, 4, 0);
        assert_eq!(r.source, DataSource::RemoteL3);
    }

    #[test]
    fn sequential_scan_benefits_from_prefetch() {
        // Two scans over fresh regions, one sequential, one with a
        // page-crossing stride, each touching the same number of lines.
        // Clocks advance with the observed latencies, as a real thread's
        // would, so prefetch lead time is self-consistent.
        let mut m = machine();
        let mut t = 0u64;
        let mut seq_lat = 0u64;
        for i in 0..256u64 {
            let r = m.access(CoreId(0), 0x10_0000 + i * 64, AccessKind::Load, D0, 7, t);
            t += r.latency as u64 + 1;
            seq_lat += r.latency as u64;
        }
        let mut m2 = machine();
        let mut t2 = 0u64;
        let mut strided_lat = 0u64;
        for i in 0..256u64 {
            let r = m2.access(CoreId(0), 0x10_0000 + i * 8192, AccessKind::Load, D0, 7, t2);
            t2 += r.latency as u64 + 1;
            strided_lat += r.latency as u64;
        }
        assert!(
            seq_lat * 2 < strided_lat,
            "sequential {seq_lat} should be far cheaper than strided {strided_lat}"
        );
        assert!(m.stats().prefetch_fills > 0);
        assert!(m.stats().prefetch_hidden + m.stats().prefetch_late > 0);
        assert_eq!(m2.stats().prefetch_fills, 0);
    }

    #[test]
    fn late_prefetch_reports_true_source() {
        // Consume a line-per-access stream at full speed with no compute
        // between accesses homed on a remote domain: prefetches cannot
        // stay ahead, so demand accesses observe RemoteDram with partial
        // latency.
        let mut m = machine();
        let mut t = 0u64;
        let mut late_remote = 0;
        for i in 0..128u64 {
            let r = m.access(CoreId(0), 0x40_0000 + i * 64, AccessKind::Load, D1, 9, t);
            t += r.latency as u64 + 1;
            if r.source == DataSource::RemoteDram {
                late_remote += 1;
            }
        }
        assert!(late_remote > 16, "remote stream must surface RemoteDram samples, got {late_remote}");
    }

    #[test]
    fn dram_contention_inflates_latency() {
        // Many cores hammering domain 0's controller queue behind each
        // other; the same traffic spread across domains does not.
        let mut hot = machine();
        let mut hot_lat = 0u64;
        for i in 0..128u64 {
            // Distinct lines, all homed on domain 0, all at t=0.
            hot_lat += hot
                .access(CoreId((i % 4) as u32), 0x20_0000 + i * 4096, AccessKind::Load, D0, 9, 0)
                .latency as u64;
        }
        let mut spread = machine();
        let mut spread_lat = 0u64;
        for i in 0..128u64 {
            let home = DomainId((i % 2) as u32);
            spread_lat += spread
                .access(CoreId((i % 4) as u32), 0x20_0000 + i * 4096, AccessKind::Load, home, 9, 0)
                .latency as u64;
        }
        assert!(hot_lat > spread_lat, "{hot_lat} vs {spread_lat}");
    }

    #[test]
    fn stats_accumulate() {
        let mut m = machine();
        m.access(CoreId(0), 0x100, AccessKind::Load, D0, 1, 0);
        m.access(CoreId(0), 0x100, AccessKind::Store, D0, 1, 10);
        let s = m.stats();
        assert_eq!(s.accesses, 2);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
        assert!(s.total_latency > 0);
    }

    #[test]
    fn flush_page_forces_tlb_miss() {
        let mut m = machine();
        m.access(CoreId(0), 0x6000, AccessKind::Load, D0, 1, 0);
        let r = m.access(CoreId(0), 0x6000, AccessKind::Load, D0, 1, 10);
        assert!(!r.tlb_miss);
        m.flush_page(0x6);
        let r = m.access(CoreId(0), 0x6000, AccessKind::Load, D0, 1, 20);
        assert!(r.tlb_miss);
    }
}
