//! Epoch-parallel access pipeline: shard-private fast path plus ordered
//! commit of shared-resource interactions.
//!
//! The scheduler splits each quantum window into an *epoch*. Within an
//! epoch, every NUMA domain's core-private hardware (L1/L2, TLB,
//! prefetcher, prefetch MSHRs) advances in parallel against a frozen
//! snapshot of the node-shared state (L3s, DRAM controllers, the
//! interconnect, the coherence version table). Any access that needs the
//! shared state is priced *optimistically* from the snapshot and recorded
//! as a [`DeferredAccess`]; the scheduler commits those records
//! sequentially in `(cycle, thread, seq)` order, where the real L3
//! lookups, DRAM queueing and interconnect occupancy happen. Contention
//! is therefore a pure function of simulated time, never of host
//! scheduling — runs are bit-identical at every `DCP_THREADS` value
//! because the shard pipeline itself is the only code path (a pool with
//! zero workers runs the same shards sequentially in shard order).
//!
//! Coherence during an epoch uses a per-shard [`VersionOverlay`]: a
//! shard's own stores are visible to it immediately; other shards keep
//! reading the frozen base table until the commit merges every overlay in
//! deterministic order. Cross-shard store visibility thus lags by at most
//! one epoch window — the store-buffer/invalidation-delay analogy real
//! hardware exhibits, applied at a coarser grain.

use dcp_support::FxHashMap;

use crate::access::{AccessKind, AccessResult, DataSource, Machine, MachineStats, PF_BUDGET};
use crate::cache::{Cache, EpochKey, VersionOverlay, VersionTable};
use crate::config::MachineConfig;
use crate::dram::Dram;
use crate::interconnect::Interconnect;
use crate::mshr::{PfEntry, PfMshr};
use crate::prefetch::{Predictions, Prefetcher};
use crate::tlb::Tlb;
use crate::topology::{CoreId, DomainId};
use crate::Cycles;

/// Slots in each shard's page→slab memo for frozen-base version reads
/// (power of two).
const MEMO_SLOTS: usize = 256;

/// Per-domain state that survives across epochs: the shard's version
/// overlay (drained at each commit) and its stamp-validated memo over the
/// frozen base table. Owned by [`Machine`] so allocations are reused.
#[derive(Debug)]
pub struct ShardEpochState {
    pub(crate) overlay: VersionOverlay,
    /// `(page, slab + 1, stamp)` entries; validated against `stamp`, so
    /// stale epochs self-invalidate without clearing. The stamp wraps at
    /// `u32::MAX` epochs — far beyond any simulated run.
    memo: Vec<(u64, u32, u32)>,
    stamp: u32,
}

impl ShardEpochState {
    fn new() -> Self {
        Self {
            overlay: VersionOverlay::default(),
            memo: vec![(0, 0, 0); MEMO_SLOTS],
            stamp: 0,
        }
    }
}

/// Read-only snapshot of the node-shared state, valid for one epoch.
/// Shared by every shard running in parallel.
#[derive(Debug)]
pub struct FrozenNode<'a> {
    cfg: &'a MachineConfig,
    l3: &'a [Cache],
    dram: &'a Dram,
    interconnect: &'a Interconnect,
    versions: &'a VersionTable,
    pcore_of: &'a [u32],
    domain_of: &'a [u32],
    line_bits: u32,
    page_bits: u32,
}

impl FrozenNode<'_> {
    /// NUMA domain (= shard index) of a hardware thread; the scheduler
    /// routes each simulated thread's work to this shard.
    #[inline]
    pub fn domain_of(&self, core: CoreId) -> u32 {
        self.domain_of[core.0 as usize]
    }

    /// Cache line address of a byte address.
    #[inline]
    pub fn line_of(&self, vaddr: u64) -> u64 {
        vaddr >> self.line_bits
    }
}

/// A shared-state interaction deferred to the commit phase: everything
/// [`Machine::commit_access`] needs to resolve the true data source and
/// latency at the recorded simulated time.
#[derive(Debug, Clone, Copy)]
pub struct DeferredAccess {
    pub core: CoreId,
    pub line: u64,
    /// Coherence version the access was resolved at (overlay-inclusive —
    /// the version the thread's own program order implies).
    pub version: u32,
    pub home: DomainId,
    /// Effective request time: thread clock plus pre-resolution latency.
    pub now: Cycles,
    /// Pre-resolution latency (TLB walk), re-charged by commit so the
    /// returned latency is the full end-to-end figure.
    pub base: u32,
}

/// What one shard-side access produced. `result` is what the thread
/// observes immediately (optimistic when `deferred` is set); the
/// scheduler turns the other fields into ordered commit events.
#[derive(Debug, Clone, Copy)]
pub struct ShardAccessOutcome {
    pub result: AccessResult,
    /// Present when the access needs the shared state; commit returns the
    /// actual `(latency, source)` and the scheduler folds the signed
    /// difference vs. `result.latency` into the thread clock as a carry.
    pub deferred: Option<DeferredAccess>,
    /// `(line, version)` the commit phase must install in the accessing
    /// domain's L3 (prefetch-resolved accesses fill L3 commit-side).
    pub l3_fill: Option<(u64, u32)>,
    /// Prefetches launched: commit consumes DRAM/link occupancy for each,
    /// at home `result.home` and time `pf_now`.
    pub pf_issued: u8,
    pub pf_now: Cycles,
}

/// One NUMA domain's private slice of the machine for one epoch: the
/// L1/L2/TLB/prefetcher/MSHR state of its cores plus a fresh stats block.
/// Safe to drive from any host worker — it borrows no shared state
/// mutably.
#[derive(Debug)]
pub struct MachineShard<'a> {
    pub domain: u32,
    pcore_base: usize,
    l1: &'a mut [Cache],
    l2: &'a mut [Cache],
    tlb: &'a mut [Tlb],
    prefetch: &'a mut [Prefetcher],
    pfbuf: &'a mut [PfMshr],
    ep: &'a mut ShardEpochState,
    /// Counters accumulated shard-side this epoch; the scheduler merges
    /// them into the machine-wide block in shard order at commit.
    pub stats: MachineStats,
}

impl MachineShard<'_> {
    /// Coherence version of `line` as this shard sees it: its own
    /// overlay if it stored to the line this epoch, else the frozen base.
    #[inline]
    fn version_of(&mut self, fz: &FrozenNode, line: u64) -> u32 {
        match self.ep.overlay.local(line) {
            Some(v) => v,
            None => fz.versions.version_memoized(line, &mut self.ep.memo, self.ep.stamp),
        }
    }

    #[inline]
    fn fill_private(&mut self, pcore: usize, line: u64, version: u32) {
        self.l2[pcore].fill(line, version);
        self.l1[pcore].fill(line, version);
    }

    /// Predicted remote-L3 owner against the frozen snapshot (same rule
    /// as [`Machine`]'s directory check, read-only).
    fn remote_owner_est(&self, fz: &FrozenNode, line: u64, version: u32) -> Option<DomainId> {
        if version == 0 {
            return None;
        }
        let w = self.ep.overlay.last_writer(fz.versions, line)?;
        if w != self.domain && fz.l3[w as usize].probe(line, version) {
            Some(DomainId(w))
        } else {
            None
        }
    }

    /// Execute one memory access through the shard-private hierarchy.
    /// Mirrors [`Machine::access`] stage for stage; every stage that
    /// would touch node-shared state instead prices itself from the
    /// frozen snapshot and defers, or records a commit obligation.
    /// `key` orders this access's commit events within the epoch.
    #[allow(clippy::too_many_arguments)]
    pub fn access(
        &mut self,
        fz: &FrozenNode,
        core: CoreId,
        vaddr: u64,
        kind: AccessKind,
        home: DomainId,
        pc: u64,
        now: Cycles,
        key: EpochKey,
    ) -> ShardAccessOutcome {
        debug_assert_eq!(fz.domain_of[core.0 as usize], self.domain, "core routed to wrong shard");
        let pcore = fz.pcore_of[core.0 as usize] as usize - self.pcore_base;
        let my = DomainId(self.domain);
        let line = vaddr >> fz.line_bits;
        let version = self.version_of(fz, line);

        let mut latency: u32 = 0;
        let vpn = vaddr >> fz.page_bits;
        let tlb_miss = !self.tlb[pcore].access(vpn);
        if tlb_miss {
            latency += fz.cfg.tlb_miss_penalty;
            self.stats.tlb_misses += 1;
        }
        let base = latency;
        let now_req = now + base as Cycles;

        let mut deferred = None;
        let mut l3_fill = None;

        let source = if self.l1[pcore].lookup(line, version) {
            latency += fz.cfg.l1.latency;
            self.stats.l1_hits += 1;
            DataSource::L1
        } else if self.l2[pcore].lookup(line, version) {
            latency += fz.cfg.l2.latency;
            self.l1[pcore].fill(line, version);
            self.stats.l2_hits += 1;
            DataSource::L2
        } else if fz.l3[self.domain as usize].probe(line, version) {
            // Present in the frozen own-L3: optimistically an L3 hit. The
            // actual lookup (LRU movement, possible eviction by earlier
            // commit events) settles at commit.
            latency += fz.cfg.l3.latency;
            self.fill_private(pcore, line, version);
            deferred =
                Some(DeferredAccess { core, line, version, home, now: now_req, base });
            DataSource::L3
        } else if let Some(pf) =
            self.pfbuf[pcore].remove(line).filter(|e| e.version == version)
        {
            // In-flight prefetch: entirely core-private, resolves now.
            // The L3 install it implies happens commit-side.
            let now_eff = now + latency as Cycles;
            self.fill_private(pcore, line, version);
            l3_fill = Some((line, version));
            if pf.ready <= now_eff {
                latency += fz.cfg.l2.latency;
                self.stats.prefetch_hidden += 1;
                DataSource::L2
            } else {
                let wait = (pf.ready - now_eff).min(u32::MAX as Cycles) as u32;
                latency = latency.saturating_add(wait.max(fz.cfg.l2.latency));
                self.stats.prefetch_late += 1;
                match pf.src {
                    DataSource::RemoteDram => self.stats.remote_dram += 1,
                    _ => self.stats.local_dram += 1,
                }
                pf.src
            }
        } else if let Some(owner) = self.remote_owner_est(fz, line, version) {
            let hop = fz.interconnect.traverse_est(&fz.cfg.topology, my, owner, now_req);
            latency = latency
                .saturating_add(fz.cfg.remote_cache_latency)
                .saturating_add(hop.min(u32::MAX as Cycles) as u32);
            self.fill_private(pcore, line, version);
            deferred =
                Some(DeferredAccess { core, line, version, home, now: now_req, base });
            DataSource::RemoteL3
        } else {
            let queue = fz.dram.backlog(home.0, now_req);
            latency = latency
                .saturating_add(fz.cfg.dram_latency)
                .saturating_add(queue.min(u32::MAX as Cycles) as u32);
            let src = if home == my {
                DataSource::LocalDram
            } else {
                let hop = fz.interconnect.traverse_est(&fz.cfg.topology, my, home, now_req);
                latency = latency.saturating_add(hop.min(u32::MAX as Cycles) as u32);
                DataSource::RemoteDram
            };
            self.fill_private(pcore, line, version);
            deferred =
                Some(DeferredAccess { core, line, version, home, now: now_req, base });
            src
        };

        if kind == AccessKind::Store {
            let nv = self.ep.overlay.bump(fz.versions, line, self.domain, key);
            self.fill_private(pcore, line, nv);
            self.stats.stores += 1;
        } else {
            self.stats.loads += 1;
        }

        // Train the prefetcher against the frozen snapshot. Ready times
        // use the estimated (non-consuming) queue/hop delays; the commit
        // phase consumes the real occupancy once per launched prefetch.
        let mut pf_issued = 0u8;
        let now_eff = now + latency as Cycles;
        let mut preds = Predictions::new();
        self.prefetch[pcore].observe(pc, vaddr, fz.cfg.line_size, &mut preds);
        if !preds.is_empty() {
            for &p in preds.as_slice() {
                let pl = p >> fz.line_bits;
                let pv = self.version_of(fz, pl);
                if self.pfbuf[pcore].contains(pl)
                    || self.l2[pcore].probe(pl, pv)
                    || fz.l3[self.domain as usize].probe(pl, pv)
                {
                    continue;
                }
                if self.pfbuf[pcore].len() >= PF_BUDGET {
                    self.pfbuf[pcore].retain(|_, e| e.ready > now_eff);
                    if self.pfbuf[pcore].len() >= PF_BUDGET {
                        continue;
                    }
                }
                if fz.dram.backlog(home.0, now_eff) > 64 * fz.cfg.dram_service as Cycles {
                    continue;
                }
                let queue = fz.dram.backlog(home.0, now_eff);
                let (hop, src) = if home == my {
                    (0, DataSource::LocalDram)
                } else {
                    (
                        fz.interconnect.traverse_est(&fz.cfg.topology, my, home, now_eff),
                        DataSource::RemoteDram,
                    )
                };
                let ready = now_eff + fz.cfg.dram_latency as Cycles + queue + hop;
                self.pfbuf[pcore].insert(pl, PfEntry { ready, version: pv, src });
                self.stats.prefetch_fills += 1;
                pf_issued += 1;
            }
        }

        self.stats.accesses += 1;
        if deferred.is_none() {
            // Deferred latency is known only at commit, which adds the
            // actual figure to the machine-wide block directly.
            self.stats.total_latency += latency as u64;
        }
        ShardAccessOutcome {
            result: AccessResult { latency, source, tlb_miss, home },
            deferred,
            l3_fill,
            pf_issued,
            pf_now: now_eff,
        }
    }
}

impl Machine {
    /// Open an epoch: freeze the node-shared state and hand out one
    /// [`MachineShard`] per NUMA domain. The borrows are disjoint, so the
    /// shards can run on separate host workers while the snapshot is
    /// shared read-only.
    pub fn split_epoch(&mut self) -> (FrozenNode<'_>, Vec<MachineShard<'_>>) {
        let domains = self.cfg.topology.domains as usize;
        if self.epoch.len() != domains {
            self.epoch.resize_with(domains, ShardEpochState::new);
        }
        for e in &mut self.epoch {
            e.stamp = e.stamp.wrapping_add(1);
        }
        let cpd = self.cfg.topology.cores_per_domain as usize;
        let Machine {
            cfg,
            line_bits,
            page_bits,
            pcore_of,
            domain_of,
            l1,
            l2,
            l3,
            tlb,
            prefetch,
            dram,
            interconnect,
            versions,
            pfbuf,
            epoch,
            ..
        } = self;
        let fz = FrozenNode {
            cfg,
            l3: l3.as_slice(),
            dram,
            interconnect,
            versions,
            pcore_of: pcore_of.as_slice(),
            domain_of: domain_of.as_slice(),
            line_bits: *line_bits,
            page_bits: *page_bits,
        };
        let shards = l1
            .chunks_mut(cpd)
            .zip(l2.chunks_mut(cpd))
            .zip(tlb.chunks_mut(cpd))
            .zip(prefetch.chunks_mut(cpd))
            .zip(pfbuf.chunks_mut(cpd))
            .zip(epoch.iter_mut())
            .enumerate()
            .map(|(d, (((((l1, l2), tlb), prefetch), pfbuf), ep))| MachineShard {
                domain: d as u32,
                pcore_base: d * cpd,
                l1,
                l2,
                tlb,
                prefetch,
                pfbuf,
                ep,
                stats: MachineStats::default(),
            })
            .collect();
        (fz, shards)
    }

    /// Commit one deferred access at its recorded simulated time: the
    /// real L3 lookup, directory check, DRAM queueing and interconnect
    /// traversal. Returns the actual end-to-end `(latency, source)`.
    pub fn commit_access(&mut self, d: &DeferredAccess) -> (u32, DataSource) {
        let my = DomainId(self.domain_of[d.core.0 as usize]);
        let mut latency = d.base;
        let source = if self.l3[my.0 as usize].lookup(d.line, d.version) {
            latency += self.cfg.l3.latency;
            self.stats.l3_hits += 1;
            DataSource::L3
        } else if let Some(owner) = self.remote_l3_owner(d.line, d.version, my) {
            let hop = self.interconnect.traverse(&self.cfg.topology, my, owner, d.now);
            latency = latency
                .saturating_add(self.cfg.remote_cache_latency)
                .saturating_add(hop.min(u32::MAX as Cycles) as u32);
            self.l3[my.0 as usize].fill(d.line, d.version);
            self.stats.remote_l3_hits += 1;
            DataSource::RemoteL3
        } else {
            let queue = self.dram.request(d.home.0, d.now);
            latency = latency
                .saturating_add(self.cfg.dram_latency)
                .saturating_add(queue.min(u32::MAX as Cycles) as u32);
            let src = if d.home == my {
                self.stats.local_dram += 1;
                DataSource::LocalDram
            } else {
                let hop =
                    self.interconnect.traverse(&self.cfg.topology, my, d.home, d.now);
                latency = latency.saturating_add(hop.min(u32::MAX as Cycles) as u32);
                self.stats.remote_dram += 1;
                DataSource::RemoteDram
            };
            self.l3[my.0 as usize].fill(d.line, d.version);
            src
        };
        self.stats.total_latency += latency as u64;
        (latency, source)
    }

    /// Install a line in `domain`'s L3 (prefetch-resolved accesses defer
    /// their L3 install here so parallel shards never touch the L3s).
    pub fn commit_l3_fill(&mut self, domain: u32, line: u64, version: u32) {
        self.l3[domain as usize].fill(line, version);
    }

    /// Consume DRAM and interconnect occupancy for `n` prefetches
    /// launched by domain `from` toward `home` at simulated time `now`.
    pub fn commit_prefetches(&mut self, from: DomainId, home: DomainId, now: Cycles, n: u32) {
        for _ in 0..n {
            self.dram.request(home.0, now);
            if home != from {
                self.interconnect.traverse(&self.cfg.topology, from, home, now);
            }
        }
    }

    /// Merge every shard's version overlay back into the base table, in
    /// deterministic line order with cross-shard conflicts resolved by
    /// the largest commit key (last writer in simulated time). The
    /// winner's L3 receives the line at its final version, mirroring the
    /// serial pipeline's post-store fill.
    pub fn commit_epoch_versions(&mut self) {
        if self.epoch.iter().all(|e| e.overlay.is_empty()) {
            return;
        }
        // line -> (total bumps, winning writer, winning key)
        let mut merged: FxHashMap<u64, (u32, u32, EpochKey)> = FxHashMap::default();
        for ep in &mut self.epoch {
            for (line, e) in ep.overlay.drain() {
                merged
                    .entry(line)
                    .and_modify(|m| {
                        m.0 += e.bumps;
                        if e.key > m.2 {
                            m.1 = e.writer;
                            m.2 = e.key;
                        }
                    })
                    .or_insert((e.bumps, e.writer, e.key));
            }
        }
        for (line, (bumps, writer, _)) in merged {
            let v = self.versions.apply_bumps(line, bumps, writer);
            self.l3[writer as usize].fill(line, v);
        }
    }

    /// Fold a shard's epoch counters into the machine-wide block.
    pub fn merge_stats(&mut self, o: &MachineStats) {
        self.stats.merge(o);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run one access through the epoch pipeline with an immediate
    /// commit, returning what the serial pipeline would have returned.
    fn epoch_access(
        m: &mut Machine,
        core: CoreId,
        vaddr: u64,
        kind: AccessKind,
        home: DomainId,
        pc: u64,
        now: Cycles,
        seq: u64,
    ) -> AccessResult {
        let dom = m.topology().domain_of(core).0 as usize;
        let (fz, mut shards) = m.split_epoch();
        let out = shards[dom].access(&fz, core, vaddr, kind, home, pc, now, (now, core.0, seq));
        let stats: Vec<MachineStats> = shards.iter().map(|s| s.stats.clone()).collect();
        drop(shards);
        drop(fz);
        for s in &stats {
            m.merge_stats(s);
        }
        let mut r = out.result;
        if let Some(d) = out.deferred {
            let (lat, src) = m.commit_access(&d);
            r.latency = lat;
            r.source = src;
        }
        if let Some((line, v)) = out.l3_fill {
            m.commit_l3_fill(dom as u32, line, v);
        }
        if out.pf_issued > 0 {
            let from = DomainId(dom as u32);
            m.commit_prefetches(from, home, out.pf_now, out.pf_issued as u32);
        }
        m.commit_epoch_versions();
        r
    }

    /// With prefetch-defeating strides, the epoch pipeline committed
    /// per-access is *exactly* the serial pipeline: same latencies, same
    /// sources, same machine-wide counters, access by access.
    #[test]
    fn epoch_pipeline_matches_serial_without_prefetch() {
        let mut serial = Machine::new(MachineConfig::tiny_test());
        let mut epoch = Machine::new(MachineConfig::tiny_test());
        let mut t = 0u64;
        for i in 0..400u64 {
            let core = CoreId((i % 4) as u32);
            let kind = if i % 3 == 0 { AccessKind::Store } else { AccessKind::Load };
            let home = DomainId((i % 2) as u32);
            // Page-crossing stride: the prefetcher never trains, so the
            // snapshot-priced prefetch path (the one deliberate deviation
            // from serial timing) stays cold.
            let vaddr = 0x10_0000 + (i % 60) * 8192;
            let a = serial.access(core, vaddr, kind, home, 7, t);
            let b = epoch_access(&mut epoch, core, vaddr, kind, home, 7, t, i);
            assert_eq!(a.latency, b.latency, "access {i}");
            assert_eq!(a.source, b.source, "access {i}");
            assert_eq!(a.tlb_miss, b.tlb_miss, "access {i}");
            t += a.latency as u64 + 1;
        }
        assert_eq!(format!("{:?}", serial.stats()), format!("{:?}", epoch.stats()));
        assert_eq!(serial.dram_histogram(), epoch.dram_histogram());
    }

    /// A store committed in one epoch is visible (and remote-L3-sourced)
    /// to another socket in the next epoch.
    #[test]
    fn cross_shard_store_visible_next_epoch() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        // Core 0 (domain 0) writes; commits immediately.
        epoch_access(&mut m, CoreId(0), 0x4000, AccessKind::Store, DomainId(0), 1, 0, 0);
        // Core 2 (domain 1) reads next epoch: cache-to-cache transfer.
        let r = epoch_access(&mut m, CoreId(2), 0x4000, AccessKind::Load, DomainId(0), 2, 50, 1);
        assert_eq!(r.source, DataSource::RemoteL3);
    }

    /// Two shards storing to the same line in one epoch: versions sum,
    /// the later commit key wins the directory entry.
    #[test]
    fn conflicting_stores_resolve_by_commit_key() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let line = 0x8000u64 >> m.config().line_size.trailing_zeros();
        {
            let (fz, mut shards) = m.split_epoch();
            // Domain 1 stores at cycle 5, domain 0 at cycle 10: domain 0
            // is the last writer in simulated time.
            shards[1].access(
                &fz, CoreId(2), 0x8000, AccessKind::Store, DomainId(1), 1, 5, (5, 2, 0),
            );
            shards[0].access(
                &fz, CoreId(0), 0x8000, AccessKind::Store, DomainId(0), 1, 10, (10, 0, 0),
            );
        }
        m.commit_epoch_versions();
        assert_eq!(m.versions.version(line), 2, "both bumps must land");
        assert_eq!(m.versions.last_writer(line), Some(0), "later key wins");
    }

    /// Within one epoch a shard sees its own stores immediately but not
    /// another shard's (bounded coherence lag).
    #[test]
    fn overlay_isolates_shards_within_epoch() {
        let mut m = Machine::new(MachineConfig::tiny_test());
        let (fz, mut shards) = m.split_epoch();
        shards[0].access(&fz, CoreId(0), 0x9000, AccessKind::Store, DomainId(0), 1, 0, (0, 0, 0));
        // Own shard re-reads: L1 hit at the bumped version.
        let own = shards[0]
            .access(&fz, CoreId(0), 0x9000, AccessKind::Load, DomainId(0), 1, 10, (10, 0, 1))
            .result;
        assert_eq!(own.source, DataSource::L1);
        // Other shard still sees the frozen base (version 0) and goes to
        // DRAM rather than a cache-to-cache transfer.
        let other = shards[1]
            .access(&fz, CoreId(2), 0x9000, AccessKind::Load, DomainId(0), 1, 10, (10, 2, 0))
            .result;
        assert_eq!(other.source, DataSource::RemoteDram);
    }
}
