//! Fixed-capacity open-addressed MSHR table for in-flight prefetches.
//!
//! Each physical core tracks at most `PF_BUDGET` in-flight prefetches
//! (see [`crate::access::Machine`]). The demand path queries this table on
//! every miss, so it must be cheap: a fixed array of `CAPACITY` slots
//! (the next power of two above the budget, ≤ 75% load), linear probing,
//! and backward-shift deletion so no tombstones accumulate. No heap
//! allocation ever happens after construction.

use crate::access::DataSource;
use crate::Cycles;

/// An in-flight prefetch: when the line arrives, where it is coming from,
/// and the coherence version it was requested at.
#[derive(Debug, Clone, Copy)]
pub struct PfEntry {
    pub ready: Cycles,
    pub version: u32,
    pub src: DataSource,
}

const EMPTY_ENTRY: PfEntry = PfEntry { ready: 0, version: 0, src: DataSource::L1 };

/// Slot count: next power of two above the 96-entry prefetch budget, so
/// linear probe chains stay short.
const CAPACITY: usize = 128;
const MASK: usize = CAPACITY - 1;

/// Open-addressed map from line address to [`PfEntry`], fixed capacity.
#[derive(Debug, Clone)]
pub struct PfMshr {
    keys: Box<[u64; CAPACITY]>,
    vals: Box<[PfEntry; CAPACITY]>,
    /// One bit per slot; avoids a sentinel key so any line address is a
    /// legal key.
    occupied: u128,
    len: usize,
}

impl Default for PfMshr {
    fn default() -> Self {
        Self::new()
    }
}

impl PfMshr {
    pub fn new() -> Self {
        Self {
            keys: Box::new([0; CAPACITY]),
            vals: Box::new([EMPTY_ENTRY; CAPACITY]),
            occupied: 0,
            len: 0,
        }
    }

    /// Home slot of a line (Fibonacci hashing; line addresses are dense
    /// and sequential, which pure masking would pile into one chain).
    #[inline(always)]
    fn slot(line: u64) -> usize {
        (line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 57) as usize & MASK
    }

    #[inline(always)]
    fn is_occupied(&self, i: usize) -> bool {
        self.occupied & (1u128 << i) != 0
    }

    /// Index of `line`'s slot, if present.
    #[inline]
    fn find(&self, line: u64) -> Option<usize> {
        let mut i = Self::slot(line);
        while self.is_occupied(i) {
            if self.keys[i] == line {
                return Some(i);
            }
            i = (i + 1) & MASK;
        }
        None
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn contains(&self, line: u64) -> bool {
        self.find(line).is_some()
    }

    pub fn get(&self, line: u64) -> Option<&PfEntry> {
        self.find(line).map(|i| &self.vals[i])
    }

    /// Insert or replace the entry for `line`.
    ///
    /// # Panics
    /// Panics if the table is full and `line` is absent; the caller
    /// enforces the `PF_BUDGET` watermark, which is below capacity.
    pub fn insert(&mut self, line: u64, e: PfEntry) {
        let mut i = Self::slot(line);
        while self.is_occupied(i) {
            if self.keys[i] == line {
                self.vals[i] = e;
                return;
            }
            i = (i + 1) & MASK;
            assert!(i != Self::slot(line), "PfMshr full");
        }
        self.keys[i] = line;
        self.vals[i] = e;
        self.occupied |= 1u128 << i;
        self.len += 1;
    }

    /// Remove and return the entry for `line`, if present.
    pub fn remove(&mut self, line: u64) -> Option<PfEntry> {
        let mut i = self.find(line)?;
        let e = self.vals[i];
        // Backward-shift deletion: pull every displaced follower of the
        // probe chain into the hole instead of leaving a tombstone.
        let mut j = (i + 1) & MASK;
        while self.is_occupied(j) {
            let home = Self::slot(self.keys[j]);
            let stays = if i <= j { i < home && home <= j } else { i < home || home <= j };
            if !stays {
                self.keys[i] = self.keys[j];
                self.vals[i] = self.vals[j];
                i = j;
            }
            j = (j + 1) & MASK;
        }
        self.occupied &= !(1u128 << i);
        self.len -= 1;
        Some(e)
    }

    /// Keep only entries for which `f(line, entry)` is true.
    pub fn retain(&mut self, mut f: impl FnMut(u64, &PfEntry) -> bool) {
        let mut dead = [0u64; CAPACITY];
        let mut n = 0;
        for i in 0..CAPACITY {
            if self.is_occupied(i) && !f(self.keys[i], &self.vals[i]) {
                dead[n] = self.keys[i];
                n += 1;
            }
        }
        for &k in &dead[..n] {
            self.remove(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(ready: Cycles) -> PfEntry {
        PfEntry { ready, version: 0, src: DataSource::LocalDram }
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = PfMshr::new();
        assert!(m.is_empty());
        m.insert(10, e(5));
        m.insert(11, e(6));
        assert_eq!(m.len(), 2);
        assert!(m.contains(10));
        assert_eq!(m.get(11).unwrap().ready, 6);
        assert_eq!(m.remove(10).unwrap().ready, 5);
        assert!(!m.contains(10));
        assert!(m.contains(11));
        assert!(m.remove(10).is_none());
    }

    #[test]
    fn insert_replaces_existing() {
        let mut m = PfMshr::new();
        m.insert(7, e(1));
        m.insert(7, e(9));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(7).unwrap().ready, 9);
    }

    #[test]
    fn backward_shift_keeps_chains_reachable() {
        // Sequential lines collide in clusters under any hash; after
        // removing the middle of a cluster every survivor must still be
        // findable.
        let mut m = PfMshr::new();
        for l in 0..96u64 {
            m.insert(l, e(l));
        }
        for l in (0..96u64).step_by(3) {
            assert!(m.remove(l).is_some());
        }
        for l in 0..96u64 {
            assert_eq!(m.contains(l), l % 3 != 0, "line {l}");
            if l % 3 != 0 {
                assert_eq!(m.get(l).unwrap().ready, l);
            }
        }
        assert_eq!(m.len(), 64);
    }

    #[test]
    fn retain_drops_matching_entries() {
        let mut m = PfMshr::new();
        for l in 0..50u64 {
            m.insert(l, e(l));
        }
        m.retain(|_, en| en.ready >= 25);
        assert_eq!(m.len(), 25);
        for l in 0..50u64 {
            assert_eq!(m.contains(l), l >= 25);
        }
    }

    #[test]
    fn full_budget_cycle() {
        // Fill to the demand-path watermark, drain, refill — capacity is
        // never exceeded and lookups stay exact throughout.
        let mut m = PfMshr::new();
        for round in 0..4u64 {
            let base = round * 1_000_000;
            for l in 0..96u64 {
                m.insert(base + l * 64, e(l));
            }
            assert_eq!(m.len(), 96);
            for l in 0..96u64 {
                assert!(m.contains(base + l * 64));
                assert!(m.remove(base + l * 64).is_some());
            }
            assert!(m.is_empty());
        }
    }
}
