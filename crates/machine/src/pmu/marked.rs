//! POWER7-style marked-event sampling.
//!
//! The PMU counts retired memory ops whose data source matches the
//! configured marked event. When the count reaches the threshold it
//! latches SIAR (sampled instruction address) and SDAR (sampled data
//! address) and raises an interrupt after a short skid. Unlike IBS, only
//! matching memory ops can ever be sampled — sampling
//! `PM_MRK_DATA_FROM_RMEM` yields a profile of *remote accesses only*,
//! which is how the paper's NUMA case studies (AMG2006, Streamcluster,
//! NW) isolate remote-access hot spots.

use dcp_support::rng::SmallRng;

use super::{MarkedEvent, OpRecord, Sample, SampleOrigin};

/// One core's marked-event engine.
#[derive(Debug, Clone)]
pub struct MarkedPmu {
    event: MarkedEvent,
    threshold: u64,
    /// Next trigger point (jittered around `threshold`).
    next_at: u64,
    count: u64,
    skid: u32,
    pending: Option<(Sample, u32)>,
    samples: u64,
    /// Total matching events observed (whether or not sampled); the
    /// traditional-counter reading the paper uses to decide whether a
    /// program is worth data-centric analysis.
    events: u64,
    rng: SmallRng,
    tagged_last: bool,
}

impl MarkedPmu {
    /// Sample one in ~`threshold` occurrences of `event`. Thresholds
    /// above 4 are jittered ±25% so sampling cannot resonate with a
    /// loop's event pattern (tools randomize thresholds for the same
    /// reason; without it, a loop emitting k events per iteration with
    /// k | threshold samples the *same statement* every time).
    ///
    /// # Panics
    /// Panics if `threshold` is zero.
    pub fn new(event: MarkedEvent, threshold: u64, skid: u32, seed: u64) -> Self {
        assert!(threshold > 0, "marked-event threshold must be positive");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x0dd_ba11);
        let next_at = Self::jittered(threshold, &mut rng);
        Self {
            event,
            threshold,
            next_at,
            count: 0,
            skid,
            pending: None,
            samples: 0,
            events: 0,
            rng,
            tagged_last: false,
        }
    }

    /// Did the most recent observe call latch SIAR/SDAR from its op? Used
    /// by the execution engine to associate provisionally-captured sample
    /// values with the op they came from.
    pub fn just_tagged(&self) -> bool {
        self.tagged_last
    }

    fn jittered(threshold: u64, rng: &mut SmallRng) -> u64 {
        if threshold <= 2 {
            return threshold;
        }
        let spread = threshold / 4;
        threshold - spread + rng.gen_range(0..=2 * spread)
    }

    /// The configured marked event.
    pub fn event(&self) -> MarkedEvent {
        self.event
    }

    /// Total matching events counted so far.
    pub fn events_counted(&self) -> u64 {
        self.events
    }

    /// Feed one retired op. Returns the delivered sample, if any.
    pub fn observe_op(&mut self, op: OpRecord<'_>) -> Option<Sample> {
        self.tagged_last = false;
        if let Some((sample, remaining)) = self.pending.take() {
            if remaining == 0 {
                let delivered = Sample { signal_ip: op.ip, ..sample };
                self.samples += 1;
                return Some(delivered);
            }
            self.pending = Some((sample, remaining - 1));
            return None;
        }

        let (res, ea, is_store) = op.mem?;
        if !self.event.matches(res.source) {
            return None;
        }
        self.events += 1;
        self.count += 1;
        if self.count < self.next_at {
            return None;
        }
        self.count = 0;
        self.next_at = Self::jittered(self.threshold, &mut self.rng);

        // Latch SIAR/SDAR.
        self.tagged_last = true;
        let sample = Sample {
            origin: SampleOrigin::Marked(self.event),
            precise_ip: op.ip, // SIAR
            signal_ip: op.ip,
            ea: Some(ea), // SDAR
            latency: res.latency,
            source: Some(res.source),
            tlb_miss: res.tlb_miss,
            is_store,
            core: op.core,
        };
        if self.skid == 0 {
            self.samples += 1;
            return Some(sample);
        }
        self.pending = Some((sample, self.skid - 1));
        None
    }

    /// Batch form for `n` non-memory ops retiring at `ip`: non-memory ops
    /// never count marked events but do drain a pending sample's skid.
    pub fn observe_quiet(&mut self, n: u64, ip: u64) -> Option<Sample> {
        if n == 0 {
            return None;
        }
        self.tagged_last = false;
        if let Some((sample, remaining)) = self.pending.take() {
            if (remaining as u64) < n {
                let delivered = Sample { signal_ip: ip, ..sample };
                self.samples += 1;
                return Some(delivered);
            }
            self.pending = Some((sample, remaining - n as u32));
        }
        None
    }

    /// Total samples delivered.
    pub fn samples_taken(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AccessResult, DataSource};
    use crate::topology::{CoreId, DomainId};

    fn res(source: DataSource) -> AccessResult {
        AccessResult { latency: 100, source, tlb_miss: false, home: DomainId(1) }
    }

    #[test]
    fn only_matching_sources_count() {
        let mut pmu = MarkedPmu::new(MarkedEvent::DataFromRmem, 2, 0, 1);
        let local = res(DataSource::LocalDram);
        let remote = res(DataSource::RemoteDram);
        for i in 0..10u64 {
            let s = pmu.observe_op(OpRecord {
                ip: i,
                core: CoreId(0),
                mem: Some((&local, 0x10, false)),
            });
            assert!(s.is_none(), "local accesses must never sample DATA_FROM_RMEM");
        }
        assert_eq!(pmu.events_counted(), 0);
        let mut got = 0;
        for i in 0..10u64 {
            if pmu
                .observe_op(OpRecord { ip: i, core: CoreId(0), mem: Some((&remote, 0x20, false)) })
                .is_some()
            {
                got += 1;
            }
        }
        assert_eq!(got, 5, "threshold 2 samples every other matching event");
        assert_eq!(pmu.events_counted(), 10);
    }

    #[test]
    fn siar_sdar_latched_from_triggering_op() {
        let mut pmu = MarkedPmu::new(MarkedEvent::DataFromRmem, 1, 0, 1);
        let remote = res(DataSource::RemoteDram);
        let s = pmu
            .observe_op(OpRecord { ip: 0x77, core: CoreId(3), mem: Some((&remote, 0x1234, true)) })
            .expect("threshold 1 fires immediately");
        assert_eq!(s.precise_ip, 0x77);
        assert_eq!(s.ea, Some(0x1234));
        assert!(s.is_store);
        assert_eq!(s.origin, SampleOrigin::Marked(MarkedEvent::DataFromRmem));
    }

    #[test]
    fn skid_delays_delivery_and_sets_signal_ip() {
        let mut pmu = MarkedPmu::new(MarkedEvent::DataFromMem, 1, 2, 1);
        let dram = res(DataSource::LocalDram);
        assert!(pmu
            .observe_op(OpRecord { ip: 1, core: CoreId(0), mem: Some((&dram, 0x8, false)) })
            .is_none());
        // Two more ops (even non-memory) drain the skid.
        assert!(pmu.observe_op(OpRecord { ip: 2, core: CoreId(0), mem: None }).is_none());
        let s = pmu
            .observe_op(OpRecord { ip: 3, core: CoreId(0), mem: None })
            .expect("delivered after skid");
        assert_eq!(s.precise_ip, 1);
        assert_eq!(s.signal_ip, 3);
    }

    #[test]
    fn from_mem_matches_both_dram_sources() {
        let mut pmu = MarkedPmu::new(MarkedEvent::DataFromMem, 1, 0, 1);
        for src in [DataSource::LocalDram, DataSource::RemoteDram] {
            let r = res(src);
            assert!(pmu
                .observe_op(OpRecord { ip: 0, core: CoreId(0), mem: Some((&r, 0, false)) })
                .is_some());
        }
        let l3 = res(DataSource::L3);
        assert!(pmu
            .observe_op(OpRecord { ip: 0, core: CoreId(0), mem: Some((&l3, 0, false)) })
            .is_none());
    }

    #[test]
    fn event_name_strings() {
        assert_eq!(MarkedEvent::DataFromRmem.name(), "PM_MRK_DATA_FROM_RMEM");
        assert_eq!(MarkedEvent::DataFromL3.name(), "PM_MRK_DATA_FROM_L3");
    }

    #[test]
    #[should_panic]
    fn zero_threshold_panics() {
        let _ = MarkedPmu::new(MarkedEvent::DataFromRmem, 0, 0, 1);
    }

    /// Regression snapshot: the jittered marked-event sample stream for a
    /// fixed seed. Pins the PRNG behind threshold jitter — a PRNG change
    /// would silently reshuffle which remote accesses get sampled.
    #[test]
    fn sample_stream_snapshot_for_seed_42() {
        let mut pmu = MarkedPmu::new(MarkedEvent::DataFromRmem, 8, 0, 42);
        let remote = res(DataSource::RemoteDram);
        let mut ips = Vec::new();
        for i in 0..200u64 {
            if let Some(s) =
                pmu.observe_op(OpRecord { ip: i, core: CoreId(0), mem: Some((&remote, i, false)) })
            {
                ips.push(s.precise_ip);
            }
        }
        assert_eq!(ips, [9, 19, 28, 38, 48, 55, 63, 70, 80, 90, 98, 106, 113, 123, 132, 138,
                         146, 152, 158, 166, 176, 186, 194]);
        assert_eq!(pmu.events_counted(), 200);
    }
}
