//! Performance monitoring unit models.
//!
//! The paper (§3) uses two hardware sampling disciplines:
//!
//! * **Instruction-based sampling** (AMD family 10h, after DEC's
//!   ProfileMe): the PMU periodically tags an instruction and records, as
//!   it retires, its precise IP, the effective address of its memory
//!   operand, latency, and the memory-hierarchy response. The interrupt
//!   announcing the sample lands several instructions later ("skid"), so
//!   the signal-context IP differs from the monitored instruction's IP —
//!   the profiler must use the recorded precise IP ([`ibs`]).
//!
//! * **Marked-event sampling** (IBM POWER5+): the PMU counts occurrences
//!   of one marked event (e.g. `PM_MRK_DATA_FROM_RMEM`, a load satisfied
//!   from remote memory); when the count reaches a threshold it latches
//!   the sampled instruction address (SIAR) and sampled data address
//!   (SDAR) registers and raises an interrupt ([`marked`]).
//!
//! Both produce the common [`Sample`] record consumed by the profiler.

pub mod ibs;
pub mod marked;

use crate::access::{AccessResult, DataSource};
use crate::topology::CoreId;

pub use ibs::IbsPmu;
pub use marked::MarkedPmu;

/// A marked event selecting which data sources increment the POWER7-style
/// counter. Names follow the `PM_MRK_DATA_FROM_*` convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MarkedEvent {
    /// Data sourced from own-core L2.
    DataFromL2,
    /// Data sourced from own-socket L3.
    DataFromL3,
    /// Data sourced from a remote socket's cache.
    DataFromRL3,
    /// Data sourced from local DRAM.
    DataFromLmem,
    /// Data sourced from remote DRAM — the paper's NUMA event of choice.
    DataFromRmem,
    /// Data sourced from any DRAM (local or remote).
    DataFromMem,
}

impl MarkedEvent {
    /// Does an access with this data source count toward the event?
    pub fn matches(self, source: DataSource) -> bool {
        match self {
            MarkedEvent::DataFromL2 => source == DataSource::L2,
            MarkedEvent::DataFromL3 => source == DataSource::L3,
            MarkedEvent::DataFromRL3 => source == DataSource::RemoteL3,
            MarkedEvent::DataFromLmem => source == DataSource::LocalDram,
            MarkedEvent::DataFromRmem => source == DataSource::RemoteDram,
            MarkedEvent::DataFromMem => source.is_dram(),
        }
    }

    /// Display name in the POWER7 style.
    pub fn name(self) -> &'static str {
        match self {
            MarkedEvent::DataFromL2 => "PM_MRK_DATA_FROM_L2",
            MarkedEvent::DataFromL3 => "PM_MRK_DATA_FROM_L3",
            MarkedEvent::DataFromRL3 => "PM_MRK_DATA_FROM_RL3",
            MarkedEvent::DataFromLmem => "PM_MRK_DATA_FROM_LMEM",
            MarkedEvent::DataFromRmem => "PM_MRK_DATA_FROM_RMEM",
            MarkedEvent::DataFromMem => "PM_MRK_DATA_FROM_MEM",
        }
    }
}

/// Which sampling mechanism produced a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleOrigin {
    Ibs,
    Marked(MarkedEvent),
}

/// One PMU sample, as delivered to the profiler's signal handler.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    pub origin: SampleOrigin,
    /// Precise IP of the monitored instruction (IBS op record / SIAR).
    pub precise_ip: u64,
    /// IP at which the interrupt was delivered; differs from `precise_ip`
    /// by the skid. A naive profiler that attributes to this address
    /// mis-attributes samples.
    pub signal_ip: u64,
    /// Effective data address (IBS linear address / SDAR); `None` for
    /// sampled instructions that do not access memory.
    pub ea: Option<u64>,
    /// Access latency in cycles (0 for non-memory samples).
    pub latency: u32,
    /// Memory-hierarchy response, if a memory op.
    pub source: Option<DataSource>,
    pub tlb_miss: bool,
    pub is_store: bool,
    /// Hardware thread the sample was taken on.
    pub core: CoreId,
}

/// A retired-operation record fed to the PMU by the execution engine.
#[derive(Debug, Clone, Copy)]
pub struct OpRecord<'a> {
    pub ip: u64,
    pub core: CoreId,
    /// Memory operand details, if the op accessed memory.
    pub mem: Option<(&'a AccessResult, u64, bool)>, // (result, ea, is_store)
}

/// Configuration for one core's PMU.
#[derive(Debug, Clone, Copy)]
pub enum PmuConfig {
    /// Instruction-based sampling every ~`period` retired ops.
    Ibs { period: u64, skid: u32 },
    /// Marked-event sampling: one sample per `threshold` matching events.
    Marked { event: MarkedEvent, threshold: u64, skid: u32 },
}

/// A per-core PMU: either engine behind one interface.
#[derive(Debug, Clone)]
pub enum Pmu {
    Ibs(IbsPmu),
    Marked(MarkedPmu),
}

impl Pmu {
    /// Build a PMU from configuration. `seed` keeps the period jitter
    /// deterministic yet decorrelated across cores.
    pub fn new(cfg: PmuConfig, seed: u64) -> Self {
        match cfg {
            PmuConfig::Ibs { period, skid } => Pmu::Ibs(IbsPmu::new(period, skid, seed)),
            PmuConfig::Marked { event, threshold, skid } => {
                Pmu::Marked(MarkedPmu::new(event, threshold, skid, seed))
            }
        }
    }

    /// Feed one retired op; returns a sample when the PMU raises its
    /// interrupt (at this op, after any skid).
    pub fn observe_op(&mut self, op: OpRecord<'_>) -> Option<Sample> {
        match self {
            Pmu::Ibs(p) => p.observe_op(op),
            Pmu::Marked(p) => p.observe_op(op),
        }
    }

    /// Feed a batch of `n` retired non-memory ops at `ip` in one call
    /// (loop bookkeeping, arithmetic bursts). At most one sample is
    /// delivered per batch; IBS tags at most one op per period anyway, so
    /// for `n` well below the period this loses nothing.
    pub fn observe_quiet(&mut self, n: u64, ip: u64, core: CoreId) -> Option<Sample> {
        match self {
            Pmu::Ibs(p) => p.observe_quiet(n, ip, core),
            Pmu::Marked(p) => p.observe_quiet(n, ip),
        }
    }

    /// Did the most recent observe call tag a new sample (as opposed to
    /// merely counting, or delivering one tagged earlier)? When true, the
    /// pending sample's captured latency/source came from the op just
    /// fed — the execution engine uses this to correct provisional values
    /// before delivery.
    pub fn just_tagged(&self) -> bool {
        match self {
            Pmu::Ibs(p) => p.just_tagged(),
            Pmu::Marked(p) => p.just_tagged(),
        }
    }

    /// Total samples delivered.
    pub fn samples_taken(&self) -> u64 {
        match self {
            Pmu::Ibs(p) => p.samples_taken(),
            Pmu::Marked(p) => p.samples_taken(),
        }
    }
}
