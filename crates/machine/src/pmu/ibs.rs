//! AMD-style instruction-based sampling.
//!
//! Every ~`period` retired ops the PMU tags one op. The tagged op's
//! precise IP, effective address, latency and data source are captured in
//! the op record; the interrupt is delivered `skid` retired ops later, at
//! which point the signal-context IP is whatever instruction happens to be
//! retiring — modeling the skid that §4.1.2 of the paper corrects for by
//! preferring the IBS-recorded precise IP over the signal context.
//!
//! The period is jittered ±12.5% with a deterministic per-core RNG so that
//! sampling does not resonate with loop bodies (real tools randomize the
//! period for the same reason).

use dcp_support::rng::SmallRng;

use super::{OpRecord, Sample, SampleOrigin};

/// One core's IBS engine.
#[derive(Debug, Clone)]
pub struct IbsPmu {
    period: u64,
    skid: u32,
    countdown: u64,
    pending: Option<(Sample, u32)>,
    rng: SmallRng,
    samples: u64,
    tagged_last: bool,
}

impl IbsPmu {
    /// Sampling period in retired ops, delivery skid in ops, jitter seed.
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn new(period: u64, skid: u32, seed: u64) -> Self {
        assert!(period > 0, "IBS period must be positive");
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x1b50_dead_beefu64.rotate_left(7));
        let countdown = Self::jittered(period, &mut rng);
        Self { period, skid, countdown, pending: None, rng, samples: 0, tagged_last: false }
    }

    /// Did the most recent observe call tag (latch) a new sample? The
    /// execution engine uses this to learn that the values captured into
    /// the pending sample belong to the op it just fed — essential when
    /// the captured latency/source were provisional and need a later
    /// correction at delivery.
    pub fn just_tagged(&self) -> bool {
        self.tagged_last
    }

    fn jittered(period: u64, rng: &mut SmallRng) -> u64 {
        if period <= 8 {
            return period;
        }
        let spread = period / 8;
        period - spread + rng.gen_range(0..=2 * spread)
    }

    /// Feed one retired op. Returns the delivered sample, if any.
    pub fn observe_op(&mut self, op: OpRecord<'_>) -> Option<Sample> {
        self.tagged_last = false;
        // A tagged sample waiting out its skid takes priority; the counter
        // does not run while the interrupt is pending (hardware serializes
        // op records the same way).
        if let Some((sample, remaining)) = self.pending.take() {
            if remaining == 0 {
                let delivered = Sample { signal_ip: op.ip, ..sample };
                self.samples += 1;
                return Some(delivered);
            }
            self.pending = Some((sample, remaining - 1));
            return None;
        }

        self.countdown = self.countdown.saturating_sub(1);
        if self.countdown > 0 {
            return None;
        }
        self.countdown = Self::jittered(self.period, &mut self.rng);

        // Tag this op.
        self.tagged_last = true;
        let sample = match op.mem {
            Some((res, ea, is_store)) => Sample {
                origin: SampleOrigin::Ibs,
                precise_ip: op.ip,
                signal_ip: op.ip,
                ea: Some(ea),
                latency: res.latency,
                source: Some(res.source),
                tlb_miss: res.tlb_miss,
                is_store,
                core: op.core,
            },
            None => Sample {
                origin: SampleOrigin::Ibs,
                precise_ip: op.ip,
                signal_ip: op.ip,
                ea: None,
                latency: 0,
                source: None,
                tlb_miss: false,
                is_store: false,
                core: op.core,
            },
        };
        if self.skid == 0 {
            self.samples += 1;
            return Some(sample);
        }
        self.pending = Some((sample, self.skid - 1));
        None
    }

    /// Batch form of [`observe_op`](Self::observe_op) for `n` non-memory
    /// ops retiring at `ip`. Delivers at most one sample.
    pub fn observe_quiet(
        &mut self,
        n: u64,
        ip: u64,
        core: crate::topology::CoreId,
    ) -> Option<Sample> {
        if n == 0 {
            return None;
        }
        self.tagged_last = false;
        // Drain any pending skid first.
        if let Some((sample, remaining)) = self.pending.take() {
            if (remaining as u64) < n {
                let delivered = Sample { signal_ip: ip, ..sample };
                self.samples += 1;
                return Some(delivered);
            }
            self.pending = Some((sample, remaining - n as u32));
            return None;
        }
        if self.countdown > n {
            self.countdown -= n;
            return None;
        }
        self.countdown = Self::jittered(self.period, &mut self.rng);
        self.tagged_last = true;
        let sample = Sample {
            origin: SampleOrigin::Ibs,
            precise_ip: ip,
            signal_ip: ip,
            ea: None,
            latency: 0,
            source: None,
            tlb_miss: false,
            is_store: false,
            core,
        };
        if self.skid == 0 {
            self.samples += 1;
            return Some(sample);
        }
        self.pending = Some((sample, self.skid - 1));
        None
    }

    /// Total samples delivered.
    pub fn samples_taken(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AccessResult, DataSource};
    use crate::topology::{CoreId, DomainId};

    fn mem_op(_ip: u64) -> (AccessResult, u64, bool) {
        (
            AccessResult {
                latency: 42,
                source: DataSource::LocalDram,
                tlb_miss: false,
                home: DomainId(0),
            },
            0xabcd,
            false,
        )
    }

    fn feed_n(pmu: &mut IbsPmu, n: u64, base_ip: u64) -> Vec<Sample> {
        let mut out = Vec::new();
        for i in 0..n {
            let (res, ea, st) = mem_op(base_ip + i);
            let op = OpRecord { ip: base_ip + i, core: CoreId(0), mem: Some((&res, ea, st)) };
            if let Some(s) = pmu.observe_op(op) {
                out.push(s);
            }
        }
        out
    }

    #[test]
    fn sampling_rate_approximates_period() {
        let mut pmu = IbsPmu::new(100, 0, 7);
        let samples = feed_n(&mut pmu, 100_000, 0);
        let n = samples.len() as f64;
        assert!((n - 1000.0).abs() < 100.0, "got {n} samples for period 100");
    }

    #[test]
    fn skid_shifts_signal_ip_but_not_precise_ip() {
        let mut pmu = IbsPmu::new(10, 3, 1);
        let samples = feed_n(&mut pmu, 1000, 0);
        assert!(!samples.is_empty());
        for s in &samples {
            assert_eq!(s.signal_ip, s.precise_ip + 3, "skid must be 3 ops");
        }
    }

    #[test]
    fn zero_skid_delivers_inline() {
        let mut pmu = IbsPmu::new(10, 0, 1);
        let samples = feed_n(&mut pmu, 100, 0);
        for s in &samples {
            assert_eq!(s.signal_ip, s.precise_ip);
        }
    }

    #[test]
    fn non_memory_ops_sampled_without_ea() {
        let mut pmu = IbsPmu::new(5, 0, 3);
        let mut got = 0;
        for i in 0..100u64 {
            let op = OpRecord { ip: i, core: CoreId(1), mem: None };
            if let Some(s) = pmu.observe_op(op) {
                assert_eq!(s.ea, None);
                assert_eq!(s.source, None);
                got += 1;
            }
        }
        assert!(got > 10);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = IbsPmu::new(37, 2, 99);
        let mut b = IbsPmu::new(37, 2, 99);
        let sa = feed_n(&mut a, 10_000, 0);
        let sb = feed_n(&mut b, 10_000, 0);
        assert_eq!(sa.len(), sb.len());
        for (x, y) in sa.iter().zip(&sb) {
            assert_eq!(x.precise_ip, y.precise_ip);
        }
    }

    #[test]
    fn different_seeds_decorrelate() {
        let mut a = IbsPmu::new(37, 0, 1);
        let mut b = IbsPmu::new(37, 0, 2);
        let sa: Vec<u64> = feed_n(&mut a, 10_000, 0).iter().map(|s| s.precise_ip).collect();
        let sb: Vec<u64> = feed_n(&mut b, 10_000, 0).iter().map(|s| s.precise_ip).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn captures_latency_and_source() {
        let mut pmu = IbsPmu::new(1, 0, 0);
        let (res, ea, _) = mem_op(5);
        let op = OpRecord { ip: 5, core: CoreId(0), mem: Some((&res, ea, true)) };
        let s = pmu.observe_op(op).expect("period 1 samples every op");
        assert_eq!(s.latency, 42);
        assert_eq!(s.source, Some(DataSource::LocalDram));
        assert!(s.is_store);
        assert_eq!(s.ea, Some(0xabcd));
    }

    #[test]
    #[should_panic]
    fn zero_period_panics() {
        let _ = IbsPmu::new(0, 0, 0);
    }

    /// Regression snapshot: the jittered sample stream for a fixed seed.
    /// The PRNG behind period jitter is part of the profiler's observable
    /// behavior — a PRNG change silently reshuffles every profile, so the
    /// exact tag points for seed 42 are pinned here.
    #[test]
    fn sample_stream_snapshot_for_seed_42() {
        let mut pmu = IbsPmu::new(100, 2, 42);
        let samples = feed_n(&mut pmu, 2000, 0);
        let ips: Vec<u64> = samples.iter().map(|s| s.precise_ip).collect();
        assert_eq!(
            ips,
            [101, 211, 306, 401, 499, 595, 709, 817, 923, 1013, 1120, 1222, 1329, 1437, 1547,
             1643, 1751, 1862, 1966],
        );
        for s in &samples {
            assert_eq!(s.signal_ip, s.precise_ip + 2, "skid of 2 ops");
        }
    }
}
