//! Per-NUMA-domain DRAM controllers with a work-conserving queue model.
//!
//! Each controller serves one line transfer every `service` cycles.
//! Queueing is modeled as a *fluid backlog*: pending work (cycles of
//! service) that grows by `service` per request and drains one-for-one
//! with observed time progress. A request's queueing delay is the backlog
//! it finds. When many threads hammer one domain (the Streamcluster/NW
//! pathology), backlog grows until the latency it feeds back slows the
//! requesters to the controller's service rate — while the other domains
//! sit idle.
//!
//! The backlog formulation (rather than an absolute `busy_until`
//! timestamp) is essential in a multi-clock simulation: thread clocks are
//! only loosely synchronized, and reserving absolute time intervals lets
//! a thread that leapt ahead drag the controller into the future and
//! charge laggards for idle gaps — a leapfrog amplification that
//! snowballs. Backlog is invariant to clock skew: it only ever grows by
//! real work and drains with real progress.

use crate::Cycles;

/// One memory controller.
#[derive(Debug, Clone)]
pub struct Controller {
    /// Latest request timestamp observed (drain reference).
    last_now: Cycles,
    /// Pending work in cycles.
    backlog: Cycles,
    service: u32,
    accesses: u64,
    queued_cycles: u64,
}

impl Controller {
    fn new(service: u32) -> Self {
        Self { last_now: 0, backlog: 0, service, accesses: 0, queued_cycles: 0 }
    }

    fn drain_to(&mut self, now: Cycles) {
        if now > self.last_now {
            self.backlog = self.backlog.saturating_sub(now - self.last_now);
            self.last_now = now;
        }
    }

    /// Serve one line transfer requested at time `now`. Returns the
    /// queueing delay (the backlog the request found).
    pub fn request(&mut self, now: Cycles) -> Cycles {
        self.drain_to(now);
        let delay = self.backlog;
        self.backlog += self.service as Cycles;
        self.accesses += 1;
        self.queued_cycles += delay;
        delay
    }

    /// Number of line transfers served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Pending work a request arriving at `now` would find.
    pub fn backlog(&self, now: Cycles) -> Cycles {
        self.backlog.saturating_sub(now.saturating_sub(self.last_now))
    }

    /// Total cycles requests spent queued (contention indicator).
    pub fn queued_cycles(&self) -> u64 {
        self.queued_cycles
    }
}

/// The machine's set of DRAM controllers, one per NUMA domain.
#[derive(Debug, Clone)]
pub struct Dram {
    controllers: Vec<Controller>,
}

impl Dram {
    /// `domains` controllers, each with `service` cycles per line.
    pub fn new(domains: u32, service: u32) -> Self {
        assert!(domains > 0 && service > 0);
        Self { controllers: (0..domains).map(|_| Controller::new(service)).collect() }
    }

    /// Queueing delay for a line request to `domain` at time `now`.
    pub fn request(&mut self, domain: u32, now: Cycles) -> Cycles {
        self.controllers[domain as usize].request(now)
    }

    /// Backlog of `domain`'s controller at `now` (prefetch throttling).
    pub fn backlog(&self, domain: u32, now: Cycles) -> Cycles {
        self.controllers[domain as usize].backlog(now)
    }

    /// Per-domain access counts (bandwidth demand picture).
    pub fn access_histogram(&self) -> Vec<u64> {
        self.controllers.iter().map(|c| c.accesses()).collect()
    }

    /// Per-domain total queueing cycles.
    pub fn queue_histogram(&self) -> Vec<u64> {
        self.controllers.iter().map(|c| c.queued_cycles()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_controller_has_no_queueing() {
        let mut d = Dram::new(2, 4);
        assert_eq!(d.request(0, 100), 0);
        // Next request well after service completes: still no delay.
        assert_eq!(d.request(0, 200), 0);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut d = Dram::new(1, 4);
        assert_eq!(d.request(0, 0), 0);
        assert_eq!(d.request(0, 0), 4);
        assert_eq!(d.request(0, 0), 8);
        assert_eq!(d.queue_histogram(), vec![12]);
    }

    #[test]
    fn backlog_drains_with_time() {
        let mut d = Dram::new(1, 10);
        d.request(0, 0);
        d.request(0, 0); // backlog 20
        assert_eq!(d.backlog(0, 5), 15);
        assert_eq!(d.backlog(0, 100), 0);
        // A request at t=15 finds 5 cycles of pending work.
        assert_eq!(d.request(0, 15), 5);
    }

    #[test]
    fn lagging_clock_is_not_charged_for_idle_gaps() {
        // A thread far ahead in time must not make a lagging thread wait
        // the entire wall-clock gap (the leapfrog pathology).
        let mut d = Dram::new(1, 4);
        assert_eq!(d.request(0, 1_000_000), 0);
        let delay = d.request(0, 10); // lagging clock
        assert!(delay <= 4, "laggard charged {delay}");
    }

    #[test]
    fn independent_controllers_do_not_interfere() {
        let mut d = Dram::new(2, 4);
        d.request(0, 0);
        assert_eq!(d.request(1, 0), 0, "domain 1 idle while domain 0 busy");
    }

    #[test]
    fn hammering_one_domain_vs_spreading() {
        // 64 requests at t=0 to a single controller queue linearly...
        let mut hot = Dram::new(4, 4);
        let hot_delay: u64 = (0..64).map(|_| hot.request(0, 0)).sum();
        // ...while interleaved requests split the queue four ways.
        let mut spread = Dram::new(4, 4);
        let spread_delay: u64 = (0..64).map(|i| spread.request(i % 4, 0)).sum();
        assert!(hot_delay > 3 * spread_delay, "{hot_delay} vs {spread_delay}");
    }

    #[test]
    fn histogram_counts_accesses() {
        let mut d = Dram::new(3, 2);
        d.request(0, 0);
        d.request(2, 0);
        d.request(2, 10);
        assert_eq!(d.access_histogram(), vec![1, 0, 2]);
    }
}
