//! The online call-path profiler with data-centric attribution (§4.1).
//!
//! [`Profiler`] implements [`NodeObserver`]: it receives PMU samples (the
//! "signal handler"), wrapped allocator events, and load-module events
//! from the runtime, and builds per-thread calling context trees split by
//! storage class — exactly the paper's design:
//!
//! * per-thread CCTs, so attribution needs no synchronization (§4.1.4);
//! * skid correction: the leaf uses the PMU's precise IP, not the signal
//!   context's (§4.1.2);
//! * heap samples prepend the allocation call path and a heap-data
//!   marker, so multiple allocations from one path merge into one
//!   variable (§4.1.3–4.1.4, Figure 2);
//! * static samples hang below a variable dummy node;
//! * everything else lands in the unknown-data tree, and samples on
//!   non-memory instructions in a fourth tree.
//!
//! Every hook returns the cycles the profiler itself consumed, which the
//! runtime charges to the monitored thread — making Table 1's
//! measurement overhead an observable quantity.

use dcp_cct::{encode, encode_v1, Cct, Frame, ROOT};
use dcp_machine::{Cycles, Sample};
use dcp_runtime::observer::{AllocEvent, FreeEvent, ModuleEvent, NodeObserver, ThreadView};
use dcp_runtime::FrameInfo;
use dcp_support::FxHashMap;

use crate::datacentric::{AllocPaths, HeapMap, ProfCosts, StaticMap, TrackingPolicy, UnwindCache};
use crate::metrics::{Metric, StorageClass, CLASSES, WIDTH};

/// Profiler configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProfilerConfig {
    pub tracking: TrackingPolicy,
    pub costs: ProfCosts,
    /// Attribute samples to the PMU-recorded precise IP (true, the
    /// paper's approach) or naively to the signal-context IP (false; used
    /// by the skid ablation to demonstrate misattribution).
    pub skid_correction: bool,
    /// Classify thread-stack accesses into their own storage class (this
    /// reproduction's §7 extension). When false, they fall into unknown
    /// data, matching the paper's published system.
    pub stack_class: bool,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        Self {
            tracking: TrackingPolicy::default(),
            costs: ProfCosts::default(),
            skid_correction: true,
            stack_class: true,
        }
    }
}

/// Counters describing what the profiler did (and what it cost).
#[derive(Debug, Default, Clone)]
pub struct ProfStats {
    pub samples: u64,
    pub samples_by_class: [u64; CLASSES],
    pub allocs_seen: u64,
    pub allocs_tracked: u64,
    pub frees_seen: u64,
    pub unwind_frames: u64,
    /// Total cycles of profiler overhead charged to monitored threads.
    pub overhead_cycles: u64,
}

impl ProfStats {
    fn class_idx(c: StorageClass) -> usize {
        match c {
            StorageClass::Static => 0,
            StorageClass::Heap => 1,
            StorageClass::Stack => 2,
            StorageClass::Unknown => 3,
            StorageClass::NoMem => 4,
        }
    }

    /// Samples attributed to `class`.
    pub fn class_samples(&self, c: StorageClass) -> u64 {
        self.samples_by_class[Self::class_idx(c)]
    }

    /// Merge counters from another node's profiler.
    pub fn merge(&mut self, o: &ProfStats) {
        self.samples += o.samples;
        for i in 0..CLASSES {
            self.samples_by_class[i] += o.samples_by_class[i];
        }
        self.allocs_seen += o.allocs_seen;
        self.allocs_tracked += o.allocs_tracked;
        self.frees_seen += o.frees_seen;
        self.unwind_frames += o.unwind_frames;
        self.overhead_cycles += o.overhead_cycles;
    }
}

/// Per-thread measurement state: one CCT per storage class plus the
/// trampoline cache.
struct ThreadProf {
    trees: [Cct; CLASSES],
    unwind_cache: UnwindCache,
}

impl ThreadProf {
    fn new() -> Self {
        Self {
            trees: std::array::from_fn(|_| Cct::new(WIDTH)),
            unwind_cache: UnwindCache::new(),
        }
    }
}

/// The measurement data a node's profiler hands to the post-mortem
/// analyzer: per-thread per-class CCTs plus allocation metadata.
pub struct MeasurementData {
    /// `profiles[class][i]` — the i-th thread's tree for that class.
    pub profiles: [Vec<Cct>; CLASSES],
    /// (allocation path, allocation count, requested bytes, zeroed
    /// count) per context.
    pub alloc_info: Vec<(Vec<Frame>, u64, u64, u64)>,
    pub stats: ProfStats,
}

/// The data-centric profiler attached to one node.
pub struct Profiler {
    cfg: ProfilerConfig,
    static_map: StaticMap,
    heap_map: HeapMap,
    alloc_paths: AllocPaths,
    threads: FxHashMap<(u32, u32), ThreadProf>,
    /// Reusable unwind scratch for `on_alloc`, so interning an allocation
    /// path does not allocate a fresh `Vec<Frame>` per event.
    path_scratch: Vec<Frame>,
    stats: ProfStats,
}

/// Is a global effective address inside some thread's stack window?
fn is_stack_address(ea: u64) -> bool {
    use dcp_runtime::alloc::{STACK_BASE, STACK_END};
    let local = dcp_runtime::layout::local_of(ea);
    ea >> dcp_runtime::layout::RANK_SHIFT != 0 && (STACK_BASE..STACK_END).contains(&local)
}

/// Convert an unwound stack into CCT frames (root procedure, then call
/// sites). The sampled statement is appended separately.
fn convert_stack(frames: &[FrameInfo]) -> impl Iterator<Item = Frame> + '_ {
    frames.iter().map(|f| match f.call_site {
        None => Frame::Proc(f.proc.0 as u64),
        Some(ip) => Frame::CallSite(ip.0),
    })
}

impl Profiler {
    pub fn new(cfg: ProfilerConfig) -> Self {
        Self {
            cfg,
            static_map: StaticMap::new(),
            heap_map: HeapMap::new(),
            alloc_paths: AllocPaths::new(),
            threads: FxHashMap::default(),
            path_scratch: Vec::new(),
            stats: ProfStats::default(),
        }
    }

    /// Profiler with everything defaulted.
    pub fn standard() -> Self {
        Self::new(ProfilerConfig::default())
    }

    /// Counters so far.
    pub fn stats(&self) -> &ProfStats {
        &self.stats
    }

    /// Total size of this node's measurement data, serialized with the
    /// compact profile codec (the paper's space-overhead figure).
    pub fn profile_bytes(&self) -> usize {
        self.threads
            .values()
            .flat_map(|t| t.trees.iter())
            .map(|t| encode(t).len())
            .sum()
    }

    /// The same measurement data serialized with the legacy v1 wire
    /// format — the baseline of the v1-vs-v2 space comparison that
    /// Table 1 reports alongside the (v2) `profile_bytes`.
    pub fn profile_bytes_v1(&self) -> usize {
        self.threads
            .values()
            .flat_map(|t| t.trees.iter())
            .map(|t| encode_v1(t).len())
            .sum()
    }

    /// Hypothetical size of a MemProf-style *trace* of the same
    /// execution: one fixed-size record per sample and per allocation.
    /// The trace-vs-profile ablation compares this to
    /// [`profile_bytes`](Self::profile_bytes).
    pub fn trace_bytes(&self) -> usize {
        (self.stats.samples * 32 + self.stats.allocs_seen * 48) as usize
    }

    /// Number of live tracked heap blocks (diagnostics).
    pub fn live_heap_blocks(&self) -> usize {
        self.heap_map.live_blocks()
    }

    /// Extract the measurement data for post-mortem analysis.
    pub fn into_measurement(self) -> MeasurementData {
        let mut profiles: [Vec<Cct>; CLASSES] = std::array::from_fn(|_| Vec::new());
        // Deterministic order regardless of hash-map iteration.
        let mut threads: Vec<((u32, u32), ThreadProf)> = self.threads.into_iter().collect();
        threads.sort_by_key(|(k, _)| *k);
        for (_, tp) in threads {
            for (i, tree) in tp.trees.into_iter().enumerate() {
                profiles[i].push(tree);
            }
        }
        let alloc_info = (0..self.alloc_paths.len())
            .map(|i| {
                let id = crate::datacentric::AllocCtxId(i as u32);
                (
                    self.alloc_paths.path(id).to_vec(),
                    self.alloc_paths.count(id),
                    self.alloc_paths.bytes(id),
                    self.alloc_paths.zeroed(id),
                )
            })
            .collect();
        MeasurementData { profiles, alloc_info, stats: self.stats }
    }

    /// Insert one sample into the per-thread tree for `class`. The prefix
    /// is a borrowed slice plus an optional marker frame, so callers can
    /// pass interned allocation paths (or a one-frame static prefix on
    /// the stack) without materialising a `Vec` per sample. Associated fn
    /// over split borrows so `prefix` may borrow `self.alloc_paths`.
    #[allow(clippy::too_many_arguments)]
    fn attribute(
        threads: &mut FxHashMap<(u32, u32), ThreadProf>,
        stats: &mut ProfStats,
        key: (u32, u32),
        class: StorageClass,
        prefix: &[Frame],
        marker: Option<Frame>,
        stack: &[FrameInfo],
        leaf: Frame,
        sample: &Sample,
    ) {
        let tp = threads.entry(key).or_insert_with(ThreadProf::new);
        let tree = &mut tp.trees[ProfStats::class_idx(class)];
        let mut node = ROOT;
        for &f in prefix {
            node = tree.child(node, f);
        }
        if let Some(f) = marker {
            node = tree.child(node, f);
        }
        for f in convert_stack(stack) {
            node = tree.child(node, f);
        }
        node = tree.child(node, leaf);
        tree.add(node, Metric::Samples.col(), 1);
        tree.add(node, Metric::Latency.col(), sample.latency as u64);
        if sample.source.is_some_and(|s| s.is_remote()) {
            tree.add(node, Metric::Remote.col(), 1);
        }
        if sample.tlb_miss {
            tree.add(node, Metric::TlbMiss.col(), 1);
        }
        if sample.is_store {
            tree.add(node, Metric::Stores.col(), 1);
        }
        stats.samples += 1;
        stats.samples_by_class[ProfStats::class_idx(class)] += 1;
    }
}

impl NodeObserver for Profiler {
    fn on_sample(&mut self, sample: &Sample, view: &ThreadView<'_>) -> Cycles {
        let costs = self.cfg.costs;
        let cost = costs.sample_base as Cycles
            + view.frames.len() as Cycles * costs.unwind_frame as Cycles
            + costs.map_lookup as Cycles
            + costs.cct_insert as Cycles;
        self.stats.unwind_frames += view.frames.len() as u64;
        self.stats.overhead_cycles += cost;

        // Skid correction: prefer the PMU's precise IP over the signal
        // context (§4.1.2). Without it, samples land on whatever
        // instruction the interrupt happened to hit.
        let leaf_ip =
            if self.cfg.skid_correction { sample.precise_ip } else { sample.signal_ip };
        let leaf = Frame::Stmt(leaf_ip);
        let key = (view.rank, view.thread);

        let threads = &mut self.threads;
        let stats = &mut self.stats;
        match sample.ea {
            None => Self::attribute(
                threads,
                stats,
                key,
                StorageClass::NoMem,
                &[],
                None,
                view.frames,
                leaf,
                sample,
            ),
            Some(ea) => {
                if let Some(ctx) = self.heap_map.lookup(ea) {
                    // Prepend the allocation path and the heap marker:
                    // the copy-and-merge of §4.1.4. The path is borrowed
                    // straight from the interner — no per-sample copy.
                    Self::attribute(
                        threads,
                        stats,
                        key,
                        StorageClass::Heap,
                        self.alloc_paths.path(ctx),
                        Some(Frame::HeapMarker),
                        view.frames,
                        leaf,
                        sample,
                    );
                } else if self.cfg.stack_class && is_stack_address(ea) {
                    Self::attribute(
                        threads,
                        stats,
                        key,
                        StorageClass::Stack,
                        &[],
                        None,
                        view.frames,
                        leaf,
                        sample,
                    );
                } else if let Some(h) = self.static_map.lookup(ea) {
                    Self::attribute(
                        threads,
                        stats,
                        key,
                        StorageClass::Static,
                        &[Frame::StaticVar(h.0)],
                        None,
                        view.frames,
                        leaf,
                        sample,
                    );
                } else {
                    Self::attribute(
                        threads,
                        stats,
                        key,
                        StorageClass::Unknown,
                        &[],
                        None,
                        view.frames,
                        leaf,
                        sample,
                    );
                }
            }
        }
        cost
    }

    fn on_alloc(&mut self, ev: &AllocEvent, view: &ThreadView<'_>) -> Cycles {
        self.stats.allocs_seen += 1;
        let costs = self.cfg.costs;
        if ev.bytes < self.cfg.tracking.min_tracked_bytes {
            // Below the threshold: only the wrapper cost, no unwinding,
            // no map entry (§4.1.3's first strategy).
            let cost = costs.alloc_wrap as Cycles;
            self.stats.overhead_cycles += cost;
            return cost;
        }
        let tp = self.threads.entry((view.rank, view.thread)).or_insert_with(ThreadProf::new);
        let outcome = tp.unwind_cache.capture(view.frames, &self.cfg.tracking, &costs);
        self.stats.unwind_frames += outcome.frames_walked as u64;
        self.path_scratch.clear();
        self.path_scratch.extend(convert_stack(view.frames));
        self.path_scratch.push(Frame::Stmt(ev.ip.0));
        let ctx = self.alloc_paths.intern_full(&self.path_scratch, ev.bytes, ev.zeroed);
        self.heap_map.insert(ev.addr, ev.bytes, ctx);
        self.stats.allocs_tracked += 1;
        let cost = outcome.cost + costs.map_lookup as Cycles;
        self.stats.overhead_cycles += cost;
        cost
    }

    fn on_free(&mut self, ev: &FreeEvent, _view: &ThreadView<'_>) -> Cycles {
        // All frees are wrapped (cheaply, with no unwinding) so stale map
        // entries never misattribute later accesses (§4.1.3).
        self.stats.frees_seen += 1;
        self.heap_map.remove(ev.addr);
        let cost = self.cfg.costs.free_wrap as Cycles;
        self.stats.overhead_cycles += cost;
        cost
    }

    fn on_module(&mut self, ev: &ModuleEvent<'_>) {
        match ev {
            ModuleEvent::Loaded { module, def, rank } => {
                self.static_map.load_module(*rank, *module, def);
            }
            ModuleEvent::Unloaded { module, rank } => {
                self.static_map.unload_module(*rank, *module);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_machine::pmu::SampleOrigin;
    use dcp_machine::{CoreId, DataSource};
    use dcp_runtime::ir::{Ip, ProcId};

    fn view<'a>(frames: &'a [FrameInfo], rank: u32, thread: u32) -> ThreadView<'a> {
        ThreadView { rank, thread, core: CoreId(0), clock: 0, frames, leaf_ip: Ip(0) }
    }

    fn frames() -> Vec<FrameInfo> {
        vec![
            FrameInfo { proc: ProcId(0), call_site: None, token: 0 },
            FrameInfo { proc: ProcId(1), call_site: Some(Ip(0x100)), token: 1 },
        ]
    }

    fn mem_sample(ea: u64, latency: u32, source: DataSource) -> Sample {
        Sample {
            origin: SampleOrigin::Ibs,
            precise_ip: 0x200,
            signal_ip: 0x203,
            ea: Some(ea),
            latency,
            source: Some(source),
            tlb_miss: false,
            is_store: false,
            core: CoreId(0),
        }
    }

    #[test]
    fn untracked_address_goes_to_unknown() {
        let mut p = Profiler::standard();
        let f = frames();
        let s = mem_sample(0x7777_7777, 100, DataSource::LocalDram);
        let cost = p.on_sample(&s, &view(&f, 0, 0));
        assert!(cost > 0);
        assert_eq!(p.stats().class_samples(StorageClass::Unknown), 1);
    }

    #[test]
    fn tracked_heap_block_attributes_to_heap_with_alloc_path() {
        let mut p = Profiler::standard();
        let f = frames();
        let ev = AllocEvent { addr: 0x10_0000, bytes: 8192, zeroed: false, ip: Ip(0x150) };
        p.on_alloc(&ev, &view(&f, 0, 0));
        let s = mem_sample(0x10_0040, 250, DataSource::RemoteDram);
        p.on_sample(&s, &view(&f, 0, 0));
        assert_eq!(p.stats().class_samples(StorageClass::Heap), 1);
        // The heap tree path: alloc path, marker, access path, leaf.
        let m = p.into_measurement();
        let tree = &m.profiles[1][0];
        let canon = tree.canonical();
        assert_eq!(canon.len(), 1);
        let (path, metrics) = &canon[0];
        assert!(path.contains(&Frame::HeapMarker));
        assert!(path.contains(&Frame::Stmt(0x150)), "alloc site in prefix");
        assert_eq!(*path.last().unwrap(), Frame::Stmt(0x200), "precise IP leaf");
        assert_eq!(metrics[Metric::Samples.col()], 1);
        assert_eq!(metrics[Metric::Latency.col()], 250);
        assert_eq!(metrics[Metric::Remote.col()], 1);
    }

    #[test]
    fn small_allocations_skipped_but_frees_tracked() {
        let mut p = Profiler::standard();
        let f = frames();
        let small = AllocEvent { addr: 0x20_0000, bytes: 64, zeroed: false, ip: Ip(0x150) };
        let c_small = p.on_alloc(&small, &view(&f, 0, 0));
        assert_eq!(p.stats().allocs_tracked, 0);
        assert_eq!(p.live_heap_blocks(), 0);
        // Accesses to it are unknown, never misattributed.
        p.on_sample(&mem_sample(0x20_0000, 50, DataSource::L2), &view(&f, 0, 0));
        assert_eq!(p.stats().class_samples(StorageClass::Unknown), 1);
        // The skipped alloc is much cheaper than a tracked one.
        let big = AllocEvent { addr: 0x30_0000, bytes: 1 << 20, zeroed: false, ip: Ip(0x150) };
        let c_big = p.on_alloc(&big, &view(&f, 0, 0));
        assert!(c_small * 3 < c_big);
        p.on_free(&FreeEvent { addr: 0x20_0000, bytes: 64, ip: Ip(0x160) }, &view(&f, 0, 0));
        assert_eq!(p.stats().frees_seen, 1);
    }

    #[test]
    fn freed_block_no_longer_attributes() {
        let mut p = Profiler::standard();
        let f = frames();
        let ev = AllocEvent { addr: 0x40_0000, bytes: 8192, zeroed: false, ip: Ip(0x150) };
        p.on_alloc(&ev, &view(&f, 0, 0));
        p.on_free(&FreeEvent { addr: 0x40_0000, bytes: 8192, ip: Ip(0x151) }, &view(&f, 0, 0));
        p.on_sample(&mem_sample(0x40_0000, 50, DataSource::L1), &view(&f, 0, 0));
        assert_eq!(p.stats().class_samples(StorageClass::Heap), 0);
        assert_eq!(p.stats().class_samples(StorageClass::Unknown), 1);
    }

    #[test]
    fn nomem_samples_have_their_own_tree() {
        let mut p = Profiler::standard();
        let f = frames();
        let s = Sample {
            ea: None,
            source: None,
            latency: 0,
            ..mem_sample(0, 0, DataSource::L1)
        };
        p.on_sample(&s, &view(&f, 0, 0));
        assert_eq!(p.stats().class_samples(StorageClass::NoMem), 1);
    }

    #[test]
    fn skid_correction_toggles_leaf() {
        let run = |corr: bool| {
            let mut p = Profiler::new(ProfilerConfig {
                skid_correction: corr,
                ..ProfilerConfig::default()
            });
            let f = frames();
            p.on_sample(&mem_sample(0x9999, 10, DataSource::L1), &view(&f, 0, 0));
            let m = p.into_measurement();
            let canon = m.profiles[3][0].canonical(); // unknown tree
            canon[0].0.last().cloned().unwrap()
        };
        assert_eq!(run(true), Frame::Stmt(0x200));
        assert_eq!(run(false), Frame::Stmt(0x203));
    }

    #[test]
    fn per_thread_trees_are_separate() {
        let mut p = Profiler::standard();
        let f = frames();
        p.on_sample(&mem_sample(0x1, 1, DataSource::L1), &view(&f, 0, 0));
        p.on_sample(&mem_sample(0x1, 1, DataSource::L1), &view(&f, 0, 5));
        p.on_sample(&mem_sample(0x1, 1, DataSource::L1), &view(&f, 3, 0));
        let m = p.into_measurement();
        assert_eq!(m.profiles[3].len(), 3, "three distinct threads");
    }

    #[test]
    fn profile_is_smaller_than_trace_for_repeated_paths() {
        let mut p = Profiler::standard();
        let f = frames();
        for _ in 0..10_000 {
            p.on_sample(&mem_sample(0x1234, 10, DataSource::L2), &view(&f, 0, 0));
        }
        assert!(p.profile_bytes() * 100 < p.trace_bytes());
    }
}
