//! The metric schema attributed to CCT nodes.
//!
//! Every sample contributes to a fixed set of columns. Hardware exposes
//! different raw events on different machines (IBS latency on AMD, marked
//! events on POWER7); the profiler normalizes both into this schema, the
//! same way HPCToolkit presents uniform metric columns in its GUI.

/// Column indices of the standard metric vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Number of samples attributed.
    Samples = 0,
    /// Summed access latency (cycles) of attributed samples.
    Latency = 1,
    /// Samples whose data came from another NUMA domain (remote DRAM or
    /// remote cache) — the paper's REMOTE_ACCESS / R_DRAM_ACCESS picture.
    Remote = 2,
    /// Samples whose access missed the TLB.
    TlbMiss = 3,
    /// Samples that were stores.
    Stores = 4,
}

/// Number of columns in the standard schema.
pub const WIDTH: usize = 5;

/// Human-readable column names, indexable by `Metric as usize`.
pub const NAMES: [&str; WIDTH] = ["SAMPLES", "LATENCY", "REMOTE", "TLB_MISS", "STORES"];

impl Metric {
    /// Column index.
    pub fn col(self) -> usize {
        self as usize
    }

    /// Column name.
    pub fn name(self) -> &'static str {
        NAMES[self as usize]
    }
}

/// The data-centric storage classes. The paper's system distinguishes
/// static, heap and unknown (§4.1.3) plus a tree for samples that touch
/// no memory (§4.1.2); *stack* is this reproduction's implementation of
/// the paper's §7 future-work item ("associate data-centric measurements
/// with stack-allocated variables") — stack accesses get their own class
/// instead of falling into unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageClass {
    /// `.bss` data of some load module.
    Static,
    /// malloc-family allocations.
    Heap,
    /// Thread-stack data (frame-scoped allocations).
    Stack,
    /// Everything else: `brk` data, untracked small allocations.
    Unknown,
    /// Samples on non-memory instructions.
    NoMem,
}

/// Number of storage classes (= per-thread trees).
pub const CLASSES: usize = 5;

impl StorageClass {
    pub const ALL: [StorageClass; CLASSES] = [
        StorageClass::Static,
        StorageClass::Heap,
        StorageClass::Stack,
        StorageClass::Unknown,
        StorageClass::NoMem,
    ];

    pub fn name(self) -> &'static str {
        match self {
            StorageClass::Static => "static data",
            StorageClass::Heap => "heap data",
            StorageClass::Stack => "stack data",
            StorageClass::Unknown => "unknown data",
            StorageClass::NoMem => "no memory access",
        }
    }

    /// Dense index of this class, matching its position in
    /// [`StorageClass::ALL`]. The per-class tree arrays everywhere
    /// (profiler, analysis, stored bundles, the serve store) are indexed
    /// by this — it is part of the profile bundle wire format.
    pub fn idx(self) -> usize {
        match self {
            StorageClass::Static => 0,
            StorageClass::Heap => 1,
            StorageClass::Stack => 2,
            StorageClass::Unknown => 3,
            StorageClass::NoMem => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_are_dense_and_named() {
        assert_eq!(Metric::Samples.col(), 0);
        assert_eq!(Metric::Stores.col(), 4);
        assert_eq!(NAMES.len(), WIDTH);
        assert_eq!(Metric::Latency.name(), "LATENCY");
    }

    #[test]
    fn storage_classes_enumerate() {
        assert_eq!(StorageClass::ALL.len(), CLASSES);
        assert_eq!(StorageClass::Heap.name(), "heap data");
        assert_eq!(StorageClass::Stack.name(), "stack data");
    }
}
