//! Post-mortem analysis (§4.2).
//!
//! The analyzer gathers the per-thread profiles from every node's
//! profiler, merges them per storage class with the scalable reduction
//! tree, and resolves frames against the program's symbol tables and
//! line maps — producing the [`Analysis`] the presentation views render.

use dcp_cct::{
    encode_named, merge_encoded, merge_reduction_tree, Cct, CodecError, Frame, NodeId,
    ProfileNames, ROOT,
};
use dcp_runtime::ir::{Ip, ProcId, Program};
use dcp_support::bytes::Bytes;
use dcp_support::FxHashMap;

use crate::metrics::{Metric, StorageClass, CLASSES, WIDTH};
use crate::profiler::{MeasurementData, ProfStats};

/// Resolve one CCT frame to a display string against `program`'s symbol
/// tables (free-function form, shared by [`Analysis::resolve_frame`] and
/// the profile-name builder).
pub fn resolve_frame_name(program: &Program, f: Frame) -> String {
    match f {
        Frame::Root => "<program root>".to_string(),
        Frame::Proc(p) => program.proc(ProcId(p as u32)).name.clone(),
        Frame::CallSite(ip) | Frame::Stmt(ip) => program.render_ip(Ip(ip)),
        Frame::StaticVar(h) => {
            let handle = crate::datacentric::StaticHandle(h);
            let m = program.module(handle.module());
            m.statics
                .get(handle.sym() as usize)
                .map(|s| s.name.clone())
                .unwrap_or_else(|| format!("<static {h:#x}>"))
        }
        Frame::HeapMarker => "heap data accesses".to_string(),
    }
}

/// Build the v2 name section for one profile: every procedure and
/// static-variable frame in the tree gets its symbol name, so the
/// encoded profile is self-describing away from the producing program.
/// (Call sites and statements stay numeric — the line map renders them.)
pub fn profile_names(program: &Program, cct: &Cct) -> ProfileNames {
    let mut names = ProfileNames::default();
    for id in 0..cct.len() as u32 {
        let f = cct.frame(NodeId(id));
        if matches!(f, Frame::Proc(_) | Frame::StaticVar(_)) && names.lookup(f).is_none() {
            names.name(f, &resolve_frame_name(program, f));
        }
    }
    names
}

/// A node's measurement data with every profile serialized to the v2
/// wire format — what would travel over the wire (or sit on disk) in a
/// real multi-node run, and what [`Analysis::analyze_encoded`] consumes
/// without ever materializing more than the merge accumulators.
pub struct EncodedMeasurement {
    /// `profiles[class][i]` — the i-th thread's encoded tree.
    pub profiles: [Vec<Bytes>; CLASSES],
    /// Allocation metadata, unchanged from [`MeasurementData`].
    pub alloc_info: Vec<(Vec<Frame>, u64, u64, u64)>,
    pub stats: ProfStats,
}

/// Serialize one node's measurement data to the v2 wire format with
/// frame names resolved against `program`.
///
/// Per-thread trees are independent and `par_map` returns results
/// positionally, so the encode fans out over the host pool while the
/// byte streams stay identical at any `DCP_THREADS`.
pub fn encode_measurement(program: &Program, m: &MeasurementData) -> EncodedMeasurement {
    let profiles = std::array::from_fn(|class| {
        dcp_support::pool::par_map(&m.profiles[class], |t| {
            encode_named(t, &profile_names(program, t))
        })
    });
    EncodedMeasurement { profiles, alloc_info: m.alloc_info.clone(), stats: m.stats.clone() }
}

/// One variable with its aggregate (inclusive) metrics — a row of the
/// paper's variable-centric views.
#[derive(Debug, Clone)]
pub struct VarSummary {
    /// Display name: the symbol name for statics; for heap variables, the
    /// source-level hint at the allocation site (falling back to the
    /// allocation site's `proc:line`).
    pub name: String,
    pub class: StorageClass,
    /// The variable's dummy node in its class tree.
    pub node: NodeId,
    /// Inclusive metric vector at the variable node.
    pub metrics: [u64; WIDTH],
    /// For heap variables: how many blocks this allocation path produced.
    pub alloc_count: u64,
    /// For heap variables: total requested bytes.
    pub alloc_bytes: u64,
    /// For heap variables: how many blocks were zero-filled (`calloc`).
    pub alloc_zeroed: u64,
    /// Resolved allocation site (`proc:line`), empty for statics.
    pub alloc_site: String,
    /// Resolved call site that invoked the allocation wrapper (the
    /// deepest `CallSite` on the allocation path), empty for statics or
    /// direct allocations.
    pub caller_site: String,
}

/// Where frame and source-hint strings come from when rendering a
/// profile. [`Analysis`] resolves against the live [`Program`]; the
/// serving layer's stored profiles resolve against name tables carried
/// in the profile bundle — by construction the same strings, so every
/// view renders identically from either source.
pub trait SymbolSource {
    /// Display string for one frame.
    fn frame_name(&self, f: Frame) -> String;
    /// The source-level variable hint at an instruction, if any
    /// (`S_diag_j = hypre_CAlloc(...)` records `S_diag_j` at that line).
    fn hint(&self, ip: u64) -> Option<String>;
}

/// A merged, per-storage-class profile that the presentation views can
/// render: the class trees plus allocation metadata plus symbols. Both
/// the in-process [`Analysis`] and the server-side stored evaluator
/// implement this, so `topdown`/`bottomup`/`flat`/`ranking`/`variables`
/// /`compare` are written once.
pub trait ProfileView: SymbolSource {
    /// The merged tree for one storage class.
    fn class_tree(&self, c: StorageClass) -> &Cct;

    /// Allocation metadata by allocation path.
    fn alloc_map(&self) -> &FxHashMap<Vec<Frame>, (u64, u64, u64)>;

    /// Total of `metric` within one storage class.
    fn class_total(&self, c: StorageClass, metric: Metric) -> u64 {
        self.class_tree(c).total(metric.col())
    }

    /// Total of `metric` across all storage classes.
    fn grand_total(&self, metric: Metric) -> u64 {
        StorageClass::ALL.iter().map(|&c| self.class_total(c, metric)).sum()
    }

    /// Fraction (0–100) of `metric` attributed to class `c`.
    fn class_pct(&self, c: StorageClass, metric: Metric) -> f64 {
        let total = self.grand_total(metric);
        if total == 0 {
            return 0.0;
        }
        100.0 * self.class_total(c, metric) as f64 / total as f64
    }

    /// Enumerate all variables (heap + static) with inclusive metrics,
    /// sorted descending by `sort_by`.
    fn variables(&self, sort_by: Metric) -> Vec<VarSummary>
    where
        Self: Sized,
    {
        variables_impl(self, sort_by)
    }
}

/// The display name of a heap variable identified by its allocation
/// path: the builder-supplied hint at the allocation site if present,
/// else the allocation site itself. Returns `(name, alloc_site)`.
fn heap_var_name<S: SymbolSource + ?Sized>(sym: &S, alloc_path: &[Frame]) -> (String, String) {
    let site = alloc_path.iter().rev().find_map(|f| match f {
        Frame::Stmt(_) => Some(*f),
        _ => None,
    });
    let site_str = site.map(|f| sym.frame_name(f)).unwrap_or_default();
    // The source-level variable name can sit either at the allocation
    // statement itself or at a call site of an allocation wrapper
    // higher up the path (`S_diag_j = hypre_CAlloc(...)`); prefer the
    // deepest hint.
    for f in alloc_path.iter().rev() {
        if let Frame::Stmt(ip) | Frame::CallSite(ip) = f {
            if let Some(hint) = sym.hint(*ip) {
                return (hint, site_str);
            }
        }
    }
    if site_str.is_empty() {
        ("<heap>".to_string(), site_str)
    } else {
        (site_str.clone(), site_str)
    }
}

/// Shared body of [`ProfileView::variables`].
fn variables_impl<V: ProfileView + ?Sized>(view: &V, sort_by: Metric) -> Vec<VarSummary> {
    let mut out = Vec::new();

    // Static variables: StaticVar dummy nodes at the root of the
    // static tree.
    let st = view.class_tree(StorageClass::Static);
    let inc: Vec<Vec<u64>> = (0..WIDTH).map(|m| st.inclusive(m)).collect();
    for n in st.children(ROOT) {
        if let Frame::StaticVar(_) = st.frame(n) {
            let mut metrics = [0u64; WIDTH];
            for m in 0..WIDTH {
                metrics[m] = inc[m][n.0 as usize];
            }
            out.push(VarSummary {
                name: view.frame_name(st.frame(n)),
                class: StorageClass::Static,
                node: n,
                metrics,
                alloc_count: 0,
                alloc_bytes: 0,
                alloc_zeroed: 0,
                alloc_site: String::new(),
                caller_site: String::new(),
            });
        }
    }

    // Heap variables: HeapMarker nodes; the path above the marker is
    // the allocation path that identifies the variable.
    let ht = view.class_tree(StorageClass::Heap);
    let hinc: Vec<Vec<u64>> = (0..WIDTH).map(|m| ht.inclusive(m)).collect();
    for n in ht.preorder() {
        if ht.frame(n) == Frame::HeapMarker {
            let alloc_path = ht.path_to(ht.parent(n));
            let (name, alloc_site) = heap_var_name(view, &alloc_path);
            let caller_site = alloc_path
                .iter()
                .rev()
                .find_map(|f| match f {
                    Frame::CallSite(_) => Some(view.frame_name(*f)),
                    _ => None,
                })
                .unwrap_or_default();
            let (count, bytes, zeroed) =
                view.alloc_map().get(&alloc_path).copied().unwrap_or((0, 0, 0));
            let mut metrics = [0u64; WIDTH];
            for m in 0..WIDTH {
                metrics[m] = hinc[m][n.0 as usize];
            }
            out.push(VarSummary {
                name,
                class: StorageClass::Heap,
                node: n,
                metrics,
                alloc_count: count,
                alloc_bytes: bytes,
                alloc_zeroed: zeroed,
                alloc_site,
                caller_site,
            });
        }
    }

    out.sort_by(|a, b| {
        b.metrics[sort_by.col()]
            .cmp(&a.metrics[sort_by.col()])
            .then_with(|| a.name.cmp(&b.name))
    });
    out
}

/// Variable-level differential report between two profiles of the same
/// program (e.g. before/after an optimization): for each variable name,
/// the change in `metric`. The paper's workflow — measure, fix,
/// re-measure — reads this to confirm the fix removed the cost it
/// targeted and nothing regressed. The two sides may come from
/// different view implementations (an in-process [`Analysis`] against a
/// server-stored profile renders the same bytes).
pub fn compare_report<A, B>(before: &A, after: &B, metric: Metric) -> String
where
    A: ProfileView + ?Sized,
    B: ProfileView + ?Sized,
{
    let mut names: Vec<String> = Vec::new();
    let mut rows: FxHashMap<String, (u64, u64)> = FxHashMap::default();
    for v in variables_impl(before, metric) {
        if !rows.contains_key(&v.name) {
            names.push(v.name.clone());
        }
        rows.entry(v.name).or_insert((0, 0)).0 += v.metrics[metric.col()];
    }
    for v in variables_impl(after, metric) {
        if !rows.contains_key(&v.name) {
            names.push(v.name.clone());
        }
        rows.entry(v.name).or_insert((0, 0)).1 += v.metrics[metric.col()];
    }
    names.sort_by_key(|n| {
        let (b, a) = rows[n];
        std::cmp::Reverse((a as i64 - b as i64).unsigned_abs())
    });
    let mut out = format!(
        "DIFFERENTIAL ({}): before {} -> after {}\n",
        metric.name(),
        before.grand_total(metric),
        after.grand_total(metric)
    );
    out.push_str(&format!("{:<24} {:>12} {:>12} {:>12}\n", "VARIABLE", "BEFORE", "AFTER", "DELTA"));
    for n in names {
        let (b, a) = rows[&n];
        if b == 0 && a == 0 {
            continue;
        }
        out.push_str(&format!("{n:<24} {b:>12} {a:>12} {:>+12}\n", a as i64 - b as i64));
    }
    out
}

/// Merged, symbol-resolved measurement of one program run.
pub struct Analysis<'p> {
    program: &'p Program,
    trees: [Cct; CLASSES],
    alloc_info: FxHashMap<Vec<Frame>, (u64, u64, u64)>,
    pub stats: ProfStats,
}

impl<'p> Analysis<'p> {
    /// Merge the measurement data of every node.
    pub fn analyze(program: &'p Program, measurements: Vec<MeasurementData>) -> Self {
        let mut per_class: [Vec<Cct>; CLASSES] = std::array::from_fn(|_| Vec::new());
        let mut alloc_info: FxHashMap<Vec<Frame>, (u64, u64, u64)> = FxHashMap::default();
        let mut stats = ProfStats::default();
        for m in measurements {
            let mut profiles = m.profiles;
            for (i, v) in profiles.iter_mut().enumerate() {
                per_class[i].append(v);
            }
            for (path, count, bytes, zeroed) in m.alloc_info {
                let e = alloc_info.entry(path).or_insert((0, 0, 0));
                e.0 += count;
                e.1 += bytes;
                e.2 += zeroed;
            }
            stats.merge(&m.stats);
        }
        let mut it = per_class.into_iter();
        let trees = std::array::from_fn(|_| {
            merge_reduction_tree(it.next().expect("CLASSES trees"), WIDTH)
        });
        Self { program, trees, alloc_info, stats }
    }

    /// Merge *encoded* measurement data: each per-class profile list is
    /// merged with the out-of-core streamed reduction tree, so peak
    /// memory holds merge accumulators — never all the decoded input
    /// profiles at once. The result is indistinguishable from
    /// [`Analysis::analyze`] on the corresponding decoded data; a
    /// malformed profile surfaces as a typed [`CodecError`].
    pub fn analyze_encoded(
        program: &'p Program,
        measurements: Vec<EncodedMeasurement>,
    ) -> Result<Self, CodecError> {
        let mut per_class: [Vec<Bytes>; CLASSES] = std::array::from_fn(|_| Vec::new());
        let mut alloc_info: FxHashMap<Vec<Frame>, (u64, u64, u64)> = FxHashMap::default();
        let mut stats = ProfStats::default();
        for m in measurements {
            let mut profiles = m.profiles;
            for (i, v) in profiles.iter_mut().enumerate() {
                per_class[i].append(v);
            }
            for (path, count, bytes, zeroed) in m.alloc_info {
                let e = alloc_info.entry(path).or_insert((0, 0, 0));
                e.0 += count;
                e.1 += bytes;
                e.2 += zeroed;
            }
            stats.merge(&m.stats);
        }
        let mut it = per_class.into_iter();
        let mut trees = Vec::with_capacity(CLASSES);
        for blobs in &mut it {
            trees.push(merge_encoded(blobs, WIDTH)?);
        }
        let trees: [Cct; CLASSES] =
            trees.try_into().unwrap_or_else(|_| unreachable!("exactly CLASSES trees"));
        Ok(Self { program, trees, alloc_info, stats })
    }

    /// The merged tree for one storage class.
    pub fn tree(&self, c: StorageClass) -> &Cct {
        &self.trees[c.idx()]
    }

    /// The program being analyzed.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Total of `metric` within one storage class.
    pub fn class_total(&self, c: StorageClass, metric: Metric) -> u64 {
        ProfileView::class_total(self, c, metric)
    }

    /// Total of `metric` across all storage classes.
    pub fn grand_total(&self, metric: Metric) -> u64 {
        ProfileView::grand_total(self, metric)
    }

    /// Fraction (0–100) of `metric` attributed to class `c`.
    pub fn class_pct(&self, c: StorageClass, metric: Metric) -> f64 {
        ProfileView::class_pct(self, c, metric)
    }

    /// Resolve one frame to a display string.
    pub fn resolve_frame(&self, f: Frame) -> String {
        resolve_frame_name(self.program, f)
    }

    /// Enumerate all variables (heap + static) with inclusive metrics,
    /// sorted descending by `sort_by`.
    pub fn variables(&self, sort_by: Metric) -> Vec<VarSummary> {
        variables_impl(self, sort_by)
    }

    /// Variable-level differential report against another analysis of
    /// the same program (see [`compare_report`]).
    pub fn compare(&self, after: &Analysis<'_>, metric: Metric) -> String {
        compare_report(self, after, metric)
    }

    /// Allocation metadata by path (diagnostics/tests).
    pub fn alloc_info(&self) -> &FxHashMap<Vec<Frame>, (u64, u64, u64)> {
        &self.alloc_info
    }
}

impl SymbolSource for Analysis<'_> {
    fn frame_name(&self, f: Frame) -> String {
        resolve_frame_name(self.program, f)
    }

    fn hint(&self, ip: u64) -> Option<String> {
        let hint = self.program.line_info(Ip(ip)).hint;
        if hint.is_empty() {
            None
        } else {
            Some(hint.to_string())
        }
    }
}

impl ProfileView for Analysis<'_> {
    fn class_tree(&self, c: StorageClass) -> &Cct {
        &self.trees[c.idx()]
    }

    fn alloc_map(&self) -> &FxHashMap<Vec<Frame>, (u64, u64, u64)> {
        &self.alloc_info
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{Profiler, ProfilerConfig};
    use dcp_machine::pmu::SampleOrigin;
    use dcp_machine::{CoreId, DataSource, Sample};
    use dcp_runtime::ir::ex::*;
    use dcp_runtime::observer::{AllocEvent, ModuleEvent, NodeObserver, ThreadView};
    use dcp_runtime::{FrameInfo, ProgramBuilder};

    /// Build a tiny program whose procs/lines back the frames we fake.
    fn program() -> dcp_runtime::Program {
        let mut b = ProgramBuilder::new("exe");
        b.static_array("f_elem", 4096);
        let main = b.proc("main", 0, |p| {
            p.line(175);
            let a = p.calloc(c(8192), "S_diag_j");
            p.line(480);
            p.load(l(a), c(0), 8);
        });
        b.build(main)
    }

    fn fake_stack() -> Vec<FrameInfo> {
        vec![FrameInfo { proc: ProcId(0), call_site: None, token: 0 }]
    }

    fn sample(ea: u64, ip: u64, latency: u32, src: DataSource) -> Sample {
        Sample {
            origin: SampleOrigin::Ibs,
            precise_ip: ip,
            signal_ip: ip,
            ea: Some(ea),
            latency,
            source: Some(src),
            tlb_miss: false,
            is_store: false,
            core: CoreId(0),
        }
    }

    #[test]
    fn variables_ranked_with_names_resolved() {
        let prog = program();
        let mut p = Profiler::new(ProfilerConfig::default());
        // Load module 0 for rank 0 so statics resolve.
        p.on_module(&ModuleEvent::Loaded {
            module: dcp_runtime::ModuleId(0),
            def: &prog.modules[0],
            rank: 0,
        });
        let stack = fake_stack();
        let view = ThreadView {
            rank: 0,
            thread: 0,
            core: CoreId(0),
            clock: 0,
            frames: &stack,
            leaf_ip: Ip(0),
        };
        // Heap variable allocated at main stmt 0 (line 175, hint S_diag_j).
        let alloc_ip = Ip::new(dcp_runtime::ModuleId(0), ProcId(0), 0);
        p.on_alloc(
            &AllocEvent { addr: 0x10_0000, bytes: 8192, zeroed: true, ip: alloc_ip },
            &view,
        );
        let access_ip = Ip::new(dcp_runtime::ModuleId(0), ProcId(0), 1);
        for _ in 0..10 {
            p.on_sample(&sample(0x10_0010, access_ip.0, 300, DataSource::RemoteDram), &view);
        }
        // Static variable access (f_elem is at the module's static base).
        let static_addr = dcp_runtime::layout::global(0, prog.modules[0].statics[0].addr);
        for _ in 0..4 {
            p.on_sample(&sample(static_addr, access_ip.0, 100, DataSource::LocalDram), &view);
        }

        let analysis = Analysis::analyze(&prog, vec![p.into_measurement()]);
        let vars = analysis.variables(Metric::Latency);
        assert_eq!(vars.len(), 2);
        assert_eq!(vars[0].name, "S_diag_j");
        assert_eq!(vars[0].class, StorageClass::Heap);
        assert_eq!(vars[0].metrics[Metric::Samples.col()], 10);
        assert_eq!(vars[0].metrics[Metric::Latency.col()], 3000);
        assert_eq!(vars[0].metrics[Metric::Remote.col()], 10);
        assert_eq!(vars[0].alloc_count, 1);
        assert!(vars[0].alloc_site.contains("main:175"));
        assert_eq!(vars[1].name, "f_elem");
        assert_eq!(vars[1].class, StorageClass::Static);
        assert_eq!(vars[1].metrics[Metric::Samples.col()], 4);
    }

    #[test]
    fn class_percentages_sum_to_100() {
        let prog = program();
        let mut p = Profiler::new(ProfilerConfig::default());
        p.on_module(&ModuleEvent::Loaded {
            module: dcp_runtime::ModuleId(0),
            def: &prog.modules[0],
            rank: 0,
        });
        let stack = fake_stack();
        let view = ThreadView {
            rank: 0,
            thread: 0,
            core: CoreId(0),
            clock: 0,
            frames: &stack,
            leaf_ip: Ip(0),
        };
        let access_ip = Ip::new(dcp_runtime::ModuleId(0), ProcId(0), 1);
        // 3 unknown samples + 1 static sample.
        for _ in 0..3 {
            p.on_sample(&sample(0x77_0000_0000, access_ip.0, 10, DataSource::L1), &view);
        }
        let static_addr = dcp_runtime::layout::global(0, prog.modules[0].statics[0].addr);
        p.on_sample(&sample(static_addr, access_ip.0, 10, DataSource::L1), &view);

        let a = Analysis::analyze(&prog, vec![p.into_measurement()]);
        let total: f64 = StorageClass::ALL
            .iter()
            .map(|&c| a.class_pct(c, Metric::Samples))
            .sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert!((a.class_pct(StorageClass::Unknown, Metric::Samples) - 75.0).abs() < 1e-9);
    }

    #[test]
    fn merging_two_nodes_coalesces_same_variable() {
        let prog = program();
        let make = |rank: u32| {
            let mut p = Profiler::new(ProfilerConfig::default());
            let stack = fake_stack();
            let view = ThreadView {
                rank,
                thread: 0,
                core: CoreId(0),
                clock: 0,
                frames: &stack,
                leaf_ip: Ip(0),
            };
            let alloc_ip = Ip::new(dcp_runtime::ModuleId(0), ProcId(0), 0);
            let base = dcp_runtime::layout::global(rank, 0x10_0000);
            p.on_alloc(
                &AllocEvent { addr: base, bytes: 8192, zeroed: true, ip: alloc_ip },
                &view,
            );
            let access_ip = Ip::new(dcp_runtime::ModuleId(0), ProcId(0), 1);
            p.on_sample(&sample(base + 8, access_ip.0, 100, DataSource::RemoteDram), &view);
            p.into_measurement()
        };
        // Two ranks (on two "nodes") allocate from the same call path:
        // post-mortem they are ONE variable (§4.2).
        let a = Analysis::analyze(&prog, vec![make(0), make(1)]);
        let vars = a.variables(Metric::Samples);
        assert_eq!(vars.len(), 1, "same allocation path coalesces across processes");
        assert_eq!(vars[0].metrics[Metric::Samples.col()], 2);
        assert_eq!(vars[0].alloc_count, 2);
    }

    /// One rank's worth of measurement data with both a heap and a
    /// static variable (shared by the encoded-path tests).
    fn measured(prog: &dcp_runtime::Program) -> crate::profiler::MeasurementData {
        let mut p = Profiler::new(ProfilerConfig::default());
        p.on_module(&ModuleEvent::Loaded {
            module: dcp_runtime::ModuleId(0),
            def: &prog.modules[0],
            rank: 0,
        });
        let stack = fake_stack();
        let view = ThreadView {
            rank: 0,
            thread: 0,
            core: CoreId(0),
            clock: 0,
            frames: &stack,
            leaf_ip: Ip(0),
        };
        let alloc_ip = Ip::new(dcp_runtime::ModuleId(0), ProcId(0), 0);
        p.on_alloc(
            &AllocEvent { addr: 0x10_0000, bytes: 8192, zeroed: true, ip: alloc_ip },
            &view,
        );
        let access_ip = Ip::new(dcp_runtime::ModuleId(0), ProcId(0), 1);
        for _ in 0..6 {
            p.on_sample(&sample(0x10_0010, access_ip.0, 200, DataSource::RemoteDram), &view);
        }
        let static_addr = dcp_runtime::layout::global(0, prog.modules[0].statics[0].addr);
        for _ in 0..3 {
            p.on_sample(&sample(static_addr, access_ip.0, 100, DataSource::LocalDram), &view);
        }
        p.into_measurement()
    }

    #[test]
    fn encoded_analysis_matches_in_memory_analysis() {
        let prog = program();
        let ms: Vec<_> = (0..3).map(|_| measured(&prog)).collect();
        let encoded: Vec<EncodedMeasurement> =
            ms.iter().map(|m| encode_measurement(&prog, m)).collect();

        let direct = Analysis::analyze(&prog, ms);
        let streamed = Analysis::analyze_encoded(&prog, encoded).expect("valid profiles");

        for &c in StorageClass::ALL.iter() {
            assert_eq!(
                streamed.tree(c).canonical(),
                direct.tree(c).canonical(),
                "class {c:?} trees must agree"
            );
        }
        let dv = direct.variables(Metric::Latency);
        let sv = streamed.variables(Metric::Latency);
        assert_eq!(dv.len(), sv.len());
        for (d, s) in dv.iter().zip(&sv) {
            assert_eq!(d.name, s.name);
            assert_eq!(d.metrics, s.metrics);
            assert_eq!(d.alloc_count, s.alloc_count);
        }
        assert_eq!(direct.stats.samples, streamed.stats.samples);
    }

    #[test]
    fn encoded_profiles_carry_symbol_names() {
        // The v2 name section makes a profile self-describing: the
        // symbol names survive without access to the program.
        let prog = program();
        let m = measured(&prog);
        let enc = encode_measurement(&prog, &m);
        let static_blobs = &enc.profiles[StorageClass::Static.idx()];
        assert!(!static_blobs.is_empty());
        let (tree, names) = dcp_cct::decode_named(static_blobs[0].clone()).expect("decodes");
        let var = tree
            .children(ROOT)
            .find(|&n| matches!(tree.frame(n), Frame::StaticVar(_)))
            .expect("static variable node");
        assert_eq!(names.lookup(tree.frame(var)), Some("f_elem"));
    }

    #[test]
    fn corrupt_encoded_profile_is_a_typed_error() {
        let prog = program();
        let mut enc = encode_measurement(&prog, &measured(&prog));
        let class = StorageClass::Heap.idx();
        let good = enc.profiles[class][0].clone();
        enc.profiles[class][0] = good.slice(0..good.len() - 1);
        let err = match Analysis::analyze_encoded(&prog, vec![enc]) {
            Ok(_) => panic!("truncated profile must not analyze"),
            Err(e) => e,
        };
        assert_eq!(err, dcp_cct::CodecError::Truncated);
    }
}
