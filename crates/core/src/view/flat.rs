//! Flat view: metrics aggregated per sampled statement, across all
//! calling contexts (hpcviewer's third pane). Useful when the same hot
//! access is reached through many paths and the top-down view disperses
//! it.

use dcp_support::FxHashMap;

use dcp_cct::Frame;

use crate::analyze::ProfileView;
use crate::metrics::{Metric, StorageClass};
use crate::view::pct;

/// Render the flat view of `class`: the top `limit` statements by
/// exclusive `metric`.
pub fn flat<V: ProfileView + ?Sized>(
    a: &V,
    class: StorageClass,
    metric: Metric,
    limit: usize,
) -> String {
    let tree = a.class_tree(class);
    let mut by_stmt: FxHashMap<u64, Vec<u64>> = FxHashMap::default();
    let width = tree.width();
    for n in tree.preorder() {
        if let Frame::Stmt(ip) = tree.frame(n) {
            let acc = by_stmt.entry(ip).or_insert_with(|| vec![0; width]);
            for (i, &v) in tree.metrics(n).iter().enumerate() {
                acc[i] += v;
            }
        }
    }
    let grand = a.grand_total(metric);
    let mut rows: Vec<(u64, Vec<u64>)> = by_stmt.into_iter().collect();
    rows.sort_by(|x, y| y.1[metric.col()].cmp(&x.1[metric.col()]).then(x.0.cmp(&y.0)));

    let mut out = format!("FLAT VIEW [{}] metric {}\n", class.name(), metric.name());
    for (ip, m) in rows.into_iter().take(limit) {
        if m[metric.col()] == 0 {
            continue;
        }
        out.push_str(&format!(
            "{:5.1}% {:>10}  {}\n",
            pct(m[metric.col()], grand),
            m[metric.col()],
            a.frame_name(Frame::Stmt(ip)),
        ));
    }
    out
}
