//! Variable ranking table and storage-class breakdown.
//!
//! The quickest way to read a data-centric profile: which storage class
//! dominates the chosen metric, and which variables inside it. This is
//! the information the paper's case studies quote ("heap allocated
//! variables account for 97.4% of total latency; Flux 39.4%, Src 39.1%,
//! Face 14.6%").

use crate::analyze::ProfileView;
use crate::metrics::{Metric, StorageClass};
use crate::view::pct;

/// Per-class share of `metric`: `(class, value, percent)`.
pub fn storage_breakdown<V: ProfileView + ?Sized>(
    a: &V,
    metric: Metric,
) -> Vec<(StorageClass, u64, f64)> {
    let grand = a.grand_total(metric);
    StorageClass::ALL
        .iter()
        .map(|&c| {
            let v = a.class_total(c, metric);
            (c, v, pct(v, grand))
        })
        .collect()
}

/// Render the ranking view: breakdown lines plus the top `limit`
/// variables by `metric`.
pub fn ranking<V: ProfileView>(a: &V, metric: Metric, limit: usize) -> String {
    let grand = a.grand_total(metric);
    let mut out = String::new();
    out.push_str(&format!("VARIABLE RANKING metric {} (total {})\n", metric.name(), grand));
    for (c, v, p) in storage_breakdown(a, metric) {
        if v > 0 {
            out.push_str(&format!("  {:5.1}%  {}\n", p, c.name()));
        }
    }
    out.push_str(&format!(
        "{:<24} {:>7} {:>12} {:>7} {:>9} {:>8} {:>7}\n",
        "VARIABLE", "CLASS", metric.name(), "PCT", "LATENCY", "SAMPLES", "REMOTE"
    ));
    for v in a.variables(metric).into_iter().take(limit) {
        let val = v.metrics[metric.col()];
        if val == 0 {
            continue;
        }
        out.push_str(&format!(
            "{:<24} {:>7} {:>12} {:>6.1}% {:>9} {:>8} {:>7}\n",
            v.name,
            match v.class {
                StorageClass::Heap => "heap",
                StorageClass::Static => "static",
                StorageClass::Stack => "stack",
                StorageClass::Unknown => "unk",
                StorageClass::NoMem => "nomem",
            },
            val,
            pct(val, grand),
            v.metrics[Metric::Latency.col()],
            v.metrics[Metric::Samples.col()],
            v.metrics[Metric::Remote.col()],
        ));
    }
    out
}
