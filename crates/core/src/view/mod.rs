//! Presentation views (the paper's GUI, rendered as text).
//!
//! HPCToolkit presents data-centric results through `hpcviewer`; Figures
//! 4–11 of the paper are screenshots of its panes. These renderers
//! produce the same information as plain text:
//!
//! * [`topdown`] — the top-down pane: the merged CCT of one storage
//!   class with inclusive metric values and percentages, so one can read
//!   "22.2% of remote accesses target the variable allocated at
//!   hypre_CAlloc:175, 19.3% from this access site" directly.
//! * [`bottomup`] — the bottom-up pane: costs aggregated by allocation
//!   call site, merging variables allocated at the same source statement
//!   from different calling contexts (Figure 5).
//! * [`ranking`] — the variable ranking table plus the storage-class
//!   breakdown lines quoted throughout §5.
//! * [`flat`] — metrics per sampled statement across all contexts
//!   (hpcviewer's flat pane).

pub mod bottomup;
pub mod flat;
pub mod ranking;
pub mod topdown;

pub use bottomup::bottom_up;
pub use flat::flat;
pub use ranking::{ranking, storage_breakdown};
pub use topdown::{top_down, TopDownOpts};

/// Format a percentage like the paper quotes them (one decimal).
pub(crate) fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}
