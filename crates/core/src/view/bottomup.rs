//! Bottom-up view: heap costs aggregated by allocation call site.
//!
//! When the same allocator is invoked from many calling contexts (AMG's
//! `hypre_CAlloc`), the top-down view disperses costs along those paths;
//! the bottom-up view re-aggregates them at the allocation site so the
//! dominant variables pop out (Figure 5). Variables allocated at the
//! same source statement but on different paths merge into one row, with
//! the distinct variables listed underneath.

use dcp_support::FxHashMap;

use crate::analyze::{ProfileView, VarSummary};
use crate::metrics::{Metric, StorageClass};
use crate::view::pct;

/// Render the bottom-up (allocation-site) view sorted by `metric`.
pub fn bottom_up<V: ProfileView>(a: &V, metric: Metric) -> String {
    let grand = a.grand_total(metric);
    let vars = a.variables(metric);
    // Group heap variables by allocation site.
    let mut groups: FxHashMap<String, Vec<&VarSummary>> = FxHashMap::default();
    for v in vars.iter().filter(|v| v.class == StorageClass::Heap) {
        let key = if v.caller_site.is_empty() { v.alloc_site.clone() } else { v.caller_site.clone() };
        groups.entry(key).or_default().push(v);
    }
    let mut rows: Vec<(String, u64, Vec<&VarSummary>)> = groups
        .into_iter()
        .map(|(site, vs)| {
            let total = vs.iter().map(|v| v.metrics[metric.col()]).sum();
            (site, total, vs)
        })
        .collect();
    rows.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));

    let mut out = String::new();
    out.push_str(&format!("BOTTOM-UP (allocation call sites) metric {}\n", metric.name()));
    for (site, total, vs) in rows {
        out.push_str(&format!("{:5.1}% {:>10}  {}\n", pct(total, grand), total, site));
        for v in vs {
            out.push_str(&format!(
                "        {:5.1}% {:>10}    {} (x{} blocks, {} B)\n",
                pct(v.metrics[metric.col()], grand),
                v.metrics[metric.col()],
                v.name,
                v.alloc_count,
                v.alloc_bytes,
            ));
        }
    }
    out
}
