//! Top-down view: the merged calling context tree of one storage class,
//! annotated with inclusive metrics and percentages of the metric's
//! grand total (matching how the paper quotes "94.9% of remote memory
//! accesses are associated with heap allocated variables").

use dcp_cct::{NodeId, ROOT};

use crate::analyze::ProfileView;
use crate::metrics::{Metric, StorageClass};
use crate::view::pct;

/// Rendering limits.
#[derive(Debug, Clone, Copy)]
pub struct TopDownOpts {
    /// Stop descending below this depth.
    pub max_depth: usize,
    /// Hide subtrees below this percentage of the grand total.
    pub min_pct: f64,
    /// Show at most this many children per node.
    pub max_children: usize,
}

impl Default for TopDownOpts {
    fn default() -> Self {
        Self { max_depth: 12, min_pct: 1.0, max_children: 8 }
    }
}

/// Render the top-down view of `class`, sorted by inclusive `metric`.
pub fn top_down<V: ProfileView + ?Sized>(
    a: &V,
    class: StorageClass,
    metric: Metric,
    opts: TopDownOpts,
) -> String {
    let tree = a.class_tree(class);
    let inc = tree.inclusive(metric.col());
    let grand = a.grand_total(metric);
    let mut out = String::new();
    out.push_str(&format!(
        "TOP-DOWN [{}] metric {} — {:.1}% of program total ({} / {})\n",
        class.name(),
        metric.name(),
        pct(a.class_total(class, metric), grand),
        a.class_total(class, metric),
        grand
    ));
    render(a, tree, &inc, grand, ROOT, 0, &opts, &mut out);
    out
}

#[allow(clippy::too_many_arguments)]
fn render<V: ProfileView + ?Sized>(
    a: &V,
    tree: &dcp_cct::Cct,
    inc: &[u64],
    grand: u64,
    node: NodeId,
    depth: usize,
    opts: &TopDownOpts,
    out: &mut String,
) {
    if depth > opts.max_depth {
        return;
    }
    if node != ROOT {
        let v = inc[node.0 as usize];
        let p = pct(v, grand);
        out.push_str(&format!(
            "{:indent$}{:5.1}% {:>10}  {}\n",
            "",
            p,
            v,
            a.frame_name(tree.frame(node)),
            indent = 2 * depth
        ));
    }
    let mut kids: Vec<NodeId> = tree.children(node).collect();
    kids.sort_by(|x, y| inc[y.0 as usize].cmp(&inc[x.0 as usize]).then(x.0.cmp(&y.0)));
    for (i, k) in kids.into_iter().enumerate() {
        if i >= opts.max_children {
            out.push_str(&format!("{:indent$}...\n", "", indent = 2 * (depth + 1)));
            break;
        }
        if pct(inc[k.0 as usize], grand) < opts.min_pct {
            continue;
        }
        render(a, tree, inc, grand, k, depth + 1, opts, out);
    }
}
