//! Stored profiles: the self-describing measurement bundle and its
//! server-side view evaluator.
//!
//! The serving daemon (`dcp-serve`) holds profiles far from the program
//! that produced them, but must render the exact same views the
//! in-process [`Analysis`](crate::analyze::Analysis) renders. The v2
//! profile codec already carries names for `Proc`/`StaticVar` frames; a
//! **bundle** ("DCPB") goes the rest of the way: it packages one
//! measurement's per-class encoded trees together with display names for
//! *every* frame, the source-level variable hints the heap naming rules
//! consult, the allocation metadata, and the profiler stats. A
//! [`StoredProfiles`] built from bundles implements
//! [`ProfileView`](crate::analyze::ProfileView) over those tables, so
//! `topdown`/`bottomup`/`flat`/`ranking`/`variables`/`compare` render
//! byte-identical text from either side of the wire — the invariant the
//! served-diff golden test pins.

use std::sync::Arc;

use dcp_cct::codec::{get_slice, get_varint, put_varint};
use dcp_cct::{decode, encode, validate, Cct, CodecError, Frame, IncrementalMerge, NodeId};
use dcp_runtime::ir::{Ip, Program};
use dcp_support::bytes::{Bytes, BytesMut};
use dcp_support::FxHashMap;

use crate::analyze::{resolve_frame_name, ProfileView, SymbolSource};
use crate::metrics::{StorageClass, CLASSES, WIDTH};
use crate::profiler::{MeasurementData, ProfStats};

const BUNDLE_MAGIC: &[u8; 4] = b"DCPB";
const BUNDLE_VERSION: u64 = 1;

/// One measurement, fully self-describing: per-class encoded per-thread
/// trees plus every table a remote evaluator needs to render views.
#[derive(Debug, Clone, Default)]
pub struct StoredBundle {
    /// `profiles[class][i]` — the i-th thread's encoded tree (plain v2,
    /// no per-blob name section; the bundle-level `names` table covers
    /// all frames).
    pub profiles: [Vec<Bytes>; CLASSES],
    /// Display name for every distinct frame in any tree, exactly the
    /// string [`resolve_frame_name`] produces in-process.
    pub names: FxHashMap<Frame, String>,
    /// Nonempty source-level hints by instruction (`ip -> "S_diag_j"`).
    pub hints: FxHashMap<u64, String>,
    /// Allocation metadata: `(allocation path, count, bytes, zeroed)`.
    pub alloc_info: Vec<(Vec<Frame>, u64, u64, u64)>,
    pub stats: ProfStats,
}

/// Package one node's measurement data with all symbols resolved
/// against `program`.
pub fn bundle_from_measurement(program: &Program, m: &MeasurementData) -> StoredBundle {
    let mut names: FxHashMap<Frame, String> = FxHashMap::default();
    let mut hints: FxHashMap<u64, String> = FxHashMap::default();
    for class in &m.profiles {
        for tree in class {
            for id in 0..tree.len() as u32 {
                let f = tree.frame(NodeId(id));
                names.entry(f).or_insert_with(|| resolve_frame_name(program, f));
                if let Frame::Stmt(ip) | Frame::CallSite(ip) = f {
                    let hint = program.line_info(Ip(ip)).hint;
                    if !hint.is_empty() {
                        hints.entry(ip).or_insert_with(|| hint.to_string());
                    }
                }
            }
        }
    }
    let profiles = std::array::from_fn(|class| {
        dcp_support::pool::par_map(&m.profiles[class], encode)
    });
    StoredBundle {
        profiles,
        names,
        hints,
        alloc_info: m.alloc_info.clone(),
        stats: m.stats.clone(),
    }
}

fn frame_parts(f: Frame) -> (u8, u64) {
    match f {
        Frame::Root => (0, 0),
        Frame::Proc(p) => (1, p),
        Frame::CallSite(ip) => (2, ip),
        Frame::Stmt(ip) => (3, ip),
        Frame::StaticVar(h) => (4, h),
        Frame::HeapMarker => (5, 0),
    }
}

fn frame_from(tag: u8, payload: u64) -> Result<Frame, CodecError> {
    Ok(match tag {
        0 => Frame::Root,
        1 => Frame::Proc(payload),
        2 => Frame::CallSite(payload),
        3 => Frame::Stmt(payload),
        4 => Frame::StaticVar(payload),
        5 => Frame::HeapMarker,
        t => return Err(CodecError::BadFrameTag(t)),
    })
}

fn put_frame(buf: &mut BytesMut, f: Frame) {
    let (tag, payload) = frame_parts(f);
    buf.put_u8(tag);
    put_varint(buf, payload);
}

fn get_frame(buf: &mut Bytes) -> Result<Frame, CodecError> {
    if !buf.has_remaining() {
        return Err(CodecError::Truncated);
    }
    let tag = buf.get_u8();
    let payload = get_varint(buf)?;
    frame_from(tag, payload)
}

fn put_str(buf: &mut BytesMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, CodecError> {
    let len = get_varint(buf)?;
    if len > buf.remaining() as u64 {
        return Err(CodecError::Truncated);
    }
    let raw = get_slice(buf, len as usize)?;
    std::str::from_utf8(raw.as_slice())
        .map(str::to_string)
        .map_err(|_| CodecError::BadString)
}

/// A count field that the remaining input cannot possibly back (each
/// element takes at least one byte) is rejected before any allocation.
fn check_count(count: u64, buf: &Bytes) -> Result<usize, CodecError> {
    if count > buf.remaining() as u64 {
        return Err(CodecError::BadCount(count));
    }
    Ok(count as usize)
}

/// Serialize a bundle to the DCPB wire format.
pub fn encode_bundle(b: &StoredBundle) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(BUNDLE_MAGIC);
    put_varint(&mut buf, BUNDLE_VERSION);
    put_varint(&mut buf, WIDTH as u64);
    for class in &b.profiles {
        put_varint(&mut buf, class.len() as u64);
        for blob in class {
            put_varint(&mut buf, blob.len() as u64);
            buf.put_slice(blob);
        }
    }
    encode_meta_into(&mut buf, &b.names, &b.hints, &b.alloc_info, &b.stats);
    buf.freeze()
}

/// The bundle sections after the profile blobs: names, hints, alloc
/// info, stats. Shared by [`encode_bundle`] and
/// [`StoredAccumulator::encode_state`] so the two paths cannot drift a
/// byte apart.
fn encode_meta_into(
    buf: &mut BytesMut,
    names: &FxHashMap<Frame, String>,
    hints: &FxHashMap<u64, String>,
    alloc_info: &[(Vec<Frame>, u64, u64, u64)],
    stats: &ProfStats,
) {
    // Name and hint records in sorted key order, so equal bundles encode
    // to equal bytes no matter how their maps were populated.
    let mut names: Vec<(&Frame, &String)> = names.iter().collect();
    names.sort_by_key(|(f, _)| frame_parts(**f));
    put_varint(buf, names.len() as u64);
    for (f, name) in names {
        put_frame(buf, *f);
        put_str(buf, name);
    }
    let mut hints: Vec<(&u64, &String)> = hints.iter().collect();
    hints.sort_by_key(|(ip, _)| **ip);
    put_varint(buf, hints.len() as u64);
    for (ip, hint) in hints {
        put_varint(buf, *ip);
        put_str(buf, hint);
    }
    put_varint(buf, alloc_info.len() as u64);
    for (path, count, bytes, zeroed) in alloc_info {
        put_varint(buf, path.len() as u64);
        for f in path {
            put_frame(buf, *f);
        }
        put_varint(buf, *count);
        put_varint(buf, *bytes);
        put_varint(buf, *zeroed);
    }
    put_varint(buf, stats.samples);
    for v in stats.samples_by_class {
        put_varint(buf, v);
    }
    put_varint(buf, stats.allocs_seen);
    put_varint(buf, stats.allocs_tracked);
    put_varint(buf, stats.frees_seen);
    put_varint(buf, stats.unwind_frames);
    put_varint(buf, stats.overhead_cycles);
}

/// Decode an untrusted bundle. Every embedded profile blob is checked
/// by a streaming [`validate`] walk — the same parse loop a decode
/// runs, but with zero node materialization, since the blob is kept as
/// raw bytes for the incremental merge anyway — every length is checked
/// against the remaining input, duplicate name/hint keys are rejected
/// (first-wins and last-wins consumers must not be able to disagree),
/// and trailing garbage is rejected — the serve robustness sweep leans
/// on this.
pub fn decode_bundle(mut buf: Bytes) -> Result<StoredBundle, CodecError> {
    if get_slice(&mut buf, BUNDLE_MAGIC.len())?.as_slice() != BUNDLE_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = get_varint(&mut buf)?;
    if version != BUNDLE_VERSION {
        return Err(CodecError::BadFlags(version));
    }
    let width = get_varint(&mut buf)?;
    if width != WIDTH as u64 {
        return Err(CodecError::WidthMismatch { expected: WIDTH, found: width as usize });
    }
    let mut profiles: [Vec<Bytes>; CLASSES] = std::array::from_fn(|_| Vec::new());
    for class in &mut profiles {
        let count = check_count(get_varint(&mut buf)?, &buf)?;
        for _ in 0..count {
            let len = get_varint(&mut buf)?;
            if len > buf.remaining() as u64 {
                return Err(CodecError::Truncated);
            }
            let blob = get_slice(&mut buf, len as usize)?;
            let summary = validate(blob.clone())?;
            if summary.width != WIDTH {
                return Err(CodecError::WidthMismatch { expected: WIDTH, found: summary.width });
            }
            class.push(blob);
        }
    }
    let mut names: FxHashMap<Frame, String> = FxHashMap::default();
    for _ in 0..check_count(get_varint(&mut buf)?, &buf)? {
        let f = get_frame(&mut buf)?;
        let name = get_str(&mut buf)?;
        if names.insert(f, name).is_some() {
            return Err(CodecError::DuplicateKey);
        }
    }
    let mut hints: FxHashMap<u64, String> = FxHashMap::default();
    for _ in 0..check_count(get_varint(&mut buf)?, &buf)? {
        let ip = get_varint(&mut buf)?;
        let hint = get_str(&mut buf)?;
        if hints.insert(ip, hint).is_some() {
            return Err(CodecError::DuplicateKey);
        }
    }
    let mut alloc_info = Vec::new();
    for _ in 0..check_count(get_varint(&mut buf)?, &buf)? {
        let path_len = check_count(get_varint(&mut buf)?, &buf)?;
        let mut path = Vec::with_capacity(path_len);
        for _ in 0..path_len {
            path.push(get_frame(&mut buf)?);
        }
        let count = get_varint(&mut buf)?;
        let bytes = get_varint(&mut buf)?;
        let zeroed = get_varint(&mut buf)?;
        alloc_info.push((path, count, bytes, zeroed));
    }
    let mut stats = ProfStats { samples: get_varint(&mut buf)?, ..ProfStats::default() };
    for v in &mut stats.samples_by_class {
        *v = get_varint(&mut buf)?;
    }
    stats.allocs_seen = get_varint(&mut buf)?;
    stats.allocs_tracked = get_varint(&mut buf)?;
    stats.frees_seen = get_varint(&mut buf)?;
    stats.unwind_frames = get_varint(&mut buf)?;
    stats.overhead_cycles = get_varint(&mut buf)?;
    if buf.has_remaining() {
        return Err(CodecError::BadCount(buf.remaining() as u64));
    }
    Ok(StoredBundle { profiles, names, hints, alloc_info, stats })
}

/// Folds bundles into one merged profile set, amortized: per-class
/// [`IncrementalMerge`] accumulators plus unioned symbol tables. The
/// serve store keeps one of these per named profile set and snapshots a
/// [`StoredProfiles`] whenever the set's epoch advances.
///
/// Determinism: blobs are pushed in bundle-ingest order, and the
/// incremental-merge invariant makes each class tree byte-identical on
/// re-encode to `merge_encoded_sequential` over that order — so a fixed
/// ingest order fixes every served byte.
///
/// The read path is incremental. The symbol tables live behind `Arc`s
/// and a [`snapshot`](Self::snapshot) hands out shared per-class tree
/// handles, so snapshotting after an ingest rebuilds (and, lazily,
/// copies) only the classes that actually received blobs — everything
/// untouched is a refcount bump. Per-class encoded bytes are cached and
/// invalidated only by an ingest into that class, so
/// [`encode_state`](Self::encode_state) re-encodes dirty classes and
/// splices cached bytes for the rest.
#[derive(Default)]
pub struct StoredAccumulator {
    merges: Option<[IncrementalMerge; CLASSES]>,
    /// `encode(tree)` per class, invalidated by an ingest into that
    /// class. Splicing a cached entry is sound because the v2 encoder is
    /// deterministic on an unchanged tree (`encode ∘ decode` is pinned
    /// byte-identical).
    cached_encoded: [Option<Bytes>; CLASSES],
    names: Arc<FxHashMap<Frame, String>>,
    hints: Arc<FxHashMap<u64, String>>,
    alloc_info: Arc<FxHashMap<Vec<Frame>, (u64, u64, u64)>>,
    stats: ProfStats,
    bundles: u64,
    blob_bytes: u64,
    /// Classes folded with blobs pending — the observable cost of the
    /// incremental read path (each one is a real merge + re-encode).
    dirty_rebuilds: u64,
}

impl StoredAccumulator {
    pub fn new() -> Self {
        Self {
            merges: Some(std::array::from_fn(|_| IncrementalMerge::new(WIDTH))),
            ..Self::default()
        }
    }

    fn merges_mut(&mut self) -> &mut [IncrementalMerge; CLASSES] {
        self.merges.get_or_insert_with(|| std::array::from_fn(|_| IncrementalMerge::new(WIDTH)))
    }

    /// Buffer one bundle's blobs and fold its metadata. O(bundle size);
    /// tree merging is deferred to [`fold`](Self::fold)/
    /// [`snapshot`](Self::snapshot). Classes that receive blobs have
    /// their cached encodings invalidated; symbol tables are cloned for
    /// writing only when the bundle actually carries a new key, so the
    /// steady state (same workload, same symbols) never copies them.
    pub fn ingest(&mut self, bundle: StoredBundle) {
        let StoredBundle { profiles, names, hints, alloc_info, stats } = bundle;
        for (class, blobs) in profiles.into_iter().enumerate() {
            if !blobs.is_empty() {
                self.cached_encoded[class] = None;
            }
            for blob in blobs {
                self.blob_bytes += blob.len() as u64;
                self.merges_mut()[class].push(blob);
            }
        }
        if names.keys().any(|f| !self.names.contains_key(f)) {
            let dst = Arc::make_mut(&mut self.names);
            for (f, n) in names {
                dst.entry(f).or_insert(n);
            }
        }
        if hints.keys().any(|ip| !self.hints.contains_key(ip)) {
            let dst = Arc::make_mut(&mut self.hints);
            for (ip, h) in hints {
                dst.entry(ip).or_insert(h);
            }
        }
        if !alloc_info.is_empty() {
            let dst = Arc::make_mut(&mut self.alloc_info);
            for (path, count, bytes, zeroed) in alloc_info {
                let e = dst.entry(path).or_insert((0, 0, 0));
                e.0 += count;
                e.1 += bytes;
                e.2 += zeroed;
            }
        }
        self.stats.merge(&stats);
        self.bundles += 1;
    }

    /// Merge everything pending into the per-class accumulators. Only
    /// classes with pending blobs do any work; each counts as one dirty
    /// rebuild.
    pub fn fold(&mut self) -> Result<(), CodecError> {
        for class in 0..CLASSES {
            let inc = &mut self.merges_mut()[class];
            let dirty = inc.pending() > 0;
            inc.fold()?;
            if dirty {
                self.dirty_rebuilds += 1;
            }
        }
        Ok(())
    }

    /// Bundles ingested so far.
    pub fn bundles(&self) -> u64 {
        self.bundles
    }

    /// Total encoded profile bytes ingested so far.
    pub fn blob_bytes(&self) -> u64 {
        self.blob_bytes
    }

    /// Folds performed across all class accumulators.
    pub fn folds(&self) -> u64 {
        self.merges.as_ref().map_or(0, |ms| ms.iter().map(IncrementalMerge::folds).sum())
    }

    /// Classes rebuilt (folded with blobs pending) so far — the work the
    /// dirty-class tracking did NOT skip. A snapshot or partial after an
    /// ingest touching one class advances this by exactly one.
    pub fn dirty_rebuilds(&self) -> u64 {
        self.dirty_rebuilds
    }

    /// The encoded bytes of one class tree, from cache when the class
    /// has not been touched since the last encode. Callers fold first.
    fn class_encoded(&mut self, class: usize) -> Result<Bytes, CodecError> {
        if self.cached_encoded[class].is_none() {
            let bytes = encode(self.merges_mut()[class].tree()?);
            self.cached_encoded[class] = Some(bytes);
        }
        Ok(self.cached_encoded[class].clone().expect("just filled"))
    }

    /// Fold and re-package the accumulated state as one self-describing
    /// bundle — the serve layer's durable snapshot record. Ingesting the
    /// returned bundle into a fresh accumulator reconstructs a state
    /// whose future merges are byte-identical to continuing with this
    /// one: the incremental-merge invariant says fold bracketing never
    /// changes the re-encoded bytes, and replacing N ingested blobs with
    /// their fold is exactly a re-bracketing.
    pub fn to_bundle(&mut self) -> Result<StoredBundle, CodecError> {
        self.fold()?;
        let mut profiles: [Vec<Bytes>; CLASSES] = std::array::from_fn(|_| Vec::new());
        for (class, out) in profiles.iter_mut().enumerate() {
            out.push(self.class_encoded(class)?);
        }
        let mut alloc_info: Vec<(Vec<Frame>, u64, u64, u64)> = self
            .alloc_info
            .iter()
            .map(|(path, &(count, bytes, zeroed))| (path.clone(), count, bytes, zeroed))
            .collect();
        alloc_info.sort();
        Ok(StoredBundle {
            profiles,
            names: (*self.names).clone(),
            hints: (*self.hints).clone(),
            alloc_info,
            stats: self.stats.clone(),
        })
    }

    /// Serialize the accumulated state straight to DCPB wire bytes —
    /// byte-identical to `encode_bundle(&self.to_bundle()?)` (a pinned
    /// test) without materializing the intermediate bundle: dirty
    /// classes re-encode, clean classes splice their cached bytes, and
    /// the metadata tail shares [`encode_bundle`]'s writer.
    pub fn encode_state(&mut self) -> Result<Bytes, CodecError> {
        self.fold()?;
        let mut buf = BytesMut::new();
        buf.put_slice(BUNDLE_MAGIC);
        put_varint(&mut buf, BUNDLE_VERSION);
        put_varint(&mut buf, WIDTH as u64);
        for class in 0..CLASSES {
            let blob = self.class_encoded(class)?;
            put_varint(&mut buf, 1);
            put_varint(&mut buf, blob.len() as u64);
            buf.put_slice(&blob);
        }
        let mut alloc_info: Vec<(Vec<Frame>, u64, u64, u64)> = self
            .alloc_info
            .iter()
            .map(|(path, &(count, bytes, zeroed))| (path.clone(), count, bytes, zeroed))
            .collect();
        alloc_info.sort();
        encode_meta_into(&mut buf, &self.names, &self.hints, &alloc_info, &self.stats);
        Ok(buf.freeze())
    }

    /// Rebuild an accumulator from a snapshot bundle plus the counters a
    /// bundle cannot carry — the inverse of [`to_bundle`](Self::to_bundle).
    ///
    /// A snapshot-shaped bundle (exactly one valid blob per class — what
    /// `to_bundle` emits) installs its decoded trees and metadata
    /// directly: zero folds, and each v2 blob becomes the class's cached
    /// encoding (sound because a v2 re-encode is pinned byte-identical).
    /// Any other shape falls back to the ingest path, whose next fold
    /// surfaces bad blobs the usual way.
    pub fn restore(bundle: StoredBundle, bundles: u64, blob_bytes: u64) -> Self {
        let snapshot_shaped = bundle.profiles.iter().all(|c| c.len() == 1);
        let decoded: Option<Vec<Cct>> = if snapshot_shaped {
            bundle
                .profiles
                .iter()
                .map(|c| decode(c[0].clone()).ok().filter(|t| t.width() == WIDTH))
                .collect()
        } else {
            None
        };
        let Some(trees) = decoded else {
            let mut acc = Self::new();
            acc.ingest(bundle);
            acc.bundles = bundles;
            acc.blob_bytes = blob_bytes;
            return acc;
        };
        let StoredBundle { profiles, names, hints, alloc_info, stats } = bundle;
        let cached_encoded = std::array::from_fn(|class| {
            let blob = &profiles[class][0];
            blob.as_slice().starts_with(b"DCP2").then(|| blob.clone())
        });
        let trees: [Cct; CLASSES] =
            trees.try_into().unwrap_or_else(|_| unreachable!("exactly CLASSES trees"));
        let merges = trees.map(IncrementalMerge::from_tree);
        Self {
            merges: Some(merges),
            cached_encoded,
            names: Arc::new(names),
            hints: Arc::new(hints),
            alloc_info: Arc::new(
                alloc_info.into_iter().map(|(p, c, b, z)| (p, (c, b, z))).collect(),
            ),
            stats,
            bundles,
            blob_bytes,
            dirty_rebuilds: 0,
        }
    }

    /// Fold and take a renderable snapshot of the current state. Classes
    /// no ingest touched hand out the same shared tree as the previous
    /// snapshot; the symbol tables are always shared.
    pub fn snapshot(&mut self) -> Result<StoredProfiles, CodecError> {
        self.fold()?;
        let mut trees = Vec::with_capacity(CLASSES);
        for inc in self.merges_mut() {
            trees.push(inc.shared_tree()?);
        }
        let trees: [Arc<Cct>; CLASSES] =
            trees.try_into().unwrap_or_else(|_| unreachable!("exactly CLASSES trees"));
        Ok(StoredProfiles {
            trees,
            names: Arc::clone(&self.names),
            hints: Arc::clone(&self.hints),
            alloc_info: Arc::clone(&self.alloc_info),
            stats: self.stats.clone(),
        })
    }

    /// The pre-incremental snapshot: fold, then deep-clone every class
    /// tree and every symbol table. Byte-identical output to
    /// [`snapshot`](Self::snapshot); kept so the serve bench can run a
    /// baseline daemon that pays the old per-epoch cost.
    pub fn snapshot_cloned(&mut self) -> Result<StoredProfiles, CodecError> {
        self.fold()?;
        let mut trees = Vec::with_capacity(CLASSES);
        for inc in self.merges_mut() {
            trees.push(Arc::new(inc.tree()?.clone()));
        }
        let trees: [Arc<Cct>; CLASSES] =
            trees.try_into().unwrap_or_else(|_| unreachable!("exactly CLASSES trees"));
        Ok(StoredProfiles {
            trees,
            names: Arc::new((*self.names).clone()),
            hints: Arc::new((*self.hints).clone()),
            alloc_info: Arc::new((*self.alloc_info).clone()),
            stats: self.stats.clone(),
        })
    }

    /// The pre-incremental state encoding: fold, then re-encode every
    /// class from its tree, ignoring the cache. Byte-identical output to
    /// [`encode_state`](Self::encode_state); the serve bench's baseline.
    pub fn encode_state_recoded(&mut self) -> Result<Bytes, CodecError> {
        self.fold()?;
        let mut buf = BytesMut::new();
        buf.put_slice(BUNDLE_MAGIC);
        put_varint(&mut buf, BUNDLE_VERSION);
        put_varint(&mut buf, WIDTH as u64);
        for class in 0..CLASSES {
            let blob = encode(self.merges_mut()[class].tree()?);
            put_varint(&mut buf, 1);
            put_varint(&mut buf, blob.len() as u64);
            buf.put_slice(&blob);
        }
        let mut alloc_info: Vec<(Vec<Frame>, u64, u64, u64)> = self
            .alloc_info
            .iter()
            .map(|(path, &(count, bytes, zeroed))| (path.clone(), count, bytes, zeroed))
            .collect();
        alloc_info.sort();
        encode_meta_into(&mut buf, &self.names, &self.hints, &alloc_info, &self.stats);
        Ok(buf.freeze())
    }
}

/// A merged profile set evaluated away from the producing program: the
/// per-class trees plus the symbol tables the bundles carried. An empty
/// set (nothing ever ingested) is fully defined — every view renders
/// its empty form.
///
/// Every field sits behind an `Arc`: a snapshot is a handle onto the
/// accumulator's copy-on-write state, so taking one after an ingest
/// that touched a single class clones nothing — the untouched class
/// trees and the symbol maps are shared with the previous snapshot.
#[derive(Debug, Clone)]
pub struct StoredProfiles {
    trees: [Arc<Cct>; CLASSES],
    names: Arc<FxHashMap<Frame, String>>,
    hints: Arc<FxHashMap<u64, String>>,
    alloc_info: Arc<FxHashMap<Vec<Frame>, (u64, u64, u64)>>,
    stats: ProfStats,
}

impl Default for StoredProfiles {
    fn default() -> Self {
        Self {
            trees: std::array::from_fn(|_| Arc::new(Cct::new(WIDTH))),
            names: Arc::default(),
            hints: Arc::default(),
            alloc_info: Arc::default(),
            stats: ProfStats::default(),
        }
    }
}

impl StoredProfiles {
    /// An empty profile set.
    pub fn empty() -> Self {
        Self::default()
    }

    pub fn stats(&self) -> &ProfStats {
        &self.stats
    }

    /// Re-encode one class tree (the serve `export` query; the loopback
    /// byte-identity test reads this).
    pub fn export(&self, c: StorageClass) -> Bytes {
        encode(&self.trees[c.idx()])
    }

    /// The shared handle for one class tree. Snapshot-sharing tests use
    /// `Arc::ptr_eq` on this to prove that a snapshot taken after an
    /// ingest touching one class rebuilt only that class.
    pub fn class_tree_handle(&self, c: StorageClass) -> &Arc<Cct> {
        &self.trees[c.idx()]
    }
}

impl SymbolSource for StoredProfiles {
    fn frame_name(&self, f: Frame) -> String {
        if let Some(n) = self.names.get(&f) {
            return n.clone();
        }
        // Fallbacks mirror resolve_frame_name's unresolvable forms, so a
        // bundle missing a record degrades readably instead of panicking.
        match f {
            Frame::Root => "<program root>".to_string(),
            Frame::HeapMarker => "heap data accesses".to_string(),
            Frame::Proc(p) => format!("<proc {p}>"),
            Frame::CallSite(ip) | Frame::Stmt(ip) => format!("<ip {ip:#x}>"),
            Frame::StaticVar(h) => format!("<static {h:#x}>"),
        }
    }

    fn hint(&self, ip: u64) -> Option<String> {
        self.hints.get(&ip).cloned()
    }
}

impl ProfileView for StoredProfiles {
    fn class_tree(&self, c: StorageClass) -> &Cct {
        &self.trees[c.idx()]
    }

    fn alloc_map(&self) -> &FxHashMap<Vec<Frame>, (u64, u64, u64)> {
        &self.alloc_info
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{compare_report, Analysis};
    use crate::metrics::Metric;
    use crate::view::{bottom_up, flat, ranking, top_down, TopDownOpts};

    // The same fixture the analyzer tests use: one heap variable with a
    // source hint, one static, plus unknown-class samples.
    use crate::profiler::{Profiler, ProfilerConfig};
    use dcp_machine::pmu::SampleOrigin;
    use dcp_machine::{CoreId, DataSource, Sample};
    use dcp_runtime::ir::ex::*;
    use dcp_runtime::ir::ProcId;
    use dcp_runtime::observer::{AllocEvent, ModuleEvent, NodeObserver, ThreadView};
    use dcp_runtime::{FrameInfo, ProgramBuilder};

    fn program() -> dcp_runtime::Program {
        let mut b = ProgramBuilder::new("exe");
        b.static_array("f_elem", 4096);
        let main = b.proc("main", 0, |p| {
            p.line(175);
            let a = p.calloc(c(8192), "S_diag_j");
            p.line(480);
            p.load(l(a), c(0), 8);
        });
        b.build(main)
    }

    fn measured(prog: &dcp_runtime::Program, seed: u64) -> MeasurementData {
        let mut p = Profiler::new(ProfilerConfig::default());
        p.on_module(&ModuleEvent::Loaded {
            module: dcp_runtime::ModuleId(0),
            def: &prog.modules[0],
            rank: 0,
        });
        let stack = vec![FrameInfo { proc: ProcId(0), call_site: None, token: 0 }];
        let view = ThreadView {
            rank: 0,
            thread: 0,
            core: CoreId(0),
            clock: 0,
            frames: &stack,
            leaf_ip: Ip(0),
        };
        let sample = |ea: u64, ip: u64, latency: u32, src: DataSource| Sample {
            origin: SampleOrigin::Ibs,
            precise_ip: ip,
            signal_ip: ip,
            ea: Some(ea),
            latency,
            source: Some(src),
            tlb_miss: false,
            is_store: false,
            core: CoreId(0),
        };
        let alloc_ip = Ip::new(dcp_runtime::ModuleId(0), ProcId(0), 0);
        p.on_alloc(
            &AllocEvent { addr: 0x10_0000, bytes: 8192, zeroed: true, ip: alloc_ip },
            &view,
        );
        let access_ip = Ip::new(dcp_runtime::ModuleId(0), ProcId(0), 1);
        for _ in 0..(4 + seed) {
            p.on_sample(&sample(0x10_0010, access_ip.0, 200, DataSource::RemoteDram), &view);
        }
        let static_addr = dcp_runtime::layout::global(0, prog.modules[0].statics[0].addr);
        for _ in 0..(2 + seed) {
            p.on_sample(&sample(static_addr, access_ip.0, 100, DataSource::LocalDram), &view);
        }
        p.into_measurement()
    }

    fn stored(prog: &dcp_runtime::Program, ms: &[MeasurementData]) -> StoredProfiles {
        let mut acc = StoredAccumulator::new();
        for m in ms {
            let bundle = bundle_from_measurement(prog, m);
            let wire = encode_bundle(&bundle);
            acc.ingest(decode_bundle(wire).expect("own bundle decodes"));
        }
        acc.snapshot().expect("valid blobs")
    }

    fn bytes_of(v: &[u8]) -> Bytes {
        let mut b = BytesMut::new();
        b.put_slice(v);
        b.freeze()
    }

    #[test]
    fn bundle_roundtrips_exactly() {
        let prog = program();
        let b = bundle_from_measurement(&prog, &measured(&prog, 1));
        let wire = encode_bundle(&b);
        let d = decode_bundle(wire.clone()).expect("roundtrip");
        assert_eq!(encode_bundle(&d), wire, "re-encode is byte-identical");
        assert_eq!(d.names.len(), b.names.len());
        assert_eq!(d.stats.samples, b.stats.samples);
        assert_eq!(d.stats.samples_by_class, b.stats.samples_by_class);
        assert_eq!(d.stats.overhead_cycles, b.stats.overhead_cycles);
    }

    #[test]
    fn stored_views_render_identically_to_analysis() {
        // The keystone: every view over StoredProfiles must produce the
        // exact text the in-process Analysis produces.
        let prog = program();
        let ms: Vec<MeasurementData> = (0..3).map(|s| measured(&prog, s)).collect();
        let sp = stored(&prog, &ms);
        let a = Analysis::analyze(&prog, ms);

        for metric in [Metric::Samples, Metric::Latency, Metric::Remote] {
            assert_eq!(ranking(&sp, metric, 20), ranking(&a, metric, 20));
            assert_eq!(bottom_up(&sp, metric), bottom_up(&a, metric));
            for class in StorageClass::ALL {
                assert_eq!(
                    top_down(&sp, class, metric, TopDownOpts::default()),
                    top_down(&a, class, metric, TopDownOpts::default())
                );
                assert_eq!(flat(&sp, class, metric, 20), flat(&a, class, metric, 20));
            }
        }
        let vs = sp.variables(Metric::Latency);
        let va = a.variables(Metric::Latency);
        assert_eq!(vs.len(), va.len());
        for (s, d) in vs.iter().zip(&va) {
            assert_eq!(s.name, d.name);
            assert_eq!(s.metrics, d.metrics);
            assert_eq!(s.alloc_site, d.alloc_site);
        }
    }

    #[test]
    fn stored_compare_matches_analysis_compare() {
        let prog = program();
        let before: Vec<MeasurementData> = vec![measured(&prog, 0)];
        let after: Vec<MeasurementData> = vec![measured(&prog, 5)];
        let sb = stored(&prog, &before);
        let sa = stored(&prog, &after);
        let ab = Analysis::analyze(&prog, before);
        let aa = Analysis::analyze(&prog, after);
        for metric in [Metric::Samples, Metric::Latency] {
            assert_eq!(
                compare_report(&sb, &sa, metric),
                ab.compare(&aa, metric),
                "served diff must match --compare"
            );
        }
    }

    #[test]
    fn empty_stored_profiles_render_defined_views() {
        let sp = StoredProfiles::empty();
        assert!(sp.variables(Metric::Samples).is_empty());
        let r = ranking(&sp, Metric::Latency, 10);
        assert!(r.contains("total 0"));
        let t = top_down(&sp, StorageClass::Heap, Metric::Samples, TopDownOpts::default());
        assert!(t.contains("0.0%"));
        // An accumulator nobody ingested into snapshots to the same.
        let from_acc = StoredAccumulator::new().snapshot().expect("empty is defined");
        assert_eq!(ranking(&from_acc, Metric::Latency, 10), r);
    }

    #[test]
    fn incremental_snapshots_equal_one_shot_ingest() {
        // Snapshotting mid-stream must not change the final state.
        let prog = program();
        let ms: Vec<MeasurementData> = (0..4).map(|s| measured(&prog, s)).collect();
        let mut inc = StoredAccumulator::new();
        for m in &ms {
            inc.ingest(bundle_from_measurement(&prog, m));
            let _ = inc.snapshot().expect("valid");
        }
        let one = stored(&prog, &ms);
        let last = inc.snapshot().expect("valid");
        for c in StorageClass::ALL {
            assert_eq!(last.export(c), one.export(c), "class {c:?}");
        }
        assert_eq!(ranking(&last, Metric::Latency, 20), ranking(&one, Metric::Latency, 20));
    }

    #[test]
    fn to_bundle_restore_midstream_is_byte_identical() {
        // The durability keystone: snapshot an accumulator mid-stream,
        // rebuild from the snapshot bundle (through its wire encoding,
        // as recovery does), ingest the rest — every export and view
        // must match the uninterrupted accumulator byte for byte.
        let prog = program();
        let ms: Vec<MeasurementData> = (0..4).map(|s| measured(&prog, s)).collect();
        let bundles: Vec<StoredBundle> =
            ms.iter().map(|m| bundle_from_measurement(&prog, m)).collect();

        let mut straight = StoredAccumulator::new();
        for b in &bundles {
            straight.ingest(b.clone());
        }

        let mut first = StoredAccumulator::new();
        first.ingest(bundles[0].clone());
        first.ingest(bundles[1].clone());
        let snap_wire = encode_bundle(&first.to_bundle().expect("valid blobs"));
        let snap = decode_bundle(snap_wire).expect("snapshot bundle decodes");
        let mut resumed = StoredAccumulator::restore(snap, first.bundles(), first.blob_bytes());
        assert_eq!(resumed.bundles(), 2);
        resumed.ingest(bundles[2].clone());
        resumed.ingest(bundles[3].clone());

        let a = straight.snapshot().expect("valid");
        let b = resumed.snapshot().expect("valid");
        for c in StorageClass::ALL {
            assert_eq!(a.export(c), b.export(c), "class {c:?}");
        }
        assert_eq!(ranking(&a, Metric::Latency, 20), ranking(&b, Metric::Latency, 20));
        assert_eq!(bottom_up(&a, Metric::Remote), bottom_up(&b, Metric::Remote));
        assert_eq!(a.stats().samples, b.stats().samples);
        let va = a.variables(Metric::Latency);
        let vb = b.variables(Metric::Latency);
        assert_eq!(va.len(), vb.len());
        for (x, y) in va.iter().zip(&vb) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.metrics, y.metrics);
            assert_eq!((x.alloc_count, x.alloc_bytes), (y.alloc_count, y.alloc_bytes));
        }
    }

    #[test]
    fn bundle_decode_rejects_corruption_with_typed_errors() {
        let prog = program();
        let wire = encode_bundle(&bundle_from_measurement(&prog, &measured(&prog, 1)));
        // Every truncation.
        for cut in 0..wire.len() {
            let r = decode_bundle(wire.slice(0..cut));
            assert!(r.is_err(), "truncation at {cut} must fail");
        }
        // Bad magic.
        let mut bad = wire.to_vec();
        bad[0] ^= 0xff;
        assert!(matches!(decode_bundle(bytes_of(&bad)), Err(CodecError::BadMagic)));
        // Trailing garbage.
        let mut long = wire.to_vec();
        long.push(0);
        assert!(decode_bundle(bytes_of(&long)).is_err());
    }

    #[test]
    fn restore_installs_without_folding() {
        // The regression the direct constructor exists for: rebuilding
        // from a snapshot bundle must not fold (the old path round-
        // tripped through ingest and paid a spurious full merge).
        let prog = program();
        let mut acc = StoredAccumulator::new();
        for s in 0..3 {
            acc.ingest(bundle_from_measurement(&prog, &measured(&prog, s)));
        }
        let wire = encode_bundle(&acc.to_bundle().expect("valid blobs"));
        let snap = decode_bundle(wire).expect("snapshot bundle decodes");
        let mut resumed = StoredAccumulator::restore(snap, acc.bundles(), acc.blob_bytes());
        assert_eq!(resumed.folds(), 0, "restore must install, not re-merge");
        assert_eq!(resumed.dirty_rebuilds(), 0);
        // Snapshotting the untouched restore still does no merge work,
        // and serves the exact bytes of the original accumulator.
        let sp = resumed.snapshot().expect("valid");
        assert_eq!(resumed.folds(), 0);
        assert_eq!(resumed.dirty_rebuilds(), 0);
        let orig = acc.snapshot().expect("valid");
        for c in StorageClass::ALL {
            assert_eq!(sp.export(c), orig.export(c), "class {c:?}");
        }
        // And its encoded state splices the cached snapshot blobs
        // without a single re-encode-triggering fold.
        assert_eq!(
            resumed.encode_state().expect("valid"),
            encode_bundle(&acc.to_bundle().expect("valid"))
        );
        assert_eq!(resumed.folds(), 0);
    }

    #[test]
    fn encode_state_matches_encode_bundle_bytes() {
        // encode_state (the cached-splice path) must be byte-identical
        // to encode_bundle(to_bundle()) at every point in a stream.
        let prog = program();
        let bundles: Vec<StoredBundle> =
            (0..3).map(|s| bundle_from_measurement(&prog, &measured(&prog, s))).collect();
        let mut fast = StoredAccumulator::new();
        let mut slow = StoredAccumulator::new();
        for b in &bundles {
            fast.ingest(b.clone());
            slow.ingest(b.clone());
            assert_eq!(
                fast.encode_state().expect("valid"),
                encode_bundle(&slow.to_bundle().expect("valid"))
            );
        }
        // A second encode with nothing new serves entirely from cache.
        let rebuilds = fast.dirty_rebuilds();
        assert_eq!(
            fast.encode_state().expect("valid"),
            encode_bundle(&slow.to_bundle().expect("valid"))
        );
        assert_eq!(fast.dirty_rebuilds(), rebuilds, "clean encode must not rebuild");
    }

    /// A hand-assembled bundle with no profile blobs and the given name
    /// and hint records, in the order given — the encoder can't emit
    /// duplicates (its maps dedup), so adversarial wire is built here.
    fn meta_wire(names: &[(Frame, &str)], hints: &[(u64, &str)]) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(BUNDLE_MAGIC);
        put_varint(&mut buf, BUNDLE_VERSION);
        put_varint(&mut buf, WIDTH as u64);
        for _ in 0..CLASSES {
            put_varint(&mut buf, 0);
        }
        put_varint(&mut buf, names.len() as u64);
        for (f, n) in names {
            put_frame(&mut buf, *f);
            put_str(&mut buf, n);
        }
        put_varint(&mut buf, hints.len() as u64);
        for (ip, h) in hints {
            put_varint(&mut buf, *ip);
            put_str(&mut buf, h);
        }
        put_varint(&mut buf, 0); // alloc_info
        let stat_fields = 1 + ProfStats::default().samples_by_class.len() + 5;
        for _ in 0..stat_fields {
            put_varint(&mut buf, 0);
        }
        buf.freeze()
    }

    #[test]
    fn bundle_decode_rejects_duplicate_keys() {
        // Distinct keys decode fine.
        let ok = meta_wire(
            &[(Frame::Proc(1), "a"), (Frame::Proc(2), "b")],
            &[(0x10, "x"), (0x20, "y")],
        );
        let d = decode_bundle(ok).expect("distinct keys decode");
        assert_eq!(d.names.len(), 2);
        assert_eq!(d.hints.len(), 2);
        // A repeated name key is a typed error, even with an identical
        // value: first-wins (ingest) and last-wins (a naive map build)
        // consumers must never be able to disagree about a bundle.
        let dup_name = meta_wire(&[(Frame::Proc(1), "a"), (Frame::Proc(1), "a")], &[]);
        assert!(matches!(decode_bundle(dup_name), Err(CodecError::DuplicateKey)));
        let dup_name2 = meta_wire(&[(Frame::Proc(1), "a"), (Frame::Proc(1), "b")], &[]);
        assert!(matches!(decode_bundle(dup_name2), Err(CodecError::DuplicateKey)));
        // Same for hints.
        let dup_hint = meta_wire(&[], &[(0x10, "x"), (0x10, "y")]);
        assert!(matches!(decode_bundle(dup_hint), Err(CodecError::DuplicateKey)));
    }

    /// A bundle touching only the heap class, for the dirty-class tests.
    fn heap_only_bundle(seed: u64) -> StoredBundle {
        let mut t = Cct::new(WIDTH);
        t.insert_path(vec![Frame::HeapMarker, Frame::Proc(seed % 3)], 0, 1 + seed);
        let mut b = StoredBundle::default();
        b.profiles[StorageClass::Heap.idx()].push(encode(&t));
        b.stats.samples = 1 + seed;
        b
    }

    #[test]
    fn snapshot_shares_every_untouched_class() {
        let mut acc = StoredAccumulator::new();
        acc.ingest(heap_only_bundle(1));
        let s1 = acc.snapshot().expect("valid");
        assert_eq!(acc.dirty_rebuilds(), 1, "one class received blobs");
        acc.ingest(heap_only_bundle(2));
        let s2 = acc.snapshot().expect("valid");
        assert_eq!(acc.dirty_rebuilds(), 2, "still only the heap class rebuilt");
        for c in StorageClass::ALL {
            if c == StorageClass::Heap {
                assert!(
                    !Arc::ptr_eq(s1.class_tree_handle(c), s2.class_tree_handle(c)),
                    "the dirty class must be a fresh tree"
                );
            } else {
                assert!(
                    Arc::ptr_eq(s1.class_tree_handle(c), s2.class_tree_handle(c)),
                    "untouched class {c:?} must share its tree across snapshots"
                );
            }
        }
        // Symbol tables are shared too (no names ingested, no copy).
        assert!(Arc::ptr_eq(&s1.names, &s2.names));
        assert!(Arc::ptr_eq(&s1.alloc_info, &s2.alloc_info));
        // The earlier snapshot stayed immutable: it still renders the
        // single-bundle heap total.
        assert_eq!(s1.class_tree(StorageClass::Heap).total(0), 2);
        assert_eq!(s2.class_tree(StorageClass::Heap).total(0), 5);
    }
}
