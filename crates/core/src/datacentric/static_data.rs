//! Tracking static variables across load modules.
//!
//! When a load module is mapped, the profiler reads its symbol table and
//! records the address range of every static variable (§4.1.3 "Static
//! data"). Unlike earlier tools, this includes dynamically loaded shared
//! libraries, and attribution is per *variable*, not per load module.
//! Module unload removes its ranges.

use dcp_runtime::layout;
use dcp_runtime::ir::{ModuleDef, ModuleId};

/// Encoded handle for one static symbol: `module << 32 | symbol index`.
/// This is the payload of [`dcp_cct::Frame::StaticVar`] dummy nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StaticHandle(pub u64);

impl StaticHandle {
    pub fn new(module: ModuleId, sym: u32) -> Self {
        StaticHandle(((module.0 as u64) << 32) | sym as u64)
    }

    pub fn module(self) -> ModuleId {
        ModuleId((self.0 >> 32) as u16)
    }

    pub fn sym(self) -> u32 {
        self.0 as u32
    }
}

#[derive(Debug, Clone, Copy)]
struct Range {
    start: u64, // process-local address
    end: u64,
    handle: StaticHandle,
}

/// The profiler-side map of static-variable address ranges.
///
/// Static layout is identical in every rank (same binary), so ranges are
/// stored once on process-local addresses; what varies per rank is which
/// modules are currently loaded.
#[derive(Debug, Default)]
pub struct StaticMap {
    /// Sorted, non-overlapping ranges.
    ranges: Vec<Range>,
    /// `loaded[rank][module]`.
    loaded: Vec<Vec<bool>>,
    modules_seen: usize,
}

impl StaticMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record module load for `rank`: registers symbol ranges (once per
    /// module) and marks the module loaded for the rank.
    pub fn load_module(&mut self, rank: u32, module: ModuleId, def: &ModuleDef) {
        let r = rank as usize;
        if self.loaded.len() <= r {
            self.loaded.resize_with(r + 1, Vec::new);
        }
        let m = module.0 as usize;
        if self.loaded[r].len() <= m {
            self.loaded[r].resize(m + 1, false);
        }
        let first_time = !self.ranges.iter().any(|g| g.handle.module() == module);
        if first_time {
            for (i, sym) in def.statics.iter().enumerate() {
                self.ranges.push(Range {
                    start: sym.addr,
                    end: sym.addr + sym.bytes,
                    handle: StaticHandle::new(module, i as u32),
                });
            }
            self.ranges.sort_by_key(|g| g.start);
            self.modules_seen += 1;
        }
        self.loaded[r][m] = true;
    }

    /// Record module unload for `rank`.
    pub fn unload_module(&mut self, rank: u32, module: ModuleId) {
        if let Some(v) = self.loaded.get_mut(rank as usize) {
            if let Some(b) = v.get_mut(module.0 as usize) {
                *b = false;
            }
        }
    }

    /// Classify a *global* effective address: the handle of the static
    /// variable containing it, if its module is loaded in that rank.
    pub fn lookup(&self, ea: u64) -> Option<StaticHandle> {
        if ea >> layout::RANK_SHIFT == 0 {
            // Not a mapped global address (e.g. a kernel/VDSO pointer on
            // real hardware): cannot be static data.
            return None;
        }
        let rank = layout::rank_of(ea) as usize;
        let local = layout::local_of(ea);
        let idx = self.ranges.partition_point(|g| g.start <= local);
        if idx == 0 {
            return None;
        }
        let g = &self.ranges[idx - 1];
        if local >= g.end {
            return None;
        }
        let m = g.handle.module().0 as usize;
        let live = self.loaded.get(rank).and_then(|v| v.get(m)).copied().unwrap_or(false);
        live.then_some(g.handle)
    }

    /// Number of registered symbol ranges.
    pub fn ranges_len(&self) -> usize {
        self.ranges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_runtime::ir::StaticSym;

    fn module_def(syms: &[(&str, u64, u64)]) -> ModuleDef {
        ModuleDef {
            name: "m".into(),
            statics: syms
                .iter()
                .map(|(n, a, b)| StaticSym { name: n.to_string(), addr: *a, bytes: *b })
                .collect(),
            load_at_start: true,
        }
    }

    #[test]
    fn lookup_finds_containing_symbol() {
        let mut m = StaticMap::new();
        let def = module_def(&[("a", 0x1000, 0x100), ("b", 0x2000, 0x80)]);
        m.load_module(0, ModuleId(0), &def);
        let ea = layout::global(0, 0x1000);
        assert_eq!(m.lookup(ea), Some(StaticHandle::new(ModuleId(0), 0)));
        let ea = layout::global(0, 0x10ff);
        assert_eq!(m.lookup(ea), Some(StaticHandle::new(ModuleId(0), 0)));
        let ea = layout::global(0, 0x2001);
        assert_eq!(m.lookup(ea), Some(StaticHandle::new(ModuleId(0), 1)));
    }

    #[test]
    fn gaps_and_past_end_miss() {
        let mut m = StaticMap::new();
        m.load_module(0, ModuleId(0), &module_def(&[("a", 0x1000, 0x100)]));
        assert_eq!(m.lookup(layout::global(0, 0x0fff)), None);
        assert_eq!(m.lookup(layout::global(0, 0x1100)), None);
    }

    #[test]
    fn per_rank_load_state() {
        let mut m = StaticMap::new();
        let def = module_def(&[("a", 0x1000, 0x100)]);
        m.load_module(1, ModuleId(0), &def);
        // Loaded only in rank 1: rank 0 accesses are unknown.
        assert_eq!(m.lookup(layout::global(0, 0x1000)), None);
        assert!(m.lookup(layout::global(1, 0x1000)).is_some());
    }

    #[test]
    fn unload_makes_accesses_unknown() {
        let mut m = StaticMap::new();
        let def = module_def(&[("a", 0x1000, 0x100)]);
        m.load_module(0, ModuleId(0), &def);
        assert!(m.lookup(layout::global(0, 0x1000)).is_some());
        m.unload_module(0, ModuleId(0));
        assert_eq!(m.lookup(layout::global(0, 0x1000)), None);
        // Reload restores without duplicating ranges.
        m.load_module(0, ModuleId(0), &def);
        assert!(m.lookup(layout::global(0, 0x1000)).is_some());
        assert_eq!(m.ranges_len(), 1);
    }

    #[test]
    fn handle_roundtrip() {
        let h = StaticHandle::new(ModuleId(3), 17);
        assert_eq!(h.module(), ModuleId(3));
        assert_eq!(h.sym(), 17);
    }
}
