//! Tracking heap-allocated variables.
//!
//! A heap variable is identified by the *full call path of its allocation
//! point* (§4.1.3): all blocks allocated from the same path are one
//! variable, which is what collapses the paper's Figure 2 hundred-
//! allocation loop into a single entry. The profiler interns allocation
//! paths and keeps, per rank, an interval map from live block ranges to
//! the interned path.

use std::collections::BTreeMap;

use dcp_cct::Frame;
use dcp_support::FxHashMap;

/// Interned allocation-context id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocCtxId(pub u32);

/// Interner for allocation call paths (as CCT frame sequences ending at
/// the allocation statement).
#[derive(Debug, Default)]
pub struct AllocPaths {
    by_path: FxHashMap<Vec<Frame>, AllocCtxId>,
    paths: Vec<Vec<Frame>>,
    /// How many blocks were allocated from each context (Figure 2's "100
    /// allocations" diagnostics).
    counts: Vec<u64>,
    /// Total requested bytes per context.
    bytes: Vec<u64>,
    /// How many of those blocks were zero-filled (`calloc`) — the advisor
    /// uses this to tell "master zero-fill" apart from lazy `malloc`.
    zeroed: Vec<u64>,
}

impl AllocPaths {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `path`, counting one allocation of `bytes`.
    pub fn intern(&mut self, path: &[Frame], bytes: u64) -> AllocCtxId {
        self.intern_full(path, bytes, false)
    }

    /// Intern with the zero-fill flag (`calloc` vs `malloc`).
    pub fn intern_full(&mut self, path: &[Frame], bytes: u64, was_zeroed: bool) -> AllocCtxId {
        if let Some(&id) = self.by_path.get(path) {
            self.counts[id.0 as usize] += 1;
            self.bytes[id.0 as usize] += bytes;
            self.zeroed[id.0 as usize] += was_zeroed as u64;
            return id;
        }
        let id = AllocCtxId(self.paths.len() as u32);
        self.by_path.insert(path.to_vec(), id);
        self.paths.push(path.to_vec());
        self.counts.push(1);
        self.bytes.push(bytes);
        self.zeroed.push(was_zeroed as u64);
        id
    }

    /// The interned path.
    pub fn path(&self, id: AllocCtxId) -> &[Frame] {
        &self.paths[id.0 as usize]
    }

    /// Allocation count for a context.
    pub fn count(&self, id: AllocCtxId) -> u64 {
        self.counts[id.0 as usize]
    }

    /// Total requested bytes for a context.
    pub fn bytes(&self, id: AllocCtxId) -> u64 {
        self.bytes[id.0 as usize]
    }

    /// How many blocks of this context were zero-filled (`calloc`).
    pub fn zeroed(&self, id: AllocCtxId) -> u64 {
        self.zeroed[id.0 as usize]
    }

    /// Number of distinct contexts.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True if no context was ever interned.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

/// Live heap blocks of all ranks: global address range -> allocation
/// context.
#[derive(Debug, Default)]
pub struct HeapMap {
    /// start (global) -> (end, ctx)
    live: BTreeMap<u64, (u64, AllocCtxId)>,
    inserts: u64,
    removes: u64,
}

impl HeapMap {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a live block `[addr, addr+len)`.
    ///
    /// # Panics
    /// Panics if the block overlaps a live one (would indicate a broken
    /// allocator or missed free).
    pub fn insert(&mut self, addr: u64, len: u64, ctx: AllocCtxId) {
        assert!(len > 0);
        if let Some((&s, &(e, _))) = self.live.range(..addr + len).next_back() {
            assert!(e <= addr || s >= addr + len, "overlapping live heap blocks");
        }
        self.live.insert(addr, (addr + len, ctx));
        self.inserts += 1;
    }

    /// Drop the block starting at `addr`; `true` if one was tracked (small
    /// allocations below the tracking threshold never were).
    pub fn remove(&mut self, addr: u64) -> bool {
        self.removes += 1;
        self.live.remove(&addr).is_some()
    }

    /// The allocation context owning `ea`, if `ea` is inside a live block.
    pub fn lookup(&self, ea: u64) -> Option<AllocCtxId> {
        let (&_s, &(end, ctx)) = self.live.range(..=ea).next_back()?;
        (ea < end).then_some(ctx)
    }

    /// Number of currently live tracked blocks.
    pub fn live_blocks(&self) -> usize {
        self.live.len()
    }

    /// (inserts, removes) performed.
    pub fn ops(&self) -> (u64, u64) {
        (self.inserts, self.removes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(a: u64) -> Vec<Frame> {
        vec![Frame::Proc(1), Frame::CallSite(a), Frame::Stmt(a + 1)]
    }

    #[test]
    fn same_path_interned_once() {
        let mut ap = AllocPaths::new();
        let a = ap.intern(&path(5), 100);
        let b = ap.intern(&path(5), 200);
        assert_eq!(a, b);
        assert_eq!(ap.len(), 1);
        assert_eq!(ap.count(a), 2);
        assert_eq!(ap.bytes(a), 300);
    }

    #[test]
    fn hundred_allocations_one_variable() {
        // Figure 2: a loop allocating 100 blocks from one call path is a
        // single data-centric variable.
        let mut ap = AllocPaths::new();
        let mut hm = HeapMap::new();
        for i in 0..100u64 {
            let id = ap.intern(&path(7), 4096);
            hm.insert(0x10_0000 + i * 0x2000, 4096, id);
        }
        assert_eq!(ap.len(), 1);
        assert_eq!(ap.count(AllocCtxId(0)), 100);
        // Accesses to any of the 100 blocks map to the same variable.
        assert_eq!(hm.lookup(0x10_0000 + 37 * 0x2000 + 12), Some(AllocCtxId(0)));
    }

    #[test]
    fn lookup_respects_block_bounds() {
        let mut ap = AllocPaths::new();
        let mut hm = HeapMap::new();
        let id = ap.intern(&path(1), 64);
        hm.insert(0x1000, 64, id);
        assert_eq!(hm.lookup(0x1000), Some(id));
        assert_eq!(hm.lookup(0x103f), Some(id));
        assert_eq!(hm.lookup(0x1040), None);
        assert_eq!(hm.lookup(0x0fff), None);
    }

    #[test]
    fn free_then_lookup_misses() {
        let mut ap = AllocPaths::new();
        let mut hm = HeapMap::new();
        let id = ap.intern(&path(1), 64);
        hm.insert(0x1000, 64, id);
        assert!(hm.remove(0x1000));
        assert_eq!(hm.lookup(0x1010), None);
        // Double remove (free of untracked block) is tolerated.
        assert!(!hm.remove(0x1000));
    }

    #[test]
    fn distinct_paths_are_distinct_variables() {
        let mut ap = AllocPaths::new();
        let a = ap.intern(&path(1), 8);
        let b = ap.intern(&path(2), 8);
        assert_ne!(a, b);
        assert_eq!(ap.len(), 2);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlap_panics() {
        let mut ap = AllocPaths::new();
        let mut hm = HeapMap::new();
        let id = ap.intern(&path(1), 128);
        hm.insert(0x1000, 128, id);
        hm.insert(0x1040, 128, id);
    }
}
