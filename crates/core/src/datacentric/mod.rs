//! Variable tracking: the data-centric half of the profiler.
//!
//! * [`static_data`] — address-range maps for static variables of every
//!   load module (executable and shared libraries).
//! * [`heap`] — live-block interval map and allocation-path interning for
//!   heap variables.
//! * [`strategy`] — the overhead-control strategies of §4.1.3 (size
//!   threshold, fast context, trampoline unwinding) and the profiler's
//!   own cost model.

pub mod heap;
pub mod static_data;
pub mod strategy;

pub use heap::{AllocCtxId, AllocPaths, HeapMap};
pub use static_data::{StaticHandle, StaticMap};
pub use strategy::{CaptureOutcome, ProfCosts, TrackingPolicy, UnwindCache};
