//! Overhead-control strategies for variable tracking (§4.1.3).
//!
//! Tracking heap allocations is the expensive part of data-centric
//! measurement: each wrapped `malloc` must capture a full calling
//! context. The paper reports that naive tracking inflates AMG2006 by
//! 150% and describes three mitigations, all modeled here:
//!
//! 1. **Size threshold** — allocations under 4 KB are not tracked (their
//!    frees still are, cheaply, so nothing is misattributed).
//! 2. **Fast context read** — inline assembly instead of `getcontext`
//!    to capture the initial unwind context.
//! 3. **Trampoline** — mark the least-common-ancestor frame of temporally
//!    adjacent allocations so each unwind only walks the changed suffix.
//!
//! The ablation benchmark (`ablation_tracking`) toggles these knobs and
//! regenerates the 150% → <10% overhead reduction.

use dcp_machine::Cycles;
use dcp_runtime::FrameInfo;

/// Which overhead-control strategies are active.
#[derive(Debug, Clone, Copy)]
pub struct TrackingPolicy {
    /// Do not track allocations smaller than this many bytes (paper: 4K).
    pub min_tracked_bytes: u64,
    /// Use the marker/trampoline technique for incremental unwinds.
    pub trampoline: bool,
    /// Read the initial unwind context with inline assembly instead of
    /// libc `getcontext`.
    pub fast_context: bool,
}

impl Default for TrackingPolicy {
    fn default() -> Self {
        Self { min_tracked_bytes: 4096, trampoline: true, fast_context: true }
    }
}

impl TrackingPolicy {
    /// Naive tracking: everything the paper says *not* to do.
    pub fn naive() -> Self {
        Self { min_tracked_bytes: 0, trampoline: false, fast_context: false }
    }
}

/// Simulated costs of the profiler's own machinery, charged to monitored
/// threads through the observer-hook return values.
#[derive(Debug, Clone, Copy)]
pub struct ProfCosts {
    /// Signal delivery + PMU register reads per sample.
    pub sample_base: u32,
    /// Walking one frame during a sample unwind (binary analysis path).
    pub unwind_frame: u32,
    /// Variable-map lookup per sample.
    pub map_lookup: u32,
    /// CCT path insertion per sample.
    pub cct_insert: u32,
    /// Wrapper entry/exit per malloc-family call.
    pub alloc_wrap: u32,
    /// Capturing the initial unwind context via libc `getcontext`.
    pub getcontext_slow: u32,
    /// Capturing it with inline assembly.
    pub getcontext_fast: u32,
    /// Walking one frame during an *allocation* unwind.
    pub alloc_unwind_frame: u32,
    /// Wrapper cost per free (no unwinding; §4.1.3).
    pub free_wrap: u32,
}

impl Default for ProfCosts {
    fn default() -> Self {
        Self {
            sample_base: 600,
            unwind_frame: 70,
            map_lookup: 90,
            cct_insert: 130,
            alloc_wrap: 180,
            getcontext_slow: 900,
            getcontext_fast: 90,
            alloc_unwind_frame: 160,
            free_wrap: 70,
        }
    }
}

/// Trampoline state: the cached unwind of the previous allocation.
#[derive(Debug, Default)]
pub struct UnwindCache {
    /// Frame tokens of the last full unwind, root to leaf.
    tokens: Vec<u64>,
}

/// Result of an allocation-context capture.
#[derive(Debug)]
pub struct CaptureOutcome {
    /// Frames actually walked by the unwinder.
    pub frames_walked: usize,
    /// Overhead cycles to charge the allocating thread.
    pub cost: Cycles,
}

impl UnwindCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Capture the calling context of an allocation given the live stack,
    /// applying the policy's trampoline/fast-context strategies. Returns
    /// the cost and updates the cache.
    pub fn capture(
        &mut self,
        frames: &[FrameInfo],
        policy: &TrackingPolicy,
        costs: &ProfCosts,
    ) -> CaptureOutcome {
        let ctx_cost =
            if policy.fast_context { costs.getcontext_fast } else { costs.getcontext_slow };
        let walked = if policy.trampoline {
            // Walk from the leaf toward the root until we meet a frame
            // whose token matches the cached unwind at the same depth —
            // that frame is below the marker, so the prefix is known.
            let mut common = 0;
            for (i, f) in frames.iter().enumerate() {
                if self.tokens.get(i) == Some(&f.token) {
                    common = i + 1;
                } else {
                    break;
                }
            }
            frames.len() - common
        } else {
            frames.len()
        };
        self.tokens.clear();
        self.tokens.extend(frames.iter().map(|f| f.token));
        CaptureOutcome {
            frames_walked: walked,
            cost: costs.alloc_wrap as Cycles
                + ctx_cost as Cycles
                + walked as Cycles * costs.alloc_unwind_frame as Cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_runtime::{Ip, ProcId};

    fn frames(tokens: &[u64]) -> Vec<FrameInfo> {
        tokens
            .iter()
            .map(|&t| FrameInfo { proc: ProcId(0), call_site: Some(Ip(t)), token: t })
            .collect()
    }

    #[test]
    fn naive_policy_walks_everything() {
        let mut cache = UnwindCache::new();
        let costs = ProfCosts::default();
        let policy = TrackingPolicy::naive();
        let st = frames(&[1, 2, 3, 4, 5]);
        let o1 = cache.capture(&st, &policy, &costs);
        assert_eq!(o1.frames_walked, 5);
        // Same stack again: still walks everything without the trampoline.
        let o2 = cache.capture(&st, &policy, &costs);
        assert_eq!(o2.frames_walked, 5);
        assert!(o2.cost > costs.getcontext_slow as u64);
    }

    #[test]
    fn trampoline_walks_only_suffix() {
        let mut cache = UnwindCache::new();
        let costs = ProfCosts::default();
        let policy = TrackingPolicy::default();
        let o1 = cache.capture(&frames(&[1, 2, 3, 4, 5]), &policy, &costs);
        assert_eq!(o1.frames_walked, 5, "cold cache walks all");
        // Identical stack: nothing to walk.
        let o2 = cache.capture(&frames(&[1, 2, 3, 4, 5]), &policy, &costs);
        assert_eq!(o2.frames_walked, 0);
        // Sibling call at depth 4: walk two frames (changed suffix).
        let o3 = cache.capture(&frames(&[1, 2, 3, 9, 10]), &policy, &costs);
        assert_eq!(o3.frames_walked, 2);
        assert!(o3.cost < o1.cost);
    }

    #[test]
    fn fast_context_is_cheaper() {
        let costs = ProfCosts::default();
        let st = frames(&[1, 2, 3]);
        let slow = UnwindCache::new().capture(
            &st,
            &TrackingPolicy { fast_context: false, ..TrackingPolicy::default() },
            &costs,
        );
        let fast = UnwindCache::new().capture(&st, &TrackingPolicy::default(), &costs);
        assert!(fast.cost + (costs.getcontext_slow - costs.getcontext_fast) as u64 == slow.cost);
    }

    #[test]
    fn token_reuse_does_not_false_match() {
        // Frames popped and re-pushed get fresh tokens, so a same-depth
        // different-frame stack never matches the cache.
        let mut cache = UnwindCache::new();
        let costs = ProfCosts::default();
        let policy = TrackingPolicy::default();
        cache.capture(&frames(&[1, 2, 3]), &policy, &costs);
        let o = cache.capture(&frames(&[1, 7, 8]), &policy, &costs);
        assert_eq!(o.frames_walked, 2);
    }
}
