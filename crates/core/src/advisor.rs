//! Optimization guidance — the paper's §7 future-work item: "enhance
//! HPCToolkit's measurement and analysis to provide guidance for where
//! and how to improve data locality by pinpointing initializations that
//! associate data with a memory module and identifying opportunities to
//! apply transformations such as data distribution, array regrouping,
//! and loop fusion."
//!
//! The advisor reads a finished [`Analysis`] and, for each significant
//! variable, applies the same reasoning the paper's authors applied by
//! hand in §5:
//!
//! * a heap variable drawing a large share of *remote* accesses was
//!   placed on one NUMA domain. If it was `calloc`'d, the zero-fill is
//!   the first toucher — suggest switching to `malloc` (parallel first
//!   touch) or interleaved allocation (the AMG/Streamcluster/NW fixes);
//! * a variable whose samples show a high TLB-miss rate is being walked
//!   with page-crossing strides — suggest loop interchange or array
//!   transposition (the Sweep3D/LULESH `f_elem` fixes);
//! * a variable with high latency but neither signature has poor
//!   temporal locality — suggest blocking/fusion.

use crate::analyze::{Analysis, VarSummary};
use crate::metrics::{Metric, StorageClass};

/// What the advisor thinks should be done about one variable.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Replace the master-thread `calloc` with `malloc` so the parallel
    /// computation first-touches pages near their users, or use an
    /// interleaved allocator.
    FixFirstTouch { zeroed_blocks: u64 },
    /// Allocate with an interleaved policy (libnuma) to spread bandwidth
    /// demand across memory controllers.
    InterleaveAllocation,
    /// Transpose the array (or interchange the loops over it) so the
    /// innermost traversal is unit stride.
    ImproveSpatialLocality { tlb_miss_rate: f64 },
    /// Restructure for reuse (blocking, fusion): latency is high without
    /// a NUMA or stride signature.
    ImproveTemporalLocality,
}

/// One recommendation, tied to a variable and scored by the share of the
/// driving metric it would address.
#[derive(Debug, Clone)]
pub struct Recommendation {
    pub variable: String,
    pub class: StorageClass,
    /// Where the variable comes from (allocation site for heap data).
    pub site: String,
    pub action: Action,
    /// Share (0–100) of the driving metric attributed to this variable.
    pub share_pct: f64,
    /// Human-readable rationale.
    pub rationale: String,
}

/// Tunable thresholds.
#[derive(Debug, Clone, Copy)]
pub struct AdvisorConfig {
    /// Ignore variables below this share of the driving metric.
    pub min_share_pct: f64,
    /// Remote fraction of a variable's samples above which it is a NUMA
    /// problem.
    pub remote_fraction: f64,
    /// TLB-miss fraction of samples above which it is a stride problem.
    pub tlb_fraction: f64,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        Self { min_share_pct: 5.0, remote_fraction: 0.4, tlb_fraction: 0.3 }
    }
}

fn diagnose(v: &VarSummary, cfg: &AdvisorConfig) -> Option<(Action, String)> {
    let samples = v.metrics[Metric::Samples.col()];
    if samples == 0 {
        return None;
    }
    let remote_frac = v.metrics[Metric::Remote.col()] as f64 / samples as f64;
    let tlb_frac = v.metrics[Metric::TlbMiss.col()] as f64 / samples as f64;

    if remote_frac >= cfg.remote_fraction && v.class == StorageClass::Heap {
        if v.alloc_zeroed > 0 {
            return Some((
                Action::FixFirstTouch { zeroed_blocks: v.alloc_zeroed },
                format!(
                    "{:.0}% of its sampled accesses are remote and all {} block(s) were \
                     zero-filled at allocation — the allocating thread first-touched every \
                     page. Replace calloc with malloc + parallel initialization, or use an \
                     interleaved allocator.",
                    remote_frac * 100.0,
                    v.alloc_zeroed
                ),
            ));
        }
        return Some((
            Action::InterleaveAllocation,
            format!(
                "{:.0}% of its sampled accesses are remote; distribute its pages across \
                 memory controllers with an interleaved allocation.",
                remote_frac * 100.0
            ),
        ));
    }
    if remote_frac >= cfg.remote_fraction && v.class == StorageClass::Static {
        return Some((
            Action::InterleaveAllocation,
            format!(
                "{:.0}% of its sampled accesses are remote; statics follow first touch — \
                 initialize it in parallel or distribute it explicitly.",
                remote_frac * 100.0
            ),
        ));
    }
    if tlb_frac >= cfg.tlb_fraction {
        return Some((
            Action::ImproveSpatialLocality { tlb_miss_rate: tlb_frac },
            format!(
                "{:.0}% of its sampled accesses miss the TLB — the traversal strides \
                 across pages. Interchange the loops or transpose the array so the inner \
                 loop is unit stride.",
                tlb_frac * 100.0
            ),
        ));
    }
    Some((
        Action::ImproveTemporalLocality,
        "high latency without a NUMA or stride signature; consider blocking or loop \
         fusion to increase reuse."
            .to_string(),
    ))
}

/// Produce recommendations for the variables dominating `metric`,
/// strongest first.
pub fn advise(analysis: &Analysis<'_>, metric: Metric, cfg: &AdvisorConfig) -> Vec<Recommendation> {
    let grand = analysis.grand_total(metric).max(1);
    let mut out = Vec::new();
    for v in analysis.variables(metric) {
        let share = 100.0 * v.metrics[metric.col()] as f64 / grand as f64;
        if share < cfg.min_share_pct {
            continue;
        }
        if let Some((action, rationale)) = diagnose(&v, cfg) {
            out.push(Recommendation {
                variable: v.name.clone(),
                class: v.class,
                site: v.alloc_site.clone(),
                action,
                share_pct: share,
                rationale,
            });
        }
    }
    out
}

/// Render recommendations as a report.
pub fn render(recs: &[Recommendation]) -> String {
    let mut out = String::from("OPTIMIZATION GUIDANCE\n");
    if recs.is_empty() {
        out.push_str("  no variable exceeds the significance threshold\n");
        return out;
    }
    for r in recs {
        out.push_str(&format!(
            "- {} ({}{}) — {:.1}% of the metric\n    {}\n",
            r.variable,
            r.class.name(),
            if r.site.is_empty() { String::new() } else { format!(", allocated at {}", r.site) },
            r.share_pct,
            r.rationale
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::WIDTH;

    fn var(name: &str, class: StorageClass, samples: u64, remote: u64, tlb: u64, zeroed: u64) -> VarSummary {
        let mut metrics = [0u64; WIDTH];
        metrics[Metric::Samples.col()] = samples;
        metrics[Metric::Remote.col()] = remote;
        metrics[Metric::TlbMiss.col()] = tlb;
        metrics[Metric::Latency.col()] = samples * 100;
        VarSummary {
            name: name.into(),
            class,
            node: dcp_cct::NodeId(1),
            metrics,
            alloc_count: 1,
            alloc_bytes: 1 << 20,
            alloc_zeroed: zeroed,
            alloc_site: "main:1".into(),
            caller_site: String::new(),
        }
    }

    #[test]
    fn calloc_numa_problem_suggests_first_touch_fix() {
        let v = var("block", StorageClass::Heap, 1000, 900, 50, 1);
        let (action, why) = diagnose(&v, &AdvisorConfig::default()).unwrap();
        assert_eq!(action, Action::FixFirstTouch { zeroed_blocks: 1 });
        assert!(why.contains("zero-filled"));
    }

    #[test]
    fn malloc_numa_problem_suggests_interleave() {
        let v = var("grid", StorageClass::Heap, 1000, 700, 10, 0);
        let (action, _) = diagnose(&v, &AdvisorConfig::default()).unwrap();
        assert_eq!(action, Action::InterleaveAllocation);
    }

    #[test]
    fn tlb_thrash_suggests_transposition() {
        let v = var("Flux", StorageClass::Heap, 1000, 100, 800, 0);
        let (action, why) = diagnose(&v, &AdvisorConfig::default()).unwrap();
        assert!(matches!(action, Action::ImproveSpatialLocality { tlb_miss_rate } if tlb_miss_rate > 0.7));
        assert!(why.contains("transpose") || why.contains("Interchange"));
    }

    #[test]
    fn plain_latency_suggests_temporal_fix() {
        let v = var("table", StorageClass::Heap, 1000, 10, 10, 0);
        let (action, _) = diagnose(&v, &AdvisorConfig::default()).unwrap();
        assert_eq!(action, Action::ImproveTemporalLocality);
    }

    #[test]
    fn render_is_readable() {
        let v = var("block", StorageClass::Heap, 1000, 900, 0, 1);
        let (action, rationale) = diagnose(&v, &AdvisorConfig::default()).unwrap();
        let recs = vec![Recommendation {
            variable: "block".into(),
            class: StorageClass::Heap,
            site: "main:80".into(),
            action,
            share_pct: 92.6,
            rationale,
        }];
        let text = render(&recs);
        assert!(text.contains("block"));
        assert!(text.contains("92.6%"));
        assert!(text.contains("main:80"));
    }
}
