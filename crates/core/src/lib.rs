//! # dcp-core — the data-centric profiler
//!
//! The primary contribution of *"A Data-centric Profiler for Parallel
//! Programs"* (Liu & Mellor-Crummey, SC'13), reimplemented against the
//! `dcp-machine`/`dcp-runtime` substrate:
//!
//! * [`profiler`] — the online call-path profiler: PMU sample handling
//!   with skid correction, per-thread CCTs split by storage class, and
//!   heap-allocation-path attribution (§4.1).
//! * [`datacentric`] — variable tracking: static symbol maps across load
//!   modules, the live-heap interval map, and the §4.1.3 overhead-control
//!   strategies (4 KB threshold, fast context, trampoline unwinding).
//! * [`analyze`] — the post-mortem analyzer: scalable profile merging and
//!   symbol resolution (§4.2).
//! * [`view`] — the presentation views: top-down, bottom-up, variable
//!   ranking (the paper's GUI panes, as text).
//! * [`session`] — `hpcrun`-style entry points: run a program bare or
//!   profiled and measure time/space overhead.
//!
//! ## Quick start
//!
//! ```
//! use dcp_core::prelude::*;
//! use dcp_machine::{MachineConfig, PmuConfig};
//! use dcp_runtime::{ProgramBuilder, SimConfig, WorldConfig};
//! use dcp_runtime::ir::ex::*;
//!
//! // A program whose master thread callocs an array that every thread
//! // then reads: the classic NUMA pathology.
//! let mut b = ProgramBuilder::new("demo");
//! let region = b.outlined("work", 1, |p| {
//!     let buf = p.param(0);
//!     p.omp_for(c(0), c(4096), |p, i| p.load(l(buf), mul(l(i), c(8)), 8));
//! });
//! let main = b.proc("main", 0, |p| {
//!     let buf = p.calloc(c(8 * 8 * 4096), "data");
//!     p.parallel(region, vec![l(buf)]);
//! });
//! let prog = b.build(main);
//!
//! let mut sim = SimConfig::new(MachineConfig::tiny_test());
//! sim.omp_threads = 4;
//! sim.pmu = Some(PmuConfig::Ibs { period: 128, skid: 2 });
//! let world = WorldConfig::single_node(sim, 1);
//!
//! let run = run_profiled(&prog, &world, ProfilerConfig::default());
//! let analysis = run.analyze(&prog);
//! let vars = analysis.variables(Metric::Latency);
//! assert_eq!(vars[0].name, "data");
//! ```

pub mod advisor;
pub mod analyze;
pub mod datacentric;
pub mod metrics;
pub mod profiler;
pub mod session;
pub mod stored;
pub mod tracer;
pub mod view;

pub use advisor::{advise, Action, AdvisorConfig, Recommendation};
pub use analyze::{
    compare_report, encode_measurement, profile_names, resolve_frame_name, Analysis,
    EncodedMeasurement, ProfileView, SymbolSource, VarSummary,
};
pub use stored::{
    bundle_from_measurement, decode_bundle, encode_bundle, StoredAccumulator, StoredBundle,
    StoredProfiles,
};
pub use metrics::{Metric, StorageClass, NAMES as METRIC_NAMES, WIDTH as METRIC_WIDTH};
pub use profiler::{MeasurementData, ProfStats, Profiler, ProfilerConfig};
pub use session::{measure_overhead, run_baseline, run_profiled, Overhead, ProfiledRun};
pub use tracer::TraceCollector;

/// Common imports for examples and benches.
pub mod prelude {
    pub use crate::analyze::{compare_report, Analysis, ProfileView, SymbolSource, VarSummary};
    pub use crate::stored::{StoredAccumulator, StoredProfiles};
    pub use crate::datacentric::{ProfCosts, TrackingPolicy};
    pub use crate::metrics::{Metric, StorageClass};
    pub use crate::profiler::{Profiler, ProfilerConfig};
    pub use crate::session::{measure_overhead, run_baseline, run_profiled, Overhead};
    pub use crate::advisor::{advise, render as render_advice, Action, AdvisorConfig};
    pub use crate::view::{bottom_up, flat, ranking, storage_breakdown, top_down, TopDownOpts};
}
