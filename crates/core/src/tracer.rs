//! A MemProf-style *tracing* collector — the design the paper argues
//! against (§6.2: "MemProf records a trace of each IBS sample and
//! variable allocation rather than collapsing it on-the-fly into a
//! compact profile. The resulting high data volume makes this
//! problematic to scale").
//!
//! [`TraceCollector`] implements the same observer surface as
//! [`crate::Profiler`] but appends one fixed-size record per sample and
//! per allocation event, exactly as a trace-based tool would. It exists
//! so the profile-vs-trace space comparison in Table 1 and the
//! scalability tests measure a real alternative, not an estimate.

use dcp_support::bytes::BytesMut;
use dcp_machine::{Cycles, Sample};
use dcp_runtime::observer::{AllocEvent, FreeEvent, ModuleEvent, NodeObserver, ThreadView};

/// One trace record kind (for decoding/inspection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceRecord {
    Sample = 1,
    Alloc = 2,
    Free = 3,
}

/// Appends fixed-size binary records for every observed event.
#[derive(Debug, Default)]
pub struct TraceCollector {
    buf: BytesMut,
    samples: u64,
    allocs: u64,
    frees: u64,
}

impl TraceCollector {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes accumulated so far.
    pub fn trace_bytes(&self) -> usize {
        self.buf.len()
    }

    /// (samples, allocs, frees) recorded.
    pub fn counts(&self) -> (u64, u64, u64) {
        (self.samples, self.allocs, self.frees)
    }

    fn put_header(&mut self, kind: TraceRecord, view: &ThreadView<'_>) {
        self.buf.put_u8(kind as u8);
        self.buf.put_u32(view.rank);
        self.buf.put_u32(view.thread);
        self.buf.put_u64(view.clock);
    }
}

impl NodeObserver for TraceCollector {
    fn on_sample(&mut self, sample: &Sample, view: &ThreadView<'_>) -> Cycles {
        self.put_header(TraceRecord::Sample, view);
        self.buf.put_u64(sample.precise_ip);
        self.buf.put_u64(sample.ea.unwrap_or(0));
        self.buf.put_u32(sample.latency);
        self.buf.put_u8(sample.source.map_or(0xff, |s| s as u8));
        self.samples += 1;
        // A trace append is cheap per event — the cost is volume, not
        // time; charge a nominal record cost.
        120
    }

    fn on_alloc(&mut self, ev: &AllocEvent, view: &ThreadView<'_>) -> Cycles {
        self.put_header(TraceRecord::Alloc, view);
        self.buf.put_u64(ev.addr);
        self.buf.put_u64(ev.bytes);
        self.buf.put_u64(ev.ip.0);
        // Trace tools also record the full call path per allocation.
        self.buf.put_u16(view.frames.len() as u16);
        for f in view.frames {
            self.buf.put_u64(f.call_site.map_or(0, |ip| ip.0));
        }
        self.allocs += 1;
        200
    }

    fn on_free(&mut self, ev: &FreeEvent, view: &ThreadView<'_>) -> Cycles {
        self.put_header(TraceRecord::Free, view);
        self.buf.put_u64(ev.addr);
        self.frees += 1;
        80
    }

    fn on_module(&mut self, _ev: &ModuleEvent<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_machine::{CoreId, DataSource};
    use dcp_machine::pmu::SampleOrigin;
    use dcp_runtime::{FrameInfo, Ip, ProcId};

    fn view<'a>(frames: &'a [FrameInfo]) -> ThreadView<'a> {
        ThreadView { rank: 0, thread: 0, core: CoreId(0), clock: 5, frames, leaf_ip: Ip(0) }
    }

    #[test]
    fn trace_grows_linearly_with_samples() {
        let mut t = TraceCollector::new();
        let frames =
            [FrameInfo { proc: ProcId(0), call_site: None, token: 0 }];
        let s = Sample {
            origin: SampleOrigin::Ibs,
            precise_ip: 1,
            signal_ip: 1,
            ea: Some(2),
            latency: 3,
            source: Some(DataSource::L1),
            tlb_miss: false,
            is_store: false,
            core: CoreId(0),
        };
        let v = view(&frames);
        t.on_sample(&s, &v);
        let one = t.trace_bytes();
        for _ in 0..99 {
            t.on_sample(&s, &v);
        }
        assert_eq!(t.trace_bytes(), one * 100, "fixed-size records");
        assert_eq!(t.counts().0, 100);
    }

    #[test]
    fn alloc_records_carry_the_call_path() {
        let mut t = TraceCollector::new();
        let deep: Vec<FrameInfo> = (0..20)
            .map(|i| FrameInfo { proc: ProcId(i), call_site: Some(Ip(i as u64)), token: i as u64 })
            .collect();
        let shallow = &deep[..2];
        let ev = AllocEvent { addr: 1, bytes: 2, zeroed: false, ip: Ip(9) };
        t.on_alloc(&ev, &view(shallow));
        let small = t.trace_bytes();
        t.on_alloc(&ev, &view(&deep));
        assert!(t.trace_bytes() - small > small, "deep paths cost more per record");
    }
}
