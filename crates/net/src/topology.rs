//! Pluggable topologies: who is wired to whom, and how a message routes.
//!
//! A topology is compiled down to a flat table of *directed links*; every
//! link is one switch output port (or a host NIC) with its own queue in
//! the network core. Routing is a pure function of `(src, dst)`, so the
//! same flow always takes the same path — a requirement for determinism.

/// Directed link id — index into the network's port table.
pub type LinkId = usize;

/// What a link connects, for human-readable stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    Node(u32),
    /// The single switch of [`TopologySpec::OneBigSwitch`].
    Switch,
    Leaf(u32),
    Spine(u32),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Node(i) => write!(f, "node{i}"),
            Endpoint::Switch => write!(f, "switch"),
            Endpoint::Leaf(i) => write!(f, "leaf{i}"),
            Endpoint::Spine(i) => write!(f, "spine{i}"),
        }
    }
}

/// A directed link: `from -> to`.
#[derive(Debug, Clone, Copy)]
pub struct LinkDesc {
    pub from: Endpoint,
    pub to: Endpoint,
}

impl LinkDesc {
    pub fn label(&self) -> String {
        format!("{}->{}", self.from, self.to)
    }
}

/// Topology shape. Node count comes from the world (ranks / ranks_per_node);
/// the spec only fixes the switch arrangement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySpec {
    /// Every node hangs off one non-blocking switch: the classic
    /// first-cut model (contention only at the destination port).
    OneBigSwitch,
    /// Two-level fat-tree: nodes spread round-robin over `leaves` leaf
    /// switches, every leaf wired to every one of `spines` spine
    /// switches. Cross-leaf traffic picks its spine deterministically
    /// from `(src + dst) % spines` — a static hash, so a flow's path is
    /// a pure function of its endpoints.
    FatTree { leaves: u32, spines: u32 },
}

/// A compiled topology: the link table plus routing.
#[derive(Debug, Clone)]
pub struct Topology {
    pub spec: TopologySpec,
    pub nodes: u32,
    links: Vec<LinkDesc>,
    /// `FatTree` link-id layout bases (see `compile`).
    leaf_up_base: usize,
    spine_down_base: usize,
}

impl Topology {
    /// Compile `spec` for `nodes` simulated nodes.
    pub fn compile(spec: TopologySpec, nodes: u32) -> Self {
        assert!(nodes > 0, "topology needs at least one node");
        let mut links = Vec::new();
        let (leaf_up_base, spine_down_base);
        match spec {
            TopologySpec::OneBigSwitch => {
                // [0, n): node i -> switch. [n, 2n): switch -> node i.
                for i in 0..nodes {
                    links.push(LinkDesc { from: Endpoint::Node(i), to: Endpoint::Switch });
                }
                for i in 0..nodes {
                    links.push(LinkDesc { from: Endpoint::Switch, to: Endpoint::Node(i) });
                }
                leaf_up_base = links.len();
                spine_down_base = links.len();
            }
            TopologySpec::FatTree { leaves, spines } => {
                assert!(leaves > 0 && spines > 0, "fat-tree needs leaves and spines");
                // [0, n): node i -> leaf(i). [n, 2n): leaf(i) -> node i.
                for i in 0..nodes {
                    links.push(LinkDesc {
                        from: Endpoint::Node(i),
                        to: Endpoint::Leaf(i % leaves),
                    });
                }
                for i in 0..nodes {
                    links.push(LinkDesc {
                        from: Endpoint::Leaf(i % leaves),
                        to: Endpoint::Node(i),
                    });
                }
                // [2n, 2n + leaves*spines): leaf l -> spine s.
                leaf_up_base = links.len();
                for l in 0..leaves {
                    for s in 0..spines {
                        links.push(LinkDesc { from: Endpoint::Leaf(l), to: Endpoint::Spine(s) });
                    }
                }
                // [.., + spines*leaves): spine s -> leaf l.
                spine_down_base = links.len();
                for s in 0..spines {
                    for l in 0..leaves {
                        links.push(LinkDesc { from: Endpoint::Spine(s), to: Endpoint::Leaf(l) });
                    }
                }
            }
        }
        Self { spec, nodes, links, leaf_up_base, spine_down_base }
    }

    pub fn links(&self) -> &[LinkDesc] {
        &self.links
    }

    /// The ordered list of links a message from `src` to `dst` traverses.
    pub fn route(&self, src: u32, dst: u32) -> Vec<LinkId> {
        assert!(src < self.nodes && dst < self.nodes, "route endpoint out of range");
        assert_ne!(src, dst, "no self-routes");
        let n = self.nodes as usize;
        match self.spec {
            TopologySpec::OneBigSwitch => vec![src as usize, n + dst as usize],
            TopologySpec::FatTree { leaves, spines } => {
                let lsrc = src % leaves;
                let ldst = dst % leaves;
                if lsrc == ldst {
                    return vec![src as usize, n + dst as usize];
                }
                let sp = (src + dst) % spines;
                vec![
                    src as usize,
                    self.leaf_up_base + (lsrc * spines + sp) as usize,
                    self.spine_down_base + (sp * leaves + ldst) as usize,
                    n + dst as usize,
                ]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_support::props;

    /// Walk a route and check the endpoints chain from src to dst.
    fn assert_route_connects(topo: &Topology, src: u32, dst: u32) {
        let route = topo.route(src, dst);
        assert!(!route.is_empty());
        let links = topo.links();
        assert_eq!(links[route[0]].from, Endpoint::Node(src), "route starts at src");
        assert_eq!(
            links[*route.last().unwrap()].to,
            Endpoint::Node(dst),
            "route ends at dst"
        );
        for pair in route.windows(2) {
            assert_eq!(
                links[pair[0]].to,
                links[pair[1]].from,
                "hops must chain: {} then {}",
                links[pair[0]].label(),
                links[pair[1]].label()
            );
        }
    }

    #[test]
    fn one_big_switch_routes_two_hops() {
        let t = Topology::compile(TopologySpec::OneBigSwitch, 4);
        for s in 0..4 {
            for d in 0..4 {
                if s != d {
                    assert_eq!(t.route(s, d).len(), 2);
                    assert_route_connects(&t, s, d);
                }
            }
        }
    }

    props! {
        cases = 128;

        /// Every fat-tree route is a valid chain, 2 hops inside a leaf and
        /// 4 hops across leaves, and is identical on recomputation.
        fn fat_tree_routes_connect(
            nodes in 2u64..33,
            leaves in 1u64..5,
            spines in 1u64..4,
            src in 0u64..33,
            dst in 0u64..33,
        ) {
            let (src, dst) = (src % nodes, dst % nodes);
            if src == dst {
                return;
            }
            let spec = TopologySpec::FatTree { leaves: leaves as u32, spines: spines as u32 };
            let t = Topology::compile(spec, nodes as u32);
            assert_route_connects(&t, src as u32, dst as u32);
            let r = t.route(src as u32, dst as u32);
            let same_leaf = (src % leaves) == (dst % leaves);
            assert_eq!(r.len(), if same_leaf { 2 } else { 4 });
            assert_eq!(r, t.route(src as u32, dst as u32), "routing is pure");
        }
    }
}
