//! The event calendar: a min-heap of events keyed `(time, src_node, seq)`.
//!
//! Every in-flight message owns exactly one pending event at a time, and
//! `(src_node, seq)` identifies the message uniquely (`seq` is a per-source
//! monotonic counter assigned at injection), so keys are unique and the pop
//! order is a *total* order — a pure function of the injected work,
//! independent of host scheduling. That total order is the network half of
//! the PR 4 determinism argument: whatever `DCP_THREADS` is, the world loop
//! drains this calendar sequentially and observes the same history.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated network time, in the same cycle domain as the node clocks.
pub type NetTime = u64;

/// Total-order event key: `(time, src_node, seq)`.
pub type EventKey = (NetTime, u32, u64);

/// A deterministic discrete-event calendar.
///
/// `E` is the event payload; ordering comes solely from the key, so the
/// payload needs no `Ord`.
#[derive(Debug)]
pub struct Calendar<E> {
    heap: BinaryHeap<Reverse<(EventKey, u64)>>,
    /// Payload slab, indexed by the tie-break id stored in the heap entry.
    /// Slots are `None` once popped; the slab is drained lazily.
    slots: Vec<Option<E>>,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self { heap: BinaryHeap::new(), slots: Vec::new() }
    }
}

impl<E> Calendar<E> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `ev` at `key`. Keys are expected to be unique (the slab id
    /// breaks ties deterministically if a caller ever violates that, so
    /// the pop order stays total either way).
    pub fn push(&mut self, key: EventKey, ev: E) {
        let id = self.slots.len() as u64;
        self.slots.push(Some(ev));
        self.heap.push(Reverse((key, id)));
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(EventKey, E)> {
        let Reverse((key, id)) = self.heap.pop()?;
        let ev = self.slots[id as usize].take().expect("event popped twice");
        if self.heap.is_empty() {
            self.slots.clear();
        }
        Some((key, ev))
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_support::prop::vec;
    use dcp_support::props;

    #[test]
    fn pops_in_key_order() {
        let mut c = Calendar::new();
        c.push((10, 1, 0), "b");
        c.push((5, 0, 0), "a");
        c.push((10, 0, 0), "a2");
        c.push((10, 1, 1), "c");
        let order: Vec<_> = std::iter::from_fn(|| c.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "a2", "b", "c"]);
    }

    props! {
        cases = 256;

        /// Differential test against a brute-force reference: pushing a
        /// random batch and draining must yield exactly the sorted batch —
        /// no lost events, no duplicates, nondecreasing keys.
        fn calendar_matches_sorted_reference(
            times in vec(0u64..32, 0..64),
            srcs in vec(0u64..4, 0..64),
        ) {
            let n = times.len().min(srcs.len());
            let mut cal = Calendar::new();
            let mut reference: Vec<(EventKey, usize)> = Vec::new();
            for i in 0..n {
                // Per-source monotonic seq, like Network::inject assigns.
                let seq = reference
                    .iter()
                    .filter(|((_, s, _), _)| *s == srcs[i] as u32)
                    .count() as u64;
                let key = (times[i], srcs[i] as u32, seq);
                cal.push(key, i);
                reference.push((key, i));
            }
            reference.sort();
            let mut drained: Vec<(EventKey, usize)> = Vec::new();
            while let Some((k, e)) = cal.pop() {
                drained.push((k, e));
            }
            assert_eq!(drained.len(), n, "no lost or duplicated events");
            // Keys pop in sorted order and carry the right payloads.
            let keys: Vec<EventKey> = drained.iter().map(|(k, _)| *k).collect();
            let mut sorted_keys = keys.clone();
            sorted_keys.sort();
            assert_eq!(keys, sorted_keys, "pop order must be key order");
            let mut got = drained.clone();
            got.sort();
            assert_eq!(got, reference, "multiset of (key, payload) preserved");
        }

        /// Interleaved push/pop never loses events and never pops a key
        /// smaller than one already popped at the same or earlier time
        /// when pushes only schedule into the future.
        fn calendar_interleaved_is_monotonic(ts in vec(1u64..16, 1..48)) {
            let mut cal = Calendar::new();
            let mut now = 0u64;
            let mut pushed = 0usize;
            let mut popped = 0usize;
            for (i, dt) in ts.iter().enumerate() {
                cal.push((now + dt, (i % 3) as u32, i as u64), i);
                pushed += 1;
                if i % 2 == 1 {
                    if let Some(((t, _, _), _)) = cal.pop() {
                        assert!(t >= now, "time must not run backwards");
                        now = t;
                        popped += 1;
                    }
                }
            }
            while cal.pop().is_some() {
                popped += 1;
            }
            assert_eq!(pushed, popped);
        }
    }
}
