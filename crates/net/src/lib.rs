//! # dcp-net — a deterministic event-driven network between simulated nodes
//!
//! The cluster half of the simulator: N simulated nodes (each running its
//! own epoch-sharded [`dcp-runtime`] scheduler) exchange typed messages
//! over an explicit network model instead of a flat cost constant.
//!
//! The model is store-and-forward at message granularity. A message
//! traverses the ordered list of *directed links* its topology route
//! names; every link is one switch output port (or host NIC) with
//!
//! * a serialization rate (`bytes_per_cycle`),
//! * a propagation delay (`link_latency`, plus `switch_latency` per
//!   forwarding decision),
//! * and a finite output buffer (`port_buffer` bytes) governed by a
//!   [`BufferPolicy`]: **backpressure** (arrival stalls until the queue
//!   drains — the default, and the only policy the runtime path uses,
//!   since a dropped barrier-critical message would deadlock the world)
//!   or **drop** (tail-drop plus retransmit-from-source after a timeout,
//!   with drops counted — the standalone model for lossy fabrics).
//!
//! Everything advances through a single event [`Calendar`] keyed
//! `(time, src_node, seq)` — a total order that is a pure function of the
//! injected flows, so the simulation is bit-identical however the host
//! schedules the node shards (the `DCP_THREADS` invariance argument of
//! DESIGN.md, extended across nodes).

mod calendar;
mod topology;

pub use calendar::{Calendar, EventKey, NetTime};
pub use topology::{Endpoint, LinkDesc, LinkId, Topology, TopologySpec};

use std::collections::VecDeque;

/// What a full output buffer does to an arriving message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferPolicy {
    /// Arrival waits (lossless fabric / credit flow control): the message
    /// is admitted at the earliest time the queue has room, computed from
    /// the port's departure schedule — deterministic, no retries.
    Backpressure,
    /// Tail-drop; the source retransmits the whole message
    /// `retransmit_after` cycles after the drop. Drops are counted
    /// per-port.
    Drop { retransmit_after: NetTime },
}

/// Network configuration: topology shape plus per-link parameters.
#[derive(Debug, Clone)]
pub struct NetConfig {
    pub topology: TopologySpec,
    /// Link serialization rate (bytes per cycle, >= 1).
    pub bytes_per_cycle: u64,
    /// Propagation delay per link (cycles, >= 1 so time always advances).
    pub link_latency: NetTime,
    /// Forwarding decision cost per intermediate switch hop.
    pub switch_latency: NetTime,
    /// Output-port buffer in bytes.
    pub port_buffer: u64,
    pub policy: BufferPolicy,
}

impl NetConfig {
    /// A small lossless fabric with round numbers: 4 B/cycle links
    /// (~12 GB/s at the nominal 3 GHz), 500-cycle propagation, 64 KiB
    /// port buffers.
    pub fn lossless(topology: TopologySpec) -> Self {
        Self {
            topology,
            bytes_per_cycle: 4,
            link_latency: 500,
            switch_latency: 50,
            port_buffer: 64 << 10,
            policy: BufferPolicy::Backpressure,
        }
    }

    /// One-big-switch lossless fabric (the degenerate single-switch model).
    pub fn one_big_switch() -> Self {
        Self::lossless(TopologySpec::OneBigSwitch)
    }
}

/// A flow to inject: one message from `src` node to `dst` node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    pub src: u32,
    pub dst: u32,
    pub bytes: u64,
}

/// Handle returned by [`Network::inject`]; completions are reported
/// against it.
pub type MsgId = u64;

/// Per-port counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Bytes serialized onto the link.
    pub bytes: u64,
    /// Messages forwarded.
    pub msgs: u64,
    /// Cycles the port spent serializing (busy time).
    pub busy: u64,
    /// Sum of per-message queueing delay: admission-to-service wait,
    /// including any backpressure stall.
    pub queue_delay_sum: u64,
    pub queue_delay_max: u64,
    /// Arrivals that had to wait for buffer space (backpressure).
    pub stalls: u64,
    /// Messages tail-dropped (drop policy only).
    pub drops: u64,
}

/// Whole-network statistics snapshot.
#[derive(Debug, Clone, Default)]
pub struct NetStats {
    /// `(label, stats)` per directed link, in link-id order.
    pub links: Vec<(String, LinkStats)>,
    /// Flows injected.
    pub flows: u64,
    /// Payload bytes injected (retransmissions not re-counted).
    pub bytes: u64,
    /// Retransmissions scheduled after drops.
    pub retransmits: u64,
    /// Latest completion time seen (the network horizon).
    pub horizon: NetTime,
}

impl NetStats {
    pub fn total_drops(&self) -> u64 {
        self.links.iter().map(|(_, s)| s.drops).sum()
    }

    pub fn max_queue_delay(&self) -> u64 {
        self.links.iter().map(|(_, s)| s.queue_delay_max).max().unwrap_or(0)
    }

    /// Mean utilization over links that carried traffic, against the
    /// horizon (0.0 when nothing ran).
    pub fn mean_utilization(&self) -> f64 {
        if self.horizon == 0 {
            return 0.0;
        }
        let busy: Vec<u64> =
            self.links.iter().filter(|(_, s)| s.msgs > 0).map(|(_, s)| s.busy).collect();
        if busy.is_empty() {
            return 0.0;
        }
        let sum: u64 = busy.iter().sum();
        sum as f64 / (busy.len() as u64 * self.horizon) as f64
    }

    /// The `k` busiest links by serialization time, `(label, stats)`.
    pub fn hottest_links(&self, k: usize) -> Vec<(&str, &LinkStats)> {
        let mut v: Vec<_> = self.links.iter().map(|(l, s)| (l.as_str(), s)).collect();
        v.sort_by(|a, b| b.1.busy.cmp(&a.1.busy).then(a.0.cmp(b.0)));
        v.truncate(k);
        v
    }
}

/// One switch output port (or host NIC): FIFO service at the link rate,
/// with a finite byte buffer.
///
/// Backpressure preserves FIFO *admission* order: once one arrival is
/// waiting for buffer space, every later arrival queues behind it in
/// `waiting` — a smaller message must not overtake a stalled one. The
/// waiting queue is drained by `Retry` calendar events scheduled at the
/// port's next departure time.
#[derive(Debug, Default)]
struct Port {
    /// When the transmitter frees up.
    free_at: NetTime,
    /// Scheduled departures still occupying the buffer: `(depart, bytes)`
    /// in FIFO (and therefore depart-time) order.
    inflight: VecDeque<(NetTime, u64)>,
    /// Sum of `inflight` bytes.
    queued: u64,
    /// Arrivals waiting for buffer space, FIFO:
    /// `(msg index, hop, arrival time)`.
    waiting: VecDeque<(usize, usize, NetTime)>,
    stats: LinkStats,
}

impl Port {
    /// Drop departed entries from the buffer occupancy picture.
    fn drain(&mut self, now: NetTime) {
        while let Some(&(dep, b)) = self.inflight.front() {
            if dep > now {
                break;
            }
            self.queued -= b;
            self.inflight.pop_front();
        }
    }

    /// Does a `bytes`-sized message fit right now? (An oversized message
    /// with an empty queue is let through: it could never fit otherwise.)
    fn fits(&self, bytes: u64, cfg: &NetConfig) -> bool {
        self.queued + bytes <= cfg.port_buffer || self.queued == 0
    }

    /// Begin serializing a message that arrived at `arrival` and was
    /// admitted at `now`; returns its departure time.
    fn admit(&mut self, arrival: NetTime, now: NetTime, bytes: u64, cfg: &NetConfig) -> NetTime {
        let ser = bytes.div_ceil(cfg.bytes_per_cycle.max(1)).max(1);
        let start = self.free_at.max(now);
        let depart = start + ser;
        let qdelay = start - arrival;
        self.free_at = depart;
        self.queued += bytes;
        self.inflight.push_back((depart, bytes));
        self.stats.bytes += bytes;
        self.stats.msgs += 1;
        self.stats.busy += ser;
        self.stats.queue_delay_sum += qdelay;
        self.stats.queue_delay_max = self.stats.queue_delay_max.max(qdelay);
        depart
    }

    /// Earliest pending departure strictly after `now` (the time the next
    /// buffer space frees up).
    fn next_departure(&self, now: NetTime) -> NetTime {
        let dep = self.inflight.front().expect("space must be pending").0;
        debug_assert!(dep > now, "retry must move time forward");
        dep
    }
}

/// An in-flight message.
#[derive(Debug)]
struct Msg {
    id: MsgId,
    src: u32,
    bytes: u64,
    route: Vec<LinkId>,
    /// Per-source monotonic sequence — the calendar tie-break.
    seq: u64,
}

/// Calendar event payloads.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Message `idx` (into `msgs`) arrives at `hop` of its route
    /// (`hop == route.len()` means delivery at the destination).
    Arrive { idx: usize, hop: usize },
    /// Buffer space may have freed on `link`: try to admit the head of
    /// its waiting queue.
    Retry { link: LinkId },
}

/// The network core: compiled topology, per-link ports, and the calendar.
#[derive(Debug)]
pub struct Network {
    cfg: NetConfig,
    topo: Topology,
    ports: Vec<Port>,
    calendar: Calendar<Ev>,
    msgs: Vec<Msg>,
    /// Per-source seq counters.
    next_seq: Vec<u64>,
    next_id: MsgId,
    flows: u64,
    bytes: u64,
    retransmits: u64,
    horizon: NetTime,
    /// Completions since the last [`Network::run`] drain.
    completed: Vec<(MsgId, NetTime)>,
}

impl Network {
    pub fn new(cfg: NetConfig, nodes: u32) -> Self {
        let topo = Topology::compile(cfg.topology, nodes);
        let ports = topo.links().iter().map(|_| Port::default()).collect();
        Self {
            topo,
            ports,
            calendar: Calendar::new(),
            msgs: Vec::new(),
            next_seq: vec![0; nodes as usize],
            next_id: 0,
            flows: 0,
            bytes: 0,
            retransmits: 0,
            horizon: 0,
            completed: Vec::new(),
            cfg,
        }
    }

    pub fn nodes(&self) -> u32 {
        self.topo.nodes
    }

    /// Inject `flow` at absolute time `at`. Returns the message handle;
    /// its completion time comes back from [`Network::run`].
    pub fn inject(&mut self, at: NetTime, flow: Flow) -> MsgId {
        let id = self.next_id;
        self.next_id += 1;
        self.flows += 1;
        self.bytes += flow.bytes;
        let seq = self.next_seq[flow.src as usize];
        self.next_seq[flow.src as usize] += 1;
        let route = self.topo.route(flow.src, flow.dst);
        let idx = self.msgs.len();
        self.msgs.push(Msg { id, src: flow.src, bytes: flow.bytes, route, seq });
        self.calendar.push((at, flow.src, seq), Ev::Arrive { idx, hop: 0 });
        id
    }

    /// After message `idx` departs `hop` at `depart`, schedule its arrival
    /// at the next element of its route.
    fn forward(&mut self, idx: usize, hop: usize, depart: NetTime) {
        let (src, seq, hops) = {
            let m = &self.msgs[idx];
            (m.src, m.seq, m.route.len())
        };
        let last = hop + 1 == hops;
        // Propagation, plus a forwarding decision when the message enters
        // another switch rather than the destination host.
        let t = depart
            + self.cfg.link_latency.max(1)
            + if last { 0 } else { self.cfg.switch_latency };
        self.calendar.push((t, src, seq), Ev::Arrive { idx, hop: hop + 1 });
    }

    /// Admit as much of `link`'s waiting queue as now fits; if arrivals
    /// remain waiting, schedule the next retry at the next departure.
    fn drain_waiting(&mut self, link: LinkId, now: NetTime) {
        loop {
            let port = &mut self.ports[link];
            port.drain(now);
            let Some(&(idx, hop, arrival)) = port.waiting.front() else { return };
            let bytes = self.msgs[idx].bytes;
            if port.fits(bytes, &self.cfg) {
                port.waiting.pop_front();
                let depart = port.admit(arrival, now, bytes, &self.cfg);
                self.forward(idx, hop, depart);
            } else {
                let at = port.next_departure(now);
                let (src, seq) = (self.msgs[idx].src, self.msgs[idx].seq);
                self.calendar.push((at, src, seq), Ev::Retry { link });
                return;
            }
        }
    }

    /// Drain the calendar, returning every `(msg, delivery_time)` that
    /// completed. Deterministic: events fire in `(time, src, seq)` order.
    pub fn run(&mut self) -> Vec<(MsgId, NetTime)> {
        while let Some(((now, src, seq), ev)) = self.calendar.pop() {
            self.horizon = self.horizon.max(now);
            let Ev::Arrive { idx, hop } = ev else {
                let Ev::Retry { link } = ev else { unreachable!() };
                self.drain_waiting(link, now);
                continue;
            };
            let m = &self.msgs[idx];
            debug_assert_eq!((src, seq), (m.src, m.seq));
            if hop == m.route.len() {
                // Delivered at the destination node.
                self.completed.push((m.id, now));
                continue;
            }
            let link = m.route[hop];
            let bytes = m.bytes;
            let port = &mut self.ports[link];
            port.drain(now);
            if port.waiting.is_empty() && port.fits(bytes, &self.cfg) {
                let depart = port.admit(now, now, bytes, &self.cfg);
                self.forward(idx, hop, depart);
            } else {
                match self.cfg.policy {
                    BufferPolicy::Backpressure => {
                        // Queue behind any earlier waiter (FIFO), and arm
                        // the retry if this is the first.
                        port.stats.stalls += 1;
                        port.waiting.push_back((idx, hop, now));
                        if port.waiting.len() == 1 {
                            let at = port.next_departure(now);
                            self.calendar.push((at, src, seq), Ev::Retry { link });
                        }
                    }
                    BufferPolicy::Drop { retransmit_after } => {
                        // Tail-drop; go-back-to-source retransmission of
                        // the whole message.
                        port.stats.drops += 1;
                        self.retransmits += 1;
                        self.calendar.push(
                            (now + retransmit_after.max(1), src, seq),
                            Ev::Arrive { idx, hop: 0 },
                        );
                    }
                }
            }
        }
        self.msgs.clear();
        std::mem::take(&mut self.completed)
    }

    /// Statistics snapshot (labels in link-id order).
    pub fn stats(&self) -> NetStats {
        NetStats {
            links: self
                .topo
                .links()
                .iter()
                .zip(&self.ports)
                .map(|(d, p)| (d.label(), p.stats))
                .collect(),
            flows: self.flows,
            bytes: self.bytes,
            retransmits: self.retransmits,
            horizon: self.horizon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_support::prop::vec;
    use dcp_support::props;

    fn tiny_cfg() -> NetConfig {
        NetConfig {
            topology: TopologySpec::OneBigSwitch,
            bytes_per_cycle: 1,
            link_latency: 10,
            switch_latency: 0,
            port_buffer: 1 << 20,
            policy: BufferPolicy::Backpressure,
        }
    }

    #[test]
    fn single_flow_arithmetic() {
        // 100 bytes at 1 B/cycle over node0 -> switch -> node1:
        // inject at t=0, uplink serializes [0,100), +10 propagation,
        // downlink serializes [110,210), +10 propagation = 220.
        let mut net = Network::new(tiny_cfg(), 2);
        let id = net.inject(0, Flow { src: 0, dst: 1, bytes: 100 });
        let done = net.run();
        assert_eq!(done, vec![(id, 220)]);
    }

    #[test]
    fn incast_queues_at_destination_port() {
        // Two sources send 100 B to node 2 at t=0: uplinks run in
        // parallel, the shared downlink serializes them back to back.
        let mut net = Network::new(tiny_cfg(), 3);
        let a = net.inject(0, Flow { src: 0, dst: 2, bytes: 100 });
        let b = net.inject(0, Flow { src: 1, dst: 2, bytes: 100 });
        let done = net.run();
        let at = |id| done.iter().find(|(i, _)| *i == id).unwrap().1;
        assert_eq!(at(a), 220);
        assert_eq!(at(b), 320, "second message waits out the first's serialization");
        let stats = net.stats();
        let down = &stats.links[3 + 2].1; // switch->node2
        assert_eq!(down.msgs, 2);
        assert_eq!(down.queue_delay_max, 100);
    }

    #[test]
    fn backpressure_stalls_instead_of_dropping() {
        let mut cfg = tiny_cfg();
        cfg.port_buffer = 150; // fits one 100 B message, not two
        let mut net = Network::new(cfg, 3);
        net.inject(0, Flow { src: 0, dst: 2, bytes: 100 });
        net.inject(0, Flow { src: 1, dst: 2, bytes: 100 });
        let done = net.run();
        assert_eq!(done.len(), 2, "lossless: everything delivers");
        let stats = net.stats();
        assert_eq!(stats.total_drops(), 0);
        assert!(stats.links.iter().any(|(_, s)| s.stalls > 0), "the full port stalled");
    }

    #[test]
    fn drop_policy_counts_and_retransmits() {
        let mut cfg = tiny_cfg();
        cfg.port_buffer = 150;
        cfg.policy = BufferPolicy::Drop { retransmit_after: 1_000 };
        let mut net = Network::new(cfg, 3);
        net.inject(0, Flow { src: 0, dst: 2, bytes: 100 });
        net.inject(0, Flow { src: 1, dst: 2, bytes: 100 });
        let done = net.run();
        assert_eq!(done.len(), 2, "retransmission eventually delivers");
        let stats = net.stats();
        assert_eq!(stats.total_drops(), 1);
        assert_eq!(stats.retransmits, 1);
        assert!(done.iter().any(|&(_, t)| t > 1_000), "retransmitted copy lands late");
    }

    #[test]
    fn deterministic_across_runs() {
        let drive = || {
            let mut net = Network::new(
                NetConfig::lossless(TopologySpec::FatTree { leaves: 2, spines: 2 }),
                8,
            );
            for i in 0..32u32 {
                let src = i % 8;
                let dst = (i * 5 + 3) % 8;
                if src != dst {
                    net.inject((i as u64) * 7, Flow { src, dst, bytes: 64 + (i as u64) * 17 });
                }
            }
            let mut done = net.run();
            done.sort();
            (done, format!("{:?}", net.stats()))
        };
        assert_eq!(drive(), drive());
    }

    /// Brute-force reference for ONE port: sequential FIFO service with
    /// explicit buffer accounting, advanced arrival by arrival.
    fn reference_port(arrivals: &[(NetTime, u64)], cfg: &NetConfig) -> Vec<NetTime> {
        let mut departs: Vec<NetTime> = Vec::new(); // per accepted message, FIFO
        let mut out = Vec::new();
        for &(mut t, bytes) in arrivals {
            loop {
                // Occupancy at time t = bytes of messages with depart > t.
                let occ: u64 = departs
                    .iter()
                    .zip(arrivals)
                    .filter(|(d, _)| **d > t)
                    .map(|(_, &(_, b))| b)
                    .sum();
                if occ + bytes <= cfg.port_buffer || occ == 0 {
                    let free = departs.last().copied().unwrap_or(0);
                    let ser = bytes.div_ceil(cfg.bytes_per_cycle.max(1)).max(1);
                    let dep = free.max(t) + ser;
                    departs.push(dep);
                    out.push(dep);
                    break;
                }
                // Backpressure: wait for the next departure.
                t = departs.iter().copied().filter(|d| *d > t).min().expect("occ > 0");
            }
        }
        out
    }

    props! {
        cases = 192;

        /// Differential test: messages all flowing 0 -> 1 traverse two
        /// FIFO ports (uplink, downlink). Chaining the brute-force port
        /// model twice must predict every delivery time exactly, and
        /// deliveries must come out in FIFO (injection) order.
        fn port_matches_reference_model(
            gaps in vec(0u64..40, 1..24),
            sizes in vec(1u64..200, 1..24),
            buffer in 64u64..400,
        ) {
            let n = gaps.len().min(sizes.len());
            let mut cfg = tiny_cfg();
            cfg.port_buffer = buffer;
            cfg.link_latency = 1;
            // Cumulative arrival times (nondecreasing).
            let mut t = 0;
            let mut arrivals = Vec::with_capacity(n);
            for i in 0..n {
                t += gaps[i];
                arrivals.push((t, sizes[i]));
            }
            // Uplink, then downlink (arrivals = departs + propagation,
            // still nondecreasing because FIFO service is monotone).
            let up_departs = reference_port(&arrivals, &cfg);
            let down_arrivals: Vec<(NetTime, u64)> = up_departs
                .iter()
                .zip(&arrivals)
                .map(|(d, &(_, b))| (d + cfg.link_latency, b))
                .collect();
            let down_departs = reference_port(&down_arrivals, &cfg);
            let expect: Vec<NetTime> =
                down_departs.iter().map(|d| d + cfg.link_latency).collect();

            let mut net = Network::new(cfg.clone(), 2);
            let ids: Vec<MsgId> = arrivals
                .iter()
                .map(|&(at, bytes)| net.inject(at, Flow { src: 0, dst: 1, bytes }))
                .collect();
            let done = net.run();
            assert_eq!(done.len(), n, "lossless port loses nothing");
            let stats = net.stats();
            let up = &stats.links[0].1; // node0 -> switch
            assert_eq!(up.msgs as usize, n);
            assert_eq!(up.drops, 0);
            let deliver: Vec<NetTime> = ids
                .iter()
                .map(|id| done.iter().find(|(d, _)| d == id).expect("delivered").1)
                .collect();
            let mut sorted = deliver.clone();
            sorted.sort();
            assert_eq!(deliver, sorted, "FIFO order preserved end to end");
            assert_eq!(deliver, expect, "deliveries must match the brute-force model");
        }

        /// Buffer cap respected: replay the port's own accounting and
        /// check occupancy never exceeds the buffer under backpressure
        /// (oversized single messages excepted by design).
        fn buffer_cap_respected(
            gaps in vec(0u64..10, 1..24),
            sizes in vec(1u64..120, 1..24),
            buffer in 128u64..300,
        ) {
            let n = gaps.len().min(sizes.len());
            let mut cfg = tiny_cfg();
            cfg.port_buffer = buffer;
            let mut net = Network::new(cfg.clone(), 2);
            let mut t = 0;
            let mut arrivals = Vec::new();
            for i in 0..n {
                t += gaps[i];
                net.inject(t, Flow { src: 0, dst: 1, bytes: sizes[i] });
                arrivals.push((t, sizes[i]));
            }
            let done = net.run();
            assert_eq!(done.len(), n);
            // Reconstruct uplink occupancy over time from the reference
            // (proven equal to the port by the differential test above):
            // a message occupies the buffer from its admission (departure
            // minus serialization) until its departure, and at every
            // admit instant the total must fit. Admissions are FIFO, so
            // only earlier messages can already be in the buffer.
            let departs = reference_port(&arrivals, &cfg);
            let admit_of = |i: usize| {
                departs[i] - sizes[i].div_ceil(cfg.bytes_per_cycle.max(1)).max(1)
            };
            for i in 0..n {
                let admit = admit_of(i);
                let occ: u64 = (0..i).filter(|&j| departs[j] > admit).map(|j| sizes[j]).sum();
                assert!(
                    occ + sizes[i] <= buffer || occ == 0,
                    "occupancy {} + {} exceeds buffer {buffer}",
                    occ,
                    sizes[i]
                );
            }
        }
    }
}
