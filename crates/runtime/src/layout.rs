//! Global address-space layout.
//!
//! Every MPI rank owns a disjoint 2^44-byte window of the simulated
//! global virtual address space, so addresses from different processes
//! never alias in the machine's caches (on real hardware this separation
//! is done by physical addresses; a single injective mapping is
//! equivalent for our purposes).

/// Bits of process-local address space.
pub const RANK_SHIFT: u32 = 44;

/// Globalize a process-local address for `rank`.
pub fn global(rank: u32, local: u64) -> u64 {
    debug_assert!(local >> RANK_SHIFT == 0, "local address too large");
    ((rank as u64 + 1) << RANK_SHIFT) | local
}

/// The rank that owns a global address.
pub fn rank_of(global_addr: u64) -> u32 {
    ((global_addr >> RANK_SHIFT) - 1) as u32
}

/// The process-local part of a global address.
pub fn local_of(global_addr: u64) -> u64 {
    global_addr & ((1u64 << RANK_SHIFT) - 1)
}

/// Addresses evaluated from program expressions may be process-local
/// constants (static arrays) or already-global heap pointers; this
/// normalizes either to global form.
pub fn to_global(rank: u32, addr: u64) -> u64 {
    if addr >> RANK_SHIFT == 0 {
        global(rank, addr)
    } else {
        addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let g = global(7, 0xdead_beef);
        assert_eq!(rank_of(g), 7);
        assert_eq!(local_of(g), 0xdead_beef);
    }

    #[test]
    fn ranks_never_alias() {
        assert_ne!(global(0, 0x1000), global(1, 0x1000));
    }

    #[test]
    fn to_global_is_idempotent() {
        let g = global(3, 0x42);
        assert_eq!(to_global(3, g), g);
        assert_eq!(to_global(3, 0x42), g);
    }
}
