//! The node scheduler: epoch-parallel interleaved execution of every
//! software thread hosted on one simulated node.
//!
//! Simulated time is divided into fixed *epoch windows*. Within a window,
//! every runnable thread runs on the shard of its NUMA domain: the shard
//! owns the domain's core-private hardware ([`MachineShard`]) and sees
//! the node-shared state (L3s, DRAM, interconnect, coherence, page
//! tables, allocator) only through a frozen snapshot ([`FrozenNode`]).
//! Anything that must touch shared state is emitted as a timestamped
//! event keyed by `(cycle, thread, seq)`; after every shard finishes, the
//! scheduler sorts the per-shard event buffers and *commits* them
//! sequentially in key order — real L3 lookups, DRAM queueing, page
//! placement, allocation, fork/join and sample delivery all happen there.
//!
//! The shards themselves run via [`dcp_support::pool::par_chunks_mut`],
//! so with `DCP_THREADS=N` they execute on N host workers — and with 0
//! workers the very same code runs sequentially in shard order. Event
//! keys are a pure function of simulated time, so the committed schedule
//! (and therefore every latency, counter, placement and PMU sample) is
//! bit-identical at every `DCP_THREADS` value.
//!
//! Statements that need shared state (allocation, barriers, fork, phase
//! markers, dlopen) *park* their thread: the shard rewinds the cursor and
//! emits a `Park` event; the commit phase executes the statement with the
//! pre-epoch serial interpreter ([`NodeSim::exec_one`]), in event order,
//! and keeps stepping the thread serially while it stays on serialized
//! statements (so alloc-heavy init does not bounce through empty epochs).

use dcp_machine::{
    AccessKind, CoreId, Cycles, DeferredAccess, DomainId, EpochKey, FrozenNode, Machine,
    MachineConfig, MachineShard, MachineStats, PagePolicy, PageTable, Pmu, PmuConfig, Sample,
    SampleOrigin,
};
use dcp_support::{pool, FxHashMap};

use crate::alloc::{HeapAllocator, STACK_BASE, STACK_WINDOW};
use crate::exec::{eval, eval_cmp, Ctrl, EvalCtx, Exit, PhaseRecord, Status, ThreadState};
use crate::ir::{AllocKind, Ip, ProcId, Program, Spanned, Stmt};
use crate::layout;
use crate::observer::{
    AllocEvent, FrameInfo, FreeEvent, ModuleEvent, NodeObserver, ThreadView,
};
pub use crate::exec::CostModel;

/// Configuration of one simulation run (shared by every node).
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub machine: MachineConfig,
    /// PMU programming; `None` disables sampling entirely (baseline runs).
    pub pmu: Option<PmuConfig>,
    /// Base seed for PMU jitter (mixed with rank/thread ids).
    pub pmu_seed: u64,
    pub cost: CostModel,
    /// Default OpenMP team size per rank.
    pub omp_threads: u32,
    /// Scheduler quantum in cycles; the epoch window defaults to a small
    /// multiple of it (see [`SimConfig::window`]).
    pub quantum: Cycles,
    /// Process-wide default NUMA placement policy — what launching the
    /// program under `numactl` sets. `libnuma`-style per-allocation
    /// policies (on `Stmt::Alloc`) override it per range.
    pub default_policy: PagePolicy,
    /// Epoch window in cycles: how much simulated time every shard
    /// advances before the ordered commit. 0 (the default) derives the
    /// window from the quantum. Larger windows amortize commit overhead;
    /// smaller windows tighten the cross-shard coherence/value lag.
    pub epoch_window: Cycles,
}

impl SimConfig {
    /// A config with everything defaulted around the given machine.
    pub fn new(machine: MachineConfig) -> Self {
        Self {
            machine,
            pmu: None,
            pmu_seed: 0x5eed,
            cost: CostModel::default(),
            omp_threads: 1,
            quantum: 400,
            default_policy: PagePolicy::FirstTouch,
            epoch_window: 0,
        }
    }

    /// Effective epoch window: the explicit `epoch_window`, or four
    /// quanta when unset (so configs that shrink the quantum for finer
    /// interleaving get proportionally finer epochs too).
    pub fn window(&self) -> Cycles {
        if self.epoch_window != 0 {
            self.epoch_window
        } else {
            (self.quantum * 4).max(1)
        }
    }
}

/// Why `run_until_quiescent` stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quiescence {
    /// Every thread finished.
    AllDone,
    /// Every still-live rank main is blocked at an MPI barrier.
    MpiBlocked {
        /// Number of rank mains waiting.
        waiting: usize,
        /// Max clock among the waiters (this node's barrier arrival time).
        max_clock: Cycles,
    },
    /// At least one rank main is parked inside an MPI exchange, waiting
    /// for the network (others may simultaneously sit at a barrier; the
    /// world must resolve exchanges before the barrier can complete).
    NetBlocked {
        /// Number of rank mains waiting on exchanges.
        pending: usize,
    },
}

/// A rank main parked in an MPI exchange, waiting for the world loop to
/// move its payload over the network (or the shared-memory fallback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetPending {
    /// Node-local thread slot (pass back to [`NodeSim::net_release`]).
    pub tid: usize,
    /// Global rank issuing the exchange.
    pub rank: u32,
    /// Global rank of the exchange partner.
    pub peer: u32,
    /// Payload bytes this rank sends.
    pub bytes: u64,
    /// Thread clock at the call — the earliest injection time of its flow.
    pub clock: Cycles,
}

/// One process (MPI rank) hosted on this node.
struct ProcessState {
    page_table: PageTable,
    allocator: HeapAllocator,
    /// Backing values for index arrays (written by `store_val`).
    values: FxHashMap<u64, i64>,
    loaded: Vec<bool>,
    phase_stack: Vec<(&'static str, Cycles)>,
}

/// An active OpenMP team.
struct Team {
    master: usize,
    outstanding: u32,
    join_max: Cycles,
    barrier_waiters: Vec<usize>,
    size: u32,
}

enum Action {
    Ran,
    ThreadDone,
    RegionEnd,
    Fork { outlined: ProcId, args: Vec<i64>, n: u32, site: Ip },
    OmpBarrier,
    MpiBarrier,
    MpiExchange { peer: u32, bytes: u64 },
}

/// Scheduler step outcome (internal).
enum StepOut {
    Ran,
    Yield,
}

/// A PMU sample captured shard-side, with everything the commit phase
/// needs to deliver it: the calling-context view is cloned because the
/// thread keeps mutating its own view while the event waits in the
/// buffer. Samples are rare (sampling periods are thousands of ops), so
/// the clone is off the hot path.
struct SampleEv {
    sample: Sample,
    frames: Vec<FrameInfo>,
    leaf: Ip,
    clock: Cycles,
}

/// A shared-state interaction deferred from a shard to the ordered
/// commit.
enum Ev {
    /// A memory access that needs the node-shared hierarchy: the commit
    /// re-resolves the page placement, performs the real L3/DRAM/
    /// interconnect work and folds the latency correction into the
    /// thread's carry.
    Mem {
        tid: u32,
        addr: u64,
        d: DeferredAccess,
        /// What the shard charged optimistically from the snapshot.
        opt_latency: u32,
        /// The PMU tagged its sample on this access, capturing the
        /// optimistic latency/source. The commit parks the actual values
        /// in the thread's fix slot so the sample is corrected when its
        /// skid expires and it is delivered.
        tagged: bool,
    },
    /// Install a line in a domain's L3 (prefetch-resolved accesses).
    Fill { domain: u32, line: u64, version: u32 },
    /// Consume DRAM/interconnect occupancy for launched prefetches.
    Pf { from: DomainId, home: DomainId, now: Cycles, n: u32 },
    /// A delivered sample (the PMU's skid expired at this op). Values are
    /// final except when the thread's fix slot holds a correction for a
    /// sample tagged on a deferred access.
    Sample { tid: u32, s: Box<SampleEv> },
    /// A `store_val` value write, applied to the process value map in
    /// commit order (last writer in simulated time wins).
    Val { rank_local: u32, addr: u64, val: i64 },
    /// The thread stopped at a serialized statement (or finished its
    /// work); the commit folds its carry and runs the serial interpreter.
    Park { tid: u32 },
}

/// An event plus its total-order key.
struct Keyed {
    key: EpochKey,
    ev: Ev,
}

/// Per-shard working set for one epoch: the threads routed to this shard
/// (with their scheduler slot index), the events they emitted, the
/// shard-local value-write overlay and a scratch buffer for call
/// arguments. Kept across epochs so the allocations are reused.
#[derive(Default)]
struct ShardRun<'p> {
    threads: Vec<(usize, ThreadState<'p>)>,
    events: Vec<Keyed>,
    /// `(rank_local, addr)` → value written this epoch by this shard's
    /// threads. Same-shard reads see it immediately; cross-shard reads
    /// see the committed map (at most one epoch stale — the store-buffer
    /// analogy the machine's version overlay also applies).
    vals: FxHashMap<(u32, u64), i64>,
    scratch: Vec<i64>,
}

/// Read-only context shared by every shard during the parallel phase.
struct ShardCtx<'a, 'p> {
    program: &'p Program,
    cfg: &'a SimConfig,
    processes: &'a [ProcessState],
    num_ranks_total: u32,
    mem_div: u32,
    mem_shift: Option<u32>,
    epoch_end: Cycles,
}

/// Fold a signed carry into a clock, saturating at zero (a negative
/// correction larger than the clock cannot occur in practice — the carry
/// is bounded by optimistic-vs-actual latency differences — but the
/// scheduler must not wrap).
fn add_carry(clock: Cycles, carry: i64) -> Cycles {
    if carry >= 0 {
        clock + carry as Cycles
    } else {
        clock.saturating_sub(carry.unsigned_abs())
    }
}

/// Statements the shards cannot execute: they mutate node-shared state
/// (allocator, page-table policies, team/fork bookkeeping, phase records,
/// module tables) and therefore run commit-side, in event order.
fn is_serialized(kind: &Stmt) -> bool {
    matches!(
        kind,
        Stmt::Alloc { .. }
            | Stmt::Free { .. }
            | Stmt::Realloc { .. }
            | Stmt::Brk { .. }
            | Stmt::Parallel { .. }
            | Stmt::OmpBarrier
            | Stmt::MpiBarrier
            | Stmt::MpiExchange { .. }
            | Stmt::PhaseBegin(_)
            | Stmt::PhaseEnd(_)
            | Stmt::DlOpen(_)
            | Stmt::DlClose(_)
    )
}

/// Will the thread's next fetch hit another serialized statement (or the
/// end of its work)? Used by the commit phase to keep stepping a parked
/// thread serially instead of bouncing it through near-empty epochs.
fn next_is_serialized(th: &ThreadState) -> bool {
    match th.ctrl.last() {
        None => true,
        Some(c) => {
            if c.idx < c.stmts.len() {
                is_serialized(&c.stmts[c.idx].kind)
            } else {
                matches!(c.exit, Exit::Region)
            }
        }
    }
}

/// One simulated node: a machine plus the processes and threads pinned to
/// it.
pub struct NodeSim<'p, O: NodeObserver> {
    program: &'p Program,
    cfg: SimConfig,
    machine: Machine,
    processes: Vec<ProcessState>,
    /// Thread slots; `None` only while a thread is checked out to a shard
    /// during the parallel phase of an epoch.
    threads: Vec<Option<ThreadState<'p>>>,
    teams: Vec<Team>,
    observer: O,
    phases: Vec<PhaseRecord>,
    mpi_blocked: Vec<usize>,
    net_blocked: Vec<NetPending>,
    /// Cycles rank mains spent blocked in exchanges (communication wait).
    net_wait: Cycles,
    /// Exchanges issued on this node.
    exchanges: u64,
    pmu_pool: FxHashMap<(usize, u32), Pmu>,
    /// Per-domain epoch working sets, reused across epochs.
    epoch_runs: Vec<ShardRun<'p>>,
    /// Merged event buffer, reused across epochs.
    event_buf: Vec<Keyed>,
    /// Reusable buffer for evaluated call arguments in the commit-side
    /// interpreter.
    arg_scratch: Vec<i64>,
    /// `cost.mem_overlap.max(1)`, precomputed for the per-access latency
    /// division.
    mem_div: u32,
    /// `log2(mem_div)` when it is a power of two (the default is 2):
    /// the hot path then shifts instead of dividing.
    mem_shift: Option<u32>,
    num_ranks_total: u32,
    hw_per_rank: u32,
    live_mains: usize,
}

impl<'p, O: NodeObserver> NodeSim<'p, O> {
    /// Create a node hosting `node_ranks` (global rank ids) of a world
    /// with `num_ranks_total` ranks.
    pub fn new(
        program: &'p Program,
        cfg: SimConfig,
        node_ranks: &[u32],
        num_ranks_total: u32,
        observer: O,
    ) -> Self {
        assert!(!node_ranks.is_empty());
        let machine = Machine::new(cfg.machine.clone());
        let hw = cfg.machine.topology.hw_threads();
        let hw_per_rank = (hw / node_ranks.len() as u32).max(1);
        let mem_div = cfg.cost.mem_overlap.max(1);
        let mem_shift = mem_div.is_power_of_two().then(|| mem_div.trailing_zeros());
        let mut sim = Self {
            program,
            machine,
            processes: Vec::new(),
            threads: Vec::new(),
            teams: Vec::new(),
            observer,
            phases: Vec::new(),
            mpi_blocked: Vec::new(),
            net_blocked: Vec::new(),
            net_wait: 0,
            exchanges: 0,
            pmu_pool: FxHashMap::default(),
            epoch_runs: Vec::new(),
            event_buf: Vec::new(),
            arg_scratch: Vec::new(),
            mem_div,
            mem_shift,
            num_ranks_total,
            hw_per_rank,
            live_mains: node_ranks.len(),
            cfg,
        };
        for (i, &rank) in node_ranks.iter().enumerate() {
            let mut pt = PageTable::new(
                sim.cfg.machine.page_size,
                sim.cfg.machine.topology.domains,
            );
            pt.set_default_policy(sim.cfg.default_policy);
            let mut ps = ProcessState {
                page_table: pt,
                allocator: HeapAllocator::new(),
                values: FxHashMap::default(),
                loaded: vec![false; program.modules.len()],
                phase_stack: Vec::new(),
            };
            for (mid, m) in program.modules.iter().enumerate() {
                if m.load_at_start {
                    ps.loaded[mid] = true;
                    sim.observer.on_module(&ModuleEvent::Loaded {
                        module: crate::ir::ModuleId(mid as u16),
                        def: m,
                        rank,
                    });
                }
            }
            sim.processes.push(ps);
            // Rank main thread.
            let core = sim.pin(i, 0);
            let entry = program.entry;
            let mut th = ThreadState {
                rank,
                rank_local: i,
                thread: 0,
                core,
                domain: sim.cfg.machine.topology.domain_of(core),
                clock: 0,
                status: Status::Runnable,
                frames: Vec::new(),
                locals: Vec::new(),
                view: Vec::new(),
                ctrl: Vec::new(),
                pmu: sim.make_pmu(i, 0),
                team: None,
                team_size: 1,
                ops: 0,
                next_token: 0,
                stack_top: STACK_BASE,
                seq: 0,
                carry: 0,
                fix: None,
            };
            th.push_frame(entry, program.proc(entry).n_locals, &[], None, None);
            th.ctrl.push(Ctrl { stmts: &program.proc(entry).body, idx: 0, exit: Exit::Frame });
            sim.threads.push(Some(th));
        }
        sim
    }

    /// Pin software thread `thread` of local rank `rank_local` to a
    /// hardware thread. Each rank owns a contiguous window of hardware
    /// threads; within the window threads are *spread* across the NUMA
    /// domains the window covers (round-robin by domain, then by slot),
    /// matching `OMP_PROC_BIND=spread`. The master (thread 0) always
    /// lands on the window's first domain — which is why master-thread
    /// first-touch concentrates pages there.
    fn pin(&self, rank_local: usize, thread: u32) -> CoreId {
        let topo = &self.cfg.machine.topology;
        let hw = topo.hw_threads();
        let per_domain = topo.cores_per_domain * topo.smt;
        let window = self.hw_per_rank;
        let base = rank_local as u32 * window;
        let off = if window > per_domain {
            let ndom = window / per_domain;
            let d = thread % ndom;
            let slot = (thread / ndom) % per_domain;
            d * per_domain + slot
        } else {
            thread % window
        };
        CoreId((base + off) % hw)
    }

    fn make_pmu(&mut self, rank_local: usize, thread: u32) -> Option<Pmu> {
        let cfg = self.cfg.pmu?;
        Some(self.pmu_pool.remove(&(rank_local, thread)).unwrap_or_else(|| {
            let seed = self
                .cfg
                .pmu_seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((rank_local as u64) << 20)
                .wrapping_add(thread as u64);
            Pmu::new(cfg, seed)
        }))
    }

    /// Run until every thread is done or blocked on MPI (barrier or
    /// exchange). Exchange blocking wins the summary: the world must move
    /// payloads before any co-blocked barrier can possibly complete.
    pub fn run_until_quiescent(&mut self) -> Quiescence {
        while self.run_epoch() {}
        if !self.net_blocked.is_empty() {
            Quiescence::NetBlocked { pending: self.net_blocked.len() }
        } else if self.mpi_blocked.is_empty() {
            Quiescence::AllDone
        } else {
            let max_clock = self
                .mpi_blocked
                .iter()
                .map(|&t| self.threads[t].as_ref().expect("live thread").clock)
                .max()
                .unwrap_or(0);
            Quiescence::MpiBlocked { waiting: self.mpi_blocked.len(), max_clock }
        }
    }

    /// Release every rank main blocked at the MPI barrier; they resume at
    /// `release_clock` (the global barrier time) plus the barrier cost.
    pub fn mpi_release(&mut self, release_clock: Cycles) {
        let cost = self.cfg.cost.mpi_barrier;
        for tid in std::mem::take(&mut self.mpi_blocked) {
            let th = self.threads[tid].as_mut().expect("live thread");
            th.clock = release_clock + cost;
            th.status = Status::Runnable;
        }
    }

    /// Rank mains currently parked in MPI exchanges (world loop input).
    pub fn net_pending(&self) -> &[NetPending] {
        &self.net_blocked
    }

    /// Release one exchange-parked rank main: its payload (and the
    /// peer's) has arrived at `release_clock`.
    pub fn net_release(&mut self, tid: usize, release_clock: Cycles) {
        let idx = self
            .net_blocked
            .iter()
            .position(|p| p.tid == tid)
            .expect("net_release of a thread that is not exchange-blocked");
        let p = self.net_blocked.swap_remove(idx);
        self.net_wait += release_clock.saturating_sub(p.clock);
        let th = self.threads[tid].as_mut().expect("live thread");
        debug_assert_eq!(th.status, Status::BlockedNet);
        th.clock = th.clock.max(release_clock);
        th.status = Status::Runnable;
    }

    /// Rank mains waiting at the MPI barrier.
    pub fn barrier_waiting(&self) -> usize {
        self.mpi_blocked.len()
    }

    /// This node's barrier arrival time: max clock among its waiters.
    pub fn barrier_arrival(&self) -> Cycles {
        self.mpi_blocked
            .iter()
            .map(|&t| self.threads[t].as_ref().expect("live thread").clock)
            .max()
            .unwrap_or(0)
    }

    /// Cycles rank mains spent blocked in exchanges.
    pub fn net_wait(&self) -> Cycles {
        self.net_wait
    }

    /// Exchanges issued on this node.
    pub fn exchange_count(&self) -> u64 {
        self.exchanges
    }

    /// Largest clock reached by any thread (node wall time).
    pub fn max_clock(&self) -> Cycles {
        self.threads.iter().flatten().map(|t| t.clock).max().unwrap_or(0)
    }

    /// Total retired ops across all threads.
    pub fn total_ops(&self) -> u64 {
        self.threads.iter().flatten().map(|t| t.ops).sum()
    }

    /// Phase records collected so far.
    pub fn phases(&self) -> &[PhaseRecord] {
        &self.phases
    }

    /// The simulated machine (read access for stats).
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Take the observer out after the run.
    pub fn into_observer(self) -> O {
        self.observer
    }

    /// Are any rank mains still alive (not Done)?
    pub fn live_mains(&self) -> usize {
        self.live_mains
    }

    /// Per-rank-local allocation/free counts (diagnostics).
    pub fn alloc_counts(&self, rank_local: usize) -> (u64, u64) {
        self.processes[rank_local].allocator.counts()
    }

    // ---------------------------------------------------------------
    // The epoch loop
    // ---------------------------------------------------------------

    /// Run one epoch: route runnable threads to their domain shards, run
    /// the shards (in parallel when the host pool has workers), then
    /// commit every emitted event in `(cycle, thread, seq)` order.
    /// Returns `false` when no thread was runnable (quiescence).
    fn run_epoch(&mut self) -> bool {
        let window = self.cfg.window();
        let Some(min) = self
            .threads
            .iter()
            .flatten()
            .filter(|t| t.status == Status::Runnable)
            .map(|t| t.clock)
            .min()
        else {
            return false;
        };
        let epoch_end = (min / window + 1) * window;

        let domains = self.cfg.machine.topology.domains as usize;
        if self.epoch_runs.len() != domains {
            self.epoch_runs.resize_with(domains, ShardRun::default);
        }
        for tid in 0..self.threads.len() {
            let eligible = matches!(
                &self.threads[tid],
                Some(th) if th.status == Status::Runnable && th.clock < epoch_end
            );
            if eligible {
                let th = self.threads[tid].take().expect("just matched");
                self.epoch_runs[th.domain.0 as usize].threads.push((tid, th));
            }
        }

        // Parallel phase: one shard per NUMA domain, each advancing its
        // threads against the frozen snapshot. With zero host workers
        // `par_chunks_mut` runs the shards sequentially in shard order —
        // the committed event order is identical either way because every
        // event carries a simulated-time key.
        {
            let Self {
                machine,
                epoch_runs,
                processes,
                program,
                cfg,
                num_ranks_total,
                mem_div,
                mem_shift,
                ..
            } = self;
            let cx = ShardCtx {
                program,
                cfg,
                processes: processes.as_slice(),
                num_ranks_total: *num_ranks_total,
                mem_div: *mem_div,
                mem_shift: *mem_shift,
                epoch_end,
            };
            let (fz, mshards) = machine.split_epoch();
            let mut paired: Vec<(&mut ShardRun<'p>, MachineShard<'_>)> =
                epoch_runs.iter_mut().zip(mshards).collect();
            pool::par_chunks_mut(&mut paired, 1, |_, pair| {
                let (run, shard) = &mut pair[0];
                run_shard(run, shard, &fz, &cx);
            });
            let stats: Vec<MachineStats> =
                paired.iter().map(|(_, sh)| sh.stats.clone()).collect();
            drop(paired);

            for s in &stats {
                machine.merge_stats(s);
            }
        }

        // Reclaim threads and gather events.
        for run in &mut self.epoch_runs {
            for (tid, th) in run.threads.drain(..) {
                self.threads[tid] = Some(th);
            }
            run.vals.clear();
            self.event_buf.append(&mut run.events);
        }
        // Keys are unique — (clock, tid, seq) with a per-thread monotonic
        // seq — so this order is total and host-independent.
        self.event_buf.sort_unstable_by_key(|k| k.key);

        // Commit phase: shared-state interactions happen here, alone, in
        // simulated-time order.
        let events = std::mem::take(&mut self.event_buf);
        self.commit_events(&events);
        self.event_buf = events;
        self.event_buf.clear();
        self.machine.commit_epoch_versions();

        // Fold any carry not consumed by a Park event.
        for th in self.threads.iter_mut().flatten() {
            if th.carry != 0 {
                th.clock = add_carry(th.clock, th.carry);
                th.carry = 0;
            }
        }
        true
    }

    /// Apply one epoch's sorted events to the node-shared state.
    fn commit_events(&mut self, events: &[Keyed]) {
        let mem_div = self.mem_div;
        let mem_shift = self.mem_shift;
        let overlapped = move |latency: u32| -> Cycles {
            match mem_shift {
                Some(s) => (latency >> s) as Cycles,
                None => (latency / mem_div) as Cycles,
            }
        };
        for k in events {
            match &k.ev {
                Ev::Mem { tid, addr, d, opt_latency, tagged } => {
                    let t = *tid as usize;
                    let (rank_local, domain) = {
                        let th = self.threads[t].as_ref().expect("live thread");
                        (th.rank_local, th.domain)
                    };
                    // The shard priced the access against a *predicted*
                    // placement; the authoritative first touch happens
                    // here, in commit order.
                    let mut d = *d;
                    d.home = self.processes[rank_local].page_table.touch(*addr, domain);
                    let (latency, source) = self.machine.commit_access(&d);
                    let extra =
                        overlapped(latency) as i64 - overlapped(*opt_latency) as i64;
                    let th = self.threads[t].as_mut().expect("live thread");
                    th.carry += extra;
                    if *tagged {
                        // The pending sample captured the optimistic
                        // values; patch it when it is delivered.
                        th.fix = Some((latency, source));
                    }
                }
                Ev::Fill { domain, line, version } => {
                    self.machine.commit_l3_fill(*domain, *line, *version);
                }
                Ev::Pf { from, home, now, n } => {
                    self.machine.commit_prefetches(*from, *home, *now, *n);
                }
                Ev::Sample { tid, s } => {
                    let t = *tid as usize;
                    let overhead = self.deliver_sample(t, &s.sample, &s.frames, s.leaf, s.clock);
                    self.threads[t].as_mut().expect("live thread").carry += overhead as i64;
                }
                Ev::Val { rank_local, addr, val } => {
                    self.processes[*rank_local as usize].values.insert(*addr, *val);
                }
                Ev::Park { tid } => {
                    let t = *tid as usize;
                    {
                        let th = self.threads[t].as_mut().expect("live thread");
                        debug_assert_eq!(th.status, Status::Parked);
                        th.clock = add_carry(th.clock, th.carry);
                        th.carry = 0;
                        th.status = Status::Runnable;
                    }
                    // Execute the serialized statement — and keep going
                    // while the thread stays on serialized statements, so
                    // e.g. a run of allocations completes in one commit.
                    loop {
                        if let StepOut::Yield = self.step(t) {
                            break;
                        }
                        let th = self.threads[t].as_ref().expect("live thread");
                        if th.status != Status::Runnable || !next_is_serialized(th) {
                            break;
                        }
                    }
                }
            }
        }
    }

    /// Deliver one commit-side sample through the observer, returning the
    /// handler's overhead. If the thread's fix slot holds a correction
    /// (the sample was tagged on a deferred access), the actual latency
    /// and source replace the optimistic capture; a marked-event sample
    /// whose actual source no longer matches the armed event is dropped —
    /// the serial pipeline would never have tagged it.
    fn deliver_sample(
        &mut self,
        tid: usize,
        s: &Sample,
        frames: &[FrameInfo],
        leaf: Ip,
        clock: Cycles,
    ) -> Cycles {
        let (rank, thread, core, fix) = {
            let th = self.threads[tid].as_mut().expect("live thread");
            (th.rank, th.thread, th.core, th.fix.take())
        };
        let mut s = *s;
        if let Some((latency, source)) = fix {
            s.latency = latency;
            s.source = Some(source);
            if let SampleOrigin::Marked(ev) = s.origin {
                if !ev.matches(source) {
                    return 0;
                }
            }
        }
        let view = ThreadView { rank, thread, core, clock, frames, leaf_ip: leaf };
        self.observer.on_sample(&s, &view)
    }

    // ---------------------------------------------------------------
    // Commit-side stepping (the pre-epoch serial interpreter)
    // ---------------------------------------------------------------

    fn step(&mut self, tid: usize) -> StepOut {
        let action = self.exec_one(tid);
        match action {
            Action::Ran => StepOut::Ran,
            Action::ThreadDone => {
                self.finish_thread(tid);
                StepOut::Yield
            }
            Action::RegionEnd => {
                let team_id =
                    self.threads[tid].as_ref().expect("live thread").team.expect("region end outside team");
                let outstanding = self.teams[team_id].outstanding;
                if outstanding > 0 {
                    self.threads[tid].as_mut().expect("live thread").status = Status::BlockedJoin;
                    StepOut::Yield
                } else {
                    self.complete_join(tid, team_id);
                    StepOut::Ran
                }
            }
            Action::Fork { outlined, args, n, site } => {
                self.fork_region(tid, outlined, &args, n, site);
                StepOut::Ran
            }
            Action::OmpBarrier => self.omp_barrier(tid),
            Action::MpiBarrier => {
                self.threads[tid].as_mut().expect("live thread").status = Status::BlockedMpi;
                self.mpi_blocked.push(tid);
                StepOut::Yield
            }
            Action::MpiExchange { peer, bytes } => {
                let (rank, clock) = {
                    let th = self.threads[tid].as_mut().expect("live thread");
                    th.status = Status::BlockedNet;
                    (th.rank, th.clock)
                };
                self.net_blocked.push(NetPending { tid, rank, peer, bytes, clock });
                self.exchanges += 1;
                StepOut::Yield
            }
        }
    }

    fn finish_thread(&mut self, tid: usize) {
        let (rank, thread, clock, rank_local, team) = {
            let th = self.threads[tid].as_mut().expect("live thread");
            th.status = Status::Done;
            (th.rank, th.thread, th.clock, th.rank_local, th.team)
        };
        self.observer.on_thread_exit(rank, thread, clock);
        // Return the PMU to the pool so a future region's thread with the
        // same id continues the same sampling stream.
        if let Some(pmu) = self.threads[tid].as_mut().expect("live thread").pmu.take() {
            self.pmu_pool.insert((rank_local, thread), pmu);
        }
        if thread == 0 {
            self.live_mains -= 1;
            return;
        }
        // Worker: update its team; possibly wake the joining master.
        let team_id = team.expect("worker without team");
        let t = &mut self.teams[team_id];
        t.outstanding -= 1;
        t.join_max = t.join_max.max(clock);
        if t.outstanding == 0 {
            let master = t.master;
            if self.threads[master].as_ref().expect("live thread").status == Status::BlockedJoin {
                self.complete_join(master, team_id);
                self.threads[master].as_mut().expect("live thread").status = Status::Runnable;
            }
        }
    }

    fn complete_join(&mut self, master: usize, team_id: usize) {
        let join_max = self.teams[team_id].join_max;
        let th = self.threads[master].as_mut().expect("live thread");
        th.clock = th.clock.max(join_max) + self.cfg.cost.join as Cycles;
        th.team = None;
        th.team_size = 1;
    }

    fn fork_region(&mut self, master_tid: usize, outlined: ProcId, args: &[i64], n: u32, site: Ip) {
        let n = n.max(1);
        let team_id = self.teams.len();
        let proc = self.program.proc(outlined);
        // Master enters the region as thread 0 of the team.
        {
            let th = self.threads[master_tid].as_mut().expect("live thread");
            th.clock += self.cfg.cost.fork_master as Cycles;
            th.push_frame(outlined, proc.n_locals, args, Some(site), None);
            th.team = Some(team_id);
            th.team_size = n;
        }
        let (master_view, master_next_token, rank, rank_local, master_clock) = {
            let th = self.threads[master_tid].as_mut().expect("live thread");
            th.ctrl.push(Ctrl { stmts: &proc.body, idx: 0, exit: Exit::Region });
            (th.view.clone(), th.next_token, th.rank, th.rank_local, th.clock)
        };
        for t in 1..n {
            let core = self.pin(rank_local, t);
            let pmu = self.make_pmu(rank_local, t);
            // Workers inherit the master's calling context at the fork
            // point (context stitching), so merged CCTs show worker
            // samples under the parallel region's full path.
            let mut view = master_view.clone();
            view.pop(); // drop the master's own outlined entry; worker pushes its own
            let mut th = ThreadState {
                rank,
                rank_local,
                thread: t,
                core,
                domain: self.cfg.machine.topology.domain_of(core),
                clock: master_clock + self.cfg.cost.fork_worker as Cycles,
                status: Status::Runnable,
                frames: Vec::new(),
                locals: Vec::new(),
                view,
                ctrl: Vec::new(),
                pmu,
                team: Some(team_id),
                team_size: n,
                ops: 0,
                next_token: master_next_token,
                stack_top: STACK_BASE + t as u64 * STACK_WINDOW,
                seq: 0,
                carry: 0,
                fix: None,
            };
            th.push_frame(outlined, proc.n_locals, args, Some(site), None);
            th.ctrl.push(Ctrl { stmts: &proc.body, idx: 0, exit: Exit::Frame });
            self.threads.push(Some(th));
        }
        self.teams.push(Team {
            master: master_tid,
            outstanding: n - 1,
            join_max: 0,
            barrier_waiters: Vec::new(),
            size: n,
        });
    }

    fn omp_barrier(&mut self, tid: usize) -> StepOut {
        let team_id = self.threads[tid]
            .as_ref()
            .expect("live thread")
            .team
            .expect("omp barrier outside a parallel region");
        self.teams[team_id].barrier_waiters.push(tid);
        if (self.teams[team_id].barrier_waiters.len() as u32) < self.teams[team_id].size {
            self.threads[tid].as_mut().expect("live thread").status = Status::BlockedOmpBarrier;
            return StepOut::Yield;
        }
        // Last arriver releases everyone at the max clock.
        let waiters = std::mem::take(&mut self.teams[team_id].barrier_waiters);
        let max_clock = waiters
            .iter()
            .map(|&t| self.threads[t].as_ref().expect("live thread").clock)
            .max()
            .expect("non-empty");
        let release = max_clock + self.cfg.cost.omp_barrier as Cycles;
        for &w in &waiters {
            let th = self.threads[w].as_mut().expect("live thread");
            th.clock = release;
            if w != tid {
                th.status = Status::Runnable;
            }
        }
        StepOut::Ran
    }

    /// Execute one statement (or control-stack bookkeeping) on `tid`.
    /// This is the commit-side serial interpreter: it may touch any
    /// node-shared state directly (allocator, page table, serial machine
    /// pipeline, observer) because commits are strictly sequential.
    #[allow(clippy::too_many_lines)]
    fn exec_one(&mut self, tid: usize) -> Action {
        let mem_div = self.mem_div;
        let mem_shift = self.mem_shift;
        // `latency / mem_overlap`, shifting when the divisor is a power of
        // two (unsigned division and shift agree exactly).
        let overlapped = move |latency: u32| -> Cycles {
            match mem_shift {
                Some(s) => (latency >> s) as Cycles,
                None => (latency / mem_div) as Cycles,
            }
        };
        let Self {
            program,
            cfg,
            machine,
            processes,
            threads,
            observer,
            phases,
            arg_scratch,
            num_ranks_total,
            ..
        } = self;
        let th = threads[tid].as_mut().expect("live thread");
        let proc_table = &program.procs;

        // --- Phase A: advance the cursor to the next statement. ---
        let spanned: &'p Spanned = loop {
            let Some(ctrl) = th.ctrl.last_mut() else {
                // No control left: the thread is finished.
                return Action::ThreadDone;
            };
            if ctrl.idx < ctrl.stmts.len() {
                let s = &ctrl.stmts[ctrl.idx];
                ctrl.idx += 1;
                break s;
            }
            // Block exhausted: apply its exit behaviour.
            match ctrl.exit {
                Exit::Seq => {
                    th.ctrl.pop();
                }
                Exit::Loop { var, end, step } => {
                    let v = th.local(var) + step;
                    th.set_local(var, v);
                    let cont = if step > 0 { v < end } else { v > end };
                    th.clock += cfg.cost.op as Cycles;
                    th.ops += 1;
                    if cont {
                        let c = th.ctrl.last_mut().expect("just checked");
                        c.idx = 0;
                        // Charge the back-edge and poll the PMU.
                        let leaf = Ip::new(
                            proc_table[th.frames.last().unwrap().proc.0 as usize].module,
                            th.frames.last().unwrap().proc,
                            0,
                        );
                        if let Some(pmu) = th.pmu.as_mut() {
                            if let Some(s) = pmu.observe_quiet(1, leaf.0, th.core) {
                                let view = ThreadView {
                                    rank: th.rank,
                                    thread: th.thread,
                                    core: th.core,
                                    clock: th.clock,
                                    frames: &th.view,
                                    leaf_ip: leaf,
                                };
                                th.clock += observer.on_sample(&s, &view);
                            }
                        }
                        return Action::Ran;
                    }
                    th.ctrl.pop();
                }
                Exit::Frame => {
                    th.ctrl.pop();
                    th.clock += cfg.cost.ret as Cycles;
                    if th.pop_frame(None) {
                        return Action::ThreadDone;
                    }
                }
                Exit::Region => {
                    th.ctrl.pop();
                    th.pop_frame(None);
                    return Action::RegionEnd;
                }
            }
        };

        let cur_proc = th.frames.last().expect("no frame").proc;
        let ip = Ip::new(proc_table[cur_proc.0 as usize].module, cur_proc, spanned.uid);
        let process = &mut processes[th.rank_local];
        let ectx = EvalCtx {
            omp_tid: th.thread as i64,
            team_size: th.team_size as i64,
            rank: th.rank as i64,
            num_ranks: *num_ranks_total as i64,
        };

        // Helper: deliver a PMU sample through the observer. A pending
        // fix (the sample was tagged shard-side on a deferred access)
        // replaces the optimistic capture with the committed values, and
        // drops a marked-event sample whose actual source no longer
        // matches the armed event.
        macro_rules! deliver {
            ($sample:expr) => {{
                let mut s: Sample = $sample;
                let mut keep = true;
                if let Some((latency, source)) = th.fix.take() {
                    s.latency = latency;
                    s.source = Some(source);
                    if let SampleOrigin::Marked(ev) = s.origin {
                        keep = ev.matches(source);
                    }
                }
                if keep {
                    let view = ThreadView {
                        rank: th.rank,
                        thread: th.thread,
                        core: th.core,
                        clock: th.clock,
                        frames: &th.view,
                        leaf_ip: ip,
                    };
                    let overhead = observer.on_sample(&s, &view);
                    th.clock += overhead;
                }
            }};
        }
        macro_rules! quiet_ops {
            ($n:expr) => {{
                let n: u64 = $n;
                th.ops += n;
                if let Some(pmu) = th.pmu.as_mut() {
                    if let Some(s) = pmu.observe_quiet(n, ip.0, th.core) {
                        deliver!(s);
                    }
                }
            }};
        }

        // --- Phase B: execute the statement. ---
        match &spanned.kind {
            Stmt::Let(dst, e) => {
                let v = eval(e, th.locals(), &ectx);
                th.set_local(*dst, v);
                th.clock += cfg.cost.op as Cycles;
                quiet_ops!(1);
            }
            Stmt::Compute { ops } => {
                th.clock += *ops as Cycles * cfg.cost.op as Cycles;
                quiet_ops!(*ops as u64);
            }
            Stmt::Load { base, index, elem, dst } => {
                let b = eval(base, th.locals(), &ectx);
                let i = eval(index, th.locals(), &ectx);
                let addr = b + i * *elem as i64;
                assert!(addr >= 0, "negative address");
                let addr = layout::to_global(th.rank, addr as u64);
                let domain = th.domain;
                let home = process.page_table.touch(addr, domain);
                let res = machine.access(th.core, addr, AccessKind::Load, home, ip.0, th.clock);
                th.clock += overlapped(res.latency)
                    + cfg.cost.op as Cycles;
                th.ops += 1;
                if let Some(d) = dst {
                    let v = process.values.get(&addr).copied().unwrap_or(0);
                    th.set_local(*d, v);
                }
                if let Some(pmu) = th.pmu.as_mut() {
                    let op = dcp_machine::pmu::OpRecord {
                        ip: ip.0,
                        core: th.core,
                        mem: Some((&res, addr, false)),
                    };
                    if let Some(s) = pmu.observe_op(op) {
                        deliver!(s);
                    }
                }
            }
            Stmt::Store { base, index, elem, value } => {
                let b = eval(base, th.locals(), &ectx);
                let i = eval(index, th.locals(), &ectx);
                let addr = b + i * *elem as i64;
                assert!(addr >= 0, "negative address");
                let addr = layout::to_global(th.rank, addr as u64);
                if let Some(v) = value {
                    let v = eval(v, th.locals(), &ectx);
                    process.values.insert(addr, v);
                }
                let domain = th.domain;
                let home = process.page_table.touch(addr, domain);
                let res = machine.access(th.core, addr, AccessKind::Store, home, ip.0, th.clock);
                th.clock += overlapped(res.latency)
                    + cfg.cost.op as Cycles;
                th.ops += 1;
                if let Some(pmu) = th.pmu.as_mut() {
                    let op = dcp_machine::pmu::OpRecord {
                        ip: ip.0,
                        core: th.core,
                        mem: Some((&res, addr, true)),
                    };
                    if let Some(s) = pmu.observe_op(op) {
                        deliver!(s);
                    }
                }
            }
            Stmt::For { var, start, end, step, body } => {
                let s = eval(start, th.locals(), &ectx);
                let e = eval(end, th.locals(), &ectx);
                th.clock += cfg.cost.op as Cycles;
                quiet_ops!(1);
                let enter = if *step > 0 { s < e } else { s > e };
                if enter {
                    th.set_local(*var, s);
                    th.ctrl.push(Ctrl {
                        stmts: body,
                        idx: 0,
                        exit: Exit::Loop { var: *var, end: e, step: *step },
                    });
                }
            }
            Stmt::If { a, cmp, b, then_body, else_body } => {
                let av = eval(a, th.locals(), &ectx);
                let bv = eval(b, th.locals(), &ectx);
                th.clock += cfg.cost.op as Cycles;
                quiet_ops!(1);
                let body = if eval_cmp(av, *cmp, bv) { then_body } else { else_body };
                if !body.is_empty() {
                    th.ctrl.push(Ctrl { stmts: body, idx: 0, exit: Exit::Seq });
                }
            }
            Stmt::Call { callee, args, ret } => {
                arg_scratch.clear();
                arg_scratch.extend(args.iter().map(|a| eval(a, th.locals(), &ectx)));
                let callee_proc = &proc_table[callee.0 as usize];
                assert!(
                    arg_scratch.len() == callee_proc.n_params as usize,
                    "arity mismatch calling {}",
                    callee_proc.name
                );
                th.clock += cfg.cost.call as Cycles;
                quiet_ops!(1);
                th.push_frame(*callee, callee_proc.n_locals, arg_scratch, Some(ip), *ret);
                th.ctrl.push(Ctrl { stmts: &callee_proc.body, idx: 0, exit: Exit::Frame });
            }
            Stmt::Ret(v) => {
                let val = v.as_ref().map(|e| eval(e, th.locals(), &ectx));
                th.clock += cfg.cost.ret as Cycles;
                quiet_ops!(1);
                // Unwind control to (and including) the enclosing Frame.
                loop {
                    let c = th.ctrl.pop().expect("Ret outside any frame");
                    match c.exit {
                        Exit::Frame => break,
                        Exit::Region => panic!("Ret out of a parallel region is not allowed"),
                        _ => {}
                    }
                }
                if th.pop_frame(val) {
                    return Action::ThreadDone;
                }
            }
            Stmt::Alloc { dst, bytes, kind, policy } => {
                let bytes = eval(bytes, th.locals(), &ectx);
                assert!(bytes > 0, "non-positive allocation size");
                let local = process.allocator.malloc(bytes as u64);
                let gaddr = layout::global(th.rank, local);
                let class = process.allocator.size_of(local).expect("just allocated");
                if let Some(p) = policy {
                    process.page_table.set_range_policy(gaddr, class, *p);
                }
                th.set_local(*dst, gaddr as i64);
                th.clock += cfg.cost.alloc_base as Cycles;
                quiet_ops!(4);
                {
                    let ev = AllocEvent {
                        addr: gaddr,
                        bytes: bytes as u64,
                        zeroed: *kind == AllocKind::Calloc,
                        ip,
                    };
                    let view = ThreadView {
                        rank: th.rank,
                        thread: th.thread,
                        core: th.core,
                        clock: th.clock,
                        frames: &th.view,
                        leaf_ip: ip,
                    };
                    let overhead = observer.on_alloc(&ev, &view);
                    th.clock += overhead;
                }
                if *kind == AllocKind::Calloc {
                    // Zero-fill: the allocating thread stores to every
                    // line, first-touching every page.
                    let line = cfg.machine.line_size;
                    let lines = (bytes as u64).div_ceil(line);
                    let domain = th.domain;
                    for li in 0..lines {
                        let a = gaddr + li * line;
                        let home = process.page_table.touch(a, domain);
                        let res =
                            machine.access(th.core, a, AccessKind::Store, home, ip.0, th.clock);
                        th.clock += overlapped(res.latency)
                            + cfg.cost.op as Cycles;
                        th.ops += 1;
                        if let Some(pmu) = th.pmu.as_mut() {
                            let op = dcp_machine::pmu::OpRecord {
                                ip: ip.0,
                                core: th.core,
                                mem: Some((&res, a, true)),
                            };
                            if let Some(s) = pmu.observe_op(op) {
                                deliver!(s);
                            }
                        }
                    }
                }
            }
            Stmt::Free { ptr } => {
                let gaddr = eval(ptr, th.locals(), &ectx);
                assert!(gaddr > 0, "free of null/negative pointer");
                let gaddr = gaddr as u64;
                let local = layout::local_of(gaddr);
                let class = process.allocator.free(local);
                process.page_table.clear_range_policy(gaddr);
                th.clock += cfg.cost.free_base as Cycles;
                quiet_ops!(2);
                let ev = FreeEvent { addr: gaddr, bytes: class, ip };
                let view = ThreadView {
                    rank: th.rank,
                    thread: th.thread,
                    core: th.core,
                    clock: th.clock,
                    frames: &th.view,
                    leaf_ip: ip,
                };
                let overhead = observer.on_free(&ev, &view);
                th.clock += overhead;
            }
            Stmt::Salloc { dst, bytes } => {
                let bytes = eval(bytes, th.locals(), &ectx);
                assert!(bytes > 0, "non-positive stack allocation");
                let base = STACK_BASE + th.thread as u64 * STACK_WINDOW;
                let addr = th.stack_top;
                let new_top = (addr + bytes as u64 + 15) & !15;
                assert!(
                    new_top < base + STACK_WINDOW,
                    "stack overflow on thread {} of rank {}",
                    th.thread,
                    th.rank
                );
                th.stack_top = new_top;
                th.set_local(*dst, layout::global(th.rank, addr) as i64);
                th.clock += 2 * cfg.cost.op as Cycles;
                quiet_ops!(2);
            }
            Stmt::Realloc { dst, ptr, bytes } => {
                let gaddr = eval(ptr, th.locals(), &ectx);
                assert!(gaddr > 0, "realloc of null/negative pointer");
                let gaddr = gaddr as u64;
                let new_bytes = eval(bytes, th.locals(), &ectx);
                assert!(new_bytes > 0, "non-positive realloc size");
                let local = layout::local_of(gaddr);
                let (new_local, old_class, _new_class) =
                    process.allocator.realloc(local, new_bytes as u64);
                let new_gaddr = layout::global(th.rank, new_local);
                th.set_local(*dst, new_gaddr as i64);
                th.clock += cfg.cost.alloc_base as Cycles;
                quiet_ops!(4);
                // The profiler sees realloc as free(old) + malloc(new),
                // which is how real wrappers decompose it.
                if new_gaddr != gaddr {
                    {
                        let ev = FreeEvent { addr: gaddr, bytes: old_class, ip };
                        let view = ThreadView {
                            rank: th.rank,
                            thread: th.thread,
                            core: th.core,
                            clock: th.clock,
                            frames: &th.view,
                            leaf_ip: ip,
                        };
                        th.clock += observer.on_free(&ev, &view);
                    }
                    {
                        let ev = AllocEvent {
                            addr: new_gaddr,
                            bytes: new_bytes as u64,
                            zeroed: false,
                            ip,
                        };
                        let view = ThreadView {
                            rank: th.rank,
                            thread: th.thread,
                            core: th.core,
                            clock: th.clock,
                            frames: &th.view,
                            leaf_ip: ip,
                        };
                        th.clock += observer.on_alloc(&ev, &view);
                    }
                    // Copy min(old, new) bytes, line by line: real loads
                    // and stores through the hierarchy.
                    let line = cfg.machine.line_size;
                    let copy = old_class.min(new_bytes as u64);
                    let domain = th.domain;
                    for li in 0..copy.div_ceil(line) {
                        let src = gaddr + li * line;
                        let dst_a = new_gaddr + li * line;
                        let home_s = process.page_table.touch(src, domain);
                        let r1 =
                            machine.access(th.core, src, AccessKind::Load, home_s, ip.0, th.clock);
                        th.clock += overlapped(r1.latency) + 1;
                        let home_d = process.page_table.touch(dst_a, domain);
                        let r2 = machine
                            .access(th.core, dst_a, AccessKind::Store, home_d, ip.0, th.clock);
                        th.clock += overlapped(r2.latency) + 1;
                        th.ops += 2;
                        if let Some(pmu) = th.pmu.as_mut() {
                            let op = dcp_machine::pmu::OpRecord {
                                ip: ip.0,
                                core: th.core,
                                mem: Some((&r2, dst_a, true)),
                            };
                            if let Some(s) = pmu.observe_op(op) {
                                deliver!(s);
                            }
                        }
                    }
                }
            }
            Stmt::Brk { dst, bytes } => {
                let bytes = eval(bytes, th.locals(), &ectx);
                assert!(bytes > 0);
                let local = process.allocator.brk(bytes as u64);
                th.set_local(*dst, layout::global(th.rank, local) as i64);
                th.clock += cfg.cost.brk_base as Cycles;
                quiet_ops!(2);
            }
            Stmt::Parallel { outlined, args, num_threads } => {
                assert!(th.team.is_none(), "nested parallel regions are not supported");
                let n = num_threads
                    .as_ref()
                    .map(|e| eval(e, th.locals(), &ectx) as u32)
                    .unwrap_or(cfg.omp_threads)
                    .max(1);
                let vals: Vec<i64> = args.iter().map(|a| eval(a, th.locals(), &ectx)).collect();
                assert!(
                    vals.len() == proc_table[outlined.0 as usize].n_params as usize,
                    "arity mismatch forking {}",
                    proc_table[outlined.0 as usize].name
                );
                return Action::Fork { outlined: *outlined, args: vals, n, site: ip };
            }
            Stmt::OmpFor { var, start, end, body } => {
                let s = eval(start, th.locals(), &ectx);
                let e = eval(end, th.locals(), &ectx);
                let t = th.thread as i64;
                let n = th.team_size as i64;
                th.clock += 2 * cfg.cost.op as Cycles;
                quiet_ops!(2);
                let total = (e - s).max(0);
                let chunk = (total + n - 1) / n;
                let lo = s + t * chunk;
                let hi = (lo + chunk).min(e);
                if lo < hi {
                    th.set_local(*var, lo);
                    th.ctrl.push(Ctrl {
                        stmts: body,
                        idx: 0,
                        exit: Exit::Loop { var: *var, end: hi, step: 1 },
                    });
                }
            }
            Stmt::OmpBarrier => return Action::OmpBarrier,
            Stmt::MpiBarrier => {
                assert!(th.thread == 0, "MPI barrier must be called by the rank main thread");
                assert!(th.team.is_none(), "MPI barrier inside a parallel region");
                return Action::MpiBarrier;
            }
            Stmt::MpiCost { cycles } => {
                th.clock += cycles;
                quiet_ops!(1);
            }
            Stmt::MpiExchange { peer, bytes } => {
                assert!(th.thread == 0, "MPI exchange must be called by the rank main thread");
                assert!(th.team.is_none(), "MPI exchange inside a parallel region");
                let p = eval(peer, th.locals(), &ectx);
                let b = eval(bytes, th.locals(), &ectx).max(0) as u64;
                assert!(
                    p >= 0 && p < ectx.num_ranks,
                    "exchange peer {p} out of range (world has {} ranks)",
                    ectx.num_ranks
                );
                assert!(p as u32 != th.rank, "rank {} exchanging with itself", th.rank);
                th.clock += 2 * cfg.cost.op as Cycles;
                quiet_ops!(2);
                return Action::MpiExchange { peer: p as u32, bytes: b };
            }
            Stmt::PhaseBegin(name) => {
                process.phase_stack.push((name, th.clock));
            }
            Stmt::PhaseEnd(name) => {
                let (n, begin) = process.phase_stack.pop().expect("PhaseEnd without begin");
                assert_eq!(n, *name, "mismatched phase nesting");
                phases.push(PhaseRecord { rank: th.rank, name, begin, end: th.clock });
            }
            Stmt::DlOpen(m) => {
                let already = std::mem::replace(&mut process.loaded[m.0 as usize], true);
                assert!(!already, "module loaded twice");
                th.clock += cfg.cost.dl as Cycles;
                observer.on_module(&ModuleEvent::Loaded {
                    module: *m,
                    def: &program.modules[m.0 as usize],
                    rank: th.rank,
                });
            }
            Stmt::DlClose(m) => {
                let was = std::mem::replace(&mut process.loaded[m.0 as usize], false);
                assert!(was, "module closed while not loaded");
                th.clock += cfg.cost.dl as Cycles;
                observer.on_module(&ModuleEvent::Unloaded { module: *m, rank: th.rank });
            }
        }
        Action::Ran
    }
}

// -------------------------------------------------------------------
// Shard-side execution (the parallel phase)
// -------------------------------------------------------------------

/// Run every thread routed to this shard for the epoch, in `(clock, tid)`
/// order — the same order the serial scheduler would have picked them up
/// in, so a zero-worker pool reproduces the parallel schedule exactly.
fn run_shard<'p>(
    run: &mut ShardRun<'p>,
    shard: &mut MachineShard<'_>,
    fz: &FrozenNode<'_>,
    cx: &ShardCtx<'_, 'p>,
) {
    let ShardRun { threads, events, vals, scratch } = run;
    threads.sort_unstable_by_key(|(tid, th)| (th.clock, *tid));
    for (tid, th) in threads.iter_mut() {
        run_thread(*tid, th, shard, fz, events, vals, scratch, cx);
    }
}

/// Advance one thread until its clock crosses the epoch end or it parks
/// on a serialized statement. Mirrors [`NodeSim::exec_one`] statement for
/// statement; every shared-state touch becomes a keyed event instead.
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn run_thread<'p>(
    tid: usize,
    th: &mut ThreadState<'p>,
    shard: &mut MachineShard<'_>,
    fz: &FrozenNode<'_>,
    events: &mut Vec<Keyed>,
    vals: &mut FxHashMap<(u32, u64), i64>,
    scratch: &mut Vec<i64>,
    cx: &ShardCtx<'_, 'p>,
) {
    let cfg = cx.cfg;
    let proc_table = &cx.program.procs;
    let process = &cx.processes[th.rank_local];
    let tkey = tid as u32;
    let rl = th.rank_local as u32;
    let mem_div = cx.mem_div;
    let mem_shift = cx.mem_shift;
    let overlapped = move |latency: u32| -> Cycles {
        match mem_shift {
            Some(s) => (latency >> s) as Cycles,
            None => (latency / mem_div) as Cycles,
        }
    };
    let ectx = EvalCtx {
        omp_tid: th.thread as i64,
        team_size: th.team_size as i64,
        rank: th.rank as i64,
        num_ranks: cx.num_ranks_total as i64,
    };

    macro_rules! park {
        () => {{
            th.status = Status::Parked;
            th.seq += 1;
            events.push(Keyed { key: (th.clock, tkey, th.seq), ev: Ev::Park { tid: tkey } });
            return;
        }};
    }

    'run: while th.clock < cx.epoch_end {
        // --- Phase A: advance the cursor to the next statement. ---
        let spanned: &'p Spanned = loop {
            let Some(ctrl) = th.ctrl.last_mut() else {
                // Thread finished: the commit runs the exit bookkeeping.
                park!();
            };
            if ctrl.idx < ctrl.stmts.len() {
                let s = &ctrl.stmts[ctrl.idx];
                ctrl.idx += 1;
                break s;
            }
            match ctrl.exit {
                Exit::Seq => {
                    th.ctrl.pop();
                }
                Exit::Loop { var, end, step } => {
                    let v = th.local(var) + step;
                    th.set_local(var, v);
                    let cont = if step > 0 { v < end } else { v > end };
                    th.clock += cfg.cost.op as Cycles;
                    th.ops += 1;
                    if cont {
                        let c = th.ctrl.last_mut().expect("just checked");
                        c.idx = 0;
                        // Charge the back-edge and poll the PMU.
                        let leaf = Ip::new(
                            proc_table[th.frames.last().unwrap().proc.0 as usize].module,
                            th.frames.last().unwrap().proc,
                            0,
                        );
                        if let Some(pmu) = th.pmu.as_mut() {
                            if let Some(s) = pmu.observe_quiet(1, leaf.0, th.core) {
                                th.seq += 1;
                                events.push(Keyed {
                                    key: (th.clock, tkey, th.seq),
                                    ev: Ev::Sample {
                                        tid: tkey,
                                        s: Box::new(SampleEv {
                                            sample: s,
                                            frames: th.view.clone(),
                                            leaf,
                                            clock: th.clock,
                                        }),
                                    },
                                });
                            }
                        }
                        continue 'run;
                    }
                    th.ctrl.pop();
                }
                Exit::Frame => {
                    th.ctrl.pop();
                    th.clock += cfg.cost.ret as Cycles;
                    if th.pop_frame(None) {
                        park!();
                    }
                }
                // Region exit = team join: commit-side. Leave the control
                // stack untouched; the serial interpreter's Phase A pops
                // it and performs the join.
                Exit::Region => park!(),
            }
        };

        let cur_proc = th.frames.last().expect("no frame").proc;
        let ip = Ip::new(proc_table[cur_proc.0 as usize].module, cur_proc, spanned.uid);

        macro_rules! emit_sample {
            ($s:expr, $leaf:expr) => {{
                th.seq += 1;
                events.push(Keyed {
                    key: (th.clock, tkey, th.seq),
                    ev: Ev::Sample {
                        tid: tkey,
                        s: Box::new(SampleEv {
                            sample: $s,
                            frames: th.view.clone(),
                            leaf: $leaf,
                            clock: th.clock,
                        }),
                    },
                });
            }};
        }
        macro_rules! emit_quiet {
            ($n:expr) => {{
                let n: u64 = $n;
                th.ops += n;
                if let Some(pmu) = th.pmu.as_mut() {
                    if let Some(s) = pmu.observe_quiet(n, ip.0, th.core) {
                        emit_sample!(s, ip);
                    }
                }
            }};
        }
        // One memory access through the shard pipeline. Placement is
        // *predicted* read-only; the authoritative first touch happens at
        // commit, where the Mem event re-resolves the home domain.
        macro_rules! mem_access {
            ($addr:expr, $kind:expr, $is_store:expr) => {{
                let addr: u64 = $addr;
                let home = process.page_table.predict(addr, th.domain);
                let now = th.clock;
                th.seq += 1;
                let akey: EpochKey = (now, tkey, th.seq);
                let out = shard.access(fz, th.core, addr, $kind, home, ip.0, now, akey);
                let res = out.result;
                th.clock += overlapped(res.latency) + cfg.cost.op as Cycles;
                th.ops += 1;
                let mut tagged = false;
                let mut delivered: Option<Sample> = None;
                if let Some(pmu) = th.pmu.as_mut() {
                    let op = dcp_machine::pmu::OpRecord {
                        ip: ip.0,
                        core: th.core,
                        mem: Some((&res, addr, $is_store)),
                    };
                    delivered = pmu.observe_op(op);
                    tagged = pmu.just_tagged();
                }
                if let Some(s) = delivered {
                    // The skid of a sample tagged up to `skid` ops earlier
                    // expired here; values are final (or fixed up at
                    // commit if the tag op's access was deferred).
                    emit_sample!(s, ip);
                }
                if let Some((line, version)) = out.l3_fill {
                    th.seq += 1;
                    events.push(Keyed {
                        key: (now, tkey, th.seq),
                        ev: Ev::Fill { domain: shard.domain, line, version },
                    });
                }
                if out.pf_issued > 0 {
                    th.seq += 1;
                    events.push(Keyed {
                        key: (now, tkey, th.seq),
                        ev: Ev::Pf {
                            from: DomainId(shard.domain),
                            home,
                            now: out.pf_now,
                            n: out.pf_issued as u32,
                        },
                    });
                }
                if let Some(d) = out.deferred {
                    events.push(Keyed {
                        key: akey,
                        ev: Ev::Mem {
                            tid: tkey,
                            addr,
                            d,
                            opt_latency: res.latency,
                            tagged,
                        },
                    });
                }
            }};
        }

        // --- Phase B: execute the statement (shard-safe subset). ---
        match &spanned.kind {
            Stmt::Let(dst, e) => {
                let v = eval(e, th.locals(), &ectx);
                th.set_local(*dst, v);
                th.clock += cfg.cost.op as Cycles;
                emit_quiet!(1);
            }
            Stmt::Compute { ops } => {
                th.clock += *ops as Cycles * cfg.cost.op as Cycles;
                emit_quiet!(*ops as u64);
            }
            Stmt::Load { base, index, elem, dst } => {
                let b = eval(base, th.locals(), &ectx);
                let i = eval(index, th.locals(), &ectx);
                let addr = b + i * *elem as i64;
                assert!(addr >= 0, "negative address");
                let addr = layout::to_global(th.rank, addr as u64);
                mem_access!(addr, AccessKind::Load, false);
                if let Some(d) = dst {
                    // Own-shard writes this epoch win over the committed
                    // map (program order within the shard); cross-shard
                    // writes land at the next commit.
                    let v = vals
                        .get(&(rl, addr))
                        .copied()
                        .or_else(|| process.values.get(&addr).copied())
                        .unwrap_or(0);
                    th.set_local(*d, v);
                }
            }
            Stmt::Store { base, index, elem, value } => {
                let b = eval(base, th.locals(), &ectx);
                let i = eval(index, th.locals(), &ectx);
                let addr = b + i * *elem as i64;
                assert!(addr >= 0, "negative address");
                let addr = layout::to_global(th.rank, addr as u64);
                if let Some(v) = value {
                    let v = eval(v, th.locals(), &ectx);
                    vals.insert((rl, addr), v);
                    th.seq += 1;
                    events.push(Keyed {
                        key: (th.clock, tkey, th.seq),
                        ev: Ev::Val { rank_local: rl, addr, val: v },
                    });
                }
                mem_access!(addr, AccessKind::Store, true);
            }
            Stmt::For { var, start, end, step, body } => {
                let s = eval(start, th.locals(), &ectx);
                let e = eval(end, th.locals(), &ectx);
                th.clock += cfg.cost.op as Cycles;
                emit_quiet!(1);
                let enter = if *step > 0 { s < e } else { s > e };
                if enter {
                    th.set_local(*var, s);
                    th.ctrl.push(Ctrl {
                        stmts: body,
                        idx: 0,
                        exit: Exit::Loop { var: *var, end: e, step: *step },
                    });
                }
            }
            Stmt::If { a, cmp, b, then_body, else_body } => {
                let av = eval(a, th.locals(), &ectx);
                let bv = eval(b, th.locals(), &ectx);
                th.clock += cfg.cost.op as Cycles;
                emit_quiet!(1);
                let body = if eval_cmp(av, *cmp, bv) { then_body } else { else_body };
                if !body.is_empty() {
                    th.ctrl.push(Ctrl { stmts: body, idx: 0, exit: Exit::Seq });
                }
            }
            Stmt::Call { callee, args, ret } => {
                scratch.clear();
                scratch.extend(args.iter().map(|a| eval(a, th.locals(), &ectx)));
                let callee_proc = &proc_table[callee.0 as usize];
                assert!(
                    scratch.len() == callee_proc.n_params as usize,
                    "arity mismatch calling {}",
                    callee_proc.name
                );
                th.clock += cfg.cost.call as Cycles;
                emit_quiet!(1);
                th.push_frame(*callee, callee_proc.n_locals, scratch, Some(ip), *ret);
                th.ctrl.push(Ctrl { stmts: &callee_proc.body, idx: 0, exit: Exit::Frame });
            }
            Stmt::Ret(v) => {
                let val = v.as_ref().map(|e| eval(e, th.locals(), &ectx));
                th.clock += cfg.cost.ret as Cycles;
                emit_quiet!(1);
                loop {
                    let c = th.ctrl.pop().expect("Ret outside any frame");
                    match c.exit {
                        Exit::Frame => break,
                        Exit::Region => panic!("Ret out of a parallel region is not allowed"),
                        _ => {}
                    }
                }
                if th.pop_frame(val) {
                    park!();
                }
            }
            Stmt::Salloc { dst, bytes } => {
                let bytes = eval(bytes, th.locals(), &ectx);
                assert!(bytes > 0, "non-positive stack allocation");
                let base = STACK_BASE + th.thread as u64 * STACK_WINDOW;
                let addr = th.stack_top;
                let new_top = (addr + bytes as u64 + 15) & !15;
                assert!(
                    new_top < base + STACK_WINDOW,
                    "stack overflow on thread {} of rank {}",
                    th.thread,
                    th.rank
                );
                th.stack_top = new_top;
                th.set_local(*dst, layout::global(th.rank, addr) as i64);
                th.clock += 2 * cfg.cost.op as Cycles;
                emit_quiet!(2);
            }
            Stmt::OmpFor { var, start, end, body } => {
                let s = eval(start, th.locals(), &ectx);
                let e = eval(end, th.locals(), &ectx);
                let t = th.thread as i64;
                let n = th.team_size as i64;
                th.clock += 2 * cfg.cost.op as Cycles;
                emit_quiet!(2);
                let total = (e - s).max(0);
                let chunk = (total + n - 1) / n;
                let lo = s + t * chunk;
                let hi = (lo + chunk).min(e);
                if lo < hi {
                    th.set_local(*var, lo);
                    th.ctrl.push(Ctrl {
                        stmts: body,
                        idx: 0,
                        exit: Exit::Loop { var: *var, end: hi, step: 1 },
                    });
                }
            }
            Stmt::MpiCost { cycles } => {
                th.clock += cycles;
                emit_quiet!(1);
            }
            // Everything else needs node-shared state: rewind the cursor
            // and park; the commit executes it serially.
            _ => {
                th.ctrl.last_mut().expect("statement just fetched").idx -= 1;
                park!();
            }
        }
    }
}
