//! The monitoring surface the runtime exposes to a profiler.
//!
//! A real data-centric profiler interposes on a process at four points:
//! PMU sample interrupts, allocator entry/exit (wrapped `malloc`/`free`),
//! load-module events (`dlopen`), and thread lifetime. [`NodeObserver`]
//! is exactly that surface. Crucially, the `on_*` hooks return the number
//! of cycles the hook itself consumed — the runtime adds them to the
//! monitored thread's clock, which is how measurement overhead (Table 1
//! of the paper, and the §4.1.3 allocation-tracking ablation) becomes an
//! observable quantity in simulated time.

use dcp_machine::{CoreId, Cycles, Sample};

use crate::ir::{Ip, ModuleDef, ModuleId, ProcId};

/// One call-stack frame as seen by an unwinder, root to leaf.
#[derive(Debug, Clone, Copy)]
pub struct FrameInfo {
    /// The procedure this frame executes.
    pub proc: ProcId,
    /// The call-site IP in the *parent* frame (`None` for a thread root).
    pub call_site: Option<Ip>,
    /// Unique-per-thread frame token. Two unwinds that observe equal
    /// tokens at the same depth are looking at the *same live frame*,
    /// which is what makes trampoline-style incremental unwinding sound.
    pub token: u64,
}

/// A read-only view of the executing thread at a hook point.
#[derive(Debug)]
pub struct ThreadView<'a> {
    /// MPI rank (global).
    pub rank: u32,
    /// Thread index within the rank (0 = rank main / OpenMP master;
    /// worker `i` of any parallel region is thread `i`).
    pub thread: u32,
    /// Hardware thread the software thread is pinned to.
    pub core: CoreId,
    /// The thread's current clock.
    pub clock: Cycles,
    /// Call stack, root first. Walking it models unwinding; profilers
    /// should charge themselves per frame visited.
    pub frames: &'a [FrameInfo],
    /// IP of the statement being executed (the "signal context" PC).
    pub leaf_ip: Ip,
}

/// A wrapped allocation (`malloc`/`calloc` family).
#[derive(Debug, Clone, Copy)]
pub struct AllocEvent {
    /// Global virtual address of the new block.
    pub addr: u64,
    /// Requested bytes.
    pub bytes: u64,
    /// True for `calloc` (allocating thread zero-fills).
    pub zeroed: bool,
    /// IP of the allocation site.
    pub ip: Ip,
}

/// A wrapped `free`.
#[derive(Debug, Clone, Copy)]
pub struct FreeEvent {
    pub addr: u64,
    /// Class-rounded size of the freed block.
    pub bytes: u64,
    pub ip: Ip,
}

/// Load-module lifecycle, as a profiler sees it via `dl_iterate_phdr` /
/// audit hooks.
#[derive(Debug)]
pub enum ModuleEvent<'a> {
    /// Module mapped into the rank's address space. `static_base` is the
    /// global address of its first byte of static data; symbol addresses
    /// in `def` are process-local and must be rebased by the consumer.
    Loaded { module: ModuleId, def: &'a ModuleDef, rank: u32 },
    /// Module unmapped (`dlclose`).
    Unloaded { module: ModuleId, rank: u32 },
}

/// A profiler (or the null profiler) attached to one node's execution.
///
/// Hook return values are *overhead cycles* charged to the hooked thread.
pub trait NodeObserver: Send {
    /// PMU sample delivered on a thread (the "signal handler").
    fn on_sample(&mut self, sample: &Sample, view: &ThreadView<'_>) -> Cycles {
        let _ = (sample, view);
        0
    }

    /// Wrapped allocation.
    fn on_alloc(&mut self, ev: &AllocEvent, view: &ThreadView<'_>) -> Cycles {
        let _ = (ev, view);
        0
    }

    /// Wrapped free.
    fn on_free(&mut self, ev: &FreeEvent, view: &ThreadView<'_>) -> Cycles {
        let _ = (ev, view);
        0
    }

    /// Load-module event.
    fn on_module(&mut self, ev: &ModuleEvent<'_>) {
        let _ = ev;
    }

    /// A thread finished; `clock` is its final time.
    fn on_thread_exit(&mut self, rank: u32, thread: u32, clock: Cycles) {
        let _ = (rank, thread, clock);
    }
}

/// Monitoring disabled: every hook is a no-op with zero cost. Baseline
/// runs (the "execution time" column of Table 1) use this.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl NodeObserver for NullObserver {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_charges_nothing() {
        let mut o = NullObserver;
        let ev = AllocEvent { addr: 1, bytes: 2, zeroed: false, ip: Ip(0) };
        let view = ThreadView {
            rank: 0,
            thread: 0,
            core: CoreId(0),
            clock: 0,
            frames: &[],
            leaf_ip: Ip(0),
        };
        assert_eq!(o.on_alloc(&ev, &view), 0);
        assert_eq!(o.on_free(&FreeEvent { addr: 1, bytes: 2, ip: Ip(0) }, &view), 0);
    }
}
