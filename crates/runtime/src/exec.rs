//! Interpreter state: thread frames, control stack, expression evaluation
//! and the simulated cost model.
//!
//! One `ThreadState` exists per software thread (MPI rank main threads
//! and OpenMP workers). The control stack is explicit so the node
//! scheduler ([`crate::sched`]) can interleave threads at statement
//! granularity — that temporal interleaving is what makes DRAM-controller
//! queueing (bandwidth contention) meaningful.

use dcp_machine::{CoreId, Cycles, DataSource, DomainId, Pmu};

use crate::ir::{Cmp, Expr, Ip, LocalId, ProcId, Spanned};
use crate::observer::FrameInfo;

/// Cycle costs of non-memory operations. Tuned for plausibility, not for
/// matching any specific microarchitecture; only ratios matter for the
/// reproduction.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// One retired ALU/branch op.
    pub op: u32,
    /// Call overhead (frame setup).
    pub call: u32,
    /// Return overhead.
    pub ret: u32,
    /// Allocator work per `malloc`, excluding any zero-fill.
    pub alloc_base: u32,
    /// Allocator work per `free`.
    pub free_base: u32,
    /// `brk` extension.
    pub brk_base: u32,
    /// Master-side cost of forking a parallel region.
    pub fork_master: u32,
    /// Startup cost charged to each forked worker.
    pub fork_worker: u32,
    /// Join cost at region end.
    pub join: u32,
    /// Team barrier cost (after clock alignment).
    pub omp_barrier: u32,
    /// MPI barrier cost (after global clock alignment).
    pub mpi_barrier: u64,
    /// Per-message software overhead of an MPI exchange (matching,
    /// envelope handling) charged before the payload moves.
    pub mpi_msg: u64,
    /// Intra-node exchange bandwidth in bytes/cycle (shared-memory copy
    /// between co-located ranks; also the no-network fallback rate).
    pub mpi_node_bw: u64,
    /// dlopen/dlclose cost.
    pub dl: u32,
    /// Memory-level-parallelism divisor: an out-of-order core overlaps
    /// outstanding misses, so a thread's clock advances by
    /// `latency / mem_overlap` per access while PMU samples still report
    /// the full latency (as real hardware does). 1 = strict in-order.
    pub mem_overlap: u32,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            op: 1,
            call: 4,
            ret: 2,
            alloc_base: 150,
            free_base: 90,
            brk_base: 60,
            fork_master: 900,
            fork_worker: 400,
            join: 250,
            omp_barrier: 120,
            mpi_barrier: 4000,
            mpi_msg: 600,
            mpi_node_bw: 16,
            dl: 1500,
            mem_overlap: 2,
        }
    }
}

/// Context for evaluating intrinsics.
#[derive(Debug, Clone, Copy)]
pub struct EvalCtx {
    pub omp_tid: i64,
    pub team_size: i64,
    pub rank: i64,
    pub num_ranks: i64,
}

/// Resolve one operand of a binary expression without a recursive call
/// when it is a leaf. Almost every expression the builders emit is
/// `Local op Const` or `Local op Local` (loop indices, address math), so
/// inlining the two leaf shapes here flattens the hot path of [`eval`] to
/// straight-line code; anything deeper falls back to full recursion.
#[inline(always)]
fn operand(e: &Expr, locals: &[i64], ctx: &EvalCtx) -> i64 {
    match e {
        Expr::Const(v) => *v,
        Expr::Local(l) => locals[l.0 as usize],
        _ => eval(e, locals, ctx),
    }
}

/// Evaluate an expression against a frame's locals.
pub fn eval(e: &Expr, locals: &[i64], ctx: &EvalCtx) -> i64 {
    match e {
        Expr::Const(v) => *v,
        Expr::Local(l) => locals[l.0 as usize],
        Expr::Add(a, b) => operand(a, locals, ctx).wrapping_add(operand(b, locals, ctx)),
        Expr::Sub(a, b) => operand(a, locals, ctx).wrapping_sub(operand(b, locals, ctx)),
        Expr::Mul(a, b) => operand(a, locals, ctx).wrapping_mul(operand(b, locals, ctx)),
        Expr::Div(a, b) => {
            let d = operand(b, locals, ctx);
            assert!(d != 0, "division by zero in program expression");
            operand(a, locals, ctx) / d
        }
        Expr::Rem(a, b) => {
            let d = operand(b, locals, ctx);
            assert!(d != 0, "remainder by zero in program expression");
            operand(a, locals, ctx) % d
        }
        Expr::Min(a, b) => operand(a, locals, ctx).min(operand(b, locals, ctx)),
        Expr::Max(a, b) => operand(a, locals, ctx).max(operand(b, locals, ctx)),
        Expr::ThreadId => ctx.omp_tid,
        Expr::NumThreads => ctx.team_size,
        Expr::RankId => ctx.rank,
        Expr::NumRanks => ctx.num_ranks,
    }
}

/// Evaluate a comparison.
pub fn eval_cmp(a: i64, cmp: Cmp, b: i64) -> bool {
    match cmp {
        Cmp::Lt => a < b,
        Cmp::Le => a <= b,
        Cmp::Eq => a == b,
        Cmp::Ne => a != b,
        Cmp::Ge => a >= b,
        Cmp::Gt => a > b,
    }
}

/// How a control block behaves when its statement cursor reaches the end.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Exit {
    /// Plain nested block (If arms): just pop.
    Seq,
    /// Loop body: bump `var` by `step`, re-enter while the bound holds.
    Loop { var: LocalId, end: i64, step: i64 },
    /// Procedure body: pop the call frame too.
    Frame,
    /// Parallel-region body executed by the master: join the team.
    Region,
}

/// One entry of the control stack.
#[derive(Debug)]
pub(crate) struct Ctrl<'p> {
    pub stmts: &'p [Spanned],
    pub idx: usize,
    pub exit: Exit,
}

/// A live procedure frame. Locals live in the owning thread's arena
/// (`ThreadState::locals`), starting at `locals_base`; pushing a frame is
/// a bump of the arena cursor instead of a fresh `Vec` per call.
#[derive(Debug)]
pub(crate) struct FrameRt {
    pub proc: ProcId,
    /// First slot of this frame's locals within the thread's arena.
    pub locals_base: usize,
    /// Caller local receiving this frame's return value.
    pub ret_slot: Option<LocalId>,
    /// Stack pointer to restore when this frame pops (stack allocations
    /// made inside the frame are released wholesale, like real frames).
    pub saved_stack: u64,
}

/// Scheduler-visible thread status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    Runnable,
    /// Master waiting for its team's workers.
    BlockedJoin,
    /// Waiting at a team barrier.
    BlockedOmpBarrier,
    /// Rank main waiting at a global MPI barrier.
    BlockedMpi,
    /// Rank main waiting inside an MPI exchange for the network (or the
    /// peer's matching call).
    BlockedNet,
    /// Stopped at a statement that needs node-shared state (allocator,
    /// page table, fork/join, phases); the epoch commit executes it
    /// serially, in event order, and re-runs the thread next epoch.
    Parked,
    Done,
}

/// Full interpreter state of one software thread.
#[derive(Debug)]
pub(crate) struct ThreadState<'p> {
    /// Global MPI rank.
    pub rank: u32,
    /// Index of the owning process within this node.
    pub rank_local: usize,
    /// Thread index within the rank (OpenMP tid; 0 = master).
    pub thread: u32,
    pub core: CoreId,
    /// NUMA domain of `core`, precomputed at creation (pinning is fixed
    /// for the thread's lifetime) so memory ops skip the topology math.
    pub domain: DomainId,
    pub clock: Cycles,
    pub status: Status,
    pub frames: Vec<FrameRt>,
    /// Locals arena: every live frame's locals, contiguous in call order.
    /// Frame boundaries are the `FrameRt::locals_base` cursors; pushing
    /// and popping frames grows and truncates this one buffer.
    pub locals: Vec<i64>,
    /// Unwinder view parallel to `frames` (plus inherited context below
    /// `base_depth` for workers).
    pub view: Vec<FrameInfo>,
    pub ctrl: Vec<Ctrl<'p>>,
    pub pmu: Option<Pmu>,
    pub team: Option<usize>,
    pub team_size: u32,
    /// Retired ops (for reporting and sanity checks).
    pub ops: u64,
    pub next_token: u64,
    /// Bump cursor within this thread's stack window (process-local).
    pub stack_top: u64,
    /// Monotonic per-thread event sequence number; `(clock, tid, seq)`
    /// totally orders this thread's shared-state events within an epoch.
    pub seq: u64,
    /// Signed clock correction accumulated during an epoch: the committed
    /// (actual) cost of deferred accesses and sample-handler overhead
    /// minus what the shard charged optimistically. Folded into `clock`
    /// at the thread's next commit event or at epoch end.
    pub carry: i64,
    /// Correction for the PMU's pending sample: when the sample was
    /// tagged on a deferred access, the commit stores the actual
    /// `(latency, source)` here, and the next delivered sample for this
    /// thread (necessarily the tagged one — a PMU holds at most one
    /// pending sample) is patched with it before reaching the profiler.
    pub fix: Option<(u32, DataSource)>,
}

impl<'p> ThreadState<'p> {
    /// Push a procedure frame and its view entry.
    pub fn push_frame(
        &mut self,
        proc: ProcId,
        n_locals: u16,
        args: &[i64],
        call_site: Option<Ip>,
        ret_slot: Option<LocalId>,
    ) {
        let locals_base = self.locals.len();
        let n = n_locals.max(args.len() as u16) as usize;
        self.locals.resize(locals_base + n, 0);
        self.locals[locals_base..locals_base + args.len()].copy_from_slice(args);
        let token = self.next_token;
        self.next_token += 1;
        let saved_stack = self.stack_top;
        self.frames.push(FrameRt { proc, locals_base, ret_slot, saved_stack });
        self.view.push(FrameInfo { proc, call_site, token });
    }

    /// Pop the top frame, writing `ret` into the caller if requested.
    /// Returns `true` when the thread has no executable frames left.
    pub fn pop_frame(&mut self, ret: Option<i64>) -> bool {
        let fr = self.frames.pop().expect("frame underflow");
        self.stack_top = fr.saved_stack;
        self.locals.truncate(fr.locals_base);
        self.view.pop();
        if let (Some(slot), Some(v)) = (fr.ret_slot, ret) {
            if let Some(caller) = self.frames.last() {
                self.locals[caller.locals_base + slot.0 as usize] = v;
            }
        }
        self.frames.is_empty()
    }

    /// Locals of the executing frame (read-only).
    pub fn locals(&self) -> &[i64] {
        &self.locals[self.frames.last().expect("no live frame").locals_base..]
    }

    /// Read one local of the executing frame.
    #[inline]
    pub fn local(&self, l: LocalId) -> i64 {
        self.locals[self.frames.last().expect("no live frame").locals_base + l.0 as usize]
    }

    /// Write one local of the executing frame.
    #[inline]
    pub fn set_local(&mut self, l: LocalId, v: i64) {
        let base = self.frames.last().expect("no live frame").locals_base;
        self.locals[base + l.0 as usize] = v;
    }
}

/// One recorded phase interval (rank-main scope).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseRecord {
    pub rank: u32,
    pub name: &'static str,
    pub begin: Cycles,
    pub end: Cycles,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ex::*;

    const CTX: EvalCtx = EvalCtx { omp_tid: 3, team_size: 8, rank: 2, num_ranks: 4 };

    #[test]
    fn eval_arithmetic() {
        let locals = [10i64, 7];
        assert_eq!(eval(&add(l(LocalId(0)), c(5)), &locals, &CTX), 15);
        assert_eq!(eval(&sub(l(LocalId(0)), l(LocalId(1))), &locals, &CTX), 3);
        assert_eq!(eval(&mul(c(6), c(7)), &locals, &CTX), 42);
        assert_eq!(eval(&div(c(22), c(7)), &locals, &CTX), 3);
        assert_eq!(eval(&rem(c(22), c(7)), &locals, &CTX), 1);
        assert_eq!(eval(&min(c(3), c(9)), &locals, &CTX), 3);
        assert_eq!(eval(&max(c(3), c(9)), &locals, &CTX), 9);
    }

    #[test]
    fn eval_intrinsics() {
        assert_eq!(eval(&Expr::ThreadId, &[], &CTX), 3);
        assert_eq!(eval(&Expr::NumThreads, &[], &CTX), 8);
        assert_eq!(eval(&Expr::RankId, &[], &CTX), 2);
        assert_eq!(eval(&Expr::NumRanks, &[], &CTX), 4);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        eval(&div(c(1), c(0)), &[], &CTX);
    }

    #[test]
    fn cmp_table() {
        assert!(eval_cmp(1, Cmp::Lt, 2));
        assert!(eval_cmp(2, Cmp::Le, 2));
        assert!(eval_cmp(2, Cmp::Eq, 2));
        assert!(eval_cmp(1, Cmp::Ne, 2));
        assert!(eval_cmp(2, Cmp::Ge, 2));
        assert!(eval_cmp(3, Cmp::Gt, 2));
        assert!(!eval_cmp(3, Cmp::Lt, 2));
    }

    #[test]
    fn frame_push_pop_with_ret() {
        let mut th = ThreadState {
            rank: 0,
            rank_local: 0,
            thread: 0,
            core: CoreId(0),
            domain: DomainId(0),
            clock: 0,
            status: Status::Runnable,
            frames: Vec::new(),
            locals: Vec::new(),
            view: Vec::new(),
            ctrl: Vec::new(),
            pmu: None,
            team: None,
            team_size: 1,
            ops: 0,
            next_token: 0,
            stack_top: crate::alloc::STACK_BASE,
            seq: 0,
            carry: 0,
            fix: None,
        };
        th.push_frame(ProcId(0), 4, &[], None, None);
        th.push_frame(ProcId(1), 2, &[11, 22], Some(Ip(5)), Some(LocalId(3)));
        assert_eq!(th.locals(), &[11, 22]);
        assert_eq!(th.view.len(), 2);
        assert_eq!(th.view[1].call_site, Some(Ip(5)));
        assert_ne!(th.view[0].token, th.view[1].token);
        assert!(!th.pop_frame(Some(99)));
        assert_eq!(th.locals()[3], 99, "return value written to caller slot");
        assert!(th.pop_frame(None));
    }
}
