//! The world runner: MPI ranks distributed over simulated nodes.
//!
//! Each node is an independent [`NodeSim`] (its own machine); nodes
//! couple only through MPI — barriers and paired exchanges. The world
//! loop runs every node to quiescence (all threads done or MPI-blocked)
//! — in parallel on the in-tree fork-join pool, which is sound because
//! nodes share nothing — then resolves the communication:
//!
//! * **Exchanges first.** Reciprocal `MpiExchange` pairs become network
//!   flows through the [`dcp_net`] switch fabric (when a [`NetConfig`]
//!   is attached and the partners sit on different nodes) or a
//!   shared-memory copy at `cost.mpi_node_bw` (same node, or no
//!   network). A rank resumes when its software post *and* the inbound
//!   payload have both completed. Pendings with no reciprocal partner
//!   anywhere are a typed [`SimError::ExchangeDeadlock`].
//! * **Barriers last.** A barrier can only complete once every rank has
//!   arrived; with a network attached and several nodes, the release is
//!   a gather-to-root + broadcast of 64-byte control messages over the
//!   same fabric, so barrier cost feels fabric congestion. A single
//!   node (or no network) degenerates to the flat global-max release —
//!   bit-identical to the pre-network runtime.
//!
//! Everything stays bit-for-bit deterministic regardless of host
//! parallelism: nodes are data-parallel between resolutions, and the
//! network advances through a calendar keyed `(time, src_node, seq)`.

use dcp_machine::Cycles;
use dcp_net::{Flow, MsgId, NetConfig, NetStats, NetTime, Network};
use dcp_support::pool::par_map_mut;

use crate::exec::PhaseRecord;
use crate::ir::Program;
use crate::observer::NodeObserver;
use crate::sched::{NetPending, NodeSim, Quiescence, SimConfig};

/// Payload of a barrier control message (gather/broadcast) on the wire.
const BARRIER_BYTES: u64 = 64;

/// A world: how many ranks, and how they map onto nodes.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    pub sim: SimConfig,
    /// Total MPI ranks.
    pub ranks: u32,
    /// Ranks co-located per node (each node is one [`dcp_machine::Machine`]).
    pub ranks_per_node: u32,
    /// Inter-node fabric. `None` (the default everywhere) keeps the flat
    /// cost model: exchanges move at `cost.mpi_node_bw`, barriers align
    /// to the global max. Ignored for single-node worlds, which always
    /// degenerate to the flat model.
    pub net: Option<NetConfig>,
}

impl WorldConfig {
    /// Single-node world with `ranks` ranks.
    pub fn single_node(sim: SimConfig, ranks: u32) -> Self {
        Self { sim, ranks, ranks_per_node: ranks.max(1), net: None }
    }
}

/// A simulation that cannot make progress — the simulated program's
/// communication structure is broken (the simulator itself is fine, so
/// this is an error value, not a panic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Some ranks reached the MPI barrier while others ran to completion
    /// or blocked elsewhere: the barrier can never release.
    BarrierMismatch { waiting: usize, live: usize, ranks: u32 },
    /// Exchanges are pending but no two of them are reciprocal: every
    /// waiting rank names a partner that is not (and never will be)
    /// calling back. `pending` lists `(rank, peer)` per waiter.
    ExchangeDeadlock { pending: Vec<(u32, u32)> },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::BarrierMismatch { waiting, live, ranks } => write!(
                f,
                "deadlock (MPI barrier mismatch): {waiting} of {ranks} ranks at the barrier, \
                 {live} alive"
            ),
            SimError::ExchangeDeadlock { pending } => {
                write!(f, "deadlock (MPI exchange mismatch): no reciprocal pair among")?;
                for (rank, peer) in pending {
                    write!(f, " {rank}->{peer}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Post-run summary for one node.
#[derive(Debug, Clone)]
pub struct NodeReport {
    pub node: usize,
    /// Node wall time (max thread clock).
    pub wall: Cycles,
    pub machine_stats: dcp_machine::access::MachineStats,
    /// DRAM accesses per NUMA domain — the bandwidth-demand picture.
    pub dram_histogram: Vec<u64>,
    pub ops: u64,
    /// Cycles rank mains spent blocked in MPI exchanges.
    pub net_wait: Cycles,
    /// MPI exchanges issued by this node's ranks.
    pub exchanges: u64,
}

/// Everything a run produces.
#[derive(Debug)]
pub struct WorldReport<O> {
    /// Global wall time (max over nodes).
    pub wall: Cycles,
    pub nodes: Vec<NodeReport>,
    pub phases: Vec<PhaseRecord>,
    /// One observer per node, in node order (profilers harvest these).
    pub observers: Vec<O>,
    /// Fabric counters, when a network was attached and the world spanned
    /// several nodes.
    pub net: Option<NetStats>,
}

impl<O> WorldReport<O> {
    /// Wall-clock duration of a named phase: latest end minus earliest
    /// begin across all ranks (phases are assumed globally aligned, as in
    /// the paper's init/setup/solve decomposition). `None` when no rank
    /// ever recorded the phase — callers comparing workload variants hit
    /// this routinely (e.g. a variant without an `init` phase) and decide
    /// for themselves whether a missing phase is a hard error.
    pub fn phase_wall(&self, name: &str) -> Option<Cycles> {
        let mut begin = Cycles::MAX;
        let mut end = 0;
        for p in &self.phases {
            if p.name == name {
                begin = begin.min(p.begin);
                end = end.max(p.end);
            }
        }
        (begin != Cycles::MAX).then(|| end - begin)
    }

    /// All distinct phase names in first-appearance order.
    pub fn phase_names(&self) -> Vec<&'static str> {
        let mut names = Vec::new();
        for p in &self.phases {
            if !names.contains(&p.name) {
                names.push(p.name);
            }
        }
        names
    }
}

/// Run `program` across the world. `make_observer` builds one observer
/// per node (node index argument); observers are returned in the report.
/// Errors are the simulated program's communication bugs
/// ([`SimError`]); simulator invariant violations still panic.
pub fn run_world<O>(
    program: &Program,
    cfg: &WorldConfig,
    make_observer: impl Fn(usize) -> O,
) -> Result<WorldReport<O>, SimError>
where
    O: NodeObserver,
{
    assert!(cfg.ranks > 0 && cfg.ranks_per_node > 0);
    let node_count = cfg.ranks.div_ceil(cfg.ranks_per_node) as usize;
    let mut nodes: Vec<NodeSim<'_, O>> = (0..node_count)
        .map(|n| {
            let lo = n as u32 * cfg.ranks_per_node;
            let hi = (lo + cfg.ranks_per_node).min(cfg.ranks);
            let ranks: Vec<u32> = (lo..hi).collect();
            NodeSim::new(program, cfg.sim.clone(), &ranks, cfg.ranks, make_observer(n))
        })
        .collect();
    // The fabric persists across resolutions so per-link counters
    // accumulate over the whole run. Single-node worlds never touch it.
    let mut net: Option<Network> = if node_count > 1 {
        cfg.net.as_ref().map(|nc| Network::new(nc.clone(), node_count as u32))
    } else {
        None
    };

    loop {
        // Run every node to quiescence. Nodes are fully independent
        // between resolutions, so data-parallel execution is sound.
        let _qs: Vec<Quiescence> = par_map_mut(&mut nodes, |node| node.run_until_quiescent());

        let live: usize = nodes.iter().map(|n| n.live_mains()).sum();
        if live == 0 {
            break;
        }

        // Exchanges resolve before barriers: a barrier cannot complete
        // while any rank is still inside a sendrecv.
        let mut pend: Vec<(usize, NetPending)> = Vec::new();
        for (ni, node) in nodes.iter().enumerate() {
            pend.extend(node.net_pending().iter().map(|p| (ni, *p)));
        }
        if !pend.is_empty() {
            pend.sort_by_key(|(_, p)| p.rank);
            resolve_exchanges(&mut nodes, &mut net, &cfg.sim.cost, &pend)?;
            continue;
        }

        // Barrier resolution: every live rank must be at the barrier.
        let waiting: usize = nodes.iter().map(|n| n.barrier_waiting()).sum();
        if waiting != live || waiting != cfg.ranks as usize {
            return Err(SimError::BarrierMismatch { waiting, live, ranks: cfg.ranks });
        }
        release_barrier(&mut nodes, &mut net, cfg.sim.cost.mpi_msg);
    }

    let net_stats = net.map(|n| n.stats());
    let mut reports = Vec::with_capacity(node_count);
    let mut phases = Vec::new();
    let mut observers = Vec::with_capacity(node_count);
    let mut wall = 0;
    for (i, node) in nodes.into_iter().enumerate() {
        wall = wall.max(node.max_clock());
        phases.extend_from_slice(node.phases());
        reports.push(NodeReport {
            node: i,
            wall: node.max_clock(),
            machine_stats: node.machine().stats().clone(),
            dram_histogram: node.machine().dram_histogram(),
            ops: node.total_ops(),
            net_wait: node.net_wait(),
            exchanges: node.exchange_count(),
        });
        observers.push(node.into_observer());
    }
    Ok(WorldReport { wall, nodes: reports, phases, observers, net: net_stats })
}

/// Match reciprocal exchange pairs and release both sides with their
/// completion clocks. `pend` is sorted by rank and has at most one entry
/// per rank (exchanges are rank-main-only and blocking).
fn resolve_exchanges<O: NodeObserver>(
    nodes: &mut [NodeSim<'_, O>],
    net: &mut Option<Network>,
    cost: &crate::exec::CostModel,
    pend: &[(usize, NetPending)],
) -> Result<(), SimError> {
    let ranks = pend.iter().map(|(_, p)| p.rank).max().unwrap_or(0) as usize + 1;
    let mut pos = vec![usize::MAX; ranks];
    for (i, (_, p)) in pend.iter().enumerate() {
        debug_assert_eq!(pos[p.rank as usize], usize::MAX, "one pending per rank");
        pos[p.rank as usize] = i;
    }
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for (i, (_, p)) in pend.iter().enumerate() {
        if p.rank < p.peer {
            match pos.get(p.peer as usize) {
                Some(&j) if j != usize::MAX && pend[j].1.peer == p.rank => pairs.push((i, j)),
                _ => {}
            }
        }
    }
    if pairs.is_empty() {
        // Nobody can proceed: every waiter names a partner that is not
        // exchanging back (finished, at a barrier, or exchanging with a
        // third rank that is itself stuck).
        return Err(SimError::ExchangeDeadlock {
            pending: pend.iter().map(|(_, p)| (p.rank, p.peer)).collect(),
        });
    }

    let msg = cost.mpi_msg;
    let bw = cost.mpi_node_bw.max(1);
    let mut releases: Vec<(usize, usize, Cycles)> = Vec::new();
    // Cross-node pairs share one fabric pass so they contend for links.
    let mut injected: Vec<(usize, MsgId, MsgId)> = Vec::new();
    for (k, &(i, j)) in pairs.iter().enumerate() {
        let (na, a) = pend[i];
        let (nb, b) = pend[j];
        let (post_a, post_b) = (a.clock + msg, b.clock + msg);
        match net.as_mut() {
            Some(fabric) if na != nb => {
                let ma = fabric.inject(
                    post_a,
                    Flow { src: na as u32, dst: nb as u32, bytes: a.bytes.max(1) },
                );
                let mb = fabric.inject(
                    post_b,
                    Flow { src: nb as u32, dst: na as u32, bytes: b.bytes.max(1) },
                );
                injected.push((k, ma, mb));
            }
            _ => {
                // Same node (shared memory) or no fabric: the copy runs
                // at mpi_node_bw once both sides have posted.
                let base = post_a.max(post_b);
                releases.push((na, a.tid, base + b.bytes.div_ceil(bw)));
                releases.push((nb, b.tid, base + a.bytes.div_ceil(bw)));
            }
        }
    }
    if !injected.is_empty() {
        let fabric = net.as_mut().expect("flows injected without a fabric");
        let done: Vec<(MsgId, NetTime)> = fabric.run();
        let arrival = |id: MsgId| -> NetTime {
            done.iter()
                .find(|(m, _)| *m == id)
                .map(|(_, t)| *t)
                .expect("injected flow must complete")
        };
        for (k, ma, mb) in injected {
            let (i, j) = pairs[k];
            let (na, a) = pend[i];
            let (nb, b) = pend[j];
            // Each side resumes when its own post is done and the
            // partner's payload has arrived through the fabric.
            releases.push((na, a.tid, (a.clock + msg).max(arrival(mb))));
            releases.push((nb, b.tid, (b.clock + msg).max(arrival(ma))));
        }
    }
    for (ni, tid, clk) in releases {
        nodes[ni].net_release(tid, clk);
    }
    Ok(())
}

/// Release a complete barrier. With a fabric: gather 64-byte control
/// messages to node 0, decide at the root, broadcast back — each node
/// resumes when its broadcast arrives, so barrier skew reflects fabric
/// congestion. Without one (or on one node): flat global-max alignment,
/// exactly the pre-network behavior.
fn release_barrier<O: NodeObserver>(
    nodes: &mut [NodeSim<'_, O>],
    net: &mut Option<Network>,
    msg: u64,
) {
    let arrivals: Vec<Cycles> = nodes.iter().map(|n| n.barrier_arrival()).collect();
    match net.as_mut() {
        Some(fabric) if nodes.len() > 1 => {
            let gathers: Vec<(usize, MsgId)> = (1..nodes.len())
                .map(|ni| {
                    let flow = Flow { src: ni as u32, dst: 0, bytes: BARRIER_BYTES };
                    (ni, fabric.inject(arrivals[ni] + msg, flow))
                })
                .collect();
            let done: Vec<(MsgId, NetTime)> = fabric.run();
            let mut root = arrivals[0] + msg;
            for &(_, m) in &gathers {
                let t = done
                    .iter()
                    .find(|(id, _)| *id == m)
                    .map(|(_, t)| *t)
                    .expect("gather flow must complete");
                root = root.max(t);
            }
            let bcasts: Vec<(usize, MsgId)> = (1..nodes.len())
                .map(|ni| {
                    let flow = Flow { src: 0, dst: ni as u32, bytes: BARRIER_BYTES };
                    (ni, fabric.inject(root, flow))
                })
                .collect();
            let done: Vec<(MsgId, NetTime)> = fabric.run();
            nodes[0].mpi_release(root);
            for (ni, m) in bcasts {
                let t = done
                    .iter()
                    .find(|(id, _)| *id == m)
                    .map(|(_, t)| *t)
                    .expect("broadcast flow must complete");
                nodes[ni].mpi_release(t);
            }
        }
        _ => {
            let gmax = arrivals.iter().copied().max().unwrap_or(0);
            for node in nodes.iter_mut() {
                node.mpi_release(gmax);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ProgramBuilder;
    use crate::ir::ex::*;
    use crate::ir::{Cmp, Expr};
    use crate::observer::{AllocEvent, FreeEvent, NodeObserver, NullObserver, ThreadView};
    use dcp_machine::{MachineConfig, MarkedEvent, PmuConfig, Sample};

    fn tiny_sim() -> SimConfig {
        SimConfig::new(MachineConfig::tiny_test())
    }

    #[test]
    fn straight_line_program_completes() {
        let mut b = ProgramBuilder::new("t");
        let main = b.proc("main", 0, |p| {
            let buf = p.malloc(c(4096), "buf");
            p.for_(c(0), c(64), |p, i| {
                p.store(l(buf), l(i), 8);
            });
            p.free(l(buf));
        });
        let prog = b.build(main);
        let report =
            run_world(&prog, &WorldConfig::single_node(tiny_sim(), 1), |_| NullObserver).unwrap();
        assert!(report.wall > 0);
        assert_eq!(report.nodes.len(), 1);
        assert_eq!(report.nodes[0].machine_stats.stores, 64);
    }

    #[test]
    fn call_and_return_values_flow() {
        let mut b = ProgramBuilder::new("t");
        let double = b.proc("double", 1, |p| {
            let x = p.param(0);
            p.ret(Some(add(mul(l(x), c(2)), c(0))));
        });
        let mut probe_addr = 0;
        let main = b.proc("main", 0, |p| {
            let v = p.call_ret(double, vec![c(21)]);
            // Store the result as a value so the test can read it back.
            let sink = p.malloc(c(64), "sink");
            p.store_val(l(sink), c(0), 8, l(v));
            probe_addr = 0; // documented: heap base of rank 0
        });
        let prog = b.build(main);
        let _ = probe_addr;
        // Run and verify via machine stats that the store happened (one
        // store, value-path exercised without panic).
        let report =
            run_world(&prog, &WorldConfig::single_node(tiny_sim(), 1), |_| NullObserver).unwrap();
        assert_eq!(report.nodes[0].machine_stats.stores, 1);
    }

    #[test]
    fn nested_loops_and_if() {
        let mut b = ProgramBuilder::new("t");
        let main = b.proc("main", 0, |p| {
            let buf = p.malloc(c(8192), "buf");
            p.for_(c(0), c(8), |p, i| {
                p.for_(c(0), c(8), |p, j| {
                    p.if_(
                        l(j),
                        Cmp::Lt,
                        c(4),
                        |p| p.load(l(buf), add(mul(l(i), c(8)), l(j)), 8),
                        |p| p.compute(1),
                    );
                });
            });
        });
        let prog = b.build(main);
        let report =
            run_world(&prog, &WorldConfig::single_node(tiny_sim(), 1), |_| NullObserver).unwrap();
        assert_eq!(report.nodes[0].machine_stats.loads, 32, "half the 64 iterations load");
    }

    #[test]
    fn parallel_region_runs_all_threads() {
        let mut b = ProgramBuilder::new("t");
        let region = b.outlined("work", 1, |p| {
            let buf = p.param(0);
            p.omp_for(c(0), c(400), |p, i| {
                p.store(l(buf), l(i), 8);
            });
        });
        let main = b.proc("main", 0, |p| {
            let buf = p.malloc(c(8 * 400), "buf");
            p.parallel(region, vec![l(buf)]);
        });
        let prog = b.build(main);
        let mut cfg = tiny_sim();
        cfg.omp_threads = 4;
        let report = run_world(&prog, &WorldConfig::single_node(cfg, 1), |_| NullObserver).unwrap();
        // All 400 iterations execute exactly once across the team.
        assert_eq!(report.nodes[0].machine_stats.stores, 400);
    }

    #[test]
    fn omp_for_partitions_disjointly() {
        // Each thread writes a distinct value to its chunk; serial check
        // via a second pass would need value reads, so instead verify op
        // counts: with 4 threads and 100 iterations, exactly 100 stores.
        let mut b = ProgramBuilder::new("t");
        let region = b.outlined("fill", 1, |p| {
            let buf = p.param(0);
            p.omp_for(c(0), c(100), |p, i| p.store_val(l(buf), l(i), 8, Expr::ThreadId));
        });
        let main = b.proc("main", 0, |p| {
            let buf = p.malloc(c(800), "buf");
            p.parallel(region, vec![l(buf)]);
        });
        let prog = b.build(main);
        let mut cfg = tiny_sim();
        cfg.omp_threads = 4;
        let report = run_world(&prog, &WorldConfig::single_node(cfg, 1), |_| NullObserver).unwrap();
        assert_eq!(report.nodes[0].machine_stats.stores, 100);
    }

    #[test]
    fn omp_barrier_aligns_team() {
        let mut b = ProgramBuilder::new("t");
        let region = b.outlined("skewed", 1, |p| {
            let buf = p.param(0);
            // Thread 0 does much more work before the barrier.
            p.if_(
                Expr::ThreadId,
                Cmp::Eq,
                c(0),
                |p| p.compute(50_000),
                |p| p.compute(10),
            );
            p.omp_barrier();
            p.omp_for(c(0), c(4), |p, i| p.store(l(buf), l(i), 8));
        });
        let main = b.proc("main", 0, |p| {
            let buf = p.malloc(c(64), "buf");
            p.parallel(region, vec![l(buf)]);
        });
        let prog = b.build(main);
        let mut cfg = tiny_sim();
        cfg.omp_threads = 4;
        let report = run_world(&prog, &WorldConfig::single_node(cfg, 1), |_| NullObserver).unwrap();
        // Wall must reflect the slow thread's pre-barrier work.
        assert!(report.wall > 50_000);
    }

    #[test]
    fn mpi_barrier_aligns_ranks_across_nodes() {
        let mut b = ProgramBuilder::new("t");
        let main = b.proc("main", 0, |p| {
            // Rank 1 works 100k cycles, rank 0 works 10.
            p.if_(Expr::RankId, Cmp::Eq, c(1), |p| p.compute(100_000), |p| p.compute(10));
            p.mpi_barrier();
            p.compute(5);
        });
        let prog = b.build(main);
        let cfg = WorldConfig { sim: tiny_sim(), ranks: 2, ranks_per_node: 1, net: None };
        let report = run_world(&prog, &cfg, |_| NullObserver).unwrap();
        assert_eq!(report.nodes.len(), 2);
        // Both nodes end past the barrier release (>= 100k).
        for n in &report.nodes {
            assert!(n.wall > 100_000, "node {} wall {}", n.node, n.wall);
        }
    }

    #[test]
    fn phases_are_recorded_and_measured() {
        let mut b = ProgramBuilder::new("t");
        let main = b.proc("main", 0, |p| {
            p.phase("setup", |p| p.compute(1_000));
            p.phase("solve", |p| p.compute(9_000));
        });
        let prog = b.build(main);
        let report =
            run_world(&prog, &WorldConfig::single_node(tiny_sim(), 1), |_| NullObserver).unwrap();
        assert_eq!(report.phase_names(), vec!["setup", "solve"]);
        let solve = report.phase_wall("solve").expect("solve phase recorded");
        let setup = report.phase_wall("setup").expect("setup phase recorded");
        assert!(solve >= 9_000);
        assert!(setup >= 1_000);
        assert!(setup < solve);
    }

    #[test]
    fn unknown_phase_is_none_not_a_panic() {
        let mut b = ProgramBuilder::new("t");
        let main = b.proc("main", 0, |p| {
            p.phase("solve", |p| p.compute(100));
        });
        let prog = b.build(main);
        let report =
            run_world(&prog, &WorldConfig::single_node(tiny_sim(), 1), |_| NullObserver).unwrap();
        assert_eq!(report.phase_wall("warmup"), None, "unrecorded phase must be None");
        assert!(report.phase_wall("solve").is_some());
    }

    /// Observer that records events for assertions.
    #[derive(Default)]
    struct Recorder {
        samples: Vec<(Sample, u32, u32, usize)>, // sample, rank, thread, depth
        allocs: Vec<AllocEvent>,
        frees: Vec<FreeEvent>,
        modules: Vec<String>,
    }

    impl NodeObserver for Recorder {
        fn on_sample(&mut self, s: &Sample, v: &ThreadView<'_>) -> u64 {
            self.samples.push((*s, v.rank, v.thread, v.frames.len()));
            0
        }
        fn on_alloc(&mut self, e: &AllocEvent, _v: &ThreadView<'_>) -> u64 {
            self.allocs.push(*e);
            0
        }
        fn on_free(&mut self, e: &FreeEvent, _v: &ThreadView<'_>) -> u64 {
            self.frees.push(*e);
            0
        }
        fn on_module(&mut self, ev: &crate::observer::ModuleEvent<'_>) {
            if let crate::observer::ModuleEvent::Loaded { def, .. } = ev {
                self.modules.push(def.name.clone());
            }
        }
    }

    #[test]
    fn sampling_observer_sees_memory_samples_with_context() {
        let mut b = ProgramBuilder::new("t");
        let kernel = b.proc("kernel", 1, |p| {
            let buf = p.param(0);
            p.for_(c(0), c(5_000), |p, i| {
                p.load(l(buf), rem(l(i), c(512)), 8);
            });
        });
        let main = b.proc("main", 0, |p| {
            let buf = p.calloc(c(4096), "buf");
            p.call(kernel, vec![l(buf)]);
        });
        let prog = b.build(main);
        let mut cfg = tiny_sim();
        cfg.pmu = Some(PmuConfig::Ibs { period: 100, skid: 2 });
        let report = run_world(&prog, &WorldConfig::single_node(cfg, 1), |_| Recorder::default()).unwrap();
        let rec = &report.observers[0];
        assert!(!rec.samples.is_empty(), "IBS must deliver samples");
        // Samples inside `kernel` see a two-deep stack (main -> kernel).
        let with_mem: Vec<_> = rec.samples.iter().filter(|(s, ..)| s.ea.is_some()).collect();
        assert!(!with_mem.is_empty());
        assert!(with_mem.iter().any(|(_, _, _, depth)| *depth == 2));
        // Alloc event was observed with the calloc flag.
        assert_eq!(rec.allocs.len(), 1);
        assert!(rec.allocs[0].zeroed);
        assert_eq!(rec.modules, vec!["t".to_string()]);
    }

    #[test]
    fn master_calloc_places_pages_on_one_domain() {
        // The NUMA pathology in miniature: master callocs and the region
        // reads; every page homes on the master's domain, so the other
        // domain's threads go remote.
        let mut b = ProgramBuilder::new("t");
        let region = b.outlined("read", 1, |p| {
            let buf = p.param(0);
            p.omp_for(c(0), c(4096), |p, i| p.load(l(buf), l(i), 8));
        });
        let main = b.proc("main", 0, |p| {
            let buf = p.calloc(c(8 * 4096), "buf");
            p.parallel(region, vec![l(buf)]);
        });
        let prog = b.build(main);
        let mut cfg = tiny_sim();
        cfg.omp_threads = 4; // tiny_test has 4 hw threads over 2 domains
        let report = run_world(&prog, &WorldConfig::single_node(cfg, 1), |_| NullObserver).unwrap();
        let s = &report.nodes[0].machine_stats;
        assert!(
            s.remote_dram + s.remote_l3_hits > 0,
            "threads on domain 1 must hit remote data: {s:?}"
        );
        // All DRAM demand lands on domain 0 (master's).
        let h = &report.nodes[0].dram_histogram;
        assert!(h[0] > 0);
        assert!(h[0] > h[1] * 4, "dram demand skewed to master domain: {h:?}");
    }

    #[test]
    fn marked_event_pmu_only_samples_remote() {
        let mut b = ProgramBuilder::new("t");
        let region = b.outlined("read", 1, |p| {
            let buf = p.param(0);
            // Line-stride reads (one element per 64-byte line): too fast
            // for prefetch to hide the remote latency completely.
            p.omp_for(c(0), c(8192), |p, i| p.load(l(buf), mul(l(i), c(8)), 8));
        });
        let main = b.proc("main", 0, |p| {
            let buf = p.calloc(c(8 * 8 * 8192), "buf");
            p.parallel(region, vec![l(buf)]);
        });
        let prog = b.build(main);
        let mut cfg = tiny_sim();
        cfg.omp_threads = 4;
        cfg.pmu = Some(PmuConfig::Marked {
            event: MarkedEvent::DataFromRmem,
            threshold: 8,
            skid: 1,
        });
        let report = run_world(&prog, &WorldConfig::single_node(cfg, 1), |_| Recorder::default()).unwrap();
        let rec = &report.observers[0];
        assert!(!rec.samples.is_empty(), "remote traffic must produce marked samples");
        for (s, ..) in &rec.samples {
            assert_eq!(s.source, Some(dcp_machine::DataSource::RemoteDram));
        }
    }

    #[test]
    fn determinism_across_runs() {
        let build = || {
            let mut b = ProgramBuilder::new("t");
            let region = b.outlined("w", 1, |p| {
                let buf = p.param(0);
                p.omp_for(c(0), c(2000), |p, i| {
                    p.store(l(buf), l(i), 8);
                    p.load(l(buf), rem(mul(l(i), c(7)), c(2000)), 8);
                });
            });
            let main = b.proc("main", 0, |p| {
                let buf = p.calloc(c(16000), "buf");
                p.parallel(region, vec![l(buf)]);
                p.free(l(buf));
            });
            b.build(main)
        };
        let mut cfg = tiny_sim();
        cfg.omp_threads = 3;
        cfg.pmu = Some(PmuConfig::Ibs { period: 64, skid: 3 });
        let p1 = build();
        let p2 = build();
        let r1 = run_world(&p1, &WorldConfig::single_node(cfg.clone(), 1), |_| Recorder::default()).unwrap();
        let r2 = run_world(&p2, &WorldConfig::single_node(cfg, 1), |_| Recorder::default()).unwrap();
        assert_eq!(r1.wall, r2.wall);
        assert_eq!(r1.observers[0].samples.len(), r2.observers[0].samples.len());
        for (a, b) in r1.observers[0].samples.iter().zip(&r2.observers[0].samples) {
            assert_eq!(a.0.precise_ip, b.0.precise_ip);
            assert_eq!(a.0.ea, b.0.ea);
        }
    }

    #[test]
    fn observer_overhead_slows_simulated_time() {
        struct Expensive;
        impl NodeObserver for Expensive {
            fn on_alloc(&mut self, _: &AllocEvent, _: &ThreadView<'_>) -> u64 {
                50_000
            }
        }
        let build = || {
            let mut b = ProgramBuilder::new("t");
            let main = b.proc("main", 0, |p| {
                p.for_(c(0), c(20), |p, _| {
                    let a = p.malloc(c(64), "tmp");
                    p.free(l(a));
                });
            });
            b.build(main)
        };
        let p1 = build();
        let p2 = build();
        let base = run_world(&p1, &WorldConfig::single_node(tiny_sim(), 1), |_| NullObserver).unwrap();
        let slow = run_world(&p2, &WorldConfig::single_node(tiny_sim(), 1), |_| Expensive).unwrap();
        assert!(slow.wall > base.wall + 19 * 50_000);
    }

    #[test]
    fn brk_allocations_complete_without_alloc_events() {
        let mut b = ProgramBuilder::new("t");
        let main = b.proc("main", 0, |p| {
            let v = p.brk_alloc(c(4096));
            p.for_(c(0), c(16), |p, i| p.store(l(v), l(i), 8));
        });
        let prog = b.build(main);
        let report =
            run_world(&prog, &WorldConfig::single_node(tiny_sim(), 1), |_| Recorder::default()).unwrap();
        assert!(report.observers[0].allocs.is_empty(), "brk is invisible to wrappers");
        assert_eq!(report.nodes[0].machine_stats.stores, 16);
    }

    #[test]
    fn stack_allocations_are_frame_scoped() {
        let mut b = ProgramBuilder::new("t");
        let leaf = b.proc("leaf", 0, |p| {
            // 1 KiB local array, touched, released at return.
            let local = p.stack_alloc(c(1024));
            p.for_(c(0), c(16), |p, i| p.store(l(local), l(i), 8));
            p.ret(None);
        });
        let main = b.proc("main", 0, |p| {
            // Repeated calls reuse the same stack addresses (frame pop
            // restores the cursor), so the touched page set stays tiny.
            p.for_(c(0), c(100), |p, _| p.call(leaf, vec![]));
        });
        let prog = b.build(main);
        let report =
            run_world(&prog, &WorldConfig::single_node(tiny_sim(), 1), |_| NullObserver).unwrap();
        let s = &report.nodes[0].machine_stats;
        assert_eq!(s.stores, 1600);
        // All 1600 stores hit the same 1 KiB: after the first call the
        // lines are L1-resident.
        assert!(s.l1_hits > 1400, "stack reuse must stay cached: {s:?}");
    }

    #[test]
    fn worker_stacks_are_disjoint() {
        let mut b = ProgramBuilder::new("t");
        let region = b.outlined("w", 0, |p| {
            let local = p.stack_alloc(c(4096));
            p.omp_for(c(0), c(64), |p, i| p.store(l(local), rem(l(i), c(64)), 8));
        });
        let main = b.proc("main", 0, |p| p.parallel(region, vec![]));
        let prog = b.build(main);
        let mut cfg = tiny_sim();
        cfg.omp_threads = 4;
        let report = run_world(&prog, &WorldConfig::single_node(cfg, 1), |_| NullObserver).unwrap();
        // 4 threads x 4096-byte locals on distinct windows: each thread
        // first-touches its own page (4 pages placed, not 1).
        assert_eq!(report.nodes[0].machine_stats.stores, 64);
    }

    #[test]
    #[should_panic(expected = "stack overflow")]
    fn stack_overflow_is_detected() {
        let mut b = ProgramBuilder::new("t");
        let main = b.proc("main", 0, |p| {
            p.for_(c(0), c(10_000), |p, _| {
                // Allocations in a loop within ONE frame accumulate until
                // the window blows.
                let x = p.stack_alloc(c(1 << 16));
                p.store(l(x), c(0), 8);
            });
        });
        let prog = b.build(main);
        let _ = run_world(&prog, &WorldConfig::single_node(tiny_sim(), 1), |_| NullObserver).unwrap();
    }

    #[test]
    fn mismatched_mpi_barriers_are_a_typed_error() {
        let mut b = ProgramBuilder::new("t");
        let main = b.proc("main", 0, |p| {
            p.if_(Expr::RankId, Cmp::Eq, c(0), |p| p.mpi_barrier(), |p| p.compute(1));
        });
        let prog = b.build(main);
        let cfg = WorldConfig { sim: tiny_sim(), ranks: 2, ranks_per_node: 2, net: None };
        let err = run_world(&prog, &cfg, |_| NullObserver).unwrap_err();
        assert!(matches!(err, SimError::BarrierMismatch { waiting: 1, live: 1, ranks: 2 }));
        assert!(
            err.to_string().contains("deadlock (MPI barrier mismatch)"),
            "error keeps the diagnostic text: {err}"
        );
    }

    /// Two ranks on two nodes exchanging through the fabric: both complete,
    /// both pay the network (latency + serialization), stats are recorded.
    #[test]
    fn cross_node_exchange_completes_through_the_fabric() {
        let mut b = ProgramBuilder::new("t");
        let main = b.proc("main", 0, |p| {
            p.compute(100);
            // peer = 1 - rank
            p.mpi_exchange(sub(c(1), Expr::RankId), c(4096));
            p.compute(10);
        });
        let prog = b.build(main);
        let cfg = WorldConfig {
            sim: tiny_sim(),
            ranks: 2,
            ranks_per_node: 1,
            net: Some(dcp_net::NetConfig::one_big_switch()),
        };
        let report = run_world(&prog, &cfg, |_| NullObserver).unwrap();
        let net = report.net.expect("fabric stats present");
        assert_eq!(net.flows, 2);
        assert_eq!(net.bytes, 2 * 4096);
        // 4096 B at 4 B/cycle is 1024 cycles of serialization per hop,
        // plus two 500-cycle links: the exchange dominates the compute.
        for n in &report.nodes {
            assert!(n.wall > 2000, "node {} wall {}", n.node, n.wall);
            assert_eq!(n.exchanges, 1);
            assert!(n.net_wait > 0, "exchange wait must be accounted");
        }
        // Per-link counters saw both directions.
        assert!(net.links.iter().any(|(l, s)| l == "node0->switch" && s.msgs == 1));
        assert!(net.links.iter().any(|(l, s)| l == "switch->node0" && s.msgs == 1));
    }

    /// Same program, same ranks, no fabric: the exchange falls back to the
    /// flat shared-memory model and still completes.
    #[test]
    fn exchange_without_fabric_uses_flat_cost() {
        let mut b = ProgramBuilder::new("t");
        let main = b.proc("main", 0, |p| {
            p.mpi_exchange(sub(c(1), Expr::RankId), c(4096));
        });
        let prog = b.build(main);
        let cfg = WorldConfig { sim: tiny_sim(), ranks: 2, ranks_per_node: 2, net: None };
        let report = run_world(&prog, &cfg, |_| NullObserver).unwrap();
        assert!(report.net.is_none());
        // mpi_msg (600) + 4096 / mpi_node_bw (16) = 856 at minimum.
        assert!(report.wall >= 856, "wall {}", report.wall);
        assert_eq!(report.nodes[0].exchanges, 2);
    }

    /// A cross-node exchange is strictly slower than the same exchange in
    /// shared memory: the fabric's latency and serialization are real.
    #[test]
    fn fabric_is_slower_than_shared_memory() {
        let build = || {
            let mut b = ProgramBuilder::new("t");
            let main = b.proc("main", 0, |p| {
                p.mpi_exchange(sub(c(1), Expr::RankId), c(65536));
            });
            b.build(main)
        };
        let p1 = build();
        let p2 = build();
        let shared = WorldConfig { sim: tiny_sim(), ranks: 2, ranks_per_node: 2, net: None };
        let fabric = WorldConfig {
            sim: tiny_sim(),
            ranks: 2,
            ranks_per_node: 1,
            net: Some(dcp_net::NetConfig::one_big_switch()),
        };
        let a = run_world(&p1, &shared, |_| NullObserver).unwrap();
        let b = run_world(&p2, &fabric, |_| NullObserver).unwrap();
        assert!(
            b.wall > a.wall,
            "fabric ({}) must cost more than shared memory ({})",
            b.wall,
            a.wall
        );
    }

    /// Rank 0 exchanges, rank 1 never calls back: typed deadlock, not a
    /// panic, and the message names the dangling request.
    #[test]
    fn unmatched_exchange_is_a_typed_error() {
        let mut b = ProgramBuilder::new("t");
        let main = b.proc("main", 0, |p| {
            p.if_(
                Expr::RankId,
                Cmp::Eq,
                c(0),
                |p| p.mpi_exchange(c(1), c(64)),
                |p| p.compute(1),
            );
        });
        let prog = b.build(main);
        let cfg = WorldConfig { sim: tiny_sim(), ranks: 2, ranks_per_node: 1, net: None };
        let err = run_world(&prog, &cfg, |_| NullObserver).unwrap_err();
        assert_eq!(err, SimError::ExchangeDeadlock { pending: vec![(0, 1)] });
        assert!(err.to_string().contains("deadlock (MPI exchange mismatch)"));
        assert!(err.to_string().contains("0->1"));
    }

    /// Neighbor exchange over four ranks on four nodes, twice, then a
    /// barrier — deterministic wall across repeated runs.
    #[test]
    fn exchange_chain_is_deterministic() {
        let build = || {
            let mut b = ProgramBuilder::new("t");
            let main = b.proc("main", 0, |p| {
                // Pair (0,1) and (2,3): peer = rank ^ 1 via parity.
                let peer = p.local();
                p.if_(
                    rem(Expr::RankId, c(2)),
                    Cmp::Eq,
                    c(0),
                    |p| p.let_(peer, add(Expr::RankId, c(1))),
                    |p| p.let_(peer, sub(Expr::RankId, c(1))),
                );
                p.compute(50);
                p.mpi_exchange(l(peer), mul(add(Expr::RankId, c(1)), c(1024)));
                p.mpi_exchange(l(peer), c(2048));
                p.mpi_barrier();
            });
            b.build(main)
        };
        let cfg = WorldConfig {
            sim: tiny_sim(),
            ranks: 4,
            ranks_per_node: 1,
            net: Some(dcp_net::NetConfig::lossless(dcp_net::TopologySpec::FatTree {
                leaves: 2,
                spines: 2,
            })),
        };
        let p1 = build();
        let p2 = build();
        let r1 = run_world(&p1, &cfg, |_| NullObserver).unwrap();
        let r2 = run_world(&p2, &cfg, |_| NullObserver).unwrap();
        assert_eq!(r1.wall, r2.wall);
        let n1 = r1.net.unwrap();
        let n2 = r2.net.unwrap();
        assert_eq!(n1.links, n2.links, "per-link counters are deterministic");
        // 4 ranks x 2 exchanges = 8 flows, plus 3 gathers + 3 broadcasts
        // for the closing barrier.
        assert_eq!(n1.flows, 8 + 6);
    }
}
