//! The world runner: MPI ranks distributed over simulated nodes.
//!
//! Each node is an independent [`NodeSim`] (its own machine); nodes only
//! couple at MPI barriers. The world loop runs every node to quiescence
//! (all threads done or barrier-blocked) — in parallel on the in-tree
//! fork-join pool, which is sound because nodes share nothing — then
//! resolves the barrier by aligning all waiting ranks to the global
//! maximum clock. The result is bit-for-bit deterministic regardless of
//! host parallelism.

use dcp_machine::Cycles;
use dcp_support::pool::par_map_mut;

use crate::exec::PhaseRecord;
use crate::ir::Program;
use crate::observer::NodeObserver;
use crate::sched::{NodeSim, Quiescence, SimConfig};

/// A world: how many ranks, and how they map onto nodes.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    pub sim: SimConfig,
    /// Total MPI ranks.
    pub ranks: u32,
    /// Ranks co-located per node (each node is one [`dcp_machine::Machine`]).
    pub ranks_per_node: u32,
}

impl WorldConfig {
    /// Single-node world with `ranks` ranks.
    pub fn single_node(sim: SimConfig, ranks: u32) -> Self {
        Self { sim, ranks, ranks_per_node: ranks.max(1) }
    }
}

/// Post-run summary for one node.
#[derive(Debug, Clone)]
pub struct NodeReport {
    pub node: usize,
    /// Node wall time (max thread clock).
    pub wall: Cycles,
    pub machine_stats: dcp_machine::access::MachineStats,
    /// DRAM accesses per NUMA domain — the bandwidth-demand picture.
    pub dram_histogram: Vec<u64>,
    pub ops: u64,
}

/// Everything a run produces.
#[derive(Debug)]
pub struct WorldReport<O> {
    /// Global wall time (max over nodes).
    pub wall: Cycles,
    pub nodes: Vec<NodeReport>,
    pub phases: Vec<PhaseRecord>,
    /// One observer per node, in node order (profilers harvest these).
    pub observers: Vec<O>,
}

impl<O> WorldReport<O> {
    /// Wall-clock duration of a named phase: latest end minus earliest
    /// begin across all ranks (phases are assumed globally aligned, as in
    /// the paper's init/setup/solve decomposition). `None` when no rank
    /// ever recorded the phase — callers comparing workload variants hit
    /// this routinely (e.g. a variant without an `init` phase) and decide
    /// for themselves whether a missing phase is a hard error.
    pub fn phase_wall(&self, name: &str) -> Option<Cycles> {
        let mut begin = Cycles::MAX;
        let mut end = 0;
        for p in &self.phases {
            if p.name == name {
                begin = begin.min(p.begin);
                end = end.max(p.end);
            }
        }
        (begin != Cycles::MAX).then(|| end - begin)
    }

    /// All distinct phase names in first-appearance order.
    pub fn phase_names(&self) -> Vec<&'static str> {
        let mut names = Vec::new();
        for p in &self.phases {
            if !names.contains(&p.name) {
                names.push(p.name);
            }
        }
        names
    }
}

/// Run `program` across the world. `make_observer` builds one observer
/// per node (node index argument); observers are returned in the report.
pub fn run_world<O>(
    program: &Program,
    cfg: &WorldConfig,
    make_observer: impl Fn(usize) -> O,
) -> WorldReport<O>
where
    O: NodeObserver,
{
    assert!(cfg.ranks > 0 && cfg.ranks_per_node > 0);
    let node_count = cfg.ranks.div_ceil(cfg.ranks_per_node) as usize;
    let mut nodes: Vec<NodeSim<'_, O>> = (0..node_count)
        .map(|n| {
            let lo = n as u32 * cfg.ranks_per_node;
            let hi = (lo + cfg.ranks_per_node).min(cfg.ranks);
            let ranks: Vec<u32> = (lo..hi).collect();
            NodeSim::new(program, cfg.sim.clone(), &ranks, cfg.ranks, make_observer(n))
        })
        .collect();

    loop {
        // Run every node to quiescence. Nodes are fully independent
        // between barriers, so data-parallel execution is deterministic.
        let qs: Vec<Quiescence> = par_map_mut(&mut nodes, |node| node.run_until_quiescent());

        let live: usize = nodes.iter().map(|n| n.live_mains()).sum();
        if live == 0 {
            break;
        }
        let mut waiting = 0;
        let mut gmax = 0;
        for q in &qs {
            if let Quiescence::MpiBlocked { waiting: w, max_clock } = q {
                waiting += w;
                gmax = gmax.max(*max_clock);
            }
        }
        assert!(
            waiting == live && waiting == cfg.ranks as usize,
            "deadlock (MPI barrier mismatch): {waiting} of {} ranks at the barrier, {live} alive",
            cfg.ranks
        );
        for node in &mut nodes {
            node.mpi_release(gmax);
        }
    }

    let mut reports = Vec::with_capacity(node_count);
    let mut phases = Vec::new();
    let mut observers = Vec::with_capacity(node_count);
    let mut wall = 0;
    for (i, node) in nodes.into_iter().enumerate() {
        wall = wall.max(node.max_clock());
        phases.extend_from_slice(node.phases());
        reports.push(NodeReport {
            node: i,
            wall: node.max_clock(),
            machine_stats: node.machine().stats().clone(),
            dram_histogram: node.machine().dram_histogram(),
            ops: node.total_ops(),
        });
        observers.push(node.into_observer());
    }
    WorldReport { wall, nodes: reports, phases, observers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ProgramBuilder;
    use crate::ir::ex::*;
    use crate::ir::{Cmp, Expr};
    use crate::observer::{AllocEvent, FreeEvent, NodeObserver, NullObserver, ThreadView};
    use dcp_machine::{MachineConfig, MarkedEvent, PmuConfig, Sample};

    fn tiny_sim() -> SimConfig {
        SimConfig::new(MachineConfig::tiny_test())
    }

    #[test]
    fn straight_line_program_completes() {
        let mut b = ProgramBuilder::new("t");
        let main = b.proc("main", 0, |p| {
            let buf = p.malloc(c(4096), "buf");
            p.for_(c(0), c(64), |p, i| {
                p.store(l(buf), l(i), 8);
            });
            p.free(l(buf));
        });
        let prog = b.build(main);
        let report =
            run_world(&prog, &WorldConfig::single_node(tiny_sim(), 1), |_| NullObserver);
        assert!(report.wall > 0);
        assert_eq!(report.nodes.len(), 1);
        assert_eq!(report.nodes[0].machine_stats.stores, 64);
    }

    #[test]
    fn call_and_return_values_flow() {
        let mut b = ProgramBuilder::new("t");
        let double = b.proc("double", 1, |p| {
            let x = p.param(0);
            p.ret(Some(add(mul(l(x), c(2)), c(0))));
        });
        let mut probe_addr = 0;
        let main = b.proc("main", 0, |p| {
            let v = p.call_ret(double, vec![c(21)]);
            // Store the result as a value so the test can read it back.
            let sink = p.malloc(c(64), "sink");
            p.store_val(l(sink), c(0), 8, l(v));
            probe_addr = 0; // documented: heap base of rank 0
        });
        let prog = b.build(main);
        let _ = probe_addr;
        // Run and verify via machine stats that the store happened (one
        // store, value-path exercised without panic).
        let report =
            run_world(&prog, &WorldConfig::single_node(tiny_sim(), 1), |_| NullObserver);
        assert_eq!(report.nodes[0].machine_stats.stores, 1);
    }

    #[test]
    fn nested_loops_and_if() {
        let mut b = ProgramBuilder::new("t");
        let main = b.proc("main", 0, |p| {
            let buf = p.malloc(c(8192), "buf");
            p.for_(c(0), c(8), |p, i| {
                p.for_(c(0), c(8), |p, j| {
                    p.if_(
                        l(j),
                        Cmp::Lt,
                        c(4),
                        |p| p.load(l(buf), add(mul(l(i), c(8)), l(j)), 8),
                        |p| p.compute(1),
                    );
                });
            });
        });
        let prog = b.build(main);
        let report =
            run_world(&prog, &WorldConfig::single_node(tiny_sim(), 1), |_| NullObserver);
        assert_eq!(report.nodes[0].machine_stats.loads, 32, "half the 64 iterations load");
    }

    #[test]
    fn parallel_region_runs_all_threads() {
        let mut b = ProgramBuilder::new("t");
        let region = b.outlined("work", 1, |p| {
            let buf = p.param(0);
            p.omp_for(c(0), c(400), |p, i| {
                p.store(l(buf), l(i), 8);
            });
        });
        let main = b.proc("main", 0, |p| {
            let buf = p.malloc(c(8 * 400), "buf");
            p.parallel(region, vec![l(buf)]);
        });
        let prog = b.build(main);
        let mut cfg = tiny_sim();
        cfg.omp_threads = 4;
        let report = run_world(&prog, &WorldConfig::single_node(cfg, 1), |_| NullObserver);
        // All 400 iterations execute exactly once across the team.
        assert_eq!(report.nodes[0].machine_stats.stores, 400);
    }

    #[test]
    fn omp_for_partitions_disjointly() {
        // Each thread writes a distinct value to its chunk; serial check
        // via a second pass would need value reads, so instead verify op
        // counts: with 4 threads and 100 iterations, exactly 100 stores.
        let mut b = ProgramBuilder::new("t");
        let region = b.outlined("fill", 1, |p| {
            let buf = p.param(0);
            p.omp_for(c(0), c(100), |p, i| p.store_val(l(buf), l(i), 8, Expr::ThreadId));
        });
        let main = b.proc("main", 0, |p| {
            let buf = p.malloc(c(800), "buf");
            p.parallel(region, vec![l(buf)]);
        });
        let prog = b.build(main);
        let mut cfg = tiny_sim();
        cfg.omp_threads = 4;
        let report = run_world(&prog, &WorldConfig::single_node(cfg, 1), |_| NullObserver);
        assert_eq!(report.nodes[0].machine_stats.stores, 100);
    }

    #[test]
    fn omp_barrier_aligns_team() {
        let mut b = ProgramBuilder::new("t");
        let region = b.outlined("skewed", 1, |p| {
            let buf = p.param(0);
            // Thread 0 does much more work before the barrier.
            p.if_(
                Expr::ThreadId,
                Cmp::Eq,
                c(0),
                |p| p.compute(50_000),
                |p| p.compute(10),
            );
            p.omp_barrier();
            p.omp_for(c(0), c(4), |p, i| p.store(l(buf), l(i), 8));
        });
        let main = b.proc("main", 0, |p| {
            let buf = p.malloc(c(64), "buf");
            p.parallel(region, vec![l(buf)]);
        });
        let prog = b.build(main);
        let mut cfg = tiny_sim();
        cfg.omp_threads = 4;
        let report = run_world(&prog, &WorldConfig::single_node(cfg, 1), |_| NullObserver);
        // Wall must reflect the slow thread's pre-barrier work.
        assert!(report.wall > 50_000);
    }

    #[test]
    fn mpi_barrier_aligns_ranks_across_nodes() {
        let mut b = ProgramBuilder::new("t");
        let main = b.proc("main", 0, |p| {
            // Rank 1 works 100k cycles, rank 0 works 10.
            p.if_(Expr::RankId, Cmp::Eq, c(1), |p| p.compute(100_000), |p| p.compute(10));
            p.mpi_barrier();
            p.compute(5);
        });
        let prog = b.build(main);
        let cfg = WorldConfig { sim: tiny_sim(), ranks: 2, ranks_per_node: 1 };
        let report = run_world(&prog, &cfg, |_| NullObserver);
        assert_eq!(report.nodes.len(), 2);
        // Both nodes end past the barrier release (>= 100k).
        for n in &report.nodes {
            assert!(n.wall > 100_000, "node {} wall {}", n.node, n.wall);
        }
    }

    #[test]
    fn phases_are_recorded_and_measured() {
        let mut b = ProgramBuilder::new("t");
        let main = b.proc("main", 0, |p| {
            p.phase("setup", |p| p.compute(1_000));
            p.phase("solve", |p| p.compute(9_000));
        });
        let prog = b.build(main);
        let report =
            run_world(&prog, &WorldConfig::single_node(tiny_sim(), 1), |_| NullObserver);
        assert_eq!(report.phase_names(), vec!["setup", "solve"]);
        let solve = report.phase_wall("solve").expect("solve phase recorded");
        let setup = report.phase_wall("setup").expect("setup phase recorded");
        assert!(solve >= 9_000);
        assert!(setup >= 1_000);
        assert!(setup < solve);
    }

    #[test]
    fn unknown_phase_is_none_not_a_panic() {
        let mut b = ProgramBuilder::new("t");
        let main = b.proc("main", 0, |p| {
            p.phase("solve", |p| p.compute(100));
        });
        let prog = b.build(main);
        let report =
            run_world(&prog, &WorldConfig::single_node(tiny_sim(), 1), |_| NullObserver);
        assert_eq!(report.phase_wall("warmup"), None, "unrecorded phase must be None");
        assert!(report.phase_wall("solve").is_some());
    }

    /// Observer that records events for assertions.
    #[derive(Default)]
    struct Recorder {
        samples: Vec<(Sample, u32, u32, usize)>, // sample, rank, thread, depth
        allocs: Vec<AllocEvent>,
        frees: Vec<FreeEvent>,
        modules: Vec<String>,
    }

    impl NodeObserver for Recorder {
        fn on_sample(&mut self, s: &Sample, v: &ThreadView<'_>) -> u64 {
            self.samples.push((*s, v.rank, v.thread, v.frames.len()));
            0
        }
        fn on_alloc(&mut self, e: &AllocEvent, _v: &ThreadView<'_>) -> u64 {
            self.allocs.push(*e);
            0
        }
        fn on_free(&mut self, e: &FreeEvent, _v: &ThreadView<'_>) -> u64 {
            self.frees.push(*e);
            0
        }
        fn on_module(&mut self, ev: &crate::observer::ModuleEvent<'_>) {
            if let crate::observer::ModuleEvent::Loaded { def, .. } = ev {
                self.modules.push(def.name.clone());
            }
        }
    }

    #[test]
    fn sampling_observer_sees_memory_samples_with_context() {
        let mut b = ProgramBuilder::new("t");
        let kernel = b.proc("kernel", 1, |p| {
            let buf = p.param(0);
            p.for_(c(0), c(5_000), |p, i| {
                p.load(l(buf), rem(l(i), c(512)), 8);
            });
        });
        let main = b.proc("main", 0, |p| {
            let buf = p.calloc(c(4096), "buf");
            p.call(kernel, vec![l(buf)]);
        });
        let prog = b.build(main);
        let mut cfg = tiny_sim();
        cfg.pmu = Some(PmuConfig::Ibs { period: 100, skid: 2 });
        let report = run_world(&prog, &WorldConfig::single_node(cfg, 1), |_| Recorder::default());
        let rec = &report.observers[0];
        assert!(!rec.samples.is_empty(), "IBS must deliver samples");
        // Samples inside `kernel` see a two-deep stack (main -> kernel).
        let with_mem: Vec<_> = rec.samples.iter().filter(|(s, ..)| s.ea.is_some()).collect();
        assert!(!with_mem.is_empty());
        assert!(with_mem.iter().any(|(_, _, _, depth)| *depth == 2));
        // Alloc event was observed with the calloc flag.
        assert_eq!(rec.allocs.len(), 1);
        assert!(rec.allocs[0].zeroed);
        assert_eq!(rec.modules, vec!["t".to_string()]);
    }

    #[test]
    fn master_calloc_places_pages_on_one_domain() {
        // The NUMA pathology in miniature: master callocs and the region
        // reads; every page homes on the master's domain, so the other
        // domain's threads go remote.
        let mut b = ProgramBuilder::new("t");
        let region = b.outlined("read", 1, |p| {
            let buf = p.param(0);
            p.omp_for(c(0), c(4096), |p, i| p.load(l(buf), l(i), 8));
        });
        let main = b.proc("main", 0, |p| {
            let buf = p.calloc(c(8 * 4096), "buf");
            p.parallel(region, vec![l(buf)]);
        });
        let prog = b.build(main);
        let mut cfg = tiny_sim();
        cfg.omp_threads = 4; // tiny_test has 4 hw threads over 2 domains
        let report = run_world(&prog, &WorldConfig::single_node(cfg, 1), |_| NullObserver);
        let s = &report.nodes[0].machine_stats;
        assert!(
            s.remote_dram + s.remote_l3_hits > 0,
            "threads on domain 1 must hit remote data: {s:?}"
        );
        // All DRAM demand lands on domain 0 (master's).
        let h = &report.nodes[0].dram_histogram;
        assert!(h[0] > 0);
        assert!(h[0] > h[1] * 4, "dram demand skewed to master domain: {h:?}");
    }

    #[test]
    fn marked_event_pmu_only_samples_remote() {
        let mut b = ProgramBuilder::new("t");
        let region = b.outlined("read", 1, |p| {
            let buf = p.param(0);
            // Line-stride reads (one element per 64-byte line): too fast
            // for prefetch to hide the remote latency completely.
            p.omp_for(c(0), c(8192), |p, i| p.load(l(buf), mul(l(i), c(8)), 8));
        });
        let main = b.proc("main", 0, |p| {
            let buf = p.calloc(c(8 * 8 * 8192), "buf");
            p.parallel(region, vec![l(buf)]);
        });
        let prog = b.build(main);
        let mut cfg = tiny_sim();
        cfg.omp_threads = 4;
        cfg.pmu = Some(PmuConfig::Marked {
            event: MarkedEvent::DataFromRmem,
            threshold: 8,
            skid: 1,
        });
        let report = run_world(&prog, &WorldConfig::single_node(cfg, 1), |_| Recorder::default());
        let rec = &report.observers[0];
        assert!(!rec.samples.is_empty(), "remote traffic must produce marked samples");
        for (s, ..) in &rec.samples {
            assert_eq!(s.source, Some(dcp_machine::DataSource::RemoteDram));
        }
    }

    #[test]
    fn determinism_across_runs() {
        let build = || {
            let mut b = ProgramBuilder::new("t");
            let region = b.outlined("w", 1, |p| {
                let buf = p.param(0);
                p.omp_for(c(0), c(2000), |p, i| {
                    p.store(l(buf), l(i), 8);
                    p.load(l(buf), rem(mul(l(i), c(7)), c(2000)), 8);
                });
            });
            let main = b.proc("main", 0, |p| {
                let buf = p.calloc(c(16000), "buf");
                p.parallel(region, vec![l(buf)]);
                p.free(l(buf));
            });
            b.build(main)
        };
        let mut cfg = tiny_sim();
        cfg.omp_threads = 3;
        cfg.pmu = Some(PmuConfig::Ibs { period: 64, skid: 3 });
        let p1 = build();
        let p2 = build();
        let r1 = run_world(&p1, &WorldConfig::single_node(cfg.clone(), 1), |_| Recorder::default());
        let r2 = run_world(&p2, &WorldConfig::single_node(cfg, 1), |_| Recorder::default());
        assert_eq!(r1.wall, r2.wall);
        assert_eq!(r1.observers[0].samples.len(), r2.observers[0].samples.len());
        for (a, b) in r1.observers[0].samples.iter().zip(&r2.observers[0].samples) {
            assert_eq!(a.0.precise_ip, b.0.precise_ip);
            assert_eq!(a.0.ea, b.0.ea);
        }
    }

    #[test]
    fn observer_overhead_slows_simulated_time() {
        struct Expensive;
        impl NodeObserver for Expensive {
            fn on_alloc(&mut self, _: &AllocEvent, _: &ThreadView<'_>) -> u64 {
                50_000
            }
        }
        let build = || {
            let mut b = ProgramBuilder::new("t");
            let main = b.proc("main", 0, |p| {
                p.for_(c(0), c(20), |p, _| {
                    let a = p.malloc(c(64), "tmp");
                    p.free(l(a));
                });
            });
            b.build(main)
        };
        let p1 = build();
        let p2 = build();
        let base = run_world(&p1, &WorldConfig::single_node(tiny_sim(), 1), |_| NullObserver);
        let slow = run_world(&p2, &WorldConfig::single_node(tiny_sim(), 1), |_| Expensive);
        assert!(slow.wall > base.wall + 19 * 50_000);
    }

    #[test]
    fn brk_allocations_complete_without_alloc_events() {
        let mut b = ProgramBuilder::new("t");
        let main = b.proc("main", 0, |p| {
            let v = p.brk_alloc(c(4096));
            p.for_(c(0), c(16), |p, i| p.store(l(v), l(i), 8));
        });
        let prog = b.build(main);
        let report =
            run_world(&prog, &WorldConfig::single_node(tiny_sim(), 1), |_| Recorder::default());
        assert!(report.observers[0].allocs.is_empty(), "brk is invisible to wrappers");
        assert_eq!(report.nodes[0].machine_stats.stores, 16);
    }

    #[test]
    fn stack_allocations_are_frame_scoped() {
        let mut b = ProgramBuilder::new("t");
        let leaf = b.proc("leaf", 0, |p| {
            // 1 KiB local array, touched, released at return.
            let local = p.stack_alloc(c(1024));
            p.for_(c(0), c(16), |p, i| p.store(l(local), l(i), 8));
            p.ret(None);
        });
        let main = b.proc("main", 0, |p| {
            // Repeated calls reuse the same stack addresses (frame pop
            // restores the cursor), so the touched page set stays tiny.
            p.for_(c(0), c(100), |p, _| p.call(leaf, vec![]));
        });
        let prog = b.build(main);
        let report =
            run_world(&prog, &WorldConfig::single_node(tiny_sim(), 1), |_| NullObserver);
        let s = &report.nodes[0].machine_stats;
        assert_eq!(s.stores, 1600);
        // All 1600 stores hit the same 1 KiB: after the first call the
        // lines are L1-resident.
        assert!(s.l1_hits > 1400, "stack reuse must stay cached: {s:?}");
    }

    #[test]
    fn worker_stacks_are_disjoint() {
        let mut b = ProgramBuilder::new("t");
        let region = b.outlined("w", 0, |p| {
            let local = p.stack_alloc(c(4096));
            p.omp_for(c(0), c(64), |p, i| p.store(l(local), rem(l(i), c(64)), 8));
        });
        let main = b.proc("main", 0, |p| p.parallel(region, vec![]));
        let prog = b.build(main);
        let mut cfg = tiny_sim();
        cfg.omp_threads = 4;
        let report = run_world(&prog, &WorldConfig::single_node(cfg, 1), |_| NullObserver);
        // 4 threads x 4096-byte locals on distinct windows: each thread
        // first-touches its own page (4 pages placed, not 1).
        assert_eq!(report.nodes[0].machine_stats.stores, 64);
    }

    #[test]
    #[should_panic(expected = "stack overflow")]
    fn stack_overflow_is_detected() {
        let mut b = ProgramBuilder::new("t");
        let main = b.proc("main", 0, |p| {
            p.for_(c(0), c(10_000), |p, _| {
                // Allocations in a loop within ONE frame accumulate until
                // the window blows.
                let x = p.stack_alloc(c(1 << 16));
                p.store(l(x), c(0), 8);
            });
        });
        let prog = b.build(main);
        let _ = run_world(&prog, &WorldConfig::single_node(tiny_sim(), 1), |_| NullObserver);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn mismatched_mpi_barriers_panic() {
        let mut b = ProgramBuilder::new("t");
        let main = b.proc("main", 0, |p| {
            p.if_(Expr::RankId, Cmp::Eq, c(0), |p| p.mpi_barrier(), |p| p.compute(1));
        });
        let prog = b.build(main);
        let cfg = WorldConfig { sim: tiny_sim(), ranks: 2, ranks_per_node: 2 };
        let _ = run_world(&prog, &cfg, |_| NullObserver);
    }
}
