//! # dcp-runtime — simulated parallel-program runtime
//!
//! The execution substrate for the `memgaze` data-centric profiler
//! (reproduction of Liu & Mellor-Crummey, SC'13). The paper's profiler
//! monitors real MPI+OpenMP binaries; this crate provides the synthetic
//! equivalent — programs written in a small structured IR and interpreted
//! on the [`dcp_machine`] NUMA simulator:
//!
//! * [`ir`] / [`build`] — the program representation and builder DSL:
//!   procedures, loops, loads/stores with explicit strides and
//!   indirection, malloc/calloc/free, OpenMP parallel regions and
//!   worksharing, MPI barriers, phases, `dlopen`.
//! * [`alloc`] — the per-process heap allocator the profiler wraps.
//! * [`exec`] / [`sched`] — the interpreter and the min-clock node
//!   scheduler that interleaves threads deterministically.
//! * [`par`] — the world runner mapping MPI ranks onto nodes.
//! * [`observer`] — the monitoring surface (PMU samples, allocation
//!   hooks, module events) a profiler attaches to; hook return values are
//!   overhead cycles charged to the monitored thread, which is how
//!   measurement overhead becomes observable in simulated time.
//! * [`layout`] — the global address-space layout.

pub mod alloc;
pub mod build;
pub mod exec;
pub mod ir;
pub mod layout;
pub mod observer;
pub mod par;
pub mod sched;

pub use build::ProgramBuilder;
pub use exec::{CostModel, PhaseRecord};
pub use ir::{Ip, LocalId, ModuleId, ProcId, Program};
pub use observer::{
    AllocEvent, FrameInfo, FreeEvent, ModuleEvent, NodeObserver, NullObserver, ThreadView,
};
pub use dcp_net as net;
pub use par::{run_world, NodeReport, SimError, WorldConfig, WorldReport};
pub use sched::{NetPending, NodeSim, Quiescence, SimConfig};

#[cfg(test)]
mod proptests {
    use dcp_support::prop::{any_bool, vec};
    use dcp_support::props;

    use crate::build::ProgramBuilder;
    use crate::ir::ex::*;
    use crate::ir::Program;
    use crate::observer::NullObserver;
    use crate::par::{run_world, WorldConfig};
    use crate::sched::SimConfig;
    use dcp_machine::MachineConfig;

    /// A randomized-but-valid program: a few arrays, nested loops with
    /// random strides, an optional parallel region and call chain.
    fn build_random(
        sizes: &[u8],
        strides: &[i64],
        iters: i64,
        threads: u32,
        use_calls: bool,
    ) -> Program {
        let mut b = ProgramBuilder::new("rand");
        let helper = b.proc("helper", 2, |p| {
            let (buf, i) = (p.param(0), p.param(1));
            p.load(l(buf), l(i), 8);
            p.ret(None);
        });
        let region = b.outlined("region", 2, |p| {
            let (buf, n) = (p.param(0), p.param(1));
            p.omp_for(c(0), l(n), |p, i| p.store(l(buf), l(i), 8));
        });
        let sizes = sizes.to_vec();
        let strides = strides.to_vec();
        let main = b.proc("main", 0, |p| {
            let mut handles = Vec::new();
            for &sz in &sizes {
                handles.push(p.malloc(c(1i64 << (10 + (sz % 8))), "arr"));
            }
            for (k, &st) in strides.iter().enumerate() {
                let h = handles[k % handles.len()];
                let elems = 128i64;
                p.for_(c(0), c(iters), |p, i| {
                    if use_calls && k == 0 {
                        p.call(helper, vec![l(h), rem(mul(l(i), c(st.max(1))), c(elems))]);
                    } else {
                        p.load(l(h), rem(mul(l(i), c(st.max(1))), c(elems)), 8);
                    }
                });
            }
            if threads > 1 {
                p.parallel_n(region, vec![l(handles[0]), c(64)], c(threads as i64));
            }
            for &h in &handles {
                p.free(l(h));
            }
        });
        b.build(main)
    }

    props! {
        cases = 24;

        /// Any generated program terminates with conserved access counts:
        /// loads+stores equal the statically predictable totals, and two
        /// runs agree exactly (determinism through the whole stack).
        fn runs_terminate_deterministically(
            sizes in vec(0u8..8, 1..4),
            strides in vec(1i64..200, 1..4),
            iters in 1i64..300,
            threads in 1u32..4,
            use_calls in any_bool(),
        ) {
            let r1 = {
                let prog = build_random(&sizes, &strides, iters, threads, use_calls);
                run_world(&prog, &WorldConfig::single_node(
                    SimConfig::new(MachineConfig::tiny_test()), 1), |_| NullObserver).unwrap()
            };
            let r2 = {
                let prog = build_random(&sizes, &strides, iters, threads, use_calls);
                run_world(&prog, &WorldConfig::single_node(
                    SimConfig::new(MachineConfig::tiny_test()), 1), |_| NullObserver).unwrap()
            };
            assert_eq!(r1.wall, r2.wall);
            assert_eq!(r1.nodes[0].ops, r2.nodes[0].ops);
            let s = &r1.nodes[0].machine_stats;
            let expected_loads = strides.len() as u64 * iters as u64;
            assert_eq!(s.loads, expected_loads);
            let expected_stores = if threads > 1 { 64 } else { 0 };
            assert_eq!(s.stores, expected_stores);
        }

        /// Wall time is monotone in work: adding iterations never makes
        /// the run faster.
        fn wall_is_monotone_in_iterations(
            iters in 10i64..200,
            extra in 1i64..200,
        ) {
            let wall = |n| {
                let prog = build_random(&[3], &[7], n, 1, false);
                run_world(&prog, &WorldConfig::single_node(
                    SimConfig::new(MachineConfig::tiny_test()), 1), |_| NullObserver)
                    .unwrap()
                    .wall
            };
            assert!(wall(iters + extra) > wall(iters));
        }
    }
}
