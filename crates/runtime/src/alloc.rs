//! The per-process heap allocator.
//!
//! A libc-like allocator the profiler wraps: `malloc`/`calloc` return
//! process-local virtual addresses, `free` recycles them LIFO per size
//! class (so freed-then-reallocated memory reuses hot addresses exactly
//! like real allocators, which matters for cache behaviour). Allocations
//! of a page or more are page-aligned so that NUMA placement policies act
//! on whole variables.
//!
//! A separate `brk` region models allocations the profiler *cannot* wrap
//! (the paper calls out C++ template containers that grow the data
//! segment directly); accesses to it classify as *unknown* data.

use dcp_support::FxHashMap;

/// Process-local base of the heap region.
pub const HEAP_BASE: u64 = 0x0400_0000_0000;
/// Process-local base of the brk region.
pub const BRK_BASE: u64 = 0x0600_0000_0000;
/// Process-local base of thread stacks (one window per thread).
pub const STACK_BASE: u64 = 0x0700_0000_0000;
/// Size of each thread's stack window.
pub const STACK_WINDOW: u64 = 1 << 21;
/// Exclusive end of the stack region (supports up to 4096 threads).
pub const STACK_END: u64 = STACK_BASE + 4096 * STACK_WINDOW;

/// Size-class rounding: 16-byte granularity below a page, page
/// granularity above.
fn size_class(bytes: u64) -> u64 {
    if bytes >= 4096 {
        (bytes + 4095) & !4095
    } else {
        ((bytes.max(1)) + 15) & !15
    }
}

/// One process's heap.
#[derive(Debug)]
pub struct HeapAllocator {
    next: u64,
    brk_next: u64,
    free_lists: FxHashMap<u64, Vec<u64>>,
    live: FxHashMap<u64, u64>,
    allocs: u64,
    frees: u64,
    live_bytes: u64,
    peak_bytes: u64,
}

impl Default for HeapAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl HeapAllocator {
    pub fn new() -> Self {
        Self {
            next: HEAP_BASE,
            brk_next: BRK_BASE,
            free_lists: FxHashMap::default(),
            live: FxHashMap::default(),
            allocs: 0,
            frees: 0,
            live_bytes: 0,
            peak_bytes: 0,
        }
    }

    /// Allocate `bytes`; returns the block's process-local address.
    ///
    /// # Panics
    /// Panics if `bytes` is zero (our workloads never make zero-byte
    /// allocations, and catching them early beats silent aliasing).
    pub fn malloc(&mut self, bytes: u64) -> u64 {
        assert!(bytes > 0, "zero-byte allocation");
        let class = size_class(bytes);
        let addr = match self.free_lists.get_mut(&class).and_then(Vec::pop) {
            Some(a) => a,
            None => {
                let a = if class >= 4096 {
                    self.next = (self.next + 4095) & !4095;
                    self.next
                } else {
                    self.next
                };
                self.next = a + class;
                a
            }
        };
        self.live.insert(addr, class);
        self.allocs += 1;
        self.live_bytes += class;
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
        addr
    }

    /// Free a block; returns its (class-rounded) size.
    ///
    /// # Panics
    /// Panics on double free or a pointer that was never allocated.
    pub fn free(&mut self, addr: u64) -> u64 {
        let class = self.live.remove(&addr).expect("free of unallocated pointer");
        self.free_lists.entry(class).or_default().push(addr);
        self.frees += 1;
        self.live_bytes -= class;
        class
    }

    /// Size of a live block, if `addr` is one.
    pub fn size_of(&self, addr: u64) -> Option<u64> {
        self.live.get(&addr).copied()
    }

    /// Reallocate `addr` to `bytes`: allocates a new block, returns
    /// `(new_addr, old_class, new_class)`. The caller models the copy
    /// traffic. Shrinking within the same size class keeps the address,
    /// as libc allocators do.
    ///
    /// # Panics
    /// Panics if `addr` is not a live block.
    pub fn realloc(&mut self, addr: u64, bytes: u64) -> (u64, u64, u64) {
        let old_class = *self.live.get(&addr).expect("realloc of unallocated pointer");
        if size_class(bytes) == old_class {
            return (addr, old_class, old_class);
        }
        let new = self.malloc(bytes);
        let new_class = self.size_of(new).expect("just allocated");
        self.free(addr);
        (new, old_class, new_class)
    }

    /// `brk`-style bump allocation (never freed, invisible to wrappers).
    pub fn brk(&mut self, bytes: u64) -> u64 {
        assert!(bytes > 0);
        let a = self.brk_next;
        self.brk_next = (a + bytes + 15) & !15;
        a
    }

    /// (allocations, frees) performed so far.
    pub fn counts(&self) -> (u64, u64) {
        (self.allocs, self.frees)
    }

    /// High-water mark of live heap bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_blocks_do_not_overlap() {
        let mut h = HeapAllocator::new();
        let a = h.malloc(100);
        let b = h.malloc(100);
        assert!(b >= a + 100 || a >= b + 100);
    }

    #[test]
    fn large_allocations_page_aligned() {
        let mut h = HeapAllocator::new();
        h.malloc(24); // misalign the bump pointer
        let big = h.malloc(10_000);
        assert_eq!(big % 4096, 0);
    }

    #[test]
    fn free_then_malloc_reuses_lifo() {
        let mut h = HeapAllocator::new();
        let a = h.malloc(4096);
        let b = h.malloc(4096);
        h.free(a);
        h.free(b);
        assert_eq!(h.malloc(4096), b, "LIFO reuse");
        assert_eq!(h.malloc(4096), a);
    }

    #[test]
    fn size_of_tracks_live_blocks() {
        let mut h = HeapAllocator::new();
        let a = h.malloc(100);
        assert_eq!(h.size_of(a), Some(112)); // rounded to 16
        h.free(a);
        assert_eq!(h.size_of(a), None);
    }

    #[test]
    #[should_panic(expected = "free of unallocated")]
    fn double_free_panics() {
        let mut h = HeapAllocator::new();
        let a = h.malloc(64);
        h.free(a);
        h.free(a);
    }

    #[test]
    fn brk_region_is_disjoint_from_heap() {
        let mut h = HeapAllocator::new();
        let heap = h.malloc(1 << 20);
        let brk = h.brk(1 << 20);
        assert!(brk >= BRK_BASE);
        assert!(heap < BRK_BASE);
    }

    #[test]
    fn peak_bytes_high_water_mark() {
        let mut h = HeapAllocator::new();
        let a = h.malloc(4096);
        let b = h.malloc(4096);
        h.free(a);
        h.free(b);
        h.malloc(4096);
        assert_eq!(h.peak_bytes(), 8192);
    }

    #[test]
    fn counts_track_operations() {
        let mut h = HeapAllocator::new();
        let a = h.malloc(16);
        let b = h.malloc(16);
        h.free(a);
        assert_eq!(h.counts(), (2, 1));
        let _ = b;
    }
}
