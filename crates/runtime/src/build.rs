//! Builder DSL for constructing [`Program`]s.
//!
//! Workloads are written against [`ProgramBuilder`] / [`ProcBuilder`]:
//!
//! ```
//! use dcp_runtime::build::ProgramBuilder;
//! use dcp_runtime::ir::ex::*;
//!
//! let mut b = ProgramBuilder::new("demo");
//! let main = b.proc("main", 0, |p| {
//!     let buf = p.calloc(c(1 << 16), "buf");
//!     p.for_(c(0), c(1024), |p, i| {
//!         p.load(l(buf), l(i), 8);
//!     });
//!     p.free(l(buf));
//! });
//! let prog = b.build(main);
//! assert_eq!(prog.proc(main).name, "main");
//! ```
//!
//! Every statement is assigned a per-procedure uid and a source line (set
//! with [`ProcBuilder::line`]) so the profiler can map samples back to
//! "source".

use crate::ir::{
    AllocKind, Cmp, Expr, Ip, LineInfo, LocalId, ModuleDef, ModuleId, Proc, ProcId, Program,
    Spanned, StaticSym, Stmt,
};
use dcp_machine::PagePolicy;

/// Per-module static-data layout: each module owns a 256 MiB window
/// starting at `STATIC_BASE + module * STATIC_WINDOW` in process-local
/// address space.
pub const STATIC_BASE: u64 = 0x0100_0000_0000;
pub const STATIC_WINDOW: u64 = 0x1000_0000;

/// Builds one program: modules, statics, procedures.
pub struct ProgramBuilder {
    modules: Vec<ModuleDef>,
    static_cursor: Vec<u64>,
    procs: Vec<Option<Proc>>,
    names: Vec<String>,
    lines: Vec<Vec<LineInfo>>,
}

impl ProgramBuilder {
    /// New program whose module 0 is the executable `exe_name`.
    pub fn new(exe_name: &str) -> Self {
        Self {
            modules: vec![ModuleDef {
                name: exe_name.to_string(),
                statics: Vec::new(),
                load_at_start: true,
            }],
            static_cursor: vec![0],
            procs: Vec::new(),
            names: Vec::new(),
            lines: Vec::new(),
        }
    }

    /// Add a shared library. `load_at_start` distinguishes linked
    /// libraries from `dlopen`-only plugins.
    pub fn add_module(&mut self, name: &str, load_at_start: bool) -> ModuleId {
        self.modules.push(ModuleDef { name: name.to_string(), statics: Vec::new(), load_at_start });
        self.static_cursor.push(0);
        ModuleId((self.modules.len() - 1) as u16)
    }

    /// Reserve a static array of `bytes` in module 0; returns its
    /// process-local virtual address.
    pub fn static_array(&mut self, name: &str, bytes: u64) -> u64 {
        self.static_array_in(ModuleId(0), name, bytes)
    }

    /// Reserve a static array in a specific module.
    pub fn static_array_in(&mut self, module: ModuleId, name: &str, bytes: u64) -> u64 {
        let m = module.0 as usize;
        // Page-align every static so placement policies act per variable.
        let cur = (self.static_cursor[m] + 4095) & !4095;
        let addr = STATIC_BASE + module.0 as u64 * STATIC_WINDOW + cur;
        assert!(
            cur + bytes <= STATIC_WINDOW,
            "module {} static window overflow",
            self.modules[m].name
        );
        self.static_cursor[m] = cur + bytes;
        self.modules[m].statics.push(StaticSym { name: name.to_string(), addr, bytes });
        addr
    }

    /// Forward-declare a procedure in module 0 (for mutual recursion and
    /// call-before-definition ordering).
    pub fn declare(&mut self, name: &str, n_params: u16) -> ProcId {
        self.declare_in(ModuleId(0), name, n_params)
    }

    /// Forward-declare a procedure in a specific module.
    pub fn declare_in(&mut self, module: ModuleId, name: &str, n_params: u16) -> ProcId {
        let id = ProcId(self.procs.len() as u32);
        assert!(self.procs.len() < 0x10000, "too many procedures for the Ip encoding");
        self.procs.push(None);
        self.names.push(name.to_string());
        self.lines.push(Vec::new());
        // Stash params so define() can check; encode in name side-table.
        self.procs[id.0 as usize] = Some(Proc {
            name: name.to_string(),
            module,
            n_params,
            n_locals: n_params,
            body: Vec::new(),
            outlined: false,
        });
        id
    }

    /// Define the body of a previously declared procedure.
    pub fn define(&mut self, id: ProcId, f: impl FnOnce(&mut ProcBuilder)) {
        let (n_params, module) = {
            let p = self.procs[id.0 as usize].as_ref().expect("declared");
            (p.n_params, p.module)
        };
        let mut pb = ProcBuilder::new(id, n_params);
        f(&mut pb);
        let (body, n_locals, lines, outlined) = pb.finish();
        let slot = self.procs[id.0 as usize].as_mut().expect("declared");
        assert!(slot.body.is_empty(), "procedure {} defined twice", slot.name);
        slot.body = body;
        slot.n_locals = n_locals;
        slot.outlined = outlined;
        let _ = module;
        self.lines[id.0 as usize] = lines;
    }

    /// Declare and define a procedure in module 0 in one step.
    pub fn proc(&mut self, name: &str, n_params: u16, f: impl FnOnce(&mut ProcBuilder)) -> ProcId {
        let id = self.declare(name, n_params);
        self.define(id, f);
        id
    }

    /// Declare and define an outlined OpenMP region body. Its display name
    /// gets the `$$OL$$` suffix the paper's figures show.
    pub fn outlined(
        &mut self,
        base_name: &str,
        n_params: u16,
        f: impl FnOnce(&mut ProcBuilder),
    ) -> ProcId {
        let id = self.declare(&format!("{base_name}$$OL$$"), n_params);
        let (body, n_locals, lines, _) = {
            let mut pb = ProcBuilder::new(id, n_params);
            f(&mut pb);
            pb.finish()
        };
        let slot = self.procs[id.0 as usize].as_mut().expect("declared");
        slot.body = body;
        slot.n_locals = n_locals;
        slot.outlined = true;
        self.lines[id.0 as usize] = lines;
        id
    }

    /// Finish the program with `entry` as `main`.
    ///
    /// # Panics
    /// Panics if any declared procedure was never defined (except
    /// parameterless empty bodies, which are legal no-ops).
    pub fn build(self, entry: ProcId) -> Program {
        let procs: Vec<Proc> = self
            .procs
            .into_iter()
            .map(|p| p.expect("all declared procs defined"))
            .collect();
        Program { modules: self.modules, procs, entry, lines: self.lines }
    }
}

/// Builds one procedure body. Obtained through
/// [`ProgramBuilder::proc`]/[`define`](ProgramBuilder::define).
pub struct ProcBuilder {
    #[allow(dead_code)]
    id: ProcId,
    blocks: Vec<Vec<Spanned>>,
    next_local: u16,
    next_uid: u32,
    lines: Vec<LineInfo>,
    cur_line: u32,
    outlined: bool,
}

impl ProcBuilder {
    fn new(id: ProcId, n_params: u16) -> Self {
        Self {
            id,
            blocks: vec![Vec::new()],
            next_local: n_params,
            next_uid: 0,
            lines: Vec::new(),
            cur_line: 1,
            outlined: false,
        }
    }

    fn finish(mut self) -> (Vec<Spanned>, u16, Vec<LineInfo>, bool) {
        assert_eq!(self.blocks.len(), 1, "unbalanced blocks");
        (self.blocks.pop().unwrap(), self.next_local.max(1), self.lines, self.outlined)
    }

    /// Allocate a fresh local.
    pub fn local(&mut self) -> LocalId {
        let l = LocalId(self.next_local);
        self.next_local += 1;
        l
    }

    /// Parameter `i` of this procedure.
    pub fn param(&self, i: u16) -> LocalId {
        LocalId(i)
    }

    /// Set the "source line" recorded for subsequent statements.
    pub fn line(&mut self, n: u32) {
        self.cur_line = n;
    }

    fn push_hint(&mut self, kind: Stmt, hint: &'static str) -> u32 {
        let uid = self.next_uid;
        self.next_uid += 1;
        self.lines.push(LineInfo { line: self.cur_line, hint });
        self.blocks.last_mut().expect("block").push(Spanned { uid, kind });
        uid
    }

    fn push(&mut self, kind: Stmt) -> u32 {
        self.push_hint(kind, "")
    }

    /// `dst = e`.
    pub fn let_(&mut self, dst: LocalId, e: impl Into<Expr>) {
        self.push(Stmt::Let(dst, e.into()));
    }

    /// Declare a fresh local initialized to `e`.
    pub fn def(&mut self, e: impl Into<Expr>) -> LocalId {
        let l = self.local();
        self.let_(l, e);
        l
    }

    /// Load `base[index]` (element size `elem` bytes), discarding the value.
    pub fn load(&mut self, base: impl Into<Expr>, index: impl Into<Expr>, elem: u8) {
        self.push(Stmt::Load { base: base.into(), index: index.into(), elem, dst: None });
    }

    /// Load `base[index]` into a fresh local (for indirection).
    pub fn load_to(&mut self, base: impl Into<Expr>, index: impl Into<Expr>, elem: u8) -> LocalId {
        let dst = self.local();
        self.push(Stmt::Load { base: base.into(), index: index.into(), elem, dst: Some(dst) });
        dst
    }

    /// Store to `base[index]` (pure traffic; no value recorded).
    pub fn store(&mut self, base: impl Into<Expr>, index: impl Into<Expr>, elem: u8) {
        self.push(Stmt::Store { base: base.into(), index: index.into(), elem, value: None });
    }

    /// Store `value` to `base[index]`, recording it in backing memory so a
    /// later [`load_to`](Self::load_to) observes it (index arrays).
    pub fn store_val(
        &mut self,
        base: impl Into<Expr>,
        index: impl Into<Expr>,
        elem: u8,
        value: impl Into<Expr>,
    ) {
        self.push(Stmt::Store {
            base: base.into(),
            index: index.into(),
            elem,
            value: Some(value.into()),
        });
    }

    /// `ops` cycles of non-memory work.
    pub fn compute(&mut self, ops: u32) {
        self.push(Stmt::Compute { ops });
    }

    fn block<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> (Vec<Spanned>, R) {
        self.blocks.push(Vec::new());
        let r = f(self);
        (self.blocks.pop().expect("pushed above"), r)
    }

    /// `for var in start..end` with unit step.
    pub fn for_(
        &mut self,
        start: impl Into<Expr>,
        end: impl Into<Expr>,
        f: impl FnOnce(&mut Self, LocalId),
    ) {
        self.for_step(start, end, 1, f);
    }

    /// `for var in (start..end).step_by(step)`; negative steps count down
    /// (`start` exclusive bound semantics mirror C `for` loops).
    pub fn for_step(
        &mut self,
        start: impl Into<Expr>,
        end: impl Into<Expr>,
        step: i64,
        f: impl FnOnce(&mut Self, LocalId),
    ) {
        assert!(step != 0, "zero loop step");
        let var = self.local();
        let (body, ()) = self.block(|p| f(p, var));
        self.push(Stmt::For { var, start: start.into(), end: end.into(), step, body });
    }

    /// Two-way branch.
    pub fn if_(
        &mut self,
        a: impl Into<Expr>,
        cmp: Cmp,
        b: impl Into<Expr>,
        then_f: impl FnOnce(&mut Self),
        else_f: impl FnOnce(&mut Self),
    ) {
        let (then_body, ()) = self.block(then_f);
        let (else_body, ()) = self.block(else_f);
        self.push(Stmt::If { a: a.into(), cmp, b: b.into(), then_body, else_body });
    }

    /// Call `callee(args...)`, ignoring any return value.
    pub fn call(&mut self, callee: ProcId, args: Vec<Expr>) {
        self.push(Stmt::Call { callee, args, ret: None });
    }

    /// Call `callee(args...)` and latch its return value in a fresh local.
    pub fn call_ret(&mut self, callee: ProcId, args: Vec<Expr>) -> LocalId {
        let ret = self.local();
        self.push(Stmt::Call { callee, args, ret: Some(ret) });
        ret
    }

    /// Like [`call_ret`](Self::call_ret) with a source-level display hint
    /// — used at calls of allocation wrappers, where the hint names the
    /// variable being allocated (`S_diag_j = hypre_CAlloc(...)`).
    pub fn call_ret_hint(&mut self, callee: ProcId, args: Vec<Expr>, hint: &'static str) -> LocalId {
        let ret = self.local();
        self.push_hint(Stmt::Call { callee, args, ret: Some(ret) }, hint);
        ret
    }

    /// Return (optionally with a value).
    pub fn ret(&mut self, v: Option<Expr>) {
        self.push(Stmt::Ret(v));
    }

    /// `malloc(bytes)`; `hint` is the source-level variable name a reader
    /// would see at this allocation site.
    pub fn malloc(&mut self, bytes: impl Into<Expr>, hint: &'static str) -> LocalId {
        self.alloc_full(bytes, AllocKind::Malloc, None, hint)
    }

    /// `calloc(bytes)` — zero-fills, so the calling thread first-touches
    /// every page.
    pub fn calloc(&mut self, bytes: impl Into<Expr>, hint: &'static str) -> LocalId {
        self.alloc_full(bytes, AllocKind::Calloc, None, hint)
    }

    /// Allocation with an explicit libnuma-style placement policy.
    pub fn alloc_full(
        &mut self,
        bytes: impl Into<Expr>,
        kind: AllocKind,
        policy: Option<PagePolicy>,
        hint: &'static str,
    ) -> LocalId {
        let dst = self.local();
        self.push_hint(Stmt::Alloc { dst, bytes: bytes.into(), kind, policy }, hint);
        dst
    }

    /// `free(ptr)`.
    pub fn free(&mut self, ptr: impl Into<Expr>) {
        self.push(Stmt::Free { ptr: ptr.into() });
    }

    /// `realloc(ptr, bytes)`; the (possibly moved) pointer lands in a
    /// fresh local. `hint` names the variable, as for allocations.
    pub fn realloc(
        &mut self,
        ptr: impl Into<Expr>,
        bytes: impl Into<Expr>,
        hint: &'static str,
    ) -> LocalId {
        let dst = self.local();
        self.push_hint(Stmt::Realloc { dst, ptr: ptr.into(), bytes: bytes.into() }, hint);
        dst
    }

    /// `brk`-style allocation the profiler cannot wrap (C++ containers).
    pub fn brk_alloc(&mut self, bytes: impl Into<Expr>) -> LocalId {
        let dst = self.local();
        self.push(Stmt::Brk { dst, bytes: bytes.into() });
        dst
    }

    /// Stack allocation (a local array), released when the enclosing
    /// procedure returns.
    pub fn stack_alloc(&mut self, bytes: impl Into<Expr>) -> LocalId {
        let dst = self.local();
        self.push(Stmt::Salloc { dst, bytes: bytes.into() });
        dst
    }

    /// Fork a parallel region running `outlined(args...)` with the team
    /// size from the run configuration.
    pub fn parallel(&mut self, outlined: ProcId, args: Vec<Expr>) {
        self.push(Stmt::Parallel { outlined, args, num_threads: None });
    }

    /// Fork a parallel region with an explicit team size.
    pub fn parallel_n(&mut self, outlined: ProcId, args: Vec<Expr>, n: impl Into<Expr>) {
        self.push(Stmt::Parallel { outlined, args, num_threads: Some(n.into()) });
    }

    /// Statically-scheduled `#pragma omp for` loop (inside an outlined
    /// region body only).
    pub fn omp_for(
        &mut self,
        start: impl Into<Expr>,
        end: impl Into<Expr>,
        f: impl FnOnce(&mut Self, LocalId),
    ) {
        let var = self.local();
        let (body, ()) = self.block(|p| f(p, var));
        self.push(Stmt::OmpFor { var, start: start.into(), end: end.into(), body });
    }

    /// Team barrier.
    pub fn omp_barrier(&mut self) {
        self.push(Stmt::OmpBarrier);
    }

    /// Global MPI barrier.
    pub fn mpi_barrier(&mut self) {
        self.push(Stmt::MpiBarrier);
    }

    /// Fixed-cost MPI communication.
    pub fn mpi_cost(&mut self, cycles: u64) {
        self.push(Stmt::MpiCost { cycles });
    }

    /// Paired exchange with rank `peer` (`MPI_Sendrecv` semantics): send
    /// `bytes`, receive the peer's payload, block until both complete.
    /// The peer must issue a matching exchange naming this rank or the
    /// world reports an exchange deadlock.
    pub fn mpi_exchange(&mut self, peer: impl Into<Expr>, bytes: impl Into<Expr>) {
        self.push(Stmt::MpiExchange { peer: peer.into(), bytes: bytes.into() });
    }

    /// Run `f` bracketed by phase markers named `name`.
    pub fn phase(&mut self, name: &'static str, f: impl FnOnce(&mut Self)) {
        self.push(Stmt::PhaseBegin(name));
        f(self);
        self.push(Stmt::PhaseEnd(name));
    }

    /// `dlopen` a module built with `load_at_start = false`.
    pub fn dlopen(&mut self, m: ModuleId) {
        self.push(Stmt::DlOpen(m));
    }

    /// `dlclose` a module.
    pub fn dlclose(&mut self, m: ModuleId) {
        self.push(Stmt::DlClose(m));
    }
}

/// The IP of statement `uid` in `proc` of `program` — helper for tests
/// that assert on attribution.
pub fn ip_of(program: &Program, proc: ProcId, uid: u32) -> Ip {
    Ip::new(program.proc(proc).module, proc, uid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ex::*;

    #[test]
    fn builds_nested_structure() {
        let mut b = ProgramBuilder::new("t");
        let helper = b.proc("helper", 1, |p| {
            let x = p.param(0);
            p.load(l(x), c(0), 8);
            p.ret(None);
        });
        let main = b.proc("main", 0, |p| {
            let buf = p.malloc(c(4096), "buf");
            p.for_(c(0), c(10), |p, i| {
                p.store(l(buf), l(i), 8);
                p.call(helper, vec![l(buf)]);
            });
            p.free(l(buf));
        });
        let prog = b.build(main);
        assert_eq!(prog.procs.len(), 2);
        assert_eq!(prog.proc(main).name, "main");
        // main body: Alloc, For, Free — loop body stmts carry distinct uids.
        assert_eq!(prog.proc(main).body.len(), 3);
        match &prog.proc(main).body[1].kind {
            Stmt::For { body, .. } => assert_eq!(body.len(), 2),
            other => panic!("expected For, got {other:?}"),
        }
    }

    #[test]
    fn uids_are_unique_within_proc() {
        let mut b = ProgramBuilder::new("t");
        let main = b.proc("main", 0, |p| {
            p.compute(1);
            p.for_(c(0), c(2), |p, _| {
                p.compute(1);
                p.compute(1);
            });
            p.compute(1);
        });
        let prog = b.build(main);
        let mut uids = Vec::new();
        fn walk(body: &[Spanned], uids: &mut Vec<u32>) {
            for s in body {
                uids.push(s.uid);
                if let Stmt::For { body, .. } = &s.kind {
                    walk(body, uids);
                }
            }
        }
        walk(&prog.proc(main).body, &mut uids);
        let mut sorted = uids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), uids.len());
    }

    #[test]
    fn line_info_and_hints_recorded() {
        let mut b = ProgramBuilder::new("t");
        let mut alloc_uid = 0;
        let main = b.proc("main", 0, |p| {
            p.line(175);
            let a = p.calloc(c(8192), "S_diag_j");
            alloc_uid = 0; // first stmt
            p.line(480);
            p.load(l(a), c(1), 8);
        });
        let prog = b.build(main);
        let ip = ip_of(&prog, main, alloc_uid);
        let li = prog.line_info(ip);
        assert_eq!(li.line, 175);
        assert_eq!(li.hint, "S_diag_j");
        let li2 = prog.line_info(ip_of(&prog, main, 1));
        assert_eq!(li2.line, 480);
        assert_eq!(li2.hint, "");
    }

    #[test]
    fn statics_are_page_aligned_and_disjoint() {
        let mut b = ProgramBuilder::new("t");
        let a = b.static_array("a", 100);
        let c_ = b.static_array("c", 10000);
        let d = b.static_array("d", 8);
        assert_eq!(a % 4096, 0);
        assert_eq!(c_ % 4096, 0);
        assert!(c_ >= a + 100);
        assert!(d >= c_ + 10000);
        let main = b.proc("main", 0, |_| {});
        let prog = b.build(main);
        assert_eq!(prog.modules[0].statics.len(), 3);
    }

    #[test]
    fn statics_in_second_module_use_its_window() {
        let mut b = ProgramBuilder::new("t");
        let m = b.add_module("libfoo.so", false);
        let a0 = b.static_array("a", 8);
        let a1 = b.static_array_in(m, "b", 8);
        assert_eq!(a1 - a0, STATIC_WINDOW);
        let main = b.proc("main", 0, |_| {});
        b.build(main);
    }

    #[test]
    fn outlined_proc_gets_suffix() {
        let mut b = ProgramBuilder::new("t");
        let region = b.outlined("solve", 1, |p| {
            p.omp_for(c(0), c(8), |p, i| p.load(l(p.param(0)), l(i), 8));
        });
        let main = b.proc("main", 0, |p| p.parallel(region, vec![c(0)]));
        let prog = b.build(main);
        assert!(prog.proc(region).name.contains("$$OL$$"));
        assert!(prog.proc(region).outlined);
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn double_definition_panics() {
        let mut b = ProgramBuilder::new("t");
        let id = b.declare("f", 0);
        b.define(id, |p| p.compute(1));
        b.define(id, |p| p.compute(1));
    }
}
