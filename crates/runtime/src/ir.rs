//! The program intermediate representation.
//!
//! The profiler under study monitors *compiled binaries*; it never sees
//! source code at runtime. Our stand-in for a compiled binary is a small
//! structured IR: procedures made of loops, calls, arithmetic on integer
//! locals, memory loads/stores with explicit addressing (so strides and
//! indirection are first-class), allocation-family calls, and OpenMP/MPI
//! constructs. Every statement carries a synthetic instruction address
//! ([`Ip`]) registered in its module's line map, which is what the
//! profiler attributes samples to.

use dcp_machine::PagePolicy;

/// Index of a procedure within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub u32);

/// Index of a local (register) within a procedure frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LocalId(pub u16);

/// Index of a load module (executable or shared library).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModuleId(pub u16);

/// A synthetic instruction address: `module (16) | proc (16) | stmt (32)`.
///
/// Encoded as a plain `u64` so the machine, PMU and profiler can treat it
/// exactly like a hardware instruction pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ip(pub u64);

impl Ip {
    pub fn new(module: ModuleId, proc: ProcId, stmt: u32) -> Self {
        Ip(((module.0 as u64) << 48) | ((proc.0 as u64 & 0xffff) << 32) | stmt as u64)
    }

    pub fn module(self) -> ModuleId {
        ModuleId((self.0 >> 48) as u16)
    }

    pub fn proc(self) -> ProcId {
        ProcId(((self.0 >> 32) & 0xffff) as u32)
    }

    pub fn stmt(self) -> u32 {
        self.0 as u32
    }
}

/// Integer expression over locals and runtime intrinsics.
#[derive(Debug, Clone)]
pub enum Expr {
    Const(i64),
    Local(LocalId),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Div(Box<Expr>, Box<Expr>),
    Rem(Box<Expr>, Box<Expr>),
    Min(Box<Expr>, Box<Expr>),
    Max(Box<Expr>, Box<Expr>),
    /// OpenMP thread id within the current team (0 outside a region).
    ThreadId,
    /// Size of the current OpenMP team (1 outside a region).
    NumThreads,
    /// MPI rank of the executing process.
    RankId,
    /// Number of MPI ranks.
    NumRanks,
}

impl From<i64> for Expr {
    fn from(v: i64) -> Self {
        Expr::Const(v)
    }
}

impl From<LocalId> for Expr {
    fn from(l: LocalId) -> Self {
        Expr::Local(l)
    }
}

/// Comparison used by [`Stmt::If`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    Lt,
    Le,
    Eq,
    Ne,
    Ge,
    Gt,
}

/// Allocation flavour, mirroring the malloc family the profiler wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocKind {
    /// `malloc`: no page is touched at allocation time, so first touch
    /// happens in the computation (the paper's "first-touch" fix).
    Malloc,
    /// `calloc`: the allocating thread zero-fills, touching every page —
    /// the root cause of the AMG2006/Streamcluster/NW NUMA pathologies.
    Calloc,
}

/// A statement tagged with its per-procedure uid; the uid combined with
/// the enclosing module and procedure forms the statement's [`Ip`].
#[derive(Debug, Clone)]
pub struct Spanned {
    pub uid: u32,
    pub kind: Stmt,
}

/// One statement. Memory-accessing statements carry the statement index
/// that, combined with the enclosing module/proc, forms their [`Ip`].
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `local = expr`.
    Let(LocalId, Expr),
    /// Load `elem`-byte element `base[index]`; optionally latch the loaded
    /// value into `dst` (needed for indirection).
    Load { base: Expr, index: Expr, elem: u8, dst: Option<LocalId> },
    /// Store to `base[index]`. `value` is recorded in backing memory only
    /// when present (index arrays); pure data traffic passes `None`.
    Store { base: Expr, index: Expr, elem: u8, value: Option<Expr> },
    /// `ops` retired non-memory operations (1 cycle each).
    Compute { ops: u32 },
    /// Counted loop: `for var in (start..end).step_by(step)`.
    For { var: LocalId, start: Expr, end: Expr, step: i64, body: Vec<Spanned> },
    /// Two-way branch.
    If { a: Expr, cmp: Cmp, b: Expr, then_body: Vec<Spanned>, else_body: Vec<Spanned> },
    /// Call `callee(args...)`; an optional return value lands in `ret`.
    Call { callee: ProcId, args: Vec<Expr>, ret: Option<LocalId> },
    /// Return from the current procedure.
    Ret(Option<Expr>),
    /// Allocate `bytes` on the process heap; pointer lands in `dst`.
    /// `policy` models libnuma-style per-allocation placement.
    Alloc { dst: LocalId, bytes: Expr, kind: AllocKind, policy: Option<PagePolicy> },
    /// Free a heap pointer.
    Free { ptr: Expr },
    /// `realloc(ptr, bytes)`: grows/shrinks a live block; the new pointer
    /// lands in `dst`. Growing copies the old contents (real line
    /// traffic).
    Realloc { dst: LocalId, ptr: Expr, bytes: Expr },
    /// Allocate `bytes` via `brk` (C++ container style): invisible to the
    /// profiler's allocation wrappers, so accesses classify as *unknown*.
    Brk { dst: LocalId, bytes: Expr },
    /// Allocate `bytes` on the executing thread's stack; automatically
    /// released when the enclosing procedure frame returns. Accesses
    /// classify as *stack* data (the paper's §7 extension; its original
    /// system lumped these into unknown).
    Salloc { dst: LocalId, bytes: Expr },
    /// Fork an OpenMP parallel region executing `outlined(args...)` on
    /// `num_threads` threads (team size defaults to the run configuration).
    Parallel { outlined: ProcId, args: Vec<Expr>, num_threads: Option<Expr> },
    /// Statically-scheduled worksharing loop; only valid inside an
    /// outlined parallel-region procedure.
    OmpFor { var: LocalId, start: Expr, end: Expr, body: Vec<Spanned> },
    /// Team-wide barrier inside a parallel region.
    OmpBarrier,
    /// Global barrier across all MPI ranks.
    MpiBarrier,
    /// Fixed-cost communication (sendrecv etc.); cost only, no data.
    MpiCost { cycles: u64 },
    /// Paired exchange (`MPI_Sendrecv` semantics): send `bytes` to rank
    /// `peer` and receive whatever `peer` sends back in its own matching
    /// exchange. The rank blocks until both transfers complete; with a
    /// network configured, cross-node transfers become flows through the
    /// switch fabric and the completion time includes queueing.
    MpiExchange { peer: Expr, bytes: Expr },
    /// Begin/end a named program phase (for per-phase timing à la Table 2).
    PhaseBegin(&'static str),
    PhaseEnd(&'static str),
    /// Load a shared library mid-run (registers its static symbols).
    DlOpen(ModuleId),
    /// Unload a shared library (its statics become unmapped).
    DlClose(ModuleId),
}

/// A procedure: name, owning module, parameter/local counts, body.
#[derive(Debug)]
pub struct Proc {
    pub name: String,
    pub module: ModuleId,
    /// The first `n_params` locals receive call arguments.
    pub n_params: u16,
    pub n_locals: u16,
    pub body: Vec<Spanned>,
    /// True for compiler-outlined parallel-region bodies (displayed with
    /// the `$$OL$$`-style suffix the paper shows).
    pub outlined: bool,
}

/// A named static variable within a module's data segment.
#[derive(Debug, Clone)]
pub struct StaticSym {
    pub name: String,
    /// Process-local virtual address (the runtime adds the per-rank base).
    pub addr: u64,
    pub bytes: u64,
}

/// A load module: executable or shared library.
#[derive(Debug)]
pub struct ModuleDef {
    pub name: String,
    /// Static variables in this module's `.bss`.
    pub statics: Vec<StaticSym>,
    /// Loaded at program start (executable & linked libs) or only via
    /// `DlOpen` (plugins).
    pub load_at_start: bool,
}

/// Source-position record for one statement.
#[derive(Debug, Clone, Copy, Default)]
pub struct LineInfo {
    pub line: u32,
    /// Builder-supplied display hint: for an allocation site, the source
    /// variable name being allocated (what a human reads off the source
    /// pane); empty otherwise.
    pub hint: &'static str,
}

/// A complete program: modules, procedures, statement line maps.
#[derive(Debug)]
pub struct Program {
    pub modules: Vec<ModuleDef>,
    pub procs: Vec<Proc>,
    pub entry: ProcId,
    /// `lines[proc][stmt_uid]` — source info per statement uid.
    pub(crate) lines: Vec<Vec<LineInfo>>,
}

impl Program {
    /// The procedure table entry for `id`.
    pub fn proc(&self, id: ProcId) -> &Proc {
        &self.procs[id.0 as usize]
    }

    /// The module table entry for `id`.
    pub fn module(&self, id: ModuleId) -> &ModuleDef {
        &self.modules[id.0 as usize]
    }

    /// Source info for an instruction address.
    pub fn line_info(&self, ip: Ip) -> LineInfo {
        self.lines
            .get(ip.proc().0 as usize)
            .and_then(|v| v.get(ip.stmt() as usize))
            .copied()
            .unwrap_or_default()
    }

    /// Human-readable rendering of an IP: `proc@module:line`.
    pub fn render_ip(&self, ip: Ip) -> String {
        let p = self.proc(ip.proc());
        let li = self.line_info(ip);
        format!("{}:{}", p.name, li.line)
    }
}

/// Convenience expression constructors used heavily by workload builders.
pub mod ex {
    use super::{Expr, LocalId};

    pub fn c(v: i64) -> Expr {
        Expr::Const(v)
    }
    pub fn l(id: LocalId) -> Expr {
        Expr::Local(id)
    }
    pub fn add(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
        Expr::Add(Box::new(a.into()), Box::new(b.into()))
    }
    pub fn sub(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
        Expr::Sub(Box::new(a.into()), Box::new(b.into()))
    }
    pub fn mul(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
        Expr::Mul(Box::new(a.into()), Box::new(b.into()))
    }
    pub fn div(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
        Expr::Div(Box::new(a.into()), Box::new(b.into()))
    }
    pub fn rem(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
        Expr::Rem(Box::new(a.into()), Box::new(b.into()))
    }
    pub fn min(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
        Expr::Min(Box::new(a.into()), Box::new(b.into()))
    }
    pub fn max(a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
        Expr::Max(Box::new(a.into()), Box::new(b.into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_roundtrip() {
        let ip = Ip::new(ModuleId(3), ProcId(17), 0xdead);
        assert_eq!(ip.module(), ModuleId(3));
        assert_eq!(ip.proc(), ProcId(17));
        assert_eq!(ip.stmt(), 0xdead);
    }

    #[test]
    fn ip_ordering_groups_by_module_then_proc() {
        let a = Ip::new(ModuleId(0), ProcId(1), 999);
        let b = Ip::new(ModuleId(0), ProcId(2), 0);
        let c = Ip::new(ModuleId(1), ProcId(0), 0);
        assert!(a < b && b < c);
    }

    #[test]
    fn expr_from_impls() {
        let e: Expr = 5i64.into();
        assert!(matches!(e, Expr::Const(5)));
        let e: Expr = LocalId(2).into();
        assert!(matches!(e, Expr::Local(LocalId(2))));
    }
}
