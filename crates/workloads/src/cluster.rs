//! Cluster-scale synthetic workloads: multi-node MPI programs whose
//! cross-node traffic exercises the `dcp-net` fabric.
//!
//! Two communication patterns, both weak-scaling (per-rank work is
//! constant, so ideal scaling keeps wall time flat as ranks grow):
//!
//! * **Halo** — a 1-D domain decomposition exchanging ghost cells with
//!   both neighbors each iteration, in the classic even/odd two-phase
//!   schedule (phase A pairs `(0,1), (2,3), …`; phase B pairs
//!   `(1,2), (3,4), …` with the chain ends sitting out). This is the
//!   nearest-neighbor traffic of stencil codes like Sweep3D's wavefront.
//! * **Hypercube** — `log2(ranks)` stages of butterfly exchange (stage
//!   `k` pairs each rank with `rank XOR k`), the traffic of a
//!   recursive-doubling allreduce. Every stage crosses more of the
//!   fabric than the last, so spine links light up and congestion
//!   becomes visible in the per-link stats.
//!
//! Both run on `tiny_test` nodes so hundreds of ranks simulate quickly,
//! with several ranks per node: same-node pairs take the shared-memory
//! path and cross-node pairs become network flows — the split the
//! profiler's `net_wait` accounting is meant to expose.

use dcp_machine::MachineConfig;
use dcp_net::{NetConfig, TopologySpec};
use dcp_runtime::ir::ex::*;
use dcp_runtime::ir::{Cmp, Expr};
use dcp_runtime::{Program, ProgramBuilder, SimConfig, WorldConfig};

/// Which communication pattern the ranks run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterPattern {
    /// Even/odd nearest-neighbor ghost exchange (requires even `ranks`).
    Halo,
    /// Butterfly / recursive-doubling exchange (requires power-of-two
    /// `ranks`).
    Hypercube,
}

/// Workload scale.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    pub pattern: ClusterPattern,
    /// Total MPI ranks.
    pub ranks: u32,
    /// Ranks co-located per simulated node.
    pub ranks_per_node: u32,
    /// Per-rank working-set elements (8 bytes each).
    pub elems: i64,
    /// Outer iterations.
    pub iters: i64,
    /// Ghost-payload bytes per exchange.
    pub bytes: i64,
}

impl ClusterConfig {
    /// Fast configuration for tests: 8 ranks over 4 nodes.
    pub fn small(pattern: ClusterPattern) -> Self {
        Self { pattern, ranks: 8, ranks_per_node: 2, elems: 256, iters: 2, bytes: 4096 }
    }

    /// Scaled configuration for the rank sweep: `ranks` must satisfy the
    /// pattern's shape constraint (even / power of two).
    pub fn scaled(pattern: ClusterPattern, ranks: u32) -> Self {
        Self { pattern, ranks, ranks_per_node: 4, elems: 256, iters: 2, bytes: 8192 }
    }

    /// Simulated nodes this configuration spans.
    pub fn nodes(&self) -> u32 {
        self.ranks.div_ceil(self.ranks_per_node)
    }
}

/// Build the cluster model program.
pub fn build(cfg: &ClusterConfig) -> Program {
    match cfg.pattern {
        ClusterPattern::Halo => {
            assert!(
                cfg.ranks >= 2 && cfg.ranks.is_multiple_of(2),
                "halo needs an even rank count, got {}",
                cfg.ranks
            );
        }
        ClusterPattern::Hypercube => {
            assert!(
                cfg.ranks >= 2 && cfg.ranks.is_power_of_two(),
                "hypercube needs a power-of-two rank count, got {}",
                cfg.ranks
            );
        }
    }
    let (elems, iters, bytes) = (cfg.elems, cfg.iters, cfg.bytes);
    let last = (cfg.ranks - 1) as i64;

    let mut b = ProgramBuilder::new("cluster");

    // Local relaxation pass: unit-stride read-modify-write over the
    // rank's own field — the compute between communication rounds.
    let relax = b.declare("relax", 1);
    b.define(relax, |p| {
        let field = p.param(0);
        p.line(40);
        p.for_(c(0), c(elems), |p, e| {
            p.line(41);
            p.load(l(field), l(e), 8);
            p.line(42);
            p.store(l(field), l(e), 8);
            p.compute(20);
        });
        p.ret(None);
    });

    let pattern = cfg.pattern;
    let ranks = cfg.ranks;
    let main = b.proc("main", 0, |p| {
        p.line(10);
        let field = p.malloc(c(elems * 8), "Field");
        // First-touch initialization, rank-local.
        p.for_(c(0), c(elems), |p, e| {
            p.line(12);
            p.store(l(field), l(e), 8);
        });
        p.mpi_barrier();
        p.phase("solve", |p| {
            p.for_(c(0), c(iters), |p, _| {
                p.line(20);
                p.call(relax, vec![l(field)]);
                match pattern {
                    ClusterPattern::Halo => {
                        // Phase A: (0,1), (2,3), ... — every rank pairs.
                        p.line(21);
                        p.if_(
                            rem(Expr::RankId, c(2)),
                            Cmp::Eq,
                            c(0),
                            |p| p.mpi_exchange(add(Expr::RankId, c(1)), c(bytes)),
                            |p| p.mpi_exchange(sub(Expr::RankId, c(1)), c(bytes)),
                        );
                        // Phase B: (1,2), (3,4), ... — the chain ends
                        // (rank 0 and the last rank) sit the phase out.
                        p.line(22);
                        p.if_(
                            rem(Expr::RankId, c(2)),
                            Cmp::Eq,
                            c(1),
                            |p| {
                                p.if_(
                                    Expr::RankId,
                                    Cmp::Lt,
                                    c(last),
                                    |p| p.mpi_exchange(add(Expr::RankId, c(1)), c(bytes)),
                                    |p| p.compute(1),
                                )
                            },
                            |p| {
                                p.if_(
                                    Expr::RankId,
                                    Cmp::Gt,
                                    c(0),
                                    |p| p.mpi_exchange(sub(Expr::RankId, c(1)), c(bytes)),
                                    |p| p.compute(1),
                                )
                            },
                        );
                    }
                    ClusterPattern::Hypercube => {
                        // Stages k = 1, 2, 4, ...: peer = rank XOR k,
                        // spelled arithmetically as +-k on the k-th bit.
                        let mut k = 1i64;
                        while (k as u64) < ranks as u64 {
                            p.line(30);
                            p.if_(
                                rem(div(Expr::RankId, c(k)), c(2)),
                                Cmp::Eq,
                                c(0),
                                |p| p.mpi_exchange(add(Expr::RankId, c(k)), c(bytes)),
                                |p| p.mpi_exchange(sub(Expr::RankId, c(k)), c(bytes)),
                            );
                            k *= 2;
                        }
                    }
                }
            });
        });
        p.mpi_barrier();
        p.free(l(field));
    });

    b.build(main)
}

/// Fabric for `nodes` simulated nodes: a 2-level fat-tree with two nodes
/// per leaf, so cross-leaf traffic contends for the two spines.
pub fn net_config(nodes: u32) -> NetConfig {
    let leaves = nodes.div_ceil(2).clamp(1, 32);
    NetConfig::lossless(TopologySpec::FatTree { leaves, spines: 2 })
}

/// World: `tiny_test` nodes joined by the fat-tree fabric.
pub fn world(cfg: &ClusterConfig) -> WorldConfig {
    let sim = SimConfig::new(MachineConfig::tiny_test());
    WorldConfig {
        sim,
        ranks: cfg.ranks,
        ranks_per_node: cfg.ranks_per_node,
        net: Some(net_config(cfg.nodes())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_runtime::{run_world, NullObserver};

    #[test]
    fn halo_completes_and_uses_the_fabric() {
        let cfg = ClusterConfig::small(ClusterPattern::Halo);
        let r = run_world(&build(&cfg), &world(&cfg), |_| NullObserver).unwrap();
        assert_eq!(r.nodes.len(), 4);
        let net = r.net.expect("multi-node world has fabric stats");
        assert!(net.flows > 0, "cross-node pairs must use the fabric");
        // Interior ranks exchange twice per iteration; everyone at least
        // once. 8 ranks x 2 iters: between 14 and 16 exchanges per iter.
        let exchanges: u64 = r.nodes.iter().map(|n| n.exchanges).sum();
        assert_eq!(exchanges, 2 * (8 + 6));
    }

    #[test]
    fn hypercube_completes_all_stages() {
        let cfg = ClusterConfig::small(ClusterPattern::Hypercube);
        let r = run_world(&build(&cfg), &world(&cfg), |_| NullObserver).unwrap();
        // 8 ranks x log2(8)=3 stages x 2 iters.
        let exchanges: u64 = r.nodes.iter().map(|n| n.exchanges).sum();
        assert_eq!(exchanges, 8 * 3 * 2);
        let net = r.net.expect("fabric stats");
        // The k=4 stage is always cross-node (4 ranks per 2 nodes): spine
        // links carried traffic.
        assert!(net.links.iter().any(|(l, s)| l.contains("spine") && s.msgs > 0));
    }

    #[test]
    fn co_located_pairs_skip_the_fabric() {
        // 2 ranks on one node: no fabric at all.
        let cfg = ClusterConfig {
            pattern: ClusterPattern::Halo,
            ranks: 2,
            ranks_per_node: 2,
            elems: 64,
            iters: 1,
            bytes: 1024,
        };
        let r = run_world(&build(&cfg), &world(&cfg), |_| NullObserver).unwrap();
        assert!(r.net.is_none(), "single-node world must not build a fabric");
        assert_eq!(r.nodes[0].exchanges, 2);
    }

    #[test]
    fn weak_scaling_wall_grows_sublinearly() {
        // 4x the ranks must cost far less than 4x the wall (weak scaling:
        // per-rank work constant; only fabric contention grows).
        let wall = |ranks| {
            let cfg = ClusterConfig::scaled(ClusterPattern::Halo, ranks);
            run_world(&build(&cfg), &world(&cfg), |_| NullObserver).unwrap().wall
        };
        let w8 = wall(8);
        let w32 = wall(32);
        assert!(w32 < w8 * 3, "32 ranks ({w32}) vs 8 ranks ({w8})");
    }
}
