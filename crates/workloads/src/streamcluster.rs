//! Streamcluster model — Rodinia online clustering (§5.4).
//!
//! The paper's findings (128 threads, POWER7, `PM_MRK_DATA_FROM_RMEM`):
//!
//! * 98.2% of remote memory accesses hit heap data; the `block` array
//!   (all point coordinates) draws 92.6%, through pointer accesses
//!   `p1.coord`/`p2.coord` at source line 175 of the distance function —
//!   reached from *two different* OpenMP parallel regions contributing
//!   55.5% and 37% respectively. `point.p` draws another 5.5%.
//! * Root cause: `block` is allocated and initialized by the master
//!   thread, so every worker reads it remotely and the master's memory
//!   controller saturates.
//! * Fix: initialize `block` (and `point.p`) in parallel so first-touch
//!   distributes pages across the domains each thread uses → 28%.
//!
//! The model: a master- or parallel-initialized `block`, a shared `dist`
//! procedure called from two parallel regions with a 1.5:1 workload
//! ratio, and a `point_p` side array.

use dcp_machine::MachineConfig;
use dcp_runtime::ir::ex::*;
use dcp_runtime::ir::AllocKind;
use dcp_runtime::{Program, ProgramBuilder, SimConfig, WorldConfig};

/// Initialization strategy for the point block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScVariant {
    /// Master thread allocates and initializes (`calloc`-like).
    Original,
    /// Parallel first-touch initialization of `block` and `point.p`.
    ParallelFirstTouch,
}

/// Workload scale.
#[derive(Debug, Clone)]
pub struct ScConfig {
    pub variant: ScVariant,
    pub threads: u32,
    /// Points in the working block.
    pub points: i64,
    /// Coordinates per point.
    pub dims: i64,
    /// pgain rounds.
    pub iters: i64,
}

impl ScConfig {
    pub fn small(variant: ScVariant) -> Self {
        Self { variant, threads: 32, points: 4096, dims: 16, iters: 2 }
    }

    pub fn paper(variant: ScVariant) -> Self {
        Self { variant, threads: 32, points: 8192, dims: 32, iters: 3 }
    }
}

/// Build the Streamcluster model program.
pub fn build(cfg: &ScConfig) -> Program {
    let points = cfg.points;
    let dims = cfg.dims;
    let parallel_init = cfg.variant == ScVariant::ParallelFirstTouch;

    let mut b = ProgramBuilder::new("streamcluster");

    // dist(p1, p2): the shared distance function; its coordinate loads at
    // line 175 are the paper's hot accesses.
    let dist = b.declare("dist", 3);
    b.define(dist, |p| {
        let (block, base, n) = (p.param(0), p.param(1), p.param(2));
        p.for_(c(0), l(n), |p, d| {
            p.line(175);
            // p1.coord[d] and p2.coord[d]: both index into block.
            p.load(l(block), add(mul(l(base), c(dims)), l(d)), 8);
            p.load(l(block), l(d), 8);
            p.compute(6);
        });
        p.ret(None);
    });

    // Parallel-region A: the main pgain sweep (the 55.5% context).
    let pgain_a = b.outlined("pgain_parallel", 3, |p| {
        let (block, point_p, n) = (p.param(0), p.param(1), p.param(2));
        p.line(650);
        p.omp_for(c(0), l(n), |p, i| {
            p.line(653);
            p.call(dist, vec![l(block), l(i), c(dims)]);
            p.line(655);
            p.load(l(point_p), l(i), 8); // point.p (5.5%)
            p.compute(8);
        });
    });

    // Parallel-region B: the secondary sweep (the 37% context), two
    // thirds of A's volume.
    let pspeedy = b.outlined("pspeedy_parallel", 3, |p| {
        let (block, point_p, n) = (p.param(0), p.param(1), p.param(2));
        p.line(720);
        p.omp_for(c(0), mul(l(n), c(2)), |p, i| {
            p.line(722);
            p.call(dist, vec![l(block), rem(l(i), l(n)), c(dims)]);
            p.compute(8);
            let _ = point_p;
        });
    });

    // Parallel initialization region (the fix): each thread first-touches
    // its chunk of block.
    let init_par = b.outlined("parallel_init", 2, |p| {
        let (block, n) = (p.param(0), p.param(1));
        p.omp_for(c(0), l(n), |p, i| {
            p.line(90);
            p.store(l(block), l(i), 8);
        });
    });

    let iters = cfg.iters;
    let main = b.proc("main", 0, |p| {
        let total = points * dims;
        p.line(80);
        let (block, point_p) = if parallel_init {
            // malloc leaves pages unplaced; the parallel region's stores
            // distribute them by first touch.
            let blk = p.malloc(c(total * 8), "block");
            let pp = p.malloc(c(points * 8), "point.p");
            p.parallel(init_par, vec![l(blk), c(total)]);
            p.parallel(init_par, vec![l(pp), c(points)]);
            (blk, pp)
        } else {
            // Master zero-fills: every page lands on the master's domain.
            let blk = p.alloc_full(c(total * 8), AllocKind::Calloc, None, "block");
            let pp = p.alloc_full(c(points * 8), AllocKind::Calloc, None, "point.p");
            (blk, pp)
        };
        p.phase("cluster", |p| {
            p.for_(c(0), c(iters), |p, _| {
                p.line(100);
                p.parallel(pgain_a, vec![l(block), l(point_p), c(points * 3 / 2)]);
                p.line(101);
                p.parallel(pspeedy, vec![l(block), l(point_p), c(points / 2)]);
            });
        });
        p.free(l(block));
        p.free(l(point_p));
    });

    b.build(main)
}

/// World: one process on a POWER7-like node.
pub fn world(cfg: &ScConfig) -> WorldConfig {
    let mut sim = SimConfig::new(MachineConfig::power7_node());
    sim.omp_threads = cfg.threads;
    WorldConfig::single_node(sim, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_core::prelude::*;
    use dcp_machine::{MarkedEvent, PmuConfig};
    use dcp_runtime::{run_world, NullObserver};

    #[test]
    fn parallel_first_touch_speeds_up() {
        let o = {
            let cfg = ScConfig::small(ScVariant::Original);
            run_world(&build(&cfg), &world(&cfg), |_| NullObserver).unwrap().wall
        };
        let f = {
            let cfg = ScConfig::small(ScVariant::ParallelFirstTouch);
            run_world(&build(&cfg), &world(&cfg), |_| NullObserver).unwrap().wall
        };
        assert!(f < o, "first-touch {f} vs original {o}");
        let gain = (o - f) as f64 / o as f64 * 100.0;
        assert!(gain > 8.0, "gain only {gain:.1}%");
    }

    #[test]
    fn block_dominates_remote_accesses_from_two_contexts() {
        let cfg = ScConfig::small(ScVariant::Original);
        let prog = build(&cfg);
        let mut w = world(&cfg);
        w.sim.pmu =
            Some(PmuConfig::Marked { event: MarkedEvent::DataFromRmem, threshold: 4, skid: 2 });
        let run = run_profiled(&prog, &w, ProfilerConfig::default());
        let analysis = run.analyze(&prog);
        let heap = analysis.class_pct(StorageClass::Heap, Metric::Remote);
        assert!(heap > 85.0, "heap remote share {heap:.1}%");
        let vars = analysis.variables(Metric::Remote);
        assert_eq!(vars[0].name, "block");
        let block_share = 100.0 * vars[0].metrics[Metric::Remote.col()] as f64
            / analysis.grand_total(Metric::Remote) as f64;
        assert!(block_share > 60.0, "block remote share {block_share:.1}%");
        // The dist() accesses reach block from both outlined regions:
        // check the heap tree contains both region procs.
        let tree = analysis.tree(StorageClass::Heap);
        let mut names = std::collections::HashSet::new();
        for n in tree.preorder() {
            names.insert(analysis.resolve_frame(tree.frame(n)));
        }
        assert!(names.iter().any(|s| s.contains("pgain_parallel")), "{names:?}");
        assert!(names.iter().any(|s| s.contains("pspeedy_parallel")));
    }

    #[test]
    fn fix_reduces_remote_fraction() {
        let stats = |variant| {
            let cfg = ScConfig::small(variant);
            run_world(&build(&cfg), &world(&cfg), |_| NullObserver).unwrap().nodes[0]
                .machine_stats
                .clone()
        };
        let o = stats(ScVariant::Original);
        let f = stats(ScVariant::ParallelFirstTouch);
        let frac = |s: &dcp_machine::access::MachineStats| {
            s.remote_dram as f64 / (s.remote_dram + s.local_dram).max(1) as f64
        };
        assert!(
            frac(&f) < frac(&o),
            "remote fraction must drop: {:.2} -> {:.2}",
            frac(&o),
            frac(&f)
        );
    }
}
