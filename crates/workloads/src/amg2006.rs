//! AMG2006 model — hybrid MPI+OpenMP algebraic multigrid (§5.1).
//!
//! The paper's findings for AMG2006:
//!
//! * 94.9% of remote memory accesses hit heap variables; the CSR column
//!   index array `S_diag_j` (allocated through `hypre_CAlloc`) alone
//!   draws 22.2%, from two access sites in OpenMP-outlined solve loops
//!   (19.3% + 2.9%); six more matrix arrays each draw >7% (Figure 5).
//! * Root cause: `hypre_CAlloc` is `calloc` — the master thread
//!   zero-fills, first-touching every page onto its own NUMA domain;
//!   worker threads in other domains then fight for that domain's
//!   memory bandwidth.
//! * Fixes (Table 2): `numactl --interleave` speeds the solve phase but
//!   roughly doubles initialization (every allocation, including
//!   master-local workspace, becomes interleaved); `libnuma`'s selective
//!   interleaved allocation of just the problematic variables keeps
//!   initialization cheap and makes solve fastest.
//! * AMG's setup allocates small blocks at very high frequency — the
//!   workload behind the §4.1.3 tracking-overhead ablation (150% → <10%).
//!
//! The model reproduces those mechanics: seven CSR arrays calloc'd
//! through a `hypre_CAlloc` wrapper, master-local workspace, an
//! allocation storm in setup through a deep call chain, and two solve
//! kernels whose access sites hit `S_diag_j` at a roughly 4:1 ratio.

use dcp_machine::{MachineConfig, PagePolicy};
use dcp_runtime::ir::ex::*;
use dcp_runtime::ir::AllocKind;
use dcp_runtime::{Program, ProgramBuilder, SimConfig, WorldConfig};

/// Which binary/launch configuration of the study to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AmgVariant {
    /// Unmodified program, plain launch.
    Original,
    /// Unmodified program launched under `numactl --interleave=all`.
    NumactlInterleave,
    /// Problematic variables allocated with libnuma's interleaved
    /// allocator; everything else untouched.
    LibnumaSelective,
}

/// Workload scale and layout.
#[derive(Debug, Clone)]
pub struct AmgConfig {
    pub variant: AmgVariant,
    /// MPI ranks (one per node, as in the paper's 4-node runs).
    pub ranks: u32,
    /// OpenMP threads per rank.
    pub threads: u32,
    /// Matrix rows per rank.
    pub rows: i64,
    /// Relaxation sweeps in the solve phase.
    pub solve_iters: i64,
    /// Small allocations performed during setup (the allocation storm).
    pub setup_allocs: i64,
}

/// Nonzeros per matrix row (fixed stencil width).
pub const NNZ: i64 = 4;

impl AmgConfig {
    /// Fast configuration for tests.
    pub fn small(variant: AmgVariant) -> Self {
        Self { variant, ranks: 2, threads: 64, rows: 32768, solve_iters: 1, setup_allocs: 200 }
    }

    /// Benchmark configuration (scaled-down analogue of 4 ranks x 128
    /// threads on the POWER7 cluster).
    pub fn paper(variant: AmgVariant) -> Self {
        Self { variant, ranks: 4, threads: 96, rows: 32768, solve_iters: 5, setup_allocs: 3000 }
    }
}

/// The seven problematic CSR arrays of Figure 5, hottest first.
pub const HOT_ARRAYS: [&str; 7] = [
    "S_diag_j",
    "A_diag_j",
    "A_diag_data",
    "P_diag_j",
    "P_diag_data",
    "A_diag_i",
    "S_diag_data",
];

/// Build the AMG2006 model program.
pub fn build(cfg: &AmgConfig) -> Program {
    let rows = cfg.rows;
    let bytes = rows * NNZ * 8;
    let selective = cfg.variant == AmgVariant::LibnumaSelective;

    let mut b = ProgramBuilder::new("amg2006");

    // hypre_CAlloc(bytes): the allocation wrapper every matrix array
    // goes through — what makes the bottom-up view (Figure 5)
    // interesting. A second flavour carries libnuma's interleaved
    // placement for the selective-fix variant.
    let hypre_calloc = b.declare("hypre_CAlloc", 1);
    b.define(hypre_calloc, |p| {
        p.line(175);
        let ptr = p.alloc_full(l(p.param(0)), AllocKind::Calloc, None, "");
        p.ret(Some(l(ptr)));
    });
    // The libnuma flavour keeps hypre_CAlloc's zeroing contract but
    // places pages interleaved; its zero-fill stores go mostly remote,
    // which is why the paper's libnuma initialization is slightly (not
    // hugely) dearer than the original's.
    let hypre_calloc_interleaved = b.declare("hypre_CAlloc_interleaved", 1);
    b.define(hypre_calloc_interleaved, |p| {
        p.line(180);
        let ptr = p.alloc_full(l(p.param(0)), AllocKind::Calloc, Some(PagePolicy::Interleave), "");
        p.ret(Some(l(ptr)));
    });

    // The setup allocation storm goes through a deep hypre-like call
    // chain, so naive context capture walks many frames per allocation.
    let small_leaf = b.declare("hypre_SmallAlloc", 0);
    b.define(small_leaf, |p| {
        p.line(310);
        let t = p.malloc(c(256), "tmp_block");
        p.store(l(t), c(0), 8);
        p.store(l(t), c(16), 8);
        p.compute(20);
        p.free(l(t));
        p.ret(None);
    });
    let mut chain = small_leaf;
    for i in 0..6u32 {
        let next = b.declare(&format!("hypre_SetupLevel{}", 5 - i), 0);
        let callee = chain;
        b.define(next, |p| {
            p.line(400 + i);
            p.compute(4);
            p.call(callee, vec![]);
            p.ret(None);
        });
        chain = next;
    }
    let setup_chain = chain;

    // Solve kernel 1: the relaxation sweep. Touches S_diag_j (gather
    // indices), A_diag_j/data and the x vector: the paper's hot access
    // site (19.3% of remote events).
    let relax = b.outlined("hypre_BoomerAMGRelax", 6, |p| {
        let (s_j, a_j, a_data, x, n) = (p.param(0), p.param(1), p.param(2), p.param(3), p.param(4));
        let s_data = p.param(5);
        p.line(254);
        p.omp_for(c(0), l(n), |p, i| {
            p.for_(c(0), c(NNZ), |p, k| {
                let idx = add(mul(l(i), c(NNZ)), l(k));
                p.line(254);
                let col = p.load_to(l(s_j), idx.clone(), 8);
                // Strength-graph neighbour lookup: jump to the connected
                // row's entries — data-dependent, unprefetchable. This is
                // the paper's dominant access site (19.3%).
                p.line(254);
                p.load(l(s_j), mul(l(col), c(NNZ)), 8); // hot site 1
                p.line(255);
                p.load(l(a_j), idx.clone(), 8);
                p.line(256);
                p.load(l(a_data), idx, 8);
                p.line(257);
                p.load(l(x), rem(l(col), l(n)), 8);
                p.compute(30);
            });
            // Strength-weight check for this row (scattered).
            p.line(205);
            p.load(l(s_data), rem(mul(l(i), c(29 * NNZ)), mul(l(n), c(NNZ))), 8);
        });
    });

    // Solve kernel 2: interpolation. Touches S_diag_j once per row (the
    // 2.9% site) plus the P arrays.
    let interp = b.outlined("hypre_BoomerAMGInterp", 5, |p| {
        let (s_j, p_j, p_data, a_i, n) = (p.param(0), p.param(1), p.param(2), p.param(3), p.param(4));
        p.line(612);
        p.omp_for(c(0), l(n), |p, i| {
            p.line(612);
            p.load(l(a_i), l(i), 8);
            p.for_(c(0), c(NNZ), |p, k| {
                let idx = add(mul(l(i), c(NNZ)), l(k));
                p.line(614);
                p.load(l(p_j), idx.clone(), 8);
                p.line(615);
                p.load(l(p_data), idx.clone(), 8);
                p.compute(20);
            });
            p.line(618);
            p.load(l(s_j), mul(l(i), c(NNZ)), 8); // cold site for S_diag_j
        });
    });

    let solve_iters = cfg.solve_iters;
    let setup_allocs = cfg.setup_allocs;
    let main = b.proc("main", 0, |p| {
        let wrapper = if selective { hypre_calloc_interleaved } else { hypre_calloc };
        let mut handles = Vec::new();

        p.phase("initialization", |p| {
            for (i, name) in HOT_ARRAYS.iter().enumerate() {
                p.line(100 + i as u32);
                let ptr = p.call_ret_hint(wrapper, vec![c(bytes)], name);
                handles.push(ptr);
            }
            p.line(110);
            let x = p.call_ret_hint(wrapper, vec![c(rows * 8)], "x_vector");
            handles.push(x);

            // Master-local workspace: big, written by the master during
            // init, never shared. Under numactl this becomes interleaved
            // (and its writes mostly remote) — why interleave-all roughly
            // doubles initialization in Table 2.
            p.line(120);
            let ws = p.malloc(c(16 * bytes), "init_workspace");
            p.for_(c(0), c(16 * rows * NNZ / 16), |p, i| {
                p.line(121);
                p.store(l(ws), mul(l(i), c(16)), 8);
                p.compute(30);
            });
            p.free(l(ws));

            // Populate the gather indices of S_diag_j so solve's x loads
            // are irregular but bounded.
            let s_j = handles[0];
            p.for_(c(0), c(rows * NNZ), |p, i| {
                p.line(130);
                p.store_val(l(s_j), l(i), 8, rem(mul(l(i), c(17)), c(rows)));
            });
        });
        p.mpi_barrier();

        p.phase("setup", |p| {
            p.for_(c(0), c(setup_allocs), |p, _| {
                p.call(setup_chain, vec![]);
                p.compute(60);
            });
            // Matrix construction compute (cache-friendly, master-heavy).
            p.compute(200_000);
        });
        p.mpi_barrier();

        let (s_j, a_j, a_data) = (handles[0], handles[1], handles[2]);
        let (p_j, p_data, a_i) = (handles[3], handles[4], handles[5]);
        let s_data = handles[6];
        let x = handles[7];
        p.phase("solver", |p| {
            p.for_(c(0), c(solve_iters), |p, _| {
                p.line(200);
                p.parallel(relax, vec![l(s_j), l(a_j), l(a_data), l(x), c(rows), l(s_data)]);
                p.line(201);
                p.parallel(interp, vec![l(s_j), l(p_j), l(p_data), l(a_i), c(rows)]);
                p.mpi_cost(2_000);
            });
        });
        p.mpi_barrier();
    });

    b.build(main)
}

/// World configuration for this workload: one rank per node on a
/// POWER7-like machine; `numactl` is modeled as the process-wide
/// interleave default.
pub fn world(cfg: &AmgConfig) -> WorldConfig {
    let mut sim = SimConfig::new(MachineConfig::power7_node());
    sim.omp_threads = cfg.threads;
    if cfg.variant == AmgVariant::NumactlInterleave {
        sim.default_policy = PagePolicy::Interleave;
    }
    WorldConfig { sim, ranks: cfg.ranks, ranks_per_node: 1, net: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_core::prelude::*;
    use dcp_machine::{MarkedEvent, PmuConfig};
    use dcp_runtime::run_world;
    use dcp_runtime::NullObserver;

    fn run(variant: AmgVariant) -> (u64, u64, u64, u64) {
        let cfg = AmgConfig::small(variant);
        let prog = build(&cfg);
        let world = world(&cfg);
        let r = run_world(&prog, &world, |_| NullObserver).unwrap();
        let wall = |name| r.phase_wall(name).expect("AMG records all three phases");
        (wall("initialization"), wall("setup"), wall("solver"), r.wall)
    }

    #[test]
    fn interleave_all_slows_init_speeds_solve() {
        let (init_o, _setup_o, solve_o, _) = run(AmgVariant::Original);
        let (init_n, _setup_n, solve_n, _) = run(AmgVariant::NumactlInterleave);
        assert!(init_n as f64 > init_o as f64 * 1.3, "numactl init {init_n} vs {init_o}");
        assert!(solve_n < solve_o, "numactl solve {solve_n} vs {solve_o}");
    }

    #[test]
    fn selective_interleave_is_best_of_both() {
        let (init_o, _, solve_o, _) = run(AmgVariant::Original);
        let (init_n, _, _, _) = run(AmgVariant::NumactlInterleave);
        let (init_l, _, solve_l, _) = run(AmgVariant::LibnumaSelective);
        assert!(init_l < init_n, "libnuma init {init_l} must beat numactl {init_n}");
        assert!(
            (init_l as f64) < init_o as f64 * 1.35,
            "libnuma init {init_l} close to original {init_o}"
        );
        assert!(solve_l < solve_o, "libnuma solve {solve_l} vs original {solve_o}");
    }

    #[test]
    fn profiler_attributes_remote_accesses_to_s_diag_j() {
        let cfg = AmgConfig::small(AmgVariant::Original);
        let prog = build(&cfg);
        let mut w = world(&cfg);
        w.sim.pmu =
            Some(PmuConfig::Marked { event: MarkedEvent::DataFromRmem, threshold: 8, skid: 2 });
        let run = run_profiled(&prog, &w, ProfilerConfig::default());
        let analysis = run.analyze(&prog);
        let heap_pct = analysis.class_pct(StorageClass::Heap, Metric::Remote);
        assert!(heap_pct > 80.0, "heap share of remote = {heap_pct:.1}%");
        let vars = analysis.variables(Metric::Remote);
        assert!(!vars.is_empty());
        assert_eq!(vars[0].class, StorageClass::Heap);
        assert_eq!(vars[0].name, "S_diag_j", "hottest variable must be S_diag_j");
    }

    #[test]
    fn setup_storm_allocates_frequently() {
        let cfg = AmgConfig::small(AmgVariant::Original);
        let prog = build(&cfg);
        let mut w = world(&cfg);
        w.sim.pmu = Some(PmuConfig::Ibs { period: 512, skid: 2 });
        let run = run_profiled(&prog, &w, ProfilerConfig::default());
        // 200 storm allocs + 8 arrays + workspace, per rank.
        assert!(run.stats.allocs_seen >= 2 * (200 + 9), "{}", run.stats.allocs_seen);
        // Small blocks skipped by the 4K threshold.
        assert!(run.stats.allocs_tracked < run.stats.allocs_seen / 2);
    }
}
