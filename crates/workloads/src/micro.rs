//! Motivating micro-examples (Figures 1 and 2).
//!
//! * [`fig1_line_decomposition`] — one source line `sum += A[i] + B[i] *
//!   C[idx[i]]` where `A` and `B` stream (good locality) and `C` is
//!   gathered through an index array (bad locality). Code-centric
//!   profiling can only say "line 4 is slow"; data-centric profiling
//!   decomposes the line's latency per variable and fingers `C`.
//! * [`fig2_alloc_loop`] — a loop calling `malloc` 100 times. A naive
//!   data-centric tool shows 100 separate allocations with diluted
//!   metrics; allocation-path identity coalesces them into one variable.

use dcp_machine::MachineConfig;
use dcp_runtime::ir::ex::*;
use dcp_runtime::{Program, ProgramBuilder, SimConfig, WorldConfig};

/// Scale of the Figure 1 microbenchmark.
#[derive(Debug, Clone)]
pub struct Fig1Config {
    /// Elements per array.
    pub n: i64,
    /// Passes over the arrays.
    pub iters: i64,
}

impl Default for Fig1Config {
    fn default() -> Self {
        Self { n: 8192, iters: 3 }
    }
}

/// Build Figure 1's program: `for i { sum += A[i] + B[i] * C[idx[i]] }`.
///
/// `A`, `B`, `idx` are read with unit stride; `C` is gathered with a
/// pseudo-random index, so the latency of source line 4 is dominated by
/// `C` — which only a data-centric profile can show.
pub fn fig1_line_decomposition(cfg: &Fig1Config) -> Program {
    let n = cfg.n;
    let iters = cfg.iters;
    let mut b = ProgramBuilder::new("fig1");
    let main = b.proc("main", 0, |p| {
        p.line(1);
        let a = p.malloc(c(n * 8), "A");
        let bb = p.malloc(c(n * 8), "B");
        // C is large so gathers miss; 16x the streamed arrays.
        let cc = p.malloc(c(16 * n * 8), "C");
        let idx = p.malloc(c(n * 8), "idx");
        p.for_(c(0), c(n), |p, i| {
            p.line(2);
            p.store_val(l(idx), l(i), 8, rem(mul(l(i), c(40_503)), c(16 * n)));
            p.store(l(a), l(i), 8);
            p.store(l(bb), l(i), 8);
        });
        p.for_(c(0), c(iters), |p, _| {
            p.for_(c(0), c(n), |p, i| {
                // All four accesses share source line 4, like the paper's
                // Figure 1.
                p.line(4);
                p.load(l(a), l(i), 8);
                p.load(l(bb), l(i), 8);
                let j = p.load_to(l(idx), l(i), 8);
                p.load(l(cc), l(j), 8);
                p.compute(3);
            });
        });
        p.free(l(a));
        p.free(l(bb));
        p.free(l(cc));
        p.free(l(idx));
    });
    b.build(main)
}

/// Build Figure 2's program: 100 heap allocations from one call path,
/// all accessed uniformly.
pub fn fig2_alloc_loop(blocks: i64, block_bytes: i64, touches: i64) -> Program {
    let mut b = ProgramBuilder::new("fig2");
    let main = b.proc("main", 0, |p| {
        // var[i] = malloc(size) in a loop — one allocation context.
        let ptrs = p.malloc(c(blocks * 8), "var");
        p.for_(c(0), c(blocks), |p, i| {
            p.line(3);
            let blk = p.malloc(c(block_bytes), "var[i]");
            p.store_val(l(ptrs), l(i), 8, l(blk));
        });
        // Touch every block.
        p.for_(c(0), c(touches), |p, t| {
            p.line(8);
            let blk = p.load_to(l(ptrs), rem(l(t), c(blocks)), 8);
            p.line(9);
            p.load(l(blk), rem(l(t), c(block_bytes / 8)), 8);
        });
        p.for_(c(0), c(blocks), |p, i| {
            let blk = p.load_to(l(ptrs), l(i), 8);
            p.free(l(blk));
        });
        p.free(l(ptrs));
    });
    b.build(main)
}

/// A single-socket-ish world for the micro examples.
pub fn world() -> WorldConfig {
    let sim = SimConfig::new(MachineConfig::magny_cours());
    WorldConfig::single_node(sim, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_core::prelude::*;
    use dcp_machine::PmuConfig;

    #[test]
    fn fig1_c_dominates_the_shared_line() {
        let prog = fig1_line_decomposition(&Fig1Config::default());
        let mut w = world();
        w.sim.pmu = Some(PmuConfig::Ibs { period: 64, skid: 2 });
        let run = run_profiled(&prog, &w, ProfilerConfig::default());
        let analysis = run.analyze(&prog);
        let vars = analysis.variables(Metric::Latency);
        assert_eq!(vars[0].name, "C", "gathered array dominates: {:?}",
            vars.iter().map(|v| (v.name.clone(), v.metrics[Metric::Latency.col()])).collect::<Vec<_>>());
        let c_lat = vars[0].metrics[Metric::Latency.col()] as f64;
        let a_lat = vars
            .iter()
            .find(|v| v.name == "A")
            .map(|v| v.metrics[Metric::Latency.col()])
            .unwrap_or(0) as f64;
        assert!(c_lat > 3.0 * a_lat.max(1.0), "C {c_lat} vs A {a_lat}");
    }

    #[test]
    fn fig2_hundred_allocations_coalesce_to_one_variable() {
        let prog = fig2_alloc_loop(100, 8192, 20_000);
        let mut w = world();
        w.sim.pmu = Some(PmuConfig::Ibs { period: 64, skid: 2 });
        let run = run_profiled(&prog, &w, ProfilerConfig::default());
        let analysis = run.analyze(&prog);
        let vars: Vec<_> = analysis
            .variables(Metric::Samples)
            .into_iter()
            .filter(|v| v.name == "var[i]")
            .collect();
        assert_eq!(vars.len(), 1, "one variable, not 100");
        assert_eq!(vars[0].alloc_count, 100, "but 100 blocks behind it");
    }
}
