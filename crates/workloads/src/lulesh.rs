//! LULESH model — OpenMP shock hydrodynamics (§5.3).
//!
//! The paper's findings for LULESH (48 threads, AMD, IBS):
//!
//! * Heap variables carry 66.8% of total latency and 94.2% of remote
//!   DRAM accesses; the top seven node-centered arrays (coordinates,
//!   velocities, ...) each draw 3.0–9.4% of latency. All are allocated
//!   *and initialized* by the master thread, so Linux first-touch places
//!   them on the master's domain and its memory bandwidth saturates.
//!   Fix: libnuma interleaved allocation of the hot arrays → 13%.
//! * The static array `f_elem` draws 17% of latency (statics total
//!   23.6%). Its accesses are irregular: the first dimension is an
//!   indirect index through `nodeElemCornerList`, the last is computed,
//!   and the middle ranges only 0..2. Transposing `f_elem` to make the
//!   small dimension innermost restores spatial locality → 2.2%.
//!
//! The model builds both pathologies and both fixes, separately
//! toggleable, on a Magny-Cours-like 8-domain machine.

use dcp_machine::{MachineConfig, PagePolicy};
use dcp_runtime::ir::ex::*;
use dcp_runtime::ir::AllocKind;
use dcp_runtime::{Program, ProgramBuilder, SimConfig, WorldConfig};

/// Which fixes are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LuleshVariant {
    /// libnuma interleaved allocation of the hot heap arrays.
    pub interleave_heap: bool,
    /// Transposed `f_elem` layout (small dimension innermost).
    pub transpose_felem: bool,
}

impl LuleshVariant {
    pub const ORIGINAL: Self = Self { interleave_heap: false, transpose_felem: false };
    pub const INTERLEAVED: Self = Self { interleave_heap: true, transpose_felem: false };
    pub const TRANSPOSED: Self = Self { interleave_heap: false, transpose_felem: true };
    pub const BOTH: Self = Self { interleave_heap: true, transpose_felem: true };
}

/// Workload scale.
#[derive(Debug, Clone)]
pub struct LuleshConfig {
    pub variant: LuleshVariant,
    pub threads: u32,
    /// Nodes in the mesh (per array length).
    pub nnode: i64,
    /// Elements (first dimension of `f_elem`).
    pub nelem: i64,
    /// Timesteps.
    pub iters: i64,
}

impl LuleshConfig {
    pub fn small(variant: LuleshVariant) -> Self {
        Self { variant, threads: 48, nnode: 16384, nelem: 2048, iters: 4 }
    }

    pub fn paper(variant: LuleshVariant) -> Self {
        Self { variant, nnode: 65536, nelem: 32768, iters: 3, threads: 48 }
    }
}

/// The node-centered heap arrays the paper's Figure 8 lists.
pub const HEAP_ARRAYS: [&str; 8] =
    ["m_x", "m_y", "m_z", "m_xd", "m_yd", "m_zd", "m_e", "m_p"];

/// Build the LULESH model program.
pub fn build(cfg: &LuleshConfig) -> Program {
    let nnode = cfg.nnode;
    let nelem = cfg.nelem;
    let transpose = cfg.variant.transpose_felem;
    let interleave = cfg.variant.interleave_heap;

    let mut b = ProgramBuilder::new("lulesh");

    // Static data: f_elem[nelem][3][8] (doubles) and the corner list.
    let f_elem = b.static_array("f_elem", (nelem * 3 * 8 * 8) as u64);
    let corner_list = b.static_array("nodeElemCornerList", (nelem * 8) as u64);
    let sigma = b.static_array("sigxx", (nelem * 8) as u64);

    // CalcForceForNodes: streams the eight node arrays. Line-stride reads
    // (one element per cache line) keep the remote-bandwidth pressure
    // visible through the prefetcher.
    let calc_force = b.outlined("CalcForceForNodes", 8 + 1, |p| {
        let n = p.param(8);
        p.line(540);
        p.omp_for(c(0), l(n), |p, i| {
            for a in 0..8u16 {
                p.line(541 + a as u32);
                p.load(l(p.param(a)), mul(l(i), c(8)), 8);
            }
            p.compute(16);
        });
    });

    // IntegrateStressForElems: the irregular f_elem accesses of Figure 9.
    // f_elem[corner[i]][m][pos] with m in 0..2, pos computed.
    let integrate = b.outlined("IntegrateStressForElems", 2, |p| {
        let n = p.param(1);
        p.line(795);
        p.omp_for(c(0), l(n), |p, i| {
            p.line(801);
            let idx = p.load_to(c(corner_list as i64), l(i), 8);
            p.line(802);
            let pos = p.def(rem(mul(l(i), c(13)), c(8))); // Find_Pos(i)
            p.for_(c(0), c(3), |p, m| {
                let off = if transpose {
                    // [N][8][3]: m innermost — the 2.2% fix.
                    add(mul(l(idx), c(24)), add(mul(l(pos), c(3)), l(m)))
                } else {
                    // [N][3][8]: m strides 8 elements (a line apart).
                    add(mul(l(idx), c(24)), add(mul(l(m), c(8)), l(pos)))
                };
                p.line(803);
                p.load(c(f_elem as i64), off, 8);
            });
            p.line(806);
            p.load(c(sigma as i64), l(i), 8);
            p.compute(10);
        });
    });

    let iters = cfg.iters;
    let main = b.proc("main", 0, |p| {
        // All heap arrays allocated and initialized by the master (the
        // Linux first-touch pathology), or interleaved when fixed. The
        // master's initialization is modeled at page granularity — one
        // store per page is what determines placement, and LULESH's init
        // is negligible against its thousands of timesteps.
        let policy = if interleave { Some(PagePolicy::Interleave) } else { None };
        let bytes = nnode * 8 * 8;
        let pages = bytes / 4096;
        let mut handles = Vec::new();
        for (i, name) in HEAP_ARRAYS.iter().enumerate() {
            p.line(60 + i as u32);
            let h = p.alloc_full(c(bytes), AllocKind::Malloc, policy, name);
            p.for_(c(0), c(pages), |p, pg| {
                p.line(70 + i as u32);
                p.store(l(h), mul(l(pg), c(512)), 8); // first byte of each page
            });
            handles.push(h);
        }
        // Populate the element-to-node corner list (static, master).
        p.for_(c(0), c(nelem), |p, i| {
            p.line(80);
            p.store_val(c(corner_list as i64), l(i), 8, rem(mul(l(i), c(7)), c(nelem)));
        });
        p.mpi_barrier();

        p.phase("timestep", |p| {
            p.for_(c(0), c(iters), |p, _| {
                let mut args: Vec<dcp_runtime::ir::Expr> =
                    handles.iter().map(|&h| l(h)).collect();
                args.push(c(nnode));
                p.line(200);
                p.parallel(calc_force, args);
                p.line(201);
                p.parallel(integrate, vec![c(0), c(nelem)]);
            });
        });
        for &h in &handles {
            p.free(l(h));
        }
    });

    b.build(main)
}

/// World: one process on a Magny-Cours-like 8-domain node.
pub fn world(cfg: &LuleshConfig) -> WorldConfig {
    let mut sim = SimConfig::new(MachineConfig::magny_cours());
    sim.omp_threads = cfg.threads;
    WorldConfig::single_node(sim, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_core::prelude::*;
    use dcp_machine::PmuConfig;
    use dcp_runtime::{run_world, NullObserver};

    fn wall(variant: LuleshVariant) -> u64 {
        let cfg = LuleshConfig::small(variant);
        run_world(&build(&cfg), &world(&cfg), |_| NullObserver).unwrap().wall
    }

    #[test]
    fn interleaving_heap_arrays_speeds_up() {
        let o = wall(LuleshVariant::ORIGINAL);
        let i = wall(LuleshVariant::INTERLEAVED);
        assert!(i < o, "interleaved {i} vs original {o}");
        let gain = (o - i) as f64 / o as f64 * 100.0;
        assert!(gain > 4.0, "gain only {gain:.1}%");
    }

    #[test]
    fn transposing_felem_gives_small_gain() {
        let o = wall(LuleshVariant::ORIGINAL);
        let t = wall(LuleshVariant::TRANSPOSED);
        assert!(t < o, "transposed {t} vs original {o}");
        let gain = (o - t) as f64 / o as f64 * 100.0;
        // Small but real — the paper reports 2.2%.
        assert!(gain > 0.3 && gain < 20.0, "gain {gain:.1}%");
    }

    #[test]
    fn both_fixes_compose() {
        let o = wall(LuleshVariant::ORIGINAL);
        let both = wall(LuleshVariant::BOTH);
        let single = wall(LuleshVariant::INTERLEAVED);
        assert!(both < single && single < o);
    }

    #[test]
    fn heap_dominates_remote_and_felem_tops_statics() {
        let cfg = LuleshConfig::small(LuleshVariant::ORIGINAL);
        let prog = build(&cfg);
        let mut w = world(&cfg);
        w.sim.pmu = Some(PmuConfig::Ibs { period: 128, skid: 2 });
        let run = run_profiled(&prog, &w, ProfilerConfig::default());
        let analysis = run.analyze(&prog);
        let heap_remote = analysis.class_pct(StorageClass::Heap, Metric::Remote);
        assert!(heap_remote > 60.0, "heap remote share {heap_remote:.1}%");
        // Static latency exists, and f_elem is the top static variable.
        let statics: Vec<_> = analysis
            .variables(Metric::Latency)
            .into_iter()
            .filter(|v| v.class == StorageClass::Static)
            .collect();
        assert!(!statics.is_empty());
        assert_eq!(statics[0].name, "f_elem");
        // Several heap arrays share the latency (3–9.4% each in the
        // paper): at least 5 of the 8 get samples.
        let heap_vars = analysis
            .variables(Metric::Latency)
            .into_iter()
            .filter(|v| v.class == StorageClass::Heap && v.metrics[Metric::Samples.col()] > 0)
            .count();
        assert!(heap_vars >= 5, "only {heap_vars} heap arrays sampled");
    }
}
