//! Sweep3D model — MPI-only neutron transport (§5.2).
//!
//! The paper's findings for Sweep3D:
//!
//! * 97.4% of total access latency is on heap variables; `Flux` draws
//!   39.4%, `Src` 39.1%, `Face` 14.6% (93.1% together).
//! * One access to `Flux` at source line 480, deep in the call chain
//!   (`inner` → `sweep` → nested loops), alone accounts for 28.6% of
//!   total latency.
//! * Root cause: the loops at lines 477–478 traverse the column-major
//!   (Fortran) arrays along a non-contiguous dimension, so consecutive
//!   iterations stride by thousands of bytes — defeating both the
//!   hardware prefetcher and the TLB.
//! * Fix: transpose the array dimensions so the innermost loop is unit
//!   stride; the paper gains 15% end to end.
//! * Pure MPI: every rank's data is local to its own NUMA domain, so no
//!   NUMA pathology exists (and the model's ranks are pinned one per
//!   core, inheriting their domain's locality).
//!
//! The model: per-rank `Flux`/`Src`/`Face` arrays, a deep call chain, a
//! strided sweep kernel plus unit-stride update passes (the sweep is one
//! of several phases, which is why the paper's fix is worth 15% and not
//! 5x), and MPI wavefront costs.

use dcp_machine::MachineConfig;
use dcp_runtime::ir::ex::*;
use dcp_runtime::{Program, ProgramBuilder, SimConfig, WorldConfig};

/// Array layout variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepVariant {
    /// Column-major arrays traversed along the wrong dimension.
    Original,
    /// Dimensions permuted so the hot loops are unit stride.
    Transposed,
}

/// Workload scale.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    pub variant: SweepVariant,
    /// MPI ranks (all on one node, as on the 48-core AMD box).
    pub ranks: u32,
    /// First (contiguous) dimension extent.
    pub i_dim: i64,
    /// Second dimension extent (inner-loop trip count in the bad order).
    pub j_dim: i64,
    /// Planes.
    pub k_dim: i64,
    /// Sweep octant pairs per iteration.
    pub octants: i64,
    /// Outer iterations.
    pub iters: i64,
}

impl SweepConfig {
    /// Fast configuration for tests. `i_dim * 8 = 4 KiB` stride defeats
    /// the prefetcher; `j_dim` exceeds the TLB.
    pub fn small(variant: SweepVariant) -> Self {
        Self { variant, ranks: 4, i_dim: 512, j_dim: 64, k_dim: 1, octants: 1, iters: 1 }
    }

    /// Benchmark configuration (48 ranks in the paper; 12 here, same
    /// per-rank working set shape).
    pub fn paper(variant: SweepVariant) -> Self {
        Self { variant, ranks: 12, i_dim: 1024, j_dim: 64, k_dim: 2, octants: 2, iters: 2 }
    }

    fn elems(&self) -> i64 {
        self.i_dim * self.j_dim * self.k_dim
    }
}

/// Build the Sweep3D model program.
pub fn build(cfg: &SweepConfig) -> Program {
    let (i_dim, j_dim, k_dim) = (cfg.i_dim, cfg.j_dim, cfg.k_dim);
    let elems = cfg.elems();
    let transposed = cfg.variant == SweepVariant::Transposed;

    let mut b = ProgramBuilder::new("sweep3d");

    // The sweep kernel: nested loops over (k, i, j) where the j loop is
    // innermost. Column-major: element (i,j,k) lives at i + j*I + k*I*J.
    // Original: inner j varies the *second* index -> stride I elements.
    // Transposed: dimensions permuted so inner j is unit stride.
    let sweep = b.declare("sweep", 4);
    b.define(sweep, |p| {
        let (flux, src, face) = (p.param(0), p.param(1), p.param(2));
        let _dummy = p.param(3);
        p.line(475);
        p.for_(c(0), c(k_dim), |p, k| {
            p.line(477);
            p.for_(c(0), c(i_dim), |p, i| {
                p.line(478);
                p.for_(c(0), c(j_dim), |p, j| {
                    // idx(i,j,k)
                    let idx = if transposed {
                        // j contiguous: j + i*J + k*I*J
                        add(l(j), add(mul(l(i), c(j_dim)), mul(l(k), c(i_dim * j_dim))))
                    } else {
                        // column-major with j in the second dim: i + j*I
                        add(l(i), add(mul(l(j), c(i_dim)), mul(l(k), c(i_dim * j_dim))))
                    };
                    p.line(480);
                    p.load(l(flux), idx.clone(), 8); // the 28.6% access
                    p.line(481);
                    p.load(l(src), idx, 8);
                    p.compute(40); // per-cell transport solve

                });
            });
            // Face: the same pathological traversal, a third of the j
            // range (its latency share is about a third of Flux's).
            p.line(485);
            p.for_(c(0), c(i_dim / 3), |p, i| {
                p.for_(c(0), c(j_dim), |p, j| {
                    let plane = mul(l(k), c(i_dim * j_dim / 3));
                    let idx = if transposed {
                        add(add(l(j), mul(l(i), c(j_dim))), plane)
                    } else {
                        add(add(l(i), mul(l(j), c(i_dim))), plane)
                    };
                    p.line(486);
                    p.load(l(face), idx, 8);
                    p.compute(40);
                });
            });
        });
        p.ret(None);
    });

    // inner(): the deep call chain around the sweep (flux fixups etc.),
    // including unit-stride update passes — the sweep is only one of the
    // program's phases.
    let inner = b.declare("inner", 4);
    b.define(inner, |p| {
        let (flux, src, face) = (p.param(0), p.param(1), p.param(2));
        p.line(300);
        p.call(sweep, vec![l(flux), l(src), l(face), c(0)]);
        // flux fixups/DSA corrections: unit-stride passes with heavy
        // per-cell arithmetic — the sweep is one of several phases, which
        // is why fixing its stride is worth ~15%, not 5x.
        p.line(320);
        p.for_(c(0), c(2), |p, _| {
            p.for_(c(0), c(elems), |p, e| {
                p.line(321);
                p.load(l(flux), l(e), 8);
                p.line(322);
                p.store(l(src), l(e), 8);
                p.compute(250);
            });
        });
        p.ret(None);
    });

    let octants = cfg.octants;
    let iters = cfg.iters;
    let main = b.proc("main", 0, |p| {
        p.line(100);
        let flux = p.malloc(c(elems * 8), "Flux");
        p.line(101);
        let src = p.malloc(c(elems * 8), "Src");
        p.line(102);
        let face = p.malloc(c(elems * 8), "Face");
        // First-touch initialization (rank-local, unit stride).
        p.for_(c(0), c(elems), |p, e| {
            p.line(110);
            p.store(l(flux), l(e), 8);
            p.store(l(src), l(e), 8);
        });
        p.for_(c(0), c(elems), |p, e| {
            p.line(112);
            p.store(l(face), l(e), 8);
        });
        p.mpi_barrier();
        p.phase("sweep", |p| {
            p.for_(c(0), c(iters), |p, _| {
                p.for_(c(0), c(octants), |p, _| {
                    p.line(200);
                    p.call(inner, vec![l(flux), l(src), l(face), c(0)]);
                    // Wavefront neighbour exchange.
                    p.mpi_cost(5_000);
                });
                p.mpi_barrier();
            });
        });
        p.free(l(flux));
        p.free(l(src));
        p.free(l(face));
    });

    b.build(main)
}

/// World: all ranks on one Magny-Cours-like node, one rank per core
/// window (each rank inherits its window's NUMA domain).
pub fn world(cfg: &SweepConfig) -> WorldConfig {
    let sim = SimConfig::new(MachineConfig::magny_cours());
    WorldConfig { sim, ranks: cfg.ranks, ranks_per_node: cfg.ranks, net: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_core::prelude::*;
    use dcp_machine::PmuConfig;
    use dcp_runtime::{run_world, NullObserver};

    #[test]
    fn transposition_speeds_up_the_sweep() {
        let o = {
            let cfg = SweepConfig::small(SweepVariant::Original);
            run_world(&build(&cfg), &world(&cfg), |_| NullObserver).unwrap().wall
        };
        let t = {
            let cfg = SweepConfig::small(SweepVariant::Transposed);
            run_world(&build(&cfg), &world(&cfg), |_| NullObserver).unwrap().wall
        };
        assert!(t < o, "transposed {t} must beat original {o}");
        let speedup = (o as f64 - t as f64) / o as f64 * 100.0;
        assert!(speedup > 5.0, "speedup only {speedup:.1}%");
    }

    #[test]
    fn latency_attributed_to_flux_src_face_in_order() {
        let cfg = SweepConfig::small(SweepVariant::Original);
        let prog = build(&cfg);
        let mut w = world(&cfg);
        w.sim.pmu = Some(PmuConfig::Ibs { period: 96, skid: 2 });
        let run = run_profiled(&prog, &w, ProfilerConfig::default());
        let analysis = run.analyze(&prog);
        // Heap dominates latency (97.4% in the paper).
        let heap = analysis.class_pct(StorageClass::Heap, Metric::Latency);
        assert!(heap > 80.0, "heap latency share {heap:.1}%");
        let vars = analysis.variables(Metric::Latency);
        let names: Vec<&str> = vars.iter().take(3).map(|v| v.name.as_str()).collect();
        assert!(names.contains(&"Flux"), "top-3 {names:?}");
        assert!(names.contains(&"Src"), "top-3 {names:?}");
        // Face is present but clearly below Flux/Src.
        let get = |n: &str| {
            vars.iter()
                .find(|v| v.name == n)
                .map(|v| v.metrics[Metric::Latency.col()])
                .unwrap_or(0)
        };
        assert!(get("Face") > 0);
        assert!(get("Flux") > get("Face"));
        assert!(get("Src") > get("Face"));
    }

    #[test]
    fn no_numa_pathology_in_pure_mpi() {
        let cfg = SweepConfig::small(SweepVariant::Original);
        let prog = build(&cfg);
        let w = world(&cfg);
        let r = run_world(&prog, &w, |_| NullObserver).unwrap();
        let s = &r.nodes[0].machine_stats;
        // Each rank touches only its own data: remote DRAM traffic is a
        // tiny fraction of total DRAM traffic.
        let dram = s.local_dram + s.remote_dram;
        assert!(dram > 0);
        assert!(
            (s.remote_dram as f64) < 0.05 * dram as f64,
            "remote {} of {} DRAM accesses",
            s.remote_dram,
            dram
        );
    }

    /// The paper notes Sweep3D's locality problem is also visible through
    /// POWER7 marked-event sampling of PM_MRK_DATA_FROM_L3 — any event
    /// that fires on cache misses finds the same arrays.
    #[test]
    fn marked_l3_sampling_also_finds_the_arrays() {
        use dcp_machine::{MachineConfig, MarkedEvent};
        // Per-rank arrays must exceed the POWER7 node's per-domain L3 for
        // DRAM-sourced marked events to fire.
        let cfg = SweepConfig {
            variant: SweepVariant::Original,
            ranks: 2,
            i_dim: 1024,
            j_dim: 64,
            k_dim: 2,
            octants: 1,
            iters: 1,
        };
        let prog = build(&cfg);
        let mut w = world(&cfg);
        // Swap the machine for the POWER7-like node, as the paper
        // suggests running Sweep3D there with marked events.
        w.sim.machine = MachineConfig::power7_node();
        w.sim.pmu = Some(PmuConfig::Marked {
            event: MarkedEvent::DataFromMem,
            threshold: 8,
            skid: 2,
        });
        let run = run_profiled(&prog, &w, ProfilerConfig::default());
        let analysis = run.analyze(&prog);
        let vars = analysis.variables(Metric::Samples);
        let names: Vec<&str> = vars.iter().take(3).map(|v| v.name.as_str()).collect();
        for arr in ["Flux", "Src", "Face"] {
            assert!(names.contains(&arr), "{arr} missing from top-3 {names:?}");
        }
    }

    #[test]
    fn bad_stride_shows_tlb_misses() {
        let run_stats = |variant| {
            let cfg = SweepConfig::small(variant);
            let prog = build(&cfg);
            let w = world(&cfg);
            let r = run_world(&prog, &w, |_| NullObserver).unwrap();
            r.nodes[0].machine_stats.clone()
        };
        let orig = run_stats(SweepVariant::Original);
        let fixed = run_stats(SweepVariant::Transposed);
        assert!(
            orig.tlb_misses > fixed.tlb_misses * 3,
            "orig tlb {} vs fixed {}",
            orig.tlb_misses,
            fixed.tlb_misses
        );
    }
}
