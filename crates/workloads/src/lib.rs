//! # dcp-workloads — the paper's five benchmarks as simulated programs
//!
//! Faithful access-pattern models of the benchmarks studied in §5 of the
//! paper, each with its original (pathological) form and the optimized
//! variants the paper derives from data-centric feedback:
//!
//! | Module | Benchmark | Pathology | Fix | Paper speedup |
//! |---|---|---|---|---|
//! | [`amg2006`] | LLNL AMG2006 (MPI+OpenMP) | master-thread `calloc` of CSR arrays | numactl / libnuma interleave | solve 105s→80s |
//! | [`sweep3d`] | ASCI Sweep3D (MPI, Fortran) | column-major arrays walked with long strides | array transposition | 15% |
//! | [`lulesh`] | LLNL LULESH (OpenMP, C++) | master-init heap arrays + irregular static `f_elem` | interleave + transpose | 13% + 2.2% |
//! | [`streamcluster`] | Rodinia Streamcluster (OpenMP) | master-init `block` array | parallel first-touch init | 28% |
//! | [`nw`] | Rodinia Needleman-Wunsch (OpenMP) | master-init `referrence`/`input_itemsets` | libnuma interleave | 53% |
//!
//! [`micro`] holds the two motivating micro-examples: Figure 1's
//! per-variable latency decomposition of one source line, and Figure 2's
//! hundred-allocation loop.

pub mod amg2006;
pub mod cluster;
pub mod lulesh;
pub mod micro;
pub mod nw;
pub mod streamcluster;
pub mod sweep3d;
