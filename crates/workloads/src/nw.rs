//! Needleman-Wunsch model — Rodinia DNA sequence alignment (§5.5).
//!
//! The paper's findings (128 threads, POWER7, `PM_MRK_DATA_FROM_RMEM`):
//!
//! * 90.9% of remote memory accesses hit heap data; `referrence` (sic —
//!   the benchmark's own spelling) draws 61.4% and `input_itemsets`
//!   29.5%, both from the `maximum` computation at lines 163–165 inside
//!   the outlined region `_Z7runTestiPPc.omp_fn.0`.
//! * Root cause: both arrays are allocated and initialized by the master
//!   thread.
//! * Fix: libnuma-style interleaved allocation of the two arrays → 53%
//!   (the largest win in the paper — NW is almost pure memory traffic
//!   over these two arrays).
//!
//! The model: the two matrices walked in anti-diagonal wavefronts (the
//! benchmark's structure), `referrence` read roughly twice as often as
//! `input_itemsets` is updated, and a variant allocating both with an
//! interleaved policy.

use dcp_machine::{MachineConfig, PagePolicy};
use dcp_runtime::ir::ex::*;
use dcp_runtime::ir::AllocKind;
use dcp_runtime::{Program, ProgramBuilder, SimConfig, WorldConfig};

/// Allocation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NwVariant {
    /// Master-thread calloc of both matrices.
    Original,
    /// libnuma interleaved allocation of both matrices.
    Interleaved,
}

/// Workload scale.
#[derive(Debug, Clone)]
pub struct NwConfig {
    pub variant: NwVariant,
    pub threads: u32,
    /// Matrix dimension (rows = cols).
    pub dim: i64,
    /// Wavefront passes.
    pub iters: i64,
}

impl NwConfig {
    pub fn small(variant: NwVariant) -> Self {
        Self { variant, threads: 32, dim: 2048, iters: 1 }
    }

    pub fn paper(variant: NwVariant) -> Self {
        Self { variant, threads: 64, dim: 2048, iters: 3 }
    }
}

/// Build the NW model program.
pub fn build(cfg: &NwConfig) -> Program {
    let dim = cfg.dim;
    let interleave = cfg.variant == NwVariant::Interleaved;

    let mut b = ProgramBuilder::new("needleman-wunsch");

    // The outlined kernel: for each anti-diagonal, each thread processes
    // a chunk of cells; each cell reads the reference score and
    // reads/updates the itemsets matrix (lines 163-165 of the original).
    let kernel = b.outlined("_Z7runTestiPPc", 4, |p| {
        let (reference, itemsets, diag, n) = (p.param(0), p.param(1), p.param(2), p.param(3));
        p.line(160);
        p.omp_for(c(0), l(n), |p, i| {
            // Cell (row, col) on the diagonal; flattened index strides a
            // full row per step along the anti-diagonal.
            let idx = p.def(rem(add(mul(l(i), c(dim + 1)), mul(l(diag), c(31))), c(dim * dim)));
            p.line(163);
            p.load(l(reference), l(idx), 8);
            p.line(164);
            p.load(l(reference), add(l(idx), c(1)), 8);
            // The similarity-matrix rows for this cell's pair: far from
            // the wavefront, so never reused by a neighbouring cell.
            p.line(164);
            p.load(l(reference), rem(add(mul(l(idx), c(7)), c(3)), c(dim * dim)), 8);
            p.line(164);
            p.load(l(reference), rem(add(mul(l(idx), c(11)), c(5)), c(dim * dim)), 8);
            // The cell update: one miss for the cell's line; the store
            // hits the line the load just brought in (and the left/up
            // neighbour reads hit cache, so they are not modeled).
            p.line(165);
            p.load(l(itemsets), l(idx), 8);
            p.line(166);
            p.store(l(itemsets), l(idx), 8);
            p.compute(6); // maximum() of three neighbours
        });
    });

    let iters = cfg.iters;
    let main = b.proc("main", 0, |p| {
        let policy = if interleave { Some(PagePolicy::Interleave) } else { None };
        let total = dim * dim;
        p.line(40);
        let reference = p.alloc_full(c(total * 8), AllocKind::Malloc, policy, "referrence");
        p.line(41);
        let itemsets = p.alloc_full(c(total * 8), AllocKind::Malloc, policy, "input_itemsets");
        // Master initialization, modeled at page granularity: one touch
        // per page decides placement (first-touch unless interleaved).
        let pages = total * 8 / 4096;
        p.for_(c(0), c(pages), |p, pg| {
            p.line(50);
            p.store(l(reference), mul(l(pg), c(512)), 8);
            p.store(l(itemsets), mul(l(pg), c(512)), 8);
        });
        p.phase("align", |p| {
            p.for_(c(0), c(iters), |p, _| {
                p.for_(c(0), c(64), |p, diag| {
                    p.line(150);
                    p.parallel(kernel, vec![l(reference), l(itemsets), l(diag), c(dim)]);
                });
            });
        });
        p.free(l(reference));
        p.free(l(itemsets));
    });

    b.build(main)
}

/// World: one process on a POWER7-like node.
pub fn world(cfg: &NwConfig) -> WorldConfig {
    let mut sim = SimConfig::new(MachineConfig::power7_node());
    sim.omp_threads = cfg.threads;
    WorldConfig::single_node(sim, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcp_core::prelude::*;
    use dcp_machine::{MarkedEvent, PmuConfig};
    use dcp_runtime::{run_world, NullObserver};

    #[test]
    fn interleaving_gives_large_speedup() {
        let o = {
            let cfg = NwConfig::small(NwVariant::Original);
            run_world(&build(&cfg), &world(&cfg), |_| NullObserver).unwrap().wall
        };
        let i = {
            let cfg = NwConfig::small(NwVariant::Interleaved);
            run_world(&build(&cfg), &world(&cfg), |_| NullObserver).unwrap().wall
        };
        assert!(i < o);
        let gain = (o - i) as f64 / o as f64 * 100.0;
        // The paper's biggest win (53%); accept a generous band.
        assert!(gain > 15.0, "gain only {gain:.1}%");
    }

    #[test]
    fn referrence_tops_input_itemsets() {
        let cfg = NwConfig::small(NwVariant::Original);
        let prog = build(&cfg);
        let mut w = world(&cfg);
        w.sim.pmu =
            Some(PmuConfig::Marked { event: MarkedEvent::DataFromRmem, threshold: 4, skid: 2 });
        let run = run_profiled(&prog, &w, ProfilerConfig::default());
        let analysis = run.analyze(&prog);
        let heap = analysis.class_pct(StorageClass::Heap, Metric::Remote);
        assert!(heap > 80.0, "heap remote share {heap:.1}%");
        let vars = analysis.variables(Metric::Remote);
        let top: Vec<&str> = vars.iter().take(2).map(|v| v.name.as_str()).collect();
        assert_eq!(top, vec!["referrence", "input_itemsets"], "{top:?}");
        // Roughly 2:1 ratio (61.4% vs 29.5% in the paper).
        let r = vars[0].metrics[Metric::Remote.col()] as f64;
        let i = vars[1].metrics[Metric::Remote.col()] as f64;
        assert!(r / i > 1.3 && r / i < 4.0, "ratio {:.2}", r / i);
        // Accesses come from the outlined kernel.
        assert!(vars[0].alloc_site.contains("main:40"), "{}", vars[0].alloc_site);
    }
}
