//! Micro-benchmarks of the machine simulator's access pipeline
//! — simulation throughput bounds how large a workload the reproduction
//! can run, so regressions here matter.

use dcp_support::bench::{black_box, Criterion, Throughput};
use dcp_support::{criterion_group, criterion_main};
use dcp_machine::{AccessKind, CoreId, DomainId, Machine, MachineConfig};

fn bench_access_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine_access");
    group.throughput(Throughput::Elements(1));

    group.bench_function("l1_hit", |b| {
        let mut m = Machine::new(MachineConfig::magny_cours());
        m.access(CoreId(0), 0x1000, AccessKind::Load, DomainId(0), 1, 0);
        b.iter(|| {
            black_box(m.access(CoreId(0), 0x1000, AccessKind::Load, DomainId(0), 1, 0).latency)
        });
    });

    group.bench_function("streaming_load", |b| {
        let mut m = Machine::new(MachineConfig::magny_cours());
        let mut a = 0x10_0000u64;
        let mut t = 0u64;
        b.iter(|| {
            a += 64;
            let r = m.access(CoreId(0), a, AccessKind::Load, DomainId(0), 7, t);
            t += r.latency as u64;
            black_box(r.latency)
        });
    });

    group.bench_function("scattered_remote_load", |b| {
        let mut m = Machine::new(MachineConfig::power7_node());
        let mut i = 0u64;
        let mut t = 0u64;
        b.iter(|| {
            i = i.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = 0x10_0000 + (i % (64 << 20));
            let r = m.access(CoreId(96), a, AccessKind::Load, DomainId(0), 9, t);
            t += r.latency as u64;
            black_box(r.latency)
        });
    });

    group.bench_function("store_with_coherence", |b| {
        let mut m = Machine::new(MachineConfig::magny_cours());
        let mut a = 0x20_0000u64;
        let mut t = 0u64;
        b.iter(|| {
            a = 0x20_0000 + (a + 64) % (1 << 20);
            let r = m.access(CoreId(7), a, AccessKind::Store, DomainId(1), 3, t);
            t += r.latency as u64;
            black_box(r.latency)
        });
    });

    group.finish();
}

criterion_group!(benches, bench_access_patterns);
criterion_main!(benches);
