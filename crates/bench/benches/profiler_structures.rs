//! Micro-benchmarks of the profiler's own data structures —
//! the constant factors behind the paper's "low runtime overhead" claim:
//! CCT path insertion, live-heap interval lookup, static symbol lookup,
//! allocation-context capture under each §4.1.3 strategy, and profile
//! encoding.

use dcp_support::bench::{black_box, BenchmarkId, Criterion};
use dcp_support::{criterion_group, criterion_main};
use dcp_cct::{encode, Cct, Frame};
use dcp_core::datacentric::{
    AllocPaths, HeapMap, ProfCosts, StaticMap, TrackingPolicy, UnwindCache,
};
use dcp_runtime::ir::{ModuleDef, StaticSym};
use dcp_runtime::{FrameInfo, Ip, ModuleId, ProcId};

fn bench_cct_insert(c: &mut Criterion) {
    c.bench_function("cct_insert_hot_path", |b| {
        // Re-inserting an existing path: the steady-state per-sample cost.
        let mut cct = Cct::new(5);
        let path: Vec<Frame> = (0..8).map(|i| Frame::CallSite(i * 97)).collect();
        cct.insert_path(path.clone(), 0, 1);
        b.iter(|| {
            cct.insert_path(black_box(path.iter().copied()), 1, 3);
        });
    });
    c.bench_function("cct_insert_cold_paths", |b| {
        let mut i = 0u64;
        let mut cct = Cct::new(5);
        b.iter(|| {
            i += 1;
            let path = [
                Frame::Proc(1),
                Frame::CallSite(i % 100),
                Frame::CallSite(i % 1000),
                Frame::Stmt(i),
            ];
            cct.insert_path(black_box(path), 0, 1);
        });
    });
}

fn bench_heap_map(c: &mut Criterion) {
    let mut ap = AllocPaths::new();
    let mut hm = HeapMap::new();
    for i in 0..10_000u64 {
        let ctx = ap.intern(&[Frame::Proc(1), Frame::Stmt(i % 64)], 8192);
        hm.insert(0x10_0000_0000 + i * 0x4000, 8192, ctx);
    }
    c.bench_function("heap_map_lookup_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7919) % 10_000;
            black_box(hm.lookup(0x10_0000_0000 + i * 0x4000 + 128))
        });
    });
    c.bench_function("heap_map_lookup_miss", |b| {
        b.iter(|| black_box(hm.lookup(0x99_0000_0000)));
    });
}

fn bench_static_map(c: &mut Criterion) {
    let mut sm = StaticMap::new();
    let def = ModuleDef {
        name: "exe".into(),
        statics: (0..500)
            .map(|i| StaticSym {
                name: format!("var{i}"),
                addr: 0x1000_0000 + i * 0x10000,
                bytes: 0x8000,
            })
            .collect(),
        load_at_start: true,
    };
    sm.load_module(0, ModuleId(0), &def);
    c.bench_function("static_map_lookup", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 313) % 500;
            black_box(sm.lookup(dcp_runtime::layout::global(0, 0x1000_0000 + i * 0x10000 + 64)))
        });
    });
}

fn bench_unwind_strategies(c: &mut Criterion) {
    let frames: Vec<FrameInfo> = (0..24)
        .map(|i| FrameInfo { proc: ProcId(i), call_site: Some(Ip(i as u64 * 11)), token: i as u64 })
        .collect();
    let costs = ProfCosts::default();
    let mut group = c.benchmark_group("alloc_context_capture");
    for (name, policy) in
        [("naive", TrackingPolicy::naive()), ("trampoline", TrackingPolicy::default())]
    {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, policy| {
            let mut cache = UnwindCache::new();
            b.iter(|| black_box(cache.capture(&frames, policy, &costs).frames_walked));
        });
    }
    group.finish();
}

fn bench_encode(c: &mut Criterion) {
    let mut cct = Cct::new(5);
    for i in 0..5_000u64 {
        cct.insert_path(
            [
                Frame::Proc(i % 7),
                Frame::CallSite(i % 131),
                Frame::CallSite(i % 1031),
                Frame::Stmt(i % 4099),
            ],
            (i % 5) as usize,
            i,
        );
    }
    c.bench_function("profile_encode_5k_nodes", |b| {
        b.iter(|| black_box(encode(&cct).len()));
    });
}

/// Design-choice ablation: per-thread CCTs merged post-mortem (the
/// paper's §4.1.4 design) versus one shared lock-protected CCT. The
/// shared variant pays lock traffic on every sample; the private variant
/// pays a one-time merge.
fn bench_shared_vs_private(c: &mut Criterion) {
    use std::sync::Mutex;
    use std::sync::Arc;
    const THREADS: usize = 8;
    const SAMPLES: usize = 2_000;

    fn path_for(t: usize, i: usize) -> [Frame; 3] {
        [
            Frame::Proc(t as u64 % 4),
            Frame::CallSite((i % 37) as u64),
            Frame::Stmt((i % 211) as u64),
        ]
    }

    let mut group = c.benchmark_group("attribution_design");
    group.bench_function("shared_locked_cct", |b| {
        b.iter(|| {
            let shared = Arc::new(Mutex::new(Cct::new(5)));
            std::thread::scope(|s| {
                for t in 0..THREADS {
                    let mine = Arc::clone(&shared);
                    s.spawn(move || {
                        for i in 0..SAMPLES {
                            mine.lock().expect("no poisoned lock").insert_path(path_for(t, i), 0, 1);
                        }
                    });
                }
            });
            let total = shared.lock().expect("no poisoned lock").total(0);
            black_box(total)
        });
    });
    group.bench_function("private_ccts_plus_merge", |b| {
        b.iter(|| {
            let trees: Vec<Cct> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..THREADS)
                    .map(|t| {
                        s.spawn(move || {
                            let mut tree = Cct::new(5);
                            for i in 0..SAMPLES {
                                tree.insert_path(path_for(t, i), 0, 1);
                            }
                            tree
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("no panic")).collect()
            });
            black_box(dcp_cct::merge_reduction_tree(trees, 5).total(0))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cct_insert,
    bench_heap_map,
    bench_static_map,
    bench_unwind_strategies,
    bench_encode,
    bench_shared_vs_private
);
criterion_main!(benches);
