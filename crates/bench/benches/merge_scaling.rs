//! Benchmark of post-mortem profile merging: the parallel
//! reduction tree (§4.2's scalability mechanism) versus a sequential
//! fold, across thread counts.

use dcp_support::bench::{black_box, BatchSize, BenchmarkId, Criterion};
use dcp_support::{criterion_group, criterion_main};
use dcp_cct::{merge_reduction_tree, merge_sequential, Cct, Frame};

fn make_profile(seed: u64) -> Cct {
    let mut t = Cct::new(5);
    for i in 0..400u64 {
        let path = [
            Frame::Proc(seed % 4),
            Frame::CallSite(100 + (seed * 31 + i) % 50),
            Frame::CallSite(1000 + (seed * 7 + i) % 200),
            Frame::Stmt(5000 + i % 97),
        ];
        t.insert_path(path, (i % 5) as usize, i + seed);
    }
    t
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile_merge");
    for threads in [16usize, 64, 256] {
        group.bench_with_input(
            BenchmarkId::new("reduction_tree", threads),
            &threads,
            |b, &n| {
                b.iter_batched(
                    || (0..n as u64).map(make_profile).collect::<Vec<_>>(),
                    |ps| black_box(merge_reduction_tree(ps, 5).len()),
                    BatchSize::LargeInput,
                );
            },
        );
        group.bench_with_input(BenchmarkId::new("sequential", threads), &threads, |b, &n| {
            b.iter_batched(
                || (0..n as u64).map(make_profile).collect::<Vec<_>>(),
                |ps| black_box(merge_sequential(ps, 5).len()),
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
