//! Differential test: simulation results are invariant under host
//! parallelism.
//!
//! The epoch-sharded scheduler's core promise is that `DCP_THREADS` is a
//! pure performance knob — machine stats, wall cycles, sample streams,
//! and encoded v2 profile bytes must be bit-for-bit identical whether the
//! simulation runs sequentially or spread over many pool workers. The
//! pool size is latched once per process (`OnceLock`), so the sweep runs
//! the `fingerprint` binary as a subprocess per setting and compares
//! whole stdouts: one digest line per reduced Table-1 workload, covering
//! accesses, wall, sample count, profile bytes, and the combined
//! stats-and-profile fingerprint.

use std::process::Command;

/// Run the fingerprint binary for `workloads` at a given pool size.
fn digest(threads: &str, workloads: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_fingerprint"))
        .args(workloads)
        .env("DCP_THREADS", threads)
        .output()
        .expect("spawn fingerprint binary");
    assert!(
        out.status.success(),
        "fingerprint (DCP_THREADS={threads}) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("digest output is UTF-8");
    assert_eq!(
        stdout.lines().count(),
        workloads.len(),
        "one FP line per workload expected:\n{stdout}"
    );
    stdout
}

/// Every Table-1 workload (reduced size) produces identical machine
/// stats, wall cycles, and v2 profile bytes at DCP_THREADS=0 (fully
/// sequential) and DCP_THREADS=8 (oversubscribed on small hosts — the
/// harsher schedule-interleaving case).
#[test]
fn all_workloads_identical_at_0_and_8_threads() {
    let workloads = ["amg", "sweep3d", "lulesh", "streamcluster", "nw"];
    let serial = digest("0", &workloads);
    let parallel = digest("8", &workloads);
    assert_eq!(
        serial, parallel,
        "DCP_THREADS must not change any observable simulation output"
    );
}

/// The multi-node cluster workloads route rank traffic through the
/// `dcp-net` fabric; the network calendar's total event order (and hence
/// the fingerprint, which now covers per-link counters and exchange
/// waits) must also be invariant under host parallelism.
#[test]
fn cluster_workloads_identical_at_0_and_8_threads() {
    let workloads = ["cluster_halo", "cluster_hypercube"];
    let serial = digest("0", &workloads);
    let parallel = digest("8", &workloads);
    assert_eq!(
        serial, parallel,
        "DCP_THREADS must not change multi-node simulation output"
    );
}

/// Intermediate pool sizes agree too (1 worker-less slot and a 2-slot
/// pool exercise the reclaim-vs-help paths of the in-tree pool
/// differently).
#[test]
fn intermediate_thread_counts_agree_on_amg() {
    let one = digest("1", &["amg"]);
    let two = digest("2", &["amg"]);
    assert_eq!(one, two, "DCP_THREADS=1 vs 2 diverged");
}
