//! # dcp-bench — reproduction harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus
//! criterion micro-benchmarks of the profiler's own data structures
//! (`benches/`). The binaries print the regenerated rows/series next to
//! the paper's reported values; EXPERIMENTS.md records both.

use dcp_core::prelude::*;
use dcp_machine::{Cycles, MarkedEvent, PmuConfig};
use dcp_runtime::{Program, WorldConfig};

/// Default marked-event sampling used by the POWER7-style studies.
pub fn rmem_sampling(threshold: u64) -> PmuConfig {
    PmuConfig::Marked { event: MarkedEvent::DataFromRmem, threshold, skid: 2 }
}

/// Default IBS sampling used by the AMD-style studies.
pub fn ibs_sampling(period: u64) -> PmuConfig {
    PmuConfig::Ibs { period, skid: 2 }
}

/// Run baseline + profiled and return the overhead measurement.
pub fn profile_with(
    program: &Program,
    world: &WorldConfig,
    pmu: PmuConfig,
) -> dcp_core::session::Overhead {
    let mut w = world.clone();
    w.sim.pmu = Some(pmu);
    measure_overhead(program, &w, ProfilerConfig::default())
}

/// Hash everything a perf change must not alter about a profiled run:
/// per-node machine stats, node wall clocks, DRAM histograms, op counts,
/// and every encoded v2 profile blob. Shared by `sim_bench` (run-to-run
/// and serial-vs-parallel determinism) and `fingerprint` (the
/// `DCP_THREADS` invariance harness behind `tests/thread_invariance.rs`).
pub fn run_fingerprint(prog: &Program, run: &dcp_core::session::ProfiledRun) -> u64 {
    use std::hash::Hasher;
    let mut h = dcp_support::FxHasher::default();
    h.write_u64(run.wall);
    for n in &run.nodes {
        let s = &n.machine_stats;
        for v in [
            s.accesses,
            s.loads,
            s.stores,
            s.total_latency,
            s.l1_hits,
            s.l2_hits,
            s.l3_hits,
            s.remote_l3_hits,
            s.local_dram,
            s.remote_dram,
            s.tlb_misses,
            s.prefetch_fills,
            s.prefetch_hidden,
            s.prefetch_late,
            n.wall,
            n.ops,
            n.net_wait,
            n.exchanges,
        ] {
            h.write_u64(v);
        }
        for &d in &n.dram_histogram {
            h.write_u64(d);
        }
    }
    if let Some(net) = &run.net {
        h.write_u64(net.flows);
        h.write_u64(net.bytes);
        h.write_u64(net.retransmits);
        h.write_u64(net.horizon);
        for (label, s) in &net.links {
            h.write(label.as_bytes());
            for v in [
                s.bytes,
                s.msgs,
                s.busy,
                s.queue_delay_sum,
                s.queue_delay_max,
                s.stalls,
                s.drops,
            ] {
                h.write_u64(v);
            }
        }
    }
    for m in run.encode_measurements(prog) {
        for blobs in &m.profiles {
            for b in blobs {
                h.write(b.as_ref());
            }
        }
    }
    h.finish()
}

/// Simulated cycles rendered as seconds at a nominal 3 GHz clock — the
/// unit the paper's tables use.
pub fn secs(cycles: Cycles) -> f64 {
    cycles as f64 / 3.0e9
}

/// Percent-difference helper: how much faster `new` is than `old`.
pub fn speedup_pct(old: Cycles, new: Cycles) -> f64 {
    100.0 * (old as f64 - new as f64) / old as f64
}

/// Render one paper-vs-measured comparison line.
pub fn compare_line(label: &str, paper: &str, measured: String) -> String {
    format!("{label:<46} paper: {paper:<20} measured: {measured}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_pct_basics() {
        assert!((speedup_pct(100, 85) - 15.0).abs() < 1e-9);
        assert!((speedup_pct(200, 200)).abs() < 1e-9);
    }

    #[test]
    fn secs_scaling() {
        assert!((secs(3_000_000_000) - 1.0).abs() < 1e-12);
    }
}
