//! serve_bench — load generator for the profile-serving daemon.
//!
//! Measures the three serving phases separately, over real loopback
//! sockets, with `N` concurrent client threads driving a deterministic
//! schedule (dcp-support RNG, seeded per client):
//!
//! 1. **ingest** — every client streams its share of profiled
//!    Streamcluster node bundles with client-assigned sequence numbers;
//! 2. **mixed** — each client walks a seeded schedule of ~90% view
//!    queries on the merged set and ~10% ingests into a scratch set
//!    (so the main set's cache stays warm while the store keeps
//!    taking writes);
//! 3. **warm ranking** — the headline: repeated `ranking streamcluster
//!    remote 12` against a warm cache, pure response-path throughput.
//!
//! Each phase runs best-of-3 (a fresh daemon per round; only the
//! minimum is a stable cost estimate on a shared box) and the binary
//! asserts **response determinism**: every view response on the main
//! set is byte-identical across clients and rounds — the serving
//! layer's answer must be a pure function of (set contents, query).
//! Throughput is reported honestly for whatever host this runs on; on
//! a single-CPU container the determinism assertion, not a fixed
//! queries/sec floor, is the gate.
//!
//! A fourth, **sharded** phase stands up a 2-group × 2-replica cluster
//! behind `memgaze route`'s router, places one set per group, and runs
//! the warm storm twice — all clients on one instance, then spread over
//! all four — recording per-instance vs aggregate qps and their ratio
//! (the serving tier's horizontal scale-up). Byte-identity between
//! routed, direct, and cross-round responses is asserted everywhere;
//! the ≥2x scale-up floor applies only on the 8-core reference host.
//!
//! A fifth, **durable-ingest** phase measures the fsync-bound write
//! path against a daemon with a `--data-dir`: the same bundle stream
//! is pushed once with group commit off (one fsync per record, strict
//! request/response — the pre-group-commit baseline) and once with
//! group commit on and every client pipelining a 16-deep window. A
//! non-durable pipelined run isolates the window/socket-batching win
//! alone. All three daemons must answer every view with the same
//! bytes; the ≥5x durable speedup floor applies only on the 8-core
//! reference host.
//!
//! A sixth, **interleaved** phase races view queries against a
//! pipelined ingest stream: one writer keeps a 16-deep window of
//! pushes in flight while every other client polls views, so each
//! query lands on a freshly bumped epoch and pays the cold
//! snapshot+partial cost. The phase runs twice — once with the
//! incremental read path (dirty-class snapshot rebuilds, cached
//! per-class encodings) and once with `incremental_read` off (the
//! pre-incremental deep-clone/re-encode discipline) — and the quiesced
//! views from both daemons must be byte-identical to a from-scratch
//! serially-fed daemon. The ≥3x cold-epoch speedup floor applies only
//! on the 8-core reference host.
//!
//! Output: a human table plus one `BENCH_JSON` line that
//! `scripts/bench_serve.sh` persists as `BENCH_serve.json`. Pass
//! `--smoke` for a seconds-long CI variant.

use std::sync::Arc;
use std::time::Instant;

use dcp_core::prelude::*;
use dcp_core::{bundle_from_measurement, encode_bundle};
use dcp_machine::{MarkedEvent, PmuConfig};
use dcp_serve::{Client, Router, RouterConfig, Server, ServerConfig};
use dcp_support::bytes::Bytes;
use dcp_support::rng::SmallRng;
use dcp_support::FxHashMap;
use dcp_workloads::streamcluster::{build, world, ScConfig, ScVariant};

const SET: &str = "streamcluster";

/// The query mix for the mixed phase: weighted toward the cheap,
/// cacheable views a dashboard would poll.
const QUERIES: &[&str] = &[
    "ranking streamcluster remote 12",
    "ranking streamcluster samples 12",
    "topdown streamcluster heap remote",
    "bottomup streamcluster remote",
    "flat streamcluster heap remote 12",
    "vars streamcluster remote",
];

struct Prepared {
    bundles: Vec<Bytes>,
    /// A tiny bundle for scratch-set ingests during the mixed phase.
    scratch: Bytes,
}

fn prepare(smoke: bool) -> Prepared {
    let cfg = if smoke {
        ScConfig::small(ScVariant::Original)
    } else {
        ScConfig::paper(ScVariant::Original)
    };
    let prog = build(&cfg);
    let mut w = world(&cfg);
    w.sim.pmu = Some(PmuConfig::Marked { event: MarkedEvent::DataFromRmem, threshold: 4, skid: 2 });
    let run = run_profiled(&prog, &w, ProfilerConfig::default());
    let bundles: Vec<Bytes> = run
        .measurements
        .iter()
        .map(|m| encode_bundle(&bundle_from_measurement(&prog, m)))
        .collect();
    let small = ScConfig::small(ScVariant::Original);
    let sprog = build(&small);
    let mut sw = world(&small);
    sw.sim.pmu = Some(PmuConfig::Marked { event: MarkedEvent::DataFromRmem, threshold: 4, skid: 2 });
    let srun = run_profiled(&sprog, &sw, ProfilerConfig::default());
    let scratch = encode_bundle(&bundle_from_measurement(&sprog, &srun.measurements[0]));
    Prepared { bundles, scratch }
}

fn spawn_server(sessions: usize) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig { sessions, ..ServerConfig::default() })
        .expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle)
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<()>) {
    Client::connect(addr).expect("connect").shutdown().expect("shutdown");
    handle.join().expect("join");
}

struct Round {
    ingest_secs: f64,
    ingests: u64,
    mixed_secs: f64,
    mixed_ops: u64,
    warm_secs: f64,
    warm_queries: u64,
    cache_hit_rate: f64,
    /// Response text per main-set query, for cross-round determinism.
    responses: FxHashMap<String, String>,
}

fn run_round(p: &Arc<Prepared>, clients: usize, mixed_per_client: usize, warm_per_client: usize) -> Round {
    let (addr, handle) = spawn_server(clients);

    // Phase 1: concurrent ingest, client-assigned seqs pin merge order.
    // The bundle list is ingested REPEATS times over — a store
    // accumulating the same workload's profile run after run — so the
    // phase measures sustained ingest, not one connection setup.
    const REPEATS: usize = 16;
    let total = p.bundles.len() * REPEATS;
    let t0 = Instant::now();
    let mut threads = Vec::new();
    for c in 0..clients {
        let addr = addr.clone();
        let p = Arc::clone(p);
        threads.push(std::thread::spawn(move || {
            let mut cl = Client::connect(&addr).expect("connect");
            // Each client pushes its strided share of the sequence space.
            for i in 0..total {
                if i % clients == c {
                    let b = p.bundles[i % p.bundles.len()].clone();
                    cl.ingest(SET, Some(i as u64), b).expect("ingest");
                }
            }
        }));
    }
    for t in threads {
        t.join().expect("ingest client");
    }
    let ingest_secs = t0.elapsed().as_secs_f64();
    let ingests = total as u64;

    // Phase 2: mixed queries + scratch ingests on a seeded schedule.
    let t0 = Instant::now();
    let mut threads = Vec::new();
    for c in 0..clients {
        let addr = addr.clone();
        let p = Arc::clone(p);
        threads.push(std::thread::spawn(move || {
            let mut g = SmallRng::seed_from_u64(0x05e7_bec4 + c as u64);
            let mut cl = Client::connect(&addr).expect("connect");
            let mut responses: FxHashMap<String, String> = FxHashMap::default();
            let mut scratch_seq = (c as u64) << 32;
            for _ in 0..mixed_per_client {
                if g.gen_bool(0.1) {
                    cl.ingest("scratch", Some(scratch_seq), p.scratch.clone()).expect("scratch");
                    scratch_seq += 1;
                } else {
                    let q = QUERIES[g.gen_range(0usize..QUERIES.len())];
                    let resp = cl.query(q).expect(q);
                    responses.insert(q.to_string(), resp);
                }
            }
            responses
        }));
    }
    let mut responses: FxHashMap<String, String> = FxHashMap::default();
    for t in threads {
        let r = t.join().expect("mixed client");
        for (q, resp) in r {
            // Determinism across clients within the round: the main set
            // never changes after phase 1, so every client must see the
            // same bytes for the same query.
            if let Some(prev) = responses.get(&q) {
                assert_eq!(prev, &resp, "response for {q:?} differs between clients");
            }
            responses.insert(q, resp);
        }
    }
    let mixed_secs = t0.elapsed().as_secs_f64();
    let mixed_ops = (clients * mixed_per_client) as u64;

    // Phase 3: the headline — warm-cache ranking throughput.
    let warm_q = "ranking streamcluster remote 12";
    Client::connect(&addr).expect("connect").query(warm_q).expect("warm");
    let t0 = Instant::now();
    let mut threads = Vec::new();
    for _ in 0..clients {
        let addr = addr.clone();
        threads.push(std::thread::spawn(move || {
            let mut cl = Client::connect(&addr).expect("connect");
            let mut last = String::new();
            for _ in 0..warm_per_client {
                last = cl.query(warm_q).expect("warm ranking");
            }
            last
        }));
    }
    let mut warm_resp: Option<String> = None;
    for t in threads {
        let r = t.join().expect("warm client");
        if let Some(prev) = &warm_resp {
            assert_eq!(prev, &r, "warm ranking response differs between clients");
        }
        warm_resp = Some(r);
    }
    let warm_secs = t0.elapsed().as_secs_f64();
    let warm_queries = (clients * warm_per_client) as u64;
    responses.insert(warm_q.to_string(), warm_resp.expect("at least one client"));

    // Cache effectiveness straight from the daemon's own stats.
    let stats = Client::connect(&addr).expect("connect").stats().expect("stats");
    let cache_hit_rate = stats
        .lines()
        .find_map(|l| l.strip_prefix("cache_hit_rate "))
        .and_then(|v| v.parse::<f64>().ok())
        .expect("stats report a cache_hit_rate");

    shutdown(&addr, handle);
    Round {
        ingest_secs,
        ingests,
        mixed_secs,
        mixed_ops,
        warm_secs,
        warm_queries,
        cache_hit_rate,
        responses,
    }
}

/// One sharded round: a 2-group × 2-replica cluster behind a router.
/// Ingest fans through the router; the measured storms hit the warm
/// response caches — first all clients on ONE instance (per-instance
/// baseline), then spread across every instance (aggregate). Replicas
/// hold identical state by construction, so spreading readers is the
/// serving tier's horizontal scale-out, and every response must still
/// be byte-identical to every other instance's and to the router's.
struct ShardedRound {
    per_instance_secs: f64,
    aggregate_secs: f64,
    queries: u64,
    response: String,
}

fn run_sharded_round(p: &Arc<Prepared>, clients: usize, warm_per_client: usize) -> ShardedRound {
    let mut shards = Vec::new();
    let mut topology = Vec::new();
    for _ in 0..2 {
        let mut group = Vec::new();
        for _ in 0..2 {
            let (addr, handle) = spawn_server(clients);
            group.push(addr.clone());
            shards.push((addr, handle));
        }
        topology.push(group);
    }
    let router = Router::bind(RouterConfig {
        shards: topology,
        sessions: clients,
        ..RouterConfig::default()
    })
    .expect("bind router");
    let router_addr = router.local_addr().expect("addr");
    let router_handle = std::thread::spawn(move || router.serve().expect("route"));

    // Two sets, one per shard group: the ring places `streamcluster`
    // on one group; probe suffixed names for one the OTHER group owns.
    // Sharding spreads sets across groups; replication spreads readers
    // across a group's instances — the aggregate storm exercises both.
    let ring = dcp_support::HashRing::new(2, RouterConfig::default().vnodes);
    let group_a = ring.owner(SET.as_bytes()) as usize;
    let set_b = (0u32..)
        .map(|i| format!("{SET}-mirror{i}"))
        .find(|s| ring.owner(s.as_bytes()) as usize != group_a)
        .expect("some suffix lands on the other group");

    // Seed both sets through the router: each ingest fans to both
    // replicas of the owning group, so any instance can serve it alone.
    const REPEATS: usize = 16;
    let mut cl = Client::connect(&router_addr).expect("connect router");
    for i in 0..p.bundles.len() * REPEATS {
        let b = p.bundles[i % p.bundles.len()].clone();
        cl.ingest(SET, Some(i as u64), b.clone()).expect("routed ingest");
        cl.ingest(&set_b, Some(i as u64), b).expect("routed ingest b");
    }

    // Every instance serves its group's set with the exact bytes the
    // router recombines from partials.
    let query_for = |set: &str| format!("ranking {set} remote 12");
    let mut instances: Vec<(String, String)> = Vec::new(); // (addr, warm query)
    let mut routed_for: Vec<(String, String)> = Vec::new(); // (query, routed bytes)
    for set in [SET.to_string(), set_b.clone()] {
        let g = ring.owner(set.as_bytes()) as usize;
        let q = query_for(&set);
        let routed = cl.query(&q).expect("routed warm");
        for (addr, _) in shards.iter().skip(g * 2).take(2) {
            let direct =
                Client::connect(addr).expect("connect replica").query(&q).expect("warm direct");
            assert_eq!(direct, routed, "replica {addr} disagrees with the routed response");
            instances.push((addr.clone(), q.clone()));
        }
        routed_for.push((q, routed));
    }

    let storm = |plan: &[(String, String)]| -> (f64, Vec<(String, String)>) {
        let t0 = Instant::now();
        let mut threads = Vec::new();
        for c in 0..clients {
            let (addr, q) = plan[c % plan.len()].clone();
            threads.push(std::thread::spawn(move || {
                let mut cl = Client::connect(&addr).expect("connect");
                let mut last = String::new();
                for _ in 0..warm_per_client {
                    last = cl.query(&q).expect("warm ranking");
                }
                (q, last)
            }));
        }
        let mut by_query: Vec<(String, String)> = Vec::new();
        for t in threads {
            let (q, r) = t.join().expect("storm client");
            if let Some((_, prev)) = by_query.iter().find(|(pq, _)| pq == &q) {
                assert_eq!(prev, &r, "storm responses differ between instances for {q:?}");
            } else {
                by_query.push((q, r));
            }
        }
        (t0.elapsed().as_secs_f64(), by_query)
    };

    // Per-instance baseline: every client on ONE instance, one set.
    let (per_instance_secs, base) = storm(&instances[..1]);
    // Aggregate: the same total query count spread over all instances.
    let (aggregate_secs, agg) = storm(&instances);
    for (q, r) in &base {
        let other = agg.iter().find(|(aq, _)| aq == q).map(|(_, ar)| ar).expect("same query");
        assert_eq!(r, other, "aggregate storm changed the response bytes for {q:?}");
    }
    for (q, r) in &agg {
        let routed = routed_for
            .iter()
            .find(|(rq, _)| rq == q)
            .map(|(_, routed)| routed)
            .unwrap_or_else(|| panic!("unexpected storm query {q:?}"));
        assert_eq!(r, routed, "storm response diverged from the routed bytes for {q:?}");
    }
    let r1 = base[0].1.clone();

    drop(cl);
    Client::connect(&router_addr).expect("connect").shutdown().expect("shutdown router");
    router_handle.join().expect("router join");
    for (addr, handle) in shards {
        shutdown(&addr, handle);
    }
    ShardedRound {
        per_instance_secs,
        aggregate_secs,
        queries: (clients * warm_per_client) as u64,
        response: r1,
    }
}

/// The pipelined-ingest window depth the durable phase drives (and the
/// default `memgaze push --window` recipe in the README).
const INGEST_WINDOW: usize = 16;

/// One durable-ingest round: the same bundle stream pushed under three
/// write disciplines, with every daemon's view responses compared
/// byte-for-byte afterwards.
struct DurableRound {
    baseline_secs: f64,
    group_secs: f64,
    pipelined_secs: f64,
    ingests: u64,
    /// Group-commit batcher counters from the daemon's own stats.
    wal_batches: u64,
    wal_max_batch: u64,
    responses: Vec<(String, String)>,
}

fn spawn_durable(
    sessions: usize,
    dir: &std::path::Path,
    group_commit: bool,
) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        sessions,
        data_dir: Some(dir.to_path_buf()),
        group_commit,
        // With group commit off the baseline must stay one
        // validate→fsync→apply per record: no socket batching either.
        ingest_group: if group_commit { 64 } else { 1 },
        ..ServerConfig::default()
    })
    .expect("bind durable");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.serve().expect("serve durable"));
    (addr, handle)
}

/// Strict request/response ingest: each client awaits every ack before
/// the next push (phase-1 style, explicit seqs).
fn serial_ingest(addr: &str, p: &Arc<Prepared>, clients: usize, total: usize) -> f64 {
    let t0 = Instant::now();
    let mut threads = Vec::new();
    for c in 0..clients {
        let addr = addr.to_string();
        let p = Arc::clone(p);
        threads.push(std::thread::spawn(move || {
            let mut cl = Client::connect(&addr).expect("connect");
            for i in 0..total {
                if i % clients == c {
                    let b = p.bundles[i % p.bundles.len()].clone();
                    cl.ingest(SET, Some(i as u64), b).expect("ingest");
                }
            }
        }));
    }
    for t in threads {
        t.join().expect("serial ingest client");
    }
    t0.elapsed().as_secs_f64()
}

/// Windowed ingest: each client keeps [`INGEST_WINDOW`] pushes in
/// flight, feeding the daemon's read-ahead groups and (when durable)
/// its group-commit batcher. Every ack must be a clean accept.
fn pipelined_ingest(addr: &str, p: &Arc<Prepared>, clients: usize, total: usize) -> f64 {
    let t0 = Instant::now();
    let mut threads = Vec::new();
    for c in 0..clients {
        let addr = addr.to_string();
        let p = Arc::clone(p);
        threads.push(std::thread::spawn(move || {
            let mut cl = Client::connect(&addr).expect("connect");
            let mut pipe = cl.pipeline(INGEST_WINDOW);
            for i in 0..total {
                if i % clients == c {
                    let b = p.bundles[i % p.bundles.len()].clone();
                    if let Some(ack) = pipe.push(SET, Some(i as u64), b).expect("push") {
                        ack.expect("ingest refused");
                    }
                }
            }
            for ack in pipe.drain().expect("drain") {
                ack.expect("ingest refused");
            }
        }));
    }
    for t in threads {
        t.join().expect("pipelined ingest client");
    }
    t0.elapsed().as_secs_f64()
}

/// Every main-set view, rendered once — the byte-identity probe run
/// against each durable-phase daemon after its ingest completes.
fn probe_views(addr: &str) -> Vec<(String, String)> {
    probe_queries(addr, QUERIES)
}

fn probe_queries(addr: &str, queries: &[&str]) -> Vec<(String, String)> {
    let mut cl = Client::connect(addr).expect("connect");
    queries.iter().map(|q| (q.to_string(), cl.query(q).expect(q))).collect()
}

fn run_durable_round(p: &Arc<Prepared>, clients: usize, repeats: usize) -> DurableRound {
    let total = p.bundles.len() * repeats;
    let dir_for =
        |m: &str| std::env::temp_dir().join(format!("dcp-serve-bench-{m}-{}", std::process::id()));

    // Baseline: one write+fsync per record, acks strictly serialized.
    let dir = dir_for("base");
    let _ = std::fs::remove_dir_all(&dir);
    let (addr, handle) = spawn_durable(clients, &dir, false);
    let baseline_secs = serial_ingest(&addr, p, clients, total);
    let responses = probe_views(&addr);
    shutdown(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);

    // Group commit + pipelined windows: same bundles, same seqs, same
    // client count — only the write discipline changes, so the served
    // bytes must not.
    let dir = dir_for("group");
    let _ = std::fs::remove_dir_all(&dir);
    let (addr, handle) = spawn_durable(clients, &dir, true);
    let group_secs = pipelined_ingest(&addr, p, clients, total);
    let group_responses = probe_views(&addr);
    let stats = Client::connect(&addr).expect("connect").stats().expect("stats");
    let counter = |key: &str| {
        stats
            .lines()
            .find_map(|l| l.strip_prefix(key))
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or_else(|| panic!("stats report {key}"))
    };
    let wal_batches = counter("wal_batches ");
    let wal_max_batch = counter("wal_max_batch ");
    shutdown(&addr, handle);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(responses, group_responses, "group commit changed the served bytes");

    // Non-durable pipelined: the windowed-push/socket-batching win
    // with no WAL in the path at all.
    let (addr, handle) = spawn_server(clients);
    let pipelined_secs = pipelined_ingest(&addr, p, clients, total);
    let mem_responses = probe_views(&addr);
    shutdown(&addr, handle);
    assert_eq!(responses, mem_responses, "durability changed the served bytes");

    DurableRound {
        baseline_secs,
        group_secs,
        pipelined_secs,
        ingests: total as u64,
        wal_batches,
        wal_max_batch,
        responses,
    }
}

/// The interleaved phase's fixture: one wide bundle fills the static,
/// stack, and unknown classes with large trees that never change
/// again, then a stream of small heap-only deltas keeps bumping the
/// epoch. That is the shape the dirty-class read path exists for —
/// the incremental daemon shares the three untouched big trees by
/// Arc across epochs, while the `incremental_read: false` baseline
/// deep-clones all five trees on every cold snapshot.
fn wide_clean_bundle() -> Bytes {
    use dcp_core::metrics::StorageClass;
    let mut b = dcp_core::stored::StoredBundle::default();
    for class in [StorageClass::Static, StorageClass::Stack, StorageClass::Unknown] {
        let mut t = dcp_cct::Cct::new(dcp_core::metrics::WIDTH);
        for pi in 0..64u64 {
            let p = t.child(dcp_cct::ROOT, dcp_cct::Frame::Proc(pi));
            for si in 0..48u64 {
                let s = t.child(p, dcp_cct::Frame::Stmt((pi << 16) | si));
                t.add(s, 2, 1 + pi + si);
            }
        }
        b.profiles[class.idx()].push(dcp_cct::encode(&t));
    }
    b.stats.samples = 1;
    encode_bundle(&b)
}

/// A distinct small heap-only delta per `seed`: path shapes overlap
/// across seeds (so merging folds), values differ (so ordering
/// mistakes change bytes), and only the heap class goes dirty.
fn heap_delta_bundle(seed: u64) -> Bytes {
    use dcp_core::metrics::StorageClass;
    let mut heap = dcp_cct::Cct::new(dcp_core::metrics::WIDTH);
    let hm = heap.child(dcp_cct::ROOT, dcp_cct::Frame::HeapMarker);
    let p = heap.child(hm, dcp_cct::Frame::Proc(seed % 8));
    let s = heap.child(p, dcp_cct::Frame::Stmt(0x1000 + seed % 64));
    heap.add(s, 2, 1 + seed);
    let mut b = dcp_core::stored::StoredBundle::default();
    b.profiles[StorageClass::Heap.idx()].push(dcp_cct::encode(&heap));
    b.stats.samples = 1 + seed;
    encode_bundle(&b)
}

/// Heap-class views for the interleaved readers: their render cost
/// tracks the small dirty class, so the cold-epoch bill is dominated
/// by what the read path does with the big clean classes.
const IQUERIES: &[&str] = &[
    "topdown streamcluster heap remote",
    "flat streamcluster heap remote 12",
    "export streamcluster heap",
];

/// One interleaved round: a single writer streams `total` bundles
/// through a pipelined window while every other client polls views, so
/// each query observes a just-bumped epoch and pays the cold
/// snapshot+partial cost. With `incremental` off the daemon falls back
/// to the deep-clone/re-encode read path — the baseline this phase
/// exists to beat. The quiesced views are returned for byte-identity
/// checks against a from-scratch daemon.
struct InterleavedRound {
    secs: f64,
    queries: u64,
    responses: Vec<(String, String)>,
}

fn run_interleaved_round(clients: usize, total: usize, incremental: bool) -> InterleavedRound {
    use std::sync::atomic::{AtomicBool, Ordering};
    let server = Server::bind(ServerConfig {
        sessions: clients,
        incremental_read: incremental,
        ..ServerConfig::default()
    })
    .expect("bind interleaved");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.serve().expect("serve interleaved"));

    // Prime the set with the wide clean bundle (outside the timed
    // window) so no reader races an empty store; the writer streams
    // the rest of the sequence space as heap-only deltas.
    Client::connect(&addr)
        .expect("connect")
        .ingest(SET, Some(0), wide_clean_bundle())
        .expect("prime");
    let done = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    let writer = {
        let addr = addr.clone();
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut cl = Client::connect(&addr).expect("connect");
            let mut pipe = cl.pipeline(INGEST_WINDOW);
            for i in 1..total {
                if let Some(ack) =
                    pipe.push(SET, Some(i as u64), heap_delta_bundle(i as u64)).expect("push")
                {
                    ack.expect("ingest refused");
                }
            }
            for ack in pipe.drain().expect("drain") {
                ack.expect("ingest refused");
            }
            done.store(true, Ordering::Release);
        })
    };
    let mut readers = Vec::new();
    for c in 0..clients.saturating_sub(1).max(1) {
        let addr = addr.clone();
        let done = Arc::clone(&done);
        readers.push(std::thread::spawn(move || {
            let mut cl = Client::connect(&addr).expect("connect");
            let mut n = 0u64;
            let mut q = c;
            // Always issue at least one query, then stop after the one
            // in flight when the writer finishes: every counted query
            // raced live ingest (give or take the final round trip).
            loop {
                cl.query(IQUERIES[q % IQUERIES.len()]).expect("interleaved query");
                n += 1;
                q += 1;
                if done.load(Ordering::Acquire) {
                    break;
                }
            }
            n
        }));
    }
    writer.join().expect("interleaved writer");
    let queries: u64 = readers.into_iter().map(|t| t.join().expect("interleaved reader")).sum();
    let secs = t0.elapsed().as_secs_f64();

    // Quiesced: the final epoch's views are the byte-identity probe.
    let responses = probe_queries(&addr, IQUERIES);
    shutdown(&addr, handle);
    InterleavedRound { secs, queries, responses }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let clients = dcp_support::pool::parallelism().clamp(2, 8);
    let (mixed_per_client, warm_per_client) = if smoke { (60, 150) } else { (400, 1500) };

    let prepared = Arc::new(prepare(smoke));
    let bundle_bytes: usize = prepared.bundles.iter().map(|b| b.len()).sum();
    println!(
        "SERVE BENCH — {} clients, {} bundles ({} bytes), best of 3 rounds{}",
        clients,
        prepared.bundles.len(),
        bundle_bytes,
        if smoke { " (smoke)" } else { "" }
    );

    let mut rounds = Vec::new();
    for _ in 0..3 {
        rounds.push(run_round(&prepared, clients, mixed_per_client, warm_per_client));
    }
    // Cross-round determinism: same set contents, same query, same
    // bytes — whichever client or round served it.
    for (q, resp) in &rounds[0].responses {
        for r in &rounds[1..] {
            if let Some(other) = r.responses.get(q) {
                assert_eq!(resp, other, "response for {q:?} differs between rounds");
            }
        }
    }

    let best = |f: fn(&Round) -> f64| rounds.iter().map(f).fold(f64::INFINITY, f64::min);
    let ingest_secs = best(|r| r.ingest_secs);
    let mixed_secs = best(|r| r.mixed_secs);
    let warm_secs = best(|r| r.warm_secs);
    let r0 = &rounds[0];
    let ingest_rate = r0.ingests as f64 / ingest_secs;
    let mixed_rate = r0.mixed_ops as f64 / mixed_secs;
    let warm_rate = r0.warm_queries as f64 / warm_secs;

    println!("{:<28} {:>10} {:>10} {:>14}", "phase", "ops", "best s", "ops/s");
    println!("{:<28} {:>10} {:>10.3} {:>14.1}", "ingest (bundles)", r0.ingests, ingest_secs, ingest_rate);
    println!("{:<28} {:>10} {:>10.3} {:>14.1}", "mixed (90% query)", r0.mixed_ops, mixed_secs, mixed_rate);
    println!("{:<28} {:>10} {:>10.3} {:>14.1}", "warm-cache ranking", r0.warm_queries, warm_secs, warm_rate);
    println!(
        "cache hit rate {:.3}; determinism: ok (responses identical across clients and rounds)",
        r0.cache_hit_rate
    );

    // Sharded scale-out: a 2-group × 2-replica cluster behind a router,
    // one set per group. The same warm-query budget runs twice — all
    // clients on one instance, then spread across all four — and the
    // aggregate-over-per-instance ratio is the serving tier's measured
    // horizontal scale-up.
    let mut srounds = Vec::new();
    for _ in 0..3 {
        srounds.push(run_sharded_round(&prepared, clients, warm_per_client));
    }
    for s in &srounds[1..] {
        assert_eq!(srounds[0].response, s.response, "sharded response differs between rounds");
    }
    let sper_secs = srounds.iter().map(|s| s.per_instance_secs).fold(f64::INFINITY, f64::min);
    let sagg_secs = srounds.iter().map(|s| s.aggregate_secs).fold(f64::INFINITY, f64::min);
    let squeries = srounds[0].queries;
    let per_instance_rate = squeries as f64 / sper_secs;
    let aggregate_rate = squeries as f64 / sagg_secs;
    let scaleup = aggregate_rate / per_instance_rate;
    const SHARD_INSTANCES: usize = 4;
    println!(
        "{:<28} {:>10} {:>10.3} {:>14.1}",
        "sharded: one instance", squeries, sper_secs, per_instance_rate
    );
    println!(
        "{:<28} {:>10} {:>10.3} {:>14.1}",
        "sharded: all instances", squeries, sagg_secs, aggregate_rate
    );
    println!(
        "sharded scale-up {scaleup:.2}x across {SHARD_INSTANCES} instances; \
         determinism: ok (routed, direct, and cross-round bytes identical)"
    );
    // The >= 2x gate is defined on the 8-core reference host, where the
    // client threads genuinely run in parallel; on smaller containers
    // the byte-identity assertions above remain the gate.
    if dcp_support::pool::parallelism() >= 8 {
        assert!(
            scaleup >= 2.0,
            "sharded aggregate throughput {aggregate_rate:.1} qps is under 2x the \
             single-instance {per_instance_rate:.1} qps on an 8-core host"
        );
    }

    // Durable ingest: fsync-bound throughput before/after group commit.
    // Small repeat counts — every baseline record is a real fsync — and
    // best-of-2: the minimum is the stable cost estimate either way.
    let drepeats = if smoke { 32 } else { 64 };
    let mut drounds = Vec::new();
    for _ in 0..2 {
        drounds.push(run_durable_round(&prepared, clients, drepeats));
    }
    for d in &drounds[1..] {
        assert_eq!(
            drounds[0].responses, d.responses,
            "durable-phase responses differ between rounds"
        );
    }
    let dbase_secs = drounds.iter().map(|d| d.baseline_secs).fold(f64::INFINITY, f64::min);
    let dgroup_secs = drounds.iter().map(|d| d.group_secs).fold(f64::INFINITY, f64::min);
    let dpipe_secs = drounds.iter().map(|d| d.pipelined_secs).fold(f64::INFINITY, f64::min);
    let dingests = drounds[0].ingests;
    let dbase_rate = dingests as f64 / dbase_secs;
    let dgroup_rate = dingests as f64 / dgroup_secs;
    let dpipe_rate = dingests as f64 / dpipe_secs;
    let dspeedup = dgroup_rate / dbase_rate;
    println!(
        "{:<28} {:>10} {:>10.3} {:>14.1}",
        "durable: fsync per record", dingests, dbase_secs, dbase_rate
    );
    println!(
        "{:<28} {:>10} {:>10.3} {:>14.1}",
        "durable: group commit", dingests, dgroup_secs, dgroup_rate
    );
    println!(
        "{:<28} {:>10} {:>10.3} {:>14.1}",
        "pipelined (no WAL)", dingests, dpipe_secs, dpipe_rate
    );
    println!(
        "durable speedup {dspeedup:.2}x (window {INGEST_WINDOW}, {} fsync batches, \
         largest {}); determinism: ok (all write disciplines serve identical bytes)",
        drounds[0].wal_batches, drounds[0].wal_max_batch
    );
    // The >= 5x floor is defined on the 8-core reference host, where
    // eight sessions genuinely contend for the log; smaller containers
    // keep the byte-identity assertions as the gate. Non-durable ingest
    // must also improve: a pipelined window beats strict round trips.
    if dcp_support::pool::parallelism() >= 8 {
        assert!(
            dspeedup >= 5.0,
            "group-commit ingest {dgroup_rate:.1}/s is under 5x the per-record-fsync \
             baseline {dbase_rate:.1}/s on an 8-core host"
        );
        assert!(
            dpipe_rate >= ingest_rate,
            "pipelined non-durable ingest {dpipe_rate:.1}/s is under the strict \
             request/response rate {ingest_rate:.1}/s on an 8-core host"
        );
    }

    // Interleaved reads racing pipelined ingest: every query lands on
    // a cold epoch, so this isolates the incremental read path
    // (dirty-class snapshot rebuilds + cached per-class encodings)
    // against the deep-clone/re-encode discipline it replaced. Same
    // stream, same seqs — only the read path changes, so the quiesced
    // bytes must not.
    let itotal = if smoke { 64 } else { 1024 };
    let mut inc_rounds = Vec::new();
    let mut base_rounds = Vec::new();
    for _ in 0..2 {
        inc_rounds.push(run_interleaved_round(clients, itotal, true));
        base_rounds.push(run_interleaved_round(clients, itotal, false));
    }
    // From-scratch reference: the same stream fed serially, no readers
    // attached, default read path — the quiesced views everywhere must
    // match its bytes.
    let (raddr, rhandle) = spawn_server(clients);
    {
        let mut cl = Client::connect(&raddr).expect("connect");
        cl.ingest(SET, Some(0), wide_clean_bundle()).expect("ingest");
        for i in 1..itotal {
            cl.ingest(SET, Some(i as u64), heap_delta_bundle(i as u64)).expect("ingest");
        }
    }
    let reference = probe_queries(&raddr, IQUERIES);
    shutdown(&raddr, rhandle);
    for r in inc_rounds.iter().chain(&base_rounds) {
        assert_eq!(
            r.responses, reference,
            "interleaved ingest changed the served bytes vs a from-scratch daemon"
        );
    }
    let iqueries: u64 = inc_rounds.iter().map(|r| r.queries).sum();
    let iqps = inc_rounds.iter().map(|r| r.queries as f64 / r.secs).fold(0.0, f64::max);
    let bqps = base_rounds.iter().map(|r| r.queries as f64 / r.secs).fold(0.0, f64::max);
    let ispeedup = if bqps > 0.0 { iqps / bqps } else { 0.0 };
    println!(
        "{:<28} {:>10} {:>10.3} {:>14.1}",
        "interleaved: incremental",
        inc_rounds[0].queries,
        inc_rounds.iter().map(|r| r.secs).fold(f64::INFINITY, f64::min),
        iqps
    );
    println!(
        "{:<28} {:>10} {:>10.3} {:>14.1}",
        "interleaved: clone baseline",
        base_rounds[0].queries,
        base_rounds.iter().map(|r| r.secs).fold(f64::INFINITY, f64::min),
        bqps
    );
    println!(
        "interleaved cold-epoch speedup {ispeedup:.2}x over {itotal} racing ingests; \
         determinism: ok (both read paths match a from-scratch daemon byte-for-byte)"
    );
    // The >= 3x floor is defined on the 8-core reference host, where
    // readers genuinely race the writer; on smaller containers the
    // byte-identity assertion above remains the gate.
    if dcp_support::pool::parallelism() >= 8 {
        assert!(
            ispeedup >= 3.0,
            "incremental cold-epoch reads {iqps:.1} qps are under 3x the \
             clone-baseline {bqps:.1} qps on an 8-core host"
        );
    }

    println!(
        "BENCH_JSON {{\"clients\": {clients}, \"bundles\": {}, \"bundle_bytes\": {bundle_bytes}, \
         \"ingest_best_secs\": {ingest_secs:.4}, \"ingests_per_sec\": {ingest_rate:.1}, \
         \"mixed_ops\": {}, \"mixed_best_secs\": {mixed_secs:.4}, \"mixed_ops_per_sec\": {mixed_rate:.1}, \
         \"warm_ranking_queries\": {}, \"warm_best_secs\": {warm_secs:.4}, \
         \"warm_ranking_queries_per_sec\": {warm_rate:.1}, \"cache_hit_rate\": {:.4}, \
         \"sharded_instances\": {SHARD_INSTANCES}, \"sharded_queries\": {squeries}, \
         \"sharded_per_instance_qps\": {per_instance_rate:.1}, \
         \"sharded_aggregate_qps\": {aggregate_rate:.1}, \"sharded_scaleup\": {scaleup:.2}, \
         \"durable_ingests\": {dingests}, \"ingest_window\": {INGEST_WINDOW}, \
         \"durable_baseline_ingests_per_sec\": {dbase_rate:.1}, \
         \"durable_group_ingests_per_sec\": {dgroup_rate:.1}, \"durable_speedup\": {dspeedup:.2}, \
         \"durable_wal_batches\": {}, \"durable_wal_max_batch\": {}, \
         \"pipelined_ingests_per_sec\": {dpipe_rate:.1}, \
         \"interleaved_ingests\": {itotal}, \"interleaved_queries\": {iqueries}, \
         \"interleaved_cold_qps\": {iqps:.1}, \"interleaved_baseline_qps\": {bqps:.1}, \
         \"interleaved_speedup\": {ispeedup:.2}, \
         \"determinism\": \"ok\", \"smoke\": {smoke}}}",
        r0.ingests, r0.mixed_ops, r0.warm_queries, r0.cache_hit_rate,
        drounds[0].wal_batches, drounds[0].wal_max_batch
    );
}
