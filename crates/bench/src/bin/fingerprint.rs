//! fingerprint — deterministic digest of one profiled workload run.
//!
//! Prints, for each requested Table-1 workload (reduced size), one line
//! with everything the epoch-sharded scheduler guarantees to be invariant
//! under host parallelism: total simulated accesses, node wall cycles,
//! sample count, total v2 profile bytes, and the combined
//! stats-and-profile fingerprint. No timing, no host-dependent output —
//! two invocations at different `DCP_THREADS` must produce byte-identical
//! stdout, which is exactly what `tests/thread_invariance.rs` spawns this
//! binary to check (the pool size is latched once per process, so the
//! sweep has to cross a process boundary).
//!
//! Usage: `fingerprint [amg|sweep3d|lulesh|streamcluster|nw|all]...`
//! (default `all`).

use dcp_bench::{ibs_sampling, rmem_sampling, run_fingerprint};
use dcp_core::prelude::*;
use dcp_machine::PmuConfig;
use dcp_runtime::{Program, WorldConfig};
use dcp_workloads as wl;

fn run_one(name: &str, prog: &Program, world: &WorldConfig, pmu: PmuConfig) {
    let mut w = world.clone();
    w.sim.pmu = Some(pmu);
    let run = run_profiled(prog, &w, ProfilerConfig::default());
    let accesses: u64 = run.nodes.iter().map(|n| n.machine_stats.accesses).sum();
    println!(
        "FP {name} accesses={accesses} wall={} samples={} profile_bytes={} fingerprint={:016x}",
        run.wall,
        run.stats.samples,
        run.profile_bytes,
        run_fingerprint(prog, &run),
    );
}

fn run_named(name: &str) {
    match name {
        "amg" => {
            let cfg = wl::amg2006::AmgConfig::small(wl::amg2006::AmgVariant::Original);
            run_one("amg", &wl::amg2006::build(&cfg), &wl::amg2006::world(&cfg), rmem_sampling(16));
        }
        "sweep3d" => {
            let cfg = wl::sweep3d::SweepConfig::small(wl::sweep3d::SweepVariant::Original);
            run_one(
                "sweep3d",
                &wl::sweep3d::build(&cfg),
                &wl::sweep3d::world(&cfg),
                ibs_sampling(96),
            );
        }
        "lulesh" => {
            let cfg = wl::lulesh::LuleshConfig::small(wl::lulesh::LuleshVariant::ORIGINAL);
            run_one("lulesh", &wl::lulesh::build(&cfg), &wl::lulesh::world(&cfg), ibs_sampling(64));
        }
        "streamcluster" => {
            let cfg =
                wl::streamcluster::ScConfig::small(wl::streamcluster::ScVariant::Original);
            run_one(
                "streamcluster",
                &wl::streamcluster::build(&cfg),
                &wl::streamcluster::world(&cfg),
                rmem_sampling(2),
            );
        }
        "nw" => {
            let cfg = wl::nw::NwConfig::small(wl::nw::NwVariant::Original);
            run_one("nw", &wl::nw::build(&cfg), &wl::nw::world(&cfg), rmem_sampling(6));
        }
        "cluster_halo" => {
            let cfg = wl::cluster::ClusterConfig::small(wl::cluster::ClusterPattern::Halo);
            run_one(
                "cluster_halo",
                &wl::cluster::build(&cfg),
                &wl::cluster::world(&cfg),
                ibs_sampling(128),
            );
        }
        "cluster_hypercube" => {
            let cfg = wl::cluster::ClusterConfig::small(wl::cluster::ClusterPattern::Hypercube);
            run_one(
                "cluster_hypercube",
                &wl::cluster::build(&cfg),
                &wl::cluster::world(&cfg),
                ibs_sampling(128),
            );
        }
        other => panic!(
            "unknown workload {other:?} \
             (amg|sweep3d|lulesh|streamcluster|nw|cluster_halo|cluster_hypercube|all)"
        ),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all =
        ["amg", "sweep3d", "lulesh", "streamcluster", "nw", "cluster_halo", "cluster_hypercube"];
    if args.is_empty() || args.iter().any(|a| a == "all") {
        for name in all {
            run_named(name);
        }
    } else {
        for name in &args {
            run_named(name);
        }
    }
}
