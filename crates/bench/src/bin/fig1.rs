//! Figure 1 — per-variable latency decomposition of one source line.
//!
//! The motivating example: `sum += A[i] + B[i] * C[idx[i]]` on line 4.
//! A code-centric profiler reports only "line 4 is slow"; the
//! data-centric profile splits line 4's latency across A, B, C and idx,
//! showing C as the variable of principal interest.

use dcp_bench::ibs_sampling;
use dcp_core::prelude::*;
use dcp_workloads::micro::{fig1_line_decomposition, world, Fig1Config};

fn main() {
    let prog = fig1_line_decomposition(&Fig1Config::default());
    let mut w = world();
    w.sim.pmu = Some(ibs_sampling(64));
    let run = run_profiled(&prog, &w, ProfilerConfig::default());
    let analysis = run.analyze(&prog);

    // Code-centric view: everything on line 4 is one bucket.
    let total_line4: u64 = analysis
        .variables(Metric::Latency)
        .iter()
        .map(|v| v.metrics[Metric::Latency.col()])
        .sum();
    println!("FIGURE 1 — latency decomposition of a single source line");
    println!("code-centric: line 4 accounts for {total_line4} cycles of sampled latency. Which variable?");
    println!();
    println!("data-centric decomposition:");
    for v in analysis.variables(Metric::Latency) {
        let lat = v.metrics[Metric::Latency.col()];
        if lat == 0 {
            continue;
        }
        println!(
            "  {:<6} {:>10} cycles  {:>5.1}%   ({} samples)",
            v.name,
            lat,
            100.0 * lat as f64 / total_line4.max(1) as f64,
            v.metrics[Metric::Samples.col()]
        );
    }
    println!();
    println!("paper's shape: the gathered array (C) dominates the line's latency;");
    println!("the streamed arrays contribute little despite sharing the same line.");
}
