//! sim_bench — throughput of the simulator/measurement hot path itself.
//!
//! Every sample the profiler consumes is produced by the serial per-node
//! pipeline `Machine::access` → scheduler quantum → PMU → profiler
//! attribution, so *simulator* throughput (simulated accesses per host
//! second) bounds how large the Table 1 / NUMA case-study workloads can
//! get. This binary measures that throughput on the Table 1 workloads and
//! doubles as a determinism harness: each workload runs three times (the
//! fastest run is scored) and every run must agree bit-for-bit on machine
//! stats, wall cycles, and the encoded v2 profile bytes — which is how we
//! prove a hot-path optimisation changed *speed* and nothing else.
//!
//! Output: a human table plus one machine-readable `BENCH_JSON` line that
//! `scripts/bench_sim.sh` persists as `BENCH_sim.json`. Pass
//! `--baseline <file>` (a previous BENCH_JSON payload) to embed the old
//! aggregate throughput and the speedup against it. Pass `--smoke` to run
//! tiny configs (CI smoke stage).
//!
//! Host parallelism: the epoch-sharded scheduler spreads each node's
//! simulation over the in-tree pool (`DCP_THREADS`). When the pool has
//! more than one slot, the binary re-executes itself with `DCP_THREADS=0
//! --probe-serial` to time the identical workload set fully sequentially
//! (the pool size is latched once per process, so a subprocess is the
//! only honest way to compare), asserts the serial run's fingerprint is
//! bit-identical to the parallel one, and reports parallel efficiency =
//! serial_secs / (parallel_secs x slots). Pass `--no-serial-probe` to
//! skip the extra run.

use std::hash::Hasher;
use std::time::Instant;

use dcp_bench::{ibs_sampling, rmem_sampling};
use dcp_core::prelude::*;
use dcp_machine::PmuConfig;
use dcp_runtime::{Program, WorldConfig};
use dcp_support::FxHasher;
use dcp_workloads as wl;

struct Row {
    name: &'static str,
    accesses: u64,
    sim_wall: u64,
    /// Best-of-N host wall time for the profiled run.
    host_secs: f64,
    /// Fingerprint over machine stats, wall cycles, and encoded v2
    /// profile bytes; equal across all runs or we panic.
    fingerprint: u64,
    overhead_share: f64,
}

use dcp_bench::run_fingerprint as fingerprint;

fn bench_one(
    name: &'static str,
    prog: &Program,
    world: &WorldConfig,
    pmu: PmuConfig,
) -> Row {
    let mut w = world.clone();
    w.sim.pmu = Some(pmu);
    // Three timed runs, keeping the fastest: a 1-core box shares the CPU
    // with whatever else runs, and only the *minimum* is a stable estimate
    // of the code's cost. Every run must agree bit-for-bit.
    let mut best = f64::INFINITY;
    let mut first: Option<(u64, u64, u64, f64)> = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let run = run_profiled(prog, &w, ProfilerConfig::default());
        let secs = t0.elapsed().as_secs_f64();
        best = best.min(secs);
        let accesses: u64 = run.nodes.iter().map(|n| n.machine_stats.accesses).sum();
        let fp = fingerprint(prog, &run);
        // Profiler cycles as a share of all cycles the monitored threads
        // executed (retired ops + memory latency + the profiler itself).
        let work: u64 = run
            .nodes
            .iter()
            .map(|n| n.ops + n.machine_stats.total_latency)
            .sum();
        let ovh = run.stats.overhead_cycles;
        let share = ovh as f64 / (ovh + work).max(1) as f64;
        if let Some((a0, w0, fp0, _)) = first {
            assert_eq!(a0, accesses, "{name}: access count differs between runs");
            assert_eq!(w0, run.wall, "{name}: wall cycles differ between runs");
            assert_eq!(fp0, fp, "{name}: stats/profile fingerprint differs between runs");
        } else {
            first = Some((accesses, run.wall, fp, share));
        }
    }
    let (accesses, sim_wall, fingerprint, overhead_share) = first.expect("ran at least once");
    Row { name, accesses, sim_wall, host_secs: best, fingerprint, overhead_share }
}

/// Pull `"aggregate_accesses_per_sec": <number>` out of a previous
/// BENCH_JSON payload without a JSON parser.
fn baseline_throughput(text: &str) -> Option<f64> {
    let key = "\"aggregate_accesses_per_sec\":";
    let at = text.find(key)? + key.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Re-run the workload set in a `DCP_THREADS=0` subprocess and return
/// `(total_host_secs, combined_fingerprint)` from its SERIAL_JSON line.
fn probe_serial(smoke: bool) -> Option<(f64, u64)> {
    let exe = std::env::current_exe().ok()?;
    let mut cmd = std::process::Command::new(exe);
    cmd.env("DCP_THREADS", "0").arg("--probe-serial");
    if smoke {
        cmd.arg("--smoke");
    }
    let out = cmd.output().ok()?;
    assert!(out.status.success(), "serial probe subprocess failed");
    let text = String::from_utf8_lossy(&out.stdout);
    let line = text.lines().find(|l| l.starts_with("SERIAL_JSON "))?;
    let secs = {
        let key = "\"host_secs\": ";
        let at = line.find(key)? + key.len();
        let rest = &line[at..];
        let end = rest.find(|c: char| !(c.is_ascii_digit() || c == '.')).unwrap_or(rest.len());
        rest[..end].parse().ok()?
    };
    let fp = {
        let key = "\"fingerprint\": \"";
        let at = line.find(key)? + key.len();
        u64::from_str_radix(&line[at..at + 16], 16).ok()?
    };
    Some((secs, fp))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let serial_probe_mode = args.iter().any(|a| a == "--probe-serial");
    let no_serial_probe = args.iter().any(|a| a == "--no-serial-probe");
    let baseline = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
        .map(|p| std::fs::read_to_string(p).unwrap_or_else(|e| panic!("read {p}: {e}")));

    let mut rows = Vec::new();
    if smoke {
        let cfg = wl::streamcluster::ScConfig::small(wl::streamcluster::ScVariant::Original);
        let prog = wl::streamcluster::build(&cfg);
        let world = wl::streamcluster::world(&cfg);
        rows.push(bench_one("Streamcluster-small", &prog, &world, rmem_sampling(2)));
        let cfg = wl::nw::NwConfig::small(wl::nw::NwVariant::Original);
        let prog = wl::nw::build(&cfg);
        let world = wl::nw::world(&cfg);
        rows.push(bench_one("NW-small", &prog, &world, rmem_sampling(6)));
    } else {
        {
            let cfg = wl::amg2006::AmgConfig::paper(wl::amg2006::AmgVariant::Original);
            let prog = wl::amg2006::build(&cfg);
            let world = wl::amg2006::world(&cfg);
            rows.push(bench_one("AMG2006", &prog, &world, rmem_sampling(16)));
        }
        {
            let cfg = wl::sweep3d::SweepConfig::paper(wl::sweep3d::SweepVariant::Original);
            let prog = wl::sweep3d::build(&cfg);
            let world = wl::sweep3d::world(&cfg);
            rows.push(bench_one("Sweep3D", &prog, &world, ibs_sampling(16384)));
        }
        {
            let cfg = wl::lulesh::LuleshConfig::paper(wl::lulesh::LuleshVariant::ORIGINAL);
            let prog = wl::lulesh::build(&cfg);
            let world = wl::lulesh::world(&cfg);
            rows.push(bench_one("LULESH", &prog, &world, ibs_sampling(64)));
        }
        {
            let cfg = wl::streamcluster::ScConfig::paper(wl::streamcluster::ScVariant::Original);
            let prog = wl::streamcluster::build(&cfg);
            let world = wl::streamcluster::world(&cfg);
            rows.push(bench_one("Streamcluster", &prog, &world, rmem_sampling(2)));
        }
        {
            let cfg = wl::nw::NwConfig::paper(wl::nw::NwVariant::Original);
            let prog = wl::nw::build(&cfg);
            let world = wl::nw::world(&cfg);
            rows.push(bench_one("NW", &prog, &world, rmem_sampling(6)));
        }
    }

    let total_accesses: u64 = rows.iter().map(|r| r.accesses).sum();
    let total_secs: f64 = rows.iter().map(|r| r.host_secs).sum();
    let agg = total_accesses as f64 / total_secs;
    let mut combined = FxHasher::default();
    for r in &rows {
        combined.write_u64(r.fingerprint);
    }
    let combined = combined.finish();

    if serial_probe_mode {
        // Child of the parallel run: report sequential timing and the
        // fingerprint so the parent can check serial/parallel identity.
        println!(
            "SERIAL_JSON {{\"host_secs\": {total_secs:.4}, \"fingerprint\": \"{combined:016x}\"}}"
        );
        return;
    }

    println!("SIM BENCH — simulator/measurement hot-path throughput (profiled runs)");
    println!(
        "{:<22} {:>12} {:>14} {:>10} {:>12} {:>10} {:>18}",
        "workload", "accesses", "sim cycles", "host s", "Macc/s", "prof shr", "fingerprint"
    );
    for r in &rows {
        let mps = r.accesses as f64 / r.host_secs / 1e6;
        assert!(mps > 0.0, "{}: throughput must be nonzero", r.name);
        println!(
            "{:<22} {:>12} {:>14} {:>10.3} {:>12.3} {:>9.1}% {:>18}",
            r.name,
            r.accesses,
            r.sim_wall,
            r.host_secs,
            mps,
            100.0 * r.overhead_share,
            format!("{:016x}", r.fingerprint),
        );
    }
    println!();
    println!(
        "aggregate: {} accesses in {:.3} host s = {:.3} Macc/s (determinism: ok, all runs identical)",
        total_accesses,
        total_secs,
        agg / 1e6
    );

    // Host parallelism: one pool slot means the run above already was
    // serial; more slots means a DCP_THREADS=0 subprocess re-times the
    // set and its fingerprint must match bit-for-bit.
    let slots = dcp_support::pool::parallelism();
    let serial = if slots <= 1 {
        Some(total_secs)
    } else if no_serial_probe {
        None
    } else {
        let (secs, fp) = probe_serial(smoke).expect("serial probe produced no SERIAL_JSON");
        assert_eq!(
            fp, combined,
            "serial (DCP_THREADS=0) and parallel runs must be bit-identical"
        );
        Some(secs)
    };
    let efficiency = serial.map(|s| s / (total_secs * slots as f64));
    match (serial, efficiency) {
        (Some(s), Some(e)) => println!(
            "host parallelism: {slots} slot(s); serial {s:.3} s vs parallel {total_secs:.3} s \
             = {:.2}x speedup, {:.0}% efficiency (serial fingerprint identical)",
            s / total_secs,
            100.0 * e
        ),
        _ => println!("host parallelism: {slots} slot(s); serial probe skipped"),
    }

    let mut json = String::from("BENCH_JSON {\"workloads\": [");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        json.push_str(&format!(
            "{{\"name\": \"{}\", \"accesses\": {}, \"sim_wall_cycles\": {}, \
             \"host_secs\": {:.4}, \"accesses_per_sec\": {:.1}, \
             \"profiler_overhead_share\": {:.4}, \"fingerprint\": \"{:016x}\"}}",
            r.name,
            r.accesses,
            r.sim_wall,
            r.host_secs,
            r.accesses as f64 / r.host_secs,
            r.overhead_share,
            r.fingerprint,
        ));
    }
    json.push_str(&format!(
        "], \"aggregate_accesses_per_sec\": {:.1}, \"determinism\": \"ok\", \
         \"fingerprint\": \"{:016x}\", \"host_threads\": {}, \"parallel_host_secs\": {:.4}",
        agg, combined, slots, total_secs
    ));
    if let (Some(s), Some(e)) = (serial, efficiency) {
        json.push_str(&format!(
            ", \"serial_host_secs\": {s:.4}, \"parallel_efficiency\": {e:.3}"
        ));
    }
    if let Some(base) = baseline.as_deref() {
        let old = baseline_throughput(base)
            .expect("baseline file has no aggregate_accesses_per_sec field");
        json.push_str(&format!(
            ", \"baseline_accesses_per_sec\": {:.1}, \"speedup_vs_baseline\": {:.3}",
            old,
            agg / old
        ));
        println!("speedup vs baseline: {:.3}x ({:.3} -> {:.3} Macc/s)", agg / old, old / 1e6, agg / 1e6);
    }
    json.push('}');
    println!("{json}");
}
