//! Figures 6 & 7 — Sweep3D latency attribution and the transposition fix.
//!
//! Figure 6: heap variables carry 97.4% of total latency; Flux 39.4%,
//! Src 39.1%, Face 14.6% (together 93.1%).
//! Figure 7: a single access to Flux at line 480, deep in the call
//! chain, accounts for 28.6% of total latency. Transposing the arrays'
//! dimensions gives a 15% whole-program speedup.

use dcp_bench::{ibs_sampling, speedup_pct};
use dcp_core::prelude::*;
use dcp_runtime::{run_world, NullObserver};
use dcp_workloads::sweep3d::{build, world, SweepConfig, SweepVariant};

fn main() {
    let cfg = SweepConfig::paper(SweepVariant::Original);
    let prog = build(&cfg);
    let mut w = world(&cfg);
    w.sim.pmu = Some(ibs_sampling(128));
    let run = run_profiled(&prog, &w, ProfilerConfig::default());
    let analysis = run.analyze(&prog);

    println!("FIGURE 6 — Sweep3D data-centric view (metric: latency)");
    println!(
        "heap share of latency: {:.1}%   (paper: 97.4%)",
        analysis.class_pct(StorageClass::Heap, Metric::Latency)
    );
    let grand = analysis.grand_total(Metric::Latency);
    println!("variable shares (paper: Flux 39.4%, Src 39.1%, Face 14.6%):");
    for v in analysis.variables(Metric::Latency).iter().take(4) {
        println!(
            "  {:<8} {:>5.1}%  (latency {}, samples {})",
            v.name,
            100.0 * v.metrics[Metric::Latency.col()] as f64 / grand.max(1) as f64,
            v.metrics[Metric::Latency.col()],
            v.metrics[Metric::Samples.col()]
        );
    }
    println!();
    println!("FIGURE 7 — the hot Flux access in its full calling context");
    println!(
        "{}",
        top_down(
            &analysis,
            StorageClass::Heap,
            Metric::Latency,
            TopDownOpts { max_depth: 10, min_pct: 4.0, max_children: 3 }
        )
    );

    // The transposition fix.
    let orig = run_world(&prog, &world(&cfg), |_| NullObserver).unwrap().wall;
    let tcfg = SweepConfig::paper(SweepVariant::Transposed);
    let tprog = build(&tcfg);
    let fixed = run_world(&tprog, &world(&tcfg), |_| NullObserver).unwrap().wall;
    println!(
        "transposition speedup: {:.1}%   (paper: 15%)   [{} -> {} cycles]",
        speedup_pct(orig, fixed),
        orig,
        fixed
    );
}
