//! Figure 10 — Streamcluster NUMA diagnosis and the first-touch fix.
//!
//! Paper: 98.2% of remote accesses on heap data; `block` 92.6%, reached
//! through `dist`'s coordinate loads at line 175 from two parallel
//! contexts (55.5% + 37%); `point.p` 5.5%. Parallel first-touch
//! initialization → 28% speedup.

use dcp_bench::{rmem_sampling, speedup_pct};
use dcp_core::prelude::*;
use dcp_runtime::{run_world, NullObserver};
use dcp_workloads::streamcluster::{build, world, ScConfig, ScVariant};

fn main() {
    let cfg = ScConfig::paper(ScVariant::Original);
    let prog = build(&cfg);
    let mut w = world(&cfg);
    w.sim.pmu = Some(rmem_sampling(8));
    let run = run_profiled(&prog, &w, ProfilerConfig::default());
    let analysis = run.analyze(&prog);

    println!("FIGURE 10 — Streamcluster data-centric view (metric: remote accesses)");
    println!(
        "heap share of remote accesses: {:.1}%   (paper: 98.2%)",
        analysis.class_pct(StorageClass::Heap, Metric::Remote)
    );
    let grand = analysis.grand_total(Metric::Remote);
    for v in analysis.variables(Metric::Remote).iter().take(3) {
        println!(
            "  {:<10} {:>5.1}%   (paper: block 92.6%, point.p 5.5%)",
            v.name,
            100.0 * v.metrics[Metric::Remote.col()] as f64 / grand.max(1) as f64
        );
    }
    println!();
    println!("block's accesses reach dist() from two parallel contexts (paper: 55.5% + 37%):");
    println!(
        "{}",
        top_down(
            &analysis,
            StorageClass::Heap,
            Metric::Remote,
            TopDownOpts { max_depth: 8, min_pct: 3.0, max_children: 4 }
        )
    );

    let orig = run_world(&prog, &world(&cfg), |_| NullObserver).unwrap().wall;
    let fcfg = ScConfig::paper(ScVariant::ParallelFirstTouch);
    let fixed = run_world(&build(&fcfg), &world(&fcfg), |_| NullObserver).unwrap().wall;
    println!(
        "parallel first-touch speedup: {:.1}%   (paper: 28%)   [{} -> {}]",
        speedup_pct(orig, fixed),
        orig,
        fixed
    );
}
