//! §7 summary — end-to-end improvements across all five benchmarks.
//!
//! Paper: "with data-centric feedback from HPCToolkit, we were able to
//! improve the performance of these benchmarks by 13–53%": AMG2006
//! (solver 105s→80s, 23.8%), Sweep3D 15%, LULESH 13% (+2.2%),
//! Streamcluster 28%, NW 53%.

use dcp_bench::{compare_line, speedup_pct};
use dcp_runtime::{run_world, NullObserver};
use dcp_workloads as wl;

fn main() {
    println!("SPEEDUP SUMMARY — original vs optimized (simulated cycles)");
    {
        use wl::amg2006::*;
        let solver = |variant| {
            let c = AmgConfig::paper(variant);
            run_world(&build(&c), &world(&c), |_| NullObserver).unwrap()
                .phase_wall("solver")
                .expect("AMG records a solver phase")
        };
        let o = solver(AmgVariant::Original);
        let f = solver(AmgVariant::LibnumaSelective);
        println!("{}", compare_line("AMG2006 solver (libnuma)", "23.8%", format!("{:.1}%", speedup_pct(o, f))));
    }
    {
        use wl::sweep3d::*;
        let o = {
            let c = SweepConfig::paper(SweepVariant::Original);
            run_world(&build(&c), &world(&c), |_| NullObserver).unwrap().wall
        };
        let f = {
            let c = SweepConfig::paper(SweepVariant::Transposed);
            run_world(&build(&c), &world(&c), |_| NullObserver).unwrap().wall
        };
        println!("{}", compare_line("Sweep3D (transposition)", "15%", format!("{:.1}%", speedup_pct(o, f))));
    }
    {
        use wl::lulesh::*;
        let wall = |v| {
            let c = LuleshConfig::paper(v);
            run_world(&build(&c), &world(&c), |_| NullObserver).unwrap().wall
        };
        let o = wall(LuleshVariant::ORIGINAL);
        println!("{}", compare_line("LULESH (interleaved heap)", "13%", format!("{:.1}%", speedup_pct(o, wall(LuleshVariant::INTERLEAVED)))));
        println!("{}", compare_line("LULESH (f_elem transposition)", "2.2%", format!("{:.1}%", speedup_pct(o, wall(LuleshVariant::TRANSPOSED)))));
    }
    {
        use wl::streamcluster::*;
        let o = {
            let c = ScConfig::paper(ScVariant::Original);
            run_world(&build(&c), &world(&c), |_| NullObserver).unwrap().wall
        };
        let f = {
            let c = ScConfig::paper(ScVariant::ParallelFirstTouch);
            run_world(&build(&c), &world(&c), |_| NullObserver).unwrap().wall
        };
        println!("{}", compare_line("Streamcluster (parallel first touch)", "28%", format!("{:.1}%", speedup_pct(o, f))));
    }
    {
        use wl::nw::*;
        let o = {
            let c = NwConfig::paper(NwVariant::Original);
            run_world(&build(&c), &world(&c), |_| NullObserver).unwrap().wall
        };
        let f = {
            let c = NwConfig::paper(NwVariant::Interleaved);
            run_world(&build(&c), &world(&c), |_| NullObserver).unwrap().wall
        };
        println!("{}", compare_line("NW (interleaved allocation)", "53%", format!("{:.1}%", speedup_pct(o, f))));
    }
}
