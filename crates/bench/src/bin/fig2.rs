//! Figure 2 — a loop allocating 100 data objects in the heap.
//!
//! §2.2's scalability concern: a tool that records each allocation
//! separately disperses metrics over 100 entries (and over millions in an
//! MPI+OpenMP run). Identifying heap variables by allocation call path
//! coalesces them into one entry whose aggregate metrics expose the hot
//! array.

use dcp_bench::ibs_sampling;
use dcp_core::prelude::*;
use dcp_workloads::micro::{fig2_alloc_loop, world};

fn main() {
    let prog = fig2_alloc_loop(100, 8192, 60_000);
    let mut w = world();
    w.sim.pmu = Some(ibs_sampling(64));
    let run = run_profiled(&prog, &w, ProfilerConfig::default());
    println!("FIGURE 2 — allocation-path coalescing");
    println!("allocations wrapped:   {}", run.stats.allocs_seen);
    println!("tracked (>= 4 KiB):    {}", run.stats.allocs_tracked);
    let analysis = run.analyze(&prog);
    let vars: Vec<_> = analysis
        .variables(Metric::Samples)
        .into_iter()
        .filter(|v| v.class == StorageClass::Heap && v.metrics[Metric::Samples.col()] > 0)
        .collect();
    println!("heap variables in the profile: {}", vars.len());
    for v in &vars {
        println!(
            "  {:<10} blocks={} bytes={} samples={} latency={}",
            v.name,
            v.alloc_count,
            v.alloc_bytes,
            v.metrics[Metric::Samples.col()],
            v.metrics[Metric::Latency.col()]
        );
    }
    println!();
    println!(
        "shape: the 100 malloc() calls at one call path appear as ONE variable \
         (var[i], blocks=100), not 100 diluted entries."
    );
}
