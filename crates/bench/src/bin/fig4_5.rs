//! Figures 4 & 5 — AMG2006 data-centric views.
//!
//! Figure 4 (top-down): 94.9% of remote memory accesses on heap
//! variables; `S_diag_j` (allocated through `hypre_CAlloc`) is the top
//! variable at 22.2%, with two access sites in OpenMP-outlined solve
//! loops at 19.3% and 2.9%.
//!
//! Figure 5 (bottom-up): the call sites invoking the hypre allocator,
//! with six more variables above 7% of remote accesses.

use dcp_bench::rmem_sampling;
use dcp_core::prelude::*;
use dcp_workloads::amg2006::{build, world, AmgConfig, AmgVariant, HOT_ARRAYS};

fn main() {
    let cfg = AmgConfig::paper(AmgVariant::Original);
    let prog = build(&cfg);
    let mut w = world(&cfg);
    w.sim.pmu = Some(rmem_sampling(8));
    let run = run_profiled(&prog, &w, ProfilerConfig::default());
    let analysis = run.analyze(&prog);

    println!("FIGURE 4 — AMG2006 top-down data-centric view (metric: remote accesses)");
    println!(
        "heap share of remote accesses: {:.1}%   (paper: 94.9%)",
        analysis.class_pct(StorageClass::Heap, Metric::Remote)
    );
    println!();
    println!(
        "{}",
        top_down(
            &analysis,
            StorageClass::Heap,
            Metric::Remote,
            TopDownOpts { max_depth: 9, min_pct: 1.5, max_children: 4 }
        )
    );

    println!("FIGURE 5 — AMG2006 bottom-up view (allocation call sites)");
    println!("{}", bottom_up(&analysis, Metric::Remote));

    println!("variable shares of remote accesses (paper: S_diag_j 22.2%, six more >7%):");
    let grand = analysis.grand_total(Metric::Remote);
    let vars = analysis.variables(Metric::Remote);
    for v in vars.iter().filter(|v| v.class == StorageClass::Heap) {
        let share = 100.0 * v.metrics[Metric::Remote.col()] as f64 / grand.max(1) as f64;
        if share >= 0.5 {
            println!("  {:<16} {share:>5.1}%", v.name);
        }
    }
    let top = &vars[0];
    println!();
    println!(
        "shape checks: top variable is {} ({}); {} of the paper's seven arrays exceed 3%",
        top.name,
        if top.name == "S_diag_j" { "matches paper" } else { "MISMATCH" },
        vars.iter()
            .filter(|v| HOT_ARRAYS.contains(&v.name.as_str())
                && v.metrics[Metric::Remote.col()] as f64 / grand.max(1) as f64 > 0.03)
            .count()
    );
}
