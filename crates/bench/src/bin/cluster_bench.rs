//! cluster_bench — weak-scaling curve of the multi-node network model.
//!
//! Sweeps the cluster workloads (halo and hypercube, `crates/workloads/
//! src/cluster.rs`) over growing rank counts — up to 256 ranks spread
//! over 64 simulated nodes joined by a 2-level fat-tree — and reports,
//! per point: simulated wall, total accesses, host seconds, exchange
//! count, communication wait, and the fabric's per-link aggregates
//! (utilization, queueing delay, stalls). Every point runs twice and
//! must agree bit-for-bit on wall and per-link counters — the
//! determinism gate for the event-calendar network.
//!
//! Output: a human table plus one machine-readable `BENCH_JSON` line
//! that `scripts/bench_cluster.sh` persists as `BENCH_cluster.json`.
//! Pass `--smoke` for a tiny sweep (CI smoke stage).

use std::time::Instant;

use dcp_runtime::{run_world, NullObserver};
use dcp_workloads::cluster::{build, world, ClusterConfig, ClusterPattern};

struct Point {
    pattern: &'static str,
    ranks: u32,
    nodes: u32,
    wall: u64,
    accesses: u64,
    exchanges: u64,
    net_wait: u64,
    flows: u64,
    net_bytes: u64,
    max_queue_delay: u64,
    mean_utilization: f64,
    host_secs: f64,
}

fn measure(pattern: ClusterPattern, name: &'static str, ranks: u32) -> Point {
    let cfg = ClusterConfig::scaled(pattern, ranks);
    let prog = build(&cfg);
    let w = world(&cfg);

    let t0 = Instant::now();
    let r1 = run_world(&prog, &w, |_| NullObserver).expect("cluster workload completes");
    let host_secs = t0.elapsed().as_secs_f64();
    let r2 = run_world(&prog, &w, |_| NullObserver).expect("cluster workload completes");
    assert_eq!(r1.wall, r2.wall, "{name} x{ranks}: wall diverged between runs");
    let n1 = r1.net.as_ref().expect("multi-node world has fabric stats");
    let n2 = r2.net.as_ref().expect("multi-node world has fabric stats");
    assert_eq!(n1.links, n2.links, "{name} x{ranks}: per-link counters diverged");

    Point {
        pattern: name,
        ranks,
        nodes: cfg.nodes(),
        wall: r1.wall,
        accesses: r1.nodes.iter().map(|n| n.machine_stats.accesses).sum(),
        exchanges: r1.nodes.iter().map(|n| n.exchanges).sum(),
        net_wait: r1.nodes.iter().map(|n| n.net_wait).sum(),
        flows: n1.flows,
        net_bytes: n1.bytes,
        max_queue_delay: n1.max_queue_delay(),
        mean_utilization: n1.mean_utilization(),
        host_secs,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sweep: &[u32] = if smoke { &[8, 16] } else { &[16, 64, 256] };

    let mut points = Vec::new();
    for (name, pattern) in
        [("halo", ClusterPattern::Halo), ("hypercube", ClusterPattern::Hypercube)]
    {
        for &ranks in sweep {
            points.push(measure(pattern, name, ranks));
        }
    }

    println!("cluster weak scaling — deterministic fat-tree fabric (dcp-net)");
    println!(
        "{:<10} {:>6} {:>6} {:>12} {:>12} {:>9} {:>12} {:>8} {:>9} {:>7} {:>8}",
        "pattern",
        "ranks",
        "nodes",
        "wall",
        "accesses",
        "exchngs",
        "net wait",
        "flows",
        "max qdly",
        "util%",
        "host s"
    );
    for p in &points {
        println!(
            "{:<10} {:>6} {:>6} {:>12} {:>12} {:>9} {:>12} {:>8} {:>9} {:>6.1}% {:>8.3}",
            p.pattern,
            p.ranks,
            p.nodes,
            p.wall,
            p.accesses,
            p.exchanges,
            p.net_wait,
            p.flows,
            p.max_queue_delay,
            100.0 * p.mean_utilization,
            p.host_secs,
        );
    }

    let mut json = String::from("BENCH_JSON {\"determinism\": \"ok\", \"points\": [");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        json.push_str(&format!(
            "{{\"pattern\": \"{}\", \"ranks\": {}, \"nodes\": {}, \"wall\": {}, \
             \"accesses\": {}, \"exchanges\": {}, \"net_wait\": {}, \"flows\": {}, \
             \"net_bytes\": {}, \"max_queue_delay\": {}, \"mean_utilization\": {:.4}, \
             \"host_secs\": {:.4}}}",
            p.pattern,
            p.ranks,
            p.nodes,
            p.wall,
            p.accesses,
            p.exchanges,
            p.net_wait,
            p.flows,
            p.net_bytes,
            p.max_queue_delay,
            p.mean_utilization,
            p.host_secs,
        ));
    }
    json.push_str("]}");
    println!("{json}");
}
