//! Table 2 — AMG2006 phase times under coarse-grained `numactl` and
//! fine-grained `libnuma` interleaving.
//!
//! Paper (seconds): original 26/420/105 (init/setup/solver, whole 551);
//! numactl 52/426/87 (565); libnuma 28/421/80 (529).
//!
//! Shape targets: numactl roughly doubles initialization but speeds the
//! solver; libnuma keeps initialization near-original and is the fastest
//! solver; setup is essentially unaffected by either.

use dcp_runtime::{run_world, NullObserver};
use dcp_workloads::amg2006::{build, world, AmgConfig, AmgVariant};

fn main() {
    println!("TABLE 2 — AMG2006 phase times (simulated cycles)");
    println!(
        "{:<10} {:>16} {:>16} {:>16} {:>16}",
        "variant", "initialization", "setup", "solver", "whole"
    );
    let mut results = Vec::new();
    for (name, variant) in [
        ("original", AmgVariant::Original),
        ("numactl", AmgVariant::NumactlInterleave),
        ("libnuma", AmgVariant::LibnumaSelective),
    ] {
        let cfg = AmgConfig::paper(variant);
        let prog = build(&cfg);
        let w = world(&cfg);
        let r = run_world(&prog, &w, |_| NullObserver).unwrap();
        let phase = |name| r.phase_wall(name).unwrap_or_else(|| panic!("AMG phase {name:?} missing"));
        let init = phase("initialization");
        let setup = phase("setup");
        let solve = phase("solver");
        println!("{:<10} {:>16} {:>16} {:>16} {:>16}", name, init, setup, solve, r.wall);
        results.push((name, init, setup, solve, r.wall));
    }
    println!();
    let (_, i_o, s_o, v_o, w_o) = results[0];
    let (_, i_n, s_n, v_n, w_n) = results[1];
    let (_, i_l, s_l, v_l, w_l) = results[2];
    println!("shape checks (paper value in parens):");
    println!("  numactl init dilation : {:.2}x   (2.00x)", i_n as f64 / i_o as f64);
    println!("  libnuma init dilation : {:.2}x   (1.08x)", i_l as f64 / i_o as f64);
    println!("  numactl solver speedup: {:.1}%   (17.1%)", 100.0 * (v_o - v_n) as f64 / v_o as f64);
    println!("  libnuma solver speedup: {:.1}%   (23.8%)", 100.0 * (v_o - v_l) as f64 / v_o as f64);
    println!("  setup ~unchanged      : {:.2}x / {:.2}x (1.01x / 1.00x)",
        s_n as f64 / s_o as f64, s_l as f64 / s_o as f64);
    println!("  whole-program order   : libnuma {} < original {} ; numactl {}", w_l, w_o, w_n);
}
