//! Figure 11 — Needleman-Wunsch NUMA diagnosis and the interleave fix.
//!
//! Paper: 90.9% of remote accesses on heap data; `referrence` 61.4% and
//! `input_itemsets` 29.5%, both accessed in the outlined kernel's
//! maximum() computation (lines 163–165). Interleaved allocation → 53%.

use dcp_bench::{rmem_sampling, speedup_pct};
use dcp_core::prelude::*;
use dcp_runtime::{run_world, NullObserver};
use dcp_workloads::nw::{build, world, NwConfig, NwVariant};

fn main() {
    let cfg = NwConfig::paper(NwVariant::Original);
    let prog = build(&cfg);
    let mut w = world(&cfg);
    w.sim.pmu = Some(rmem_sampling(8));
    let run = run_profiled(&prog, &w, ProfilerConfig::default());
    let analysis = run.analyze(&prog);

    println!("FIGURE 11 — Needleman-Wunsch data-centric view (metric: remote accesses)");
    println!(
        "heap share of remote accesses: {:.1}%   (paper: 90.9%)",
        analysis.class_pct(StorageClass::Heap, Metric::Remote)
    );
    let grand = analysis.grand_total(Metric::Remote);
    for v in analysis.variables(Metric::Remote).iter().take(2) {
        println!(
            "  {:<16} {:>5.1}%   (paper: referrence 61.4%, input_itemsets 29.5%)",
            v.name,
            100.0 * v.metrics[Metric::Remote.col()] as f64 / grand.max(1) as f64
        );
    }
    println!();
    println!(
        "{}",
        top_down(
            &analysis,
            StorageClass::Heap,
            Metric::Remote,
            TopDownOpts { max_depth: 8, min_pct: 3.0, max_children: 4 }
        )
    );

    let orig = run_world(&prog, &world(&cfg), |_| NullObserver).unwrap().wall;
    let fcfg = NwConfig::paper(NwVariant::Interleaved);
    let fixed = run_world(&build(&fcfg), &world(&fcfg), |_| NullObserver).unwrap().wall;
    println!(
        "interleaved-allocation speedup: {:.1}%   (paper: 53%)   [{} -> {}]",
        speedup_pct(orig, fixed),
        orig,
        fixed
    );
}
