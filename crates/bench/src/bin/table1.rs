//! Table 1 — measurement configuration and overhead of benchmarks.
//!
//! Paper row format: code | cores | monitored events | execution time |
//! execution time with profiling (+%). Paper overheads: AMG2006 +9.6%,
//! Sweep3D +2.3%, LULESH +12%, Streamcluster +8.0%, NW +3.9%; profile
//! sizes 8–33 MB.
//!
//! We run each workload bare and profiled on the simulator and report the
//! same columns (times in simulated cycles; the shape target is the
//! low-single-digit to ~12% overhead band and compact profile sizes).

use dcp_bench::{ibs_sampling, rmem_sampling, speedup_pct};
use dcp_core::session::Overhead;
use dcp_workloads as wl;

struct Row {
    code: &'static str,
    config: String,
    events: &'static str,
    overhead: Overhead,
}

fn main() {
    let mut rows = Vec::new();

    {
        let cfg = wl::amg2006::AmgConfig::paper(wl::amg2006::AmgVariant::Original);
        let prog = wl::amg2006::build(&cfg);
        let world = wl::amg2006::world(&cfg);
        rows.push(Row {
            code: "AMG2006",
            config: format!("{} MPI x {} threads", cfg.ranks, cfg.threads),
            events: "PM_MRK_DATA_FROM_RMEM",
            overhead: dcp_bench::profile_with(&prog, &world, rmem_sampling(16)),
        });
    }
    {
        let cfg = wl::sweep3d::SweepConfig::paper(wl::sweep3d::SweepVariant::Original);
        let prog = wl::sweep3d::build(&cfg);
        let world = wl::sweep3d::world(&cfg);
        rows.push(Row {
            code: "Sweep3D",
            config: format!("{} MPI ranks, no threads", cfg.ranks),
            events: "AMD IBS",
            overhead: dcp_bench::profile_with(&prog, &world, ibs_sampling(16384)),
        });
    }
    {
        let cfg = wl::lulesh::LuleshConfig::paper(wl::lulesh::LuleshVariant::ORIGINAL);
        let prog = wl::lulesh::build(&cfg);
        let world = wl::lulesh::world(&cfg);
        rows.push(Row {
            code: "LULESH",
            config: format!("{} threads", cfg.threads),
            events: "AMD IBS",
            overhead: dcp_bench::profile_with(&prog, &world, ibs_sampling(64)),
        });
    }
    {
        let cfg = wl::streamcluster::ScConfig::paper(wl::streamcluster::ScVariant::Original);
        let prog = wl::streamcluster::build(&cfg);
        let world = wl::streamcluster::world(&cfg);
        rows.push(Row {
            code: "Streamcluster",
            config: format!("{} threads", cfg.threads),
            events: "PM_MRK_DATA_FROM_RMEM",
            overhead: dcp_bench::profile_with(&prog, &world, rmem_sampling(2)),
        });
    }
    {
        let cfg = wl::nw::NwConfig::paper(wl::nw::NwVariant::Original);
        let prog = wl::nw::build(&cfg);
        let world = wl::nw::world(&cfg);
        rows.push(Row {
            code: "NW",
            config: format!("{} threads", cfg.threads),
            events: "PM_MRK_DATA_FROM_RMEM",
            overhead: dcp_bench::profile_with(&prog, &world, rmem_sampling(6)),
        });
    }

    println!("TABLE 1 — measurement configuration and overhead (simulated cycles)");
    println!(
        "{:<14} {:<26} {:<22} {:>14} {:>14} {:>8} {:>12} {:>10}",
        "code", "cores", "monitored events", "exec", "exec+prof", "ovh%", "profile B", "samples"
    );
    let paper = [9.6, 2.3, 12.0, 8.0, 3.9];
    for (row, paper_ovh) in rows.iter().zip(paper) {
        let o = &row.overhead;
        println!(
            "{:<14} {:<26} {:<22} {:>14} {:>14} {:>7.1}% {:>12} {:>10}   (paper +{paper_ovh}%)",
            row.code,
            row.config,
            row.events,
            o.baseline_wall,
            o.profiled_wall,
            o.overhead_pct,
            o.profile_bytes,
            o.run.stats.samples,
        );
        let neg = -speedup_pct(o.baseline_wall, o.profiled_wall);
        debug_assert!((neg - o.overhead_pct).abs() < 1e-6);
    }
    println!();
    println!(
        "space check: compact profiles vs MemProf-style traces: {} B vs {} B ({}x smaller)",
        rows.iter().map(|r| r.overhead.run.profile_bytes).sum::<usize>(),
        rows.iter().map(|r| r.overhead.run.trace_bytes).sum::<usize>(),
        rows.iter().map(|r| r.overhead.run.trace_bytes).sum::<usize>().max(1)
            / rows.iter().map(|r| r.overhead.run.profile_bytes).sum::<usize>().max(1)
    );
}
