//! Table 1 — measurement configuration and overhead of benchmarks.
//!
//! Paper row format: code | cores | monitored events | execution time |
//! execution time with profiling (+%). Paper overheads: AMG2006 +9.6%,
//! Sweep3D +2.3%, LULESH +12%, Streamcluster +8.0%, NW +3.9%; profile
//! sizes 8–33 MB.
//!
//! We run each workload bare and profiled on the simulator and report the
//! same columns (times in simulated cycles; the shape target is the
//! low-single-digit to ~12% overhead band and compact profile sizes).
//! On top of the paper's columns this binary tracks the codec trajectory:
//! per-workload v1-vs-v2 profile bytes and the wall time of the
//! post-mortem merge, both streamed (out-of-core over encoded profiles)
//! and in-memory — emitted as a machine-readable `BENCH_JSON` line for
//! `scripts/bench_codec.sh`.

use std::time::Instant;

use dcp_bench::{ibs_sampling, rmem_sampling, speedup_pct};
use dcp_cct::{merge_encoded, merge_reduction_tree};
use dcp_core::session::Overhead;
use dcp_core::METRIC_WIDTH;
use dcp_machine::PmuConfig;
use dcp_runtime::{Program, WorldConfig};
use dcp_support::bytes::Bytes;
use dcp_workloads as wl;

struct Row {
    code: &'static str,
    config: String,
    events: &'static str,
    overhead: Overhead,
    /// Streamed (out-of-core) merge of all encoded per-thread profiles.
    merge_streamed_ms: f64,
    /// In-memory reduction merge of the same profiles, decoded up front.
    merge_in_mem_ms: f64,
}

fn measure(
    code: &'static str,
    config: String,
    events: &'static str,
    prog: &Program,
    world: &WorldConfig,
    pmu: PmuConfig,
) -> Row {
    let overhead = dcp_bench::profile_with(prog, world, pmu);

    // Merge wall-time: flatten every node's per-class encoded profiles
    // and reduce each class, exactly what the post-mortem analyzer does.
    let encoded = overhead.run.encode_measurements(prog);
    let mut per_class: Vec<Vec<Bytes>> = Vec::new();
    for m in &encoded {
        per_class.resize(m.profiles.len(), Vec::new());
        for (i, blobs) in m.profiles.iter().enumerate() {
            per_class[i].extend(blobs.iter().cloned());
        }
    }

    let t0 = Instant::now();
    for blobs in per_class.iter().cloned() {
        merge_encoded(blobs, METRIC_WIDTH).expect("freshly encoded profiles are valid");
    }
    let merge_streamed_ms = t0.elapsed().as_secs_f64() * 1e3;

    // In-memory comparison: decode everything first (unmeasured), then
    // time only the merge.
    let decoded: Vec<Vec<dcp_cct::Cct>> = per_class
        .iter()
        .map(|blobs| {
            blobs.iter().map(|b| dcp_cct::decode(b.clone()).expect("valid")).collect()
        })
        .collect();
    let t0 = Instant::now();
    for trees in decoded {
        merge_reduction_tree(trees, METRIC_WIDTH);
    }
    let merge_in_mem_ms = t0.elapsed().as_secs_f64() * 1e3;

    Row { code, config, events, overhead, merge_streamed_ms, merge_in_mem_ms }
}

/// The Table-1 workload set: (code, config, events, program, world, pmu).
fn workloads() -> Vec<(&'static str, String, &'static str, Program, WorldConfig, PmuConfig)> {
    let mut set = Vec::new();
    {
        let cfg = wl::amg2006::AmgConfig::paper(wl::amg2006::AmgVariant::Original);
        set.push((
            "AMG2006",
            format!("{} MPI x {} threads", cfg.ranks, cfg.threads),
            "PM_MRK_DATA_FROM_RMEM",
            wl::amg2006::build(&cfg),
            wl::amg2006::world(&cfg),
            rmem_sampling(16),
        ));
    }
    {
        let cfg = wl::sweep3d::SweepConfig::paper(wl::sweep3d::SweepVariant::Original);
        set.push((
            "Sweep3D",
            format!("{} MPI ranks, no threads", cfg.ranks),
            "AMD IBS",
            wl::sweep3d::build(&cfg),
            wl::sweep3d::world(&cfg),
            ibs_sampling(16384),
        ));
    }
    {
        let cfg = wl::lulesh::LuleshConfig::paper(wl::lulesh::LuleshVariant::ORIGINAL);
        set.push((
            "LULESH",
            format!("{} threads", cfg.threads),
            "AMD IBS",
            wl::lulesh::build(&cfg),
            wl::lulesh::world(&cfg),
            ibs_sampling(64),
        ));
    }
    {
        let cfg = wl::streamcluster::ScConfig::paper(wl::streamcluster::ScVariant::Original);
        set.push((
            "Streamcluster",
            format!("{} threads", cfg.threads),
            "PM_MRK_DATA_FROM_RMEM",
            wl::streamcluster::build(&cfg),
            wl::streamcluster::world(&cfg),
            rmem_sampling(2),
        ));
    }
    {
        let cfg = wl::nw::NwConfig::paper(wl::nw::NwVariant::Original);
        set.push((
            "NW",
            format!("{} threads", cfg.threads),
            "PM_MRK_DATA_FROM_RMEM",
            wl::nw::build(&cfg),
            wl::nw::world(&cfg),
            rmem_sampling(6),
        ));
    }
    set
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let set = workloads();

    if args.iter().any(|a| a == "--probe-serial") {
        // Child of a parallel parent: time one profiled run per workload
        // fully sequentially (the pool size is per-process, so this is
        // the only way to get a serial number next to a parallel one).
        use dcp_core::prelude::*;
        let t0 = Instant::now();
        for (_, _, _, prog, world, pmu) in &set {
            let mut w = world.clone();
            w.sim.pmu = Some(*pmu);
            let _ = run_profiled(prog, &w, ProfilerConfig::default());
        }
        println!("SERIAL_JSON {{\"host_secs\": {:.4}}}", t0.elapsed().as_secs_f64());
        return;
    }

    let mut rows = Vec::new();
    for (code, config, events, prog, world, pmu) in &set {
        rows.push(measure(code, config.clone(), events, prog, world, *pmu));
    }

    println!("TABLE 1 — measurement configuration and overhead (simulated cycles)");
    println!(
        "{:<14} {:<26} {:<22} {:>14} {:>14} {:>8} {:>12} {:>10}",
        "code", "cores", "monitored events", "exec", "exec+prof", "ovh%", "profile B", "samples"
    );
    let paper = [9.6, 2.3, 12.0, 8.0, 3.9];
    for (row, paper_ovh) in rows.iter().zip(paper) {
        let o = &row.overhead;
        println!(
            "{:<14} {:<26} {:<22} {:>14} {:>14} {:>7.1}% {:>12} {:>10}   (paper +{paper_ovh}%)",
            row.code,
            row.config,
            row.events,
            o.baseline_wall,
            o.profiled_wall,
            o.overhead_pct,
            o.profile_bytes,
            o.run.stats.samples,
        );
        let neg = -speedup_pct(o.baseline_wall, o.profiled_wall);
        debug_assert!((neg - o.overhead_pct).abs() < 1e-6);
    }
    println!();
    println!("simulator throughput and profiler share (see DESIGN.md, \"Performance of the simulator itself\")");
    println!(
        "{:<14} {:>14} {:>10} {:>12} {:>10}",
        "code", "sim accesses", "host s", "Macc/s", "prof shr"
    );
    let mut total_acc = 0u64;
    let mut total_secs = 0.0f64;
    for row in &rows {
        let r = &row.overhead.run;
        let accesses: u64 = r.nodes.iter().map(|n| n.machine_stats.accesses).sum();
        // Profiler cycles as a share of all cycles the monitored threads
        // executed (retired ops + memory latency + the profiler itself).
        let work: u64 = r.nodes.iter().map(|n| n.ops + n.machine_stats.total_latency).sum();
        let ovh = r.stats.overhead_cycles;
        let share = ovh as f64 / (ovh + work).max(1) as f64;
        total_acc += accesses;
        total_secs += row.overhead.profiled_host_secs;
        println!(
            "{:<14} {:>14} {:>10.3} {:>12.3} {:>9.1}%",
            row.code,
            accesses,
            row.overhead.profiled_host_secs,
            accesses as f64 / row.overhead.profiled_host_secs / 1e6,
            100.0 * share,
        );
    }
    println!(
        "aggregate simulated-accesses/sec: {:.3} Macc/s",
        total_acc as f64 / total_secs / 1e6
    );

    // Host parallelism of the epoch-sharded scheduler: with one pool
    // slot the profiled runs above already were serial; otherwise a
    // DCP_THREADS=0 subprocess re-times one profiled run per workload.
    let slots = dcp_support::pool::parallelism();
    let serial_secs = if slots <= 1 {
        Some(total_secs)
    } else if args.iter().any(|a| a == "--no-serial-probe") {
        None
    } else {
        let exe = std::env::current_exe().expect("own path");
        let out = std::process::Command::new(exe)
            .env("DCP_THREADS", "0")
            .arg("--probe-serial")
            .output()
            .expect("spawn serial probe");
        assert!(out.status.success(), "serial probe subprocess failed");
        let text = String::from_utf8_lossy(&out.stdout);
        text.lines().find(|l| l.starts_with("SERIAL_JSON ")).and_then(|line| {
            let key = "\"host_secs\": ";
            let at = line.find(key)? + key.len();
            let rest = &line[at..];
            let end =
                rest.find(|c: char| !(c.is_ascii_digit() || c == '.')).unwrap_or(rest.len());
            rest[..end].parse().ok()
        })
    };
    let efficiency = serial_secs.map(|s| s / (total_secs * slots as f64));
    match (serial_secs, efficiency) {
        (Some(s), Some(e)) => println!(
            "host parallelism: {slots} slot(s); serial {s:.3} s vs parallel {total_secs:.3} s \
             = {:.2}x speedup, {:.0}% efficiency",
            s / total_secs,
            100.0 * e
        ),
        _ => println!("host parallelism: {slots} slot(s); serial probe skipped"),
    }

    println!();
    println!(
        "space check: compact profiles vs MemProf-style traces: {} B vs {} B ({}x smaller)",
        rows.iter().map(|r| r.overhead.run.profile_bytes).sum::<usize>(),
        rows.iter().map(|r| r.overhead.run.trace_bytes).sum::<usize>(),
        rows.iter().map(|r| r.overhead.run.trace_bytes).sum::<usize>().max(1)
            / rows.iter().map(|r| r.overhead.run.profile_bytes).sum::<usize>().max(1)
    );

    println!();
    println!("codec: wire-format v1 vs v2 and post-mortem merge wall-time");
    println!(
        "{:<14} {:>12} {:>12} {:>8} {:>14} {:>14}",
        "code", "v1 B", "v2 B", "saved", "merge(str) ms", "merge(mem) ms"
    );
    for row in &rows {
        let r = &row.overhead.run;
        let saved = 100.0 * (1.0 - r.profile_bytes as f64 / r.profile_bytes_v1.max(1) as f64);
        println!(
            "{:<14} {:>12} {:>12} {:>7.1}% {:>14.2} {:>14.2}",
            row.code,
            r.profile_bytes_v1,
            r.profile_bytes,
            saved,
            row.merge_streamed_ms,
            row.merge_in_mem_ms,
        );
    }
    let v1_total: usize = rows.iter().map(|r| r.overhead.run.profile_bytes_v1).sum();
    let v2_total: usize = rows.iter().map(|r| r.overhead.run.profile_bytes).sum();
    let merge_ms: f64 = rows.iter().map(|r| r.merge_streamed_ms).sum();
    let merge_mem_ms: f64 = rows.iter().map(|r| r.merge_in_mem_ms).sum();
    println!(
        "total: v1 {} B -> v2 {} B ({:.1}% saved)",
        v1_total,
        v2_total,
        100.0 * (1.0 - v2_total as f64 / v1_total.max(1) as f64)
    );

    println!();
    println!("cluster fabric — per-link utilization and queueing (dcp-net, 32 ranks over 8 nodes)");
    println!(
        "{:<18} {:>10} {:>12} {:>10} {:>9}",
        "workload", "exchanges", "net wait", "wall", "comm shr"
    );
    let mut fabric_rows = Vec::new();
    for (name, pattern) in [
        ("cluster_halo", wl::cluster::ClusterPattern::Halo),
        ("cluster_hypercube", wl::cluster::ClusterPattern::Hypercube),
    ] {
        let cfg = wl::cluster::ClusterConfig::scaled(pattern, 32);
        let prog = wl::cluster::build(&cfg);
        let mut w = wl::cluster::world(&cfg);
        w.sim.pmu = Some(ibs_sampling(128));
        let run = {
            use dcp_core::prelude::*;
            run_profiled(&prog, &w, ProfilerConfig::default())
        };
        let exchanges: u64 = run.nodes.iter().map(|n| n.exchanges).sum();
        let net_wait: u64 = run.nodes.iter().map(|n| n.net_wait).sum();
        // net_wait accumulates per rank main, so the communication share
        // is taken against total rank-time, not node walls.
        let rank_time = run.wall * u64::from(cfg.ranks);
        println!(
            "{name:<18} {exchanges:>10} {net_wait:>12} {:>10} {:>8.1}%",
            run.wall,
            100.0 * net_wait as f64 / rank_time.max(1) as f64,
        );
        fabric_rows.push((name, run));
    }
    println!(
        "{:<18} {:<18} {:>8} {:>7} {:>10} {:>10} {:>7}",
        "workload", "hottest links", "msgs", "util%", "mean qdly", "max qdly", "stalls"
    );
    for (name, run) in &fabric_rows {
        let net = run.net.as_ref().expect("cluster worlds have a fabric");
        for (label, s) in net.hottest_links(3) {
            let util = 100.0 * s.busy as f64 / net.horizon.max(1) as f64;
            let mean_q = s.queue_delay_sum as f64 / s.msgs.max(1) as f64;
            println!(
                "{name:<18} {label:<18} {:>8} {:>6.1}% {:>10.1} {:>10} {:>7}",
                s.msgs, util, mean_q, s.queue_delay_max, s.stalls
            );
        }
    }

    // Machine-readable summary for scripts/bench_codec.sh.
    let mut json = format!(
        "BENCH_JSON {{\"v1_bytes\": {v1_total}, \"v2_bytes\": {v2_total}, \
         \"saved_pct\": {:.2}, \"merge_streamed_ms\": {merge_ms:.3}, \
         \"merge_in_mem_ms\": {merge_mem_ms:.3}, \"host_threads\": {slots}, \
         \"parallel_host_secs\": {total_secs:.4}",
        100.0 * (1.0 - v2_total as f64 / v1_total.max(1) as f64)
    );
    if let (Some(s), Some(e)) = (serial_secs, efficiency) {
        json.push_str(&format!(
            ", \"serial_host_secs\": {s:.4}, \"parallel_efficiency\": {e:.3}"
        ));
    }
    json.push('}');
    println!("{json}");
}
