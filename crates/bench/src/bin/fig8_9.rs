//! Figures 8 & 9 — LULESH heap and static attribution, with both fixes.
//!
//! Figure 8: heap variables carry 66.8% of total latency and 94.2% of
//! remote DRAM accesses; the top seven arrays draw 3.0–9.4% of latency
//! each. Interleaved allocation of the hot arrays → 13% speedup.
//! Figure 9: statics carry 23.6% of latency; `f_elem` alone 17%.
//! Transposing `f_elem` → 2.2% speedup.

use dcp_bench::{ibs_sampling, speedup_pct};
use dcp_core::prelude::*;
use dcp_runtime::{run_world, NullObserver};
use dcp_workloads::lulesh::{build, world, LuleshConfig, LuleshVariant, HEAP_ARRAYS};

fn main() {
    let cfg = LuleshConfig::paper(LuleshVariant::ORIGINAL);
    let prog = build(&cfg);
    let mut w = world(&cfg);
    w.sim.pmu = Some(ibs_sampling(128));
    let run = run_profiled(&prog, &w, ProfilerConfig::default());
    let analysis = run.analyze(&prog);

    println!("FIGURE 8 — LULESH heap attribution");
    println!(
        "heap share of latency: {:.1}%   (paper: 66.8%)",
        analysis.class_pct(StorageClass::Heap, Metric::Latency)
    );
    println!(
        "heap share of remote DRAM accesses: {:.1}%   (paper: 94.2%)",
        analysis.class_pct(StorageClass::Heap, Metric::Remote)
    );
    let grand = analysis.grand_total(Metric::Latency);
    println!("heap array latency shares (paper: 3.0–9.4% each):");
    for v in analysis.variables(Metric::Latency) {
        if HEAP_ARRAYS.contains(&v.name.as_str()) {
            println!(
                "  {:<6} {:>5.1}%  R_DRAM_ACCESS={}",
                v.name,
                100.0 * v.metrics[Metric::Latency.col()] as f64 / grand.max(1) as f64,
                v.metrics[Metric::Remote.col()]
            );
        }
    }

    println!();
    println!("FIGURE 9 — LULESH static attribution");
    println!(
        "static share of latency: {:.1}%   (paper: 23.6%)",
        analysis.class_pct(StorageClass::Static, Metric::Latency)
    );
    for v in analysis.variables(Metric::Latency) {
        if v.class == StorageClass::Static && v.metrics[Metric::Samples.col()] > 0 {
            println!(
                "  {:<20} {:>5.1}% of total latency",
                v.name,
                100.0 * v.metrics[Metric::Latency.col()] as f64 / grand.max(1) as f64
            );
        }
    }

    // Fixes.
    let wall = |variant| {
        let c = LuleshConfig::paper(variant);
        run_world(&build(&c), &world(&c), |_| NullObserver).unwrap().wall
    };
    let o = wall(LuleshVariant::ORIGINAL);
    let i = wall(LuleshVariant::INTERLEAVED);
    let t = wall(LuleshVariant::TRANSPOSED);
    let b = wall(LuleshVariant::BOTH);
    println!();
    println!("interleaved-allocation speedup: {:.1}%   (paper: 13%)", speedup_pct(o, i));
    println!("f_elem transposition speedup:   {:.1}%   (paper: 2.2%)", speedup_pct(o, t));
    println!("both fixes:                     {:.1}%", speedup_pct(o, b));
}
