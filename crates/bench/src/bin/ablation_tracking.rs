//! §4.1.3 ablation — allocation-tracking overhead strategies.
//!
//! Paper: naively monitoring all allocations and frees inflates AMG2006
//! by 150%; the 4 KB size threshold, inline-assembly context reads and
//! trampoline-assisted unwinding together reduce that to under 10%.
//!
//! We run the AMG model (whose setup phase is an allocation storm through
//! a deep call chain) under each strategy combination and report the
//! measured overhead versus the unprofiled baseline.

use dcp_bench::rmem_sampling;
use dcp_core::datacentric::TrackingPolicy;
use dcp_core::prelude::*;
use dcp_workloads::amg2006::{build, world, AmgConfig, AmgVariant};

fn main() {
    let mut cfg = AmgConfig::paper(AmgVariant::Original);
    // Emphasize the allocation storm (the paper's point is that AMG
    // allocates at high frequency).
    cfg.setup_allocs = 12_000;
    cfg.solve_iters = 2;
    let prog = build(&cfg);
    let base_world = world(&cfg);

    let combos: [(&str, TrackingPolicy); 5] = [
        (
            "naive (track all, slow ctx, full unwind)",
            TrackingPolicy { min_tracked_bytes: 0, trampoline: false, fast_context: false },
        ),
        (
            "+4K threshold",
            TrackingPolicy { min_tracked_bytes: 4096, trampoline: false, fast_context: false },
        ),
        (
            "+fast context",
            TrackingPolicy { min_tracked_bytes: 0, trampoline: false, fast_context: true },
        ),
        (
            "+trampoline",
            TrackingPolicy { min_tracked_bytes: 0, trampoline: true, fast_context: true },
        ),
        ("all three (paper's configuration)", TrackingPolicy::default()),
    ];

    println!("ABLATION — allocation-tracking overhead (paper: 150% naive -> <10% with all three)");
    let mut baseline = None;
    for (name, tracking) in combos {
        let mut w = base_world.clone();
        w.sim.pmu = Some(rmem_sampling(64));
        let pcfg = ProfilerConfig { tracking, ..ProfilerConfig::default() };
        let o = measure_overhead(&prog, &w, pcfg);
        if baseline.is_none() {
            baseline = Some(o.baseline_wall);
        }
        println!(
            "{:<44} overhead {:>6.1}%   allocs tracked {:>7}/{:<7} unwound frames {:>9}",
            name,
            o.overhead_pct,
            o.run.stats.allocs_tracked,
            o.run.stats.allocs_seen,
            o.run.stats.unwind_frames
        );
    }
    println!();
    println!("shape: naive must be several times the all-three overhead, and");
    println!("the all-three configuration must stay in the paper's 2.3-12% band.");
}
