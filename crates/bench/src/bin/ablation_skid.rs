//! Skid-correction ablation (§4.1.2).
//!
//! On out-of-order processors the sampling interrupt lands several
//! instructions after the monitored one; the paper's first change to
//! HPCToolkit's unwinder is to "adjust the leaf node ... to use the
//! precise IP recorded by PMU hardware", avoiding this skid. This
//! ablation quantifies what happens without the correction: samples of a
//! single hot load scatter across the unrelated instructions that follow
//! it.

use dcp_bench::ibs_sampling;
use dcp_core::prelude::*;
use dcp_machine::MachineConfig;
use dcp_runtime::ir::ex::*;
use dcp_runtime::{ProgramBuilder, SimConfig, WorldConfig};

fn main() {
    // One scattered (hot) load at line 5, followed by three ALU ops.
    let build = || {
        let mut b = ProgramBuilder::new("skid");
        let main = b.proc("main", 0, |p| {
            let buf = p.calloc(c(1 << 20), "hot");
            p.for_(c(0), c(120_000), |p, i| {
                p.line(5);
                p.load(l(buf), rem(mul(l(i), c(8191)), c(1 << 17)), 8);
                p.line(6);
                p.compute(1);
                p.line(7);
                p.compute(1);
                p.line(8);
                p.compute(1);
            });
            p.free(l(buf));
        });
        b.build(main)
    };

    println!("SKID ABLATION — fraction of heap samples attributed to the true access site");
    for skid in [0u32, 2, 4] {
        for corrected in [true, false] {
            let prog = build();
            let mut sim = SimConfig::new(MachineConfig::magny_cours());
            sim.pmu = Some(ibs_sampling(64));
            if let Some(dcp_machine::PmuConfig::Ibs { period: _, skid: s }) = sim.pmu.as_mut() {
                *s = skid;
            }
            let w = WorldConfig::single_node(sim, 1);
            let pcfg = ProfilerConfig { skid_correction: corrected, ..ProfilerConfig::default() };
            let run = run_profiled(&prog, &w, pcfg);
            let analysis = run.analyze(&prog);
            // Count heap samples whose leaf is the true load statement.
            let tree = analysis.tree(StorageClass::Heap);
            let mut on_site = 0u64;
            let mut total = 0u64;
            for n in tree.preorder() {
                let s = tree.metrics(n)[Metric::Samples.col()];
                if s == 0 {
                    continue;
                }
                total += s;
                if analysis.resolve_frame(tree.frame(n)).ends_with(":5") {
                    on_site += s;
                }
            }
            println!(
                "skid={skid} ops, precise-IP correction {}: {:5.1}% of {} samples on main:5",
                if corrected { "ON " } else { "OFF" },
                100.0 * on_site as f64 / total.max(1) as f64,
                total
            );
        }
    }
    println!();
    println!("shape: with the correction ON, attribution stays on the load regardless of");
    println!("skid; with it OFF, attribution degrades as skid grows (the signal lands on");
    println!("the unrelated ALU ops that follow — and those samples carry the load's EA,");
    println!("so a naive tool pins memory costs on compute instructions).");
}
