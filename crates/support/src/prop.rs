//! Minimal property-based testing: strategies + the [`props!`] macro.
//!
//! In-tree replacement for the slice of `proptest` the workspace used:
//! integer-range strategies, collections, tuples, `map`, `one_of`, and
//! a macro that turns `fn name(x in strat, ...) { body }` into a
//! `#[test]` running many generated cases.
//!
//! Unlike proptest there is no shrinking and no persistence file;
//! instead every case's seed is a pure function of the test name and
//! case index, so a failure report ("failed on case 13, seed 0x…") is
//! already a reproduction recipe: the same binary re-runs the identical
//! input every time.
//!
//! [`props!`]: crate::props

use std::hash::Hasher;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::hash::FxHasher;
use crate::rng::SmallRng;

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    type Value;
    fn generate(&self, g: &mut SmallRng) -> Self::Value;
}

/// Extension combinators for strategies.
pub trait StrategyExt: Strategy + Sized {
    /// Transform generated values with `f` (proptest's `prop_map`).
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }
}

impl<S: Strategy> StrategyExt for S {}

/// See [`StrategyExt::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, g: &mut SmallRng) -> U {
        (self.f)(self.inner.generate(g))
    }
}

/// Always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _g: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Uniformly random `bool`.
pub struct AnyBool;

/// Strategy for a uniformly random `bool`.
pub fn any_bool() -> AnyBool {
    AnyBool
}

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, g: &mut SmallRng) -> bool {
        g.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, g: &mut SmallRng) -> $t {
                g.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, g: &mut SmallRng) -> $t {
                g.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// `Vec` of values from `elem`, with a length drawn from `len`.
pub struct VecOf<S> {
    elem: S,
    len: core::ops::Range<usize>,
}

/// Strategy for vectors (proptest's `prop::collection::vec`).
pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecOf<S> {
    assert!(!len.is_empty() || len.start == 0, "invalid length range");
    VecOf { elem, len }
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, g: &mut SmallRng) -> Vec<S::Value> {
        let n = if self.len.is_empty() { self.len.start } else { g.gen_range(self.len.clone()) };
        (0..n).map(|_| self.elem.generate(g)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, g: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(g),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Uniform choice between boxed strategies (see [`one_of!`]).
///
/// [`one_of!`]: crate::one_of
pub struct OneOf<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> OneOf<V> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "one_of needs at least one option");
        Self { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, g: &mut SmallRng) -> V {
        let i = g.gen_range(0..self.options.len());
        self.options[i].generate(g)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, g: &mut SmallRng) -> V {
        (**self).generate(g)
    }
}

/// Box a strategy for use in heterogeneous collections ([`OneOf`]).
pub fn boxed<V, S: Strategy<Value = V> + 'static>(s: S) -> Box<dyn Strategy<Value = V>> {
    Box::new(s)
}

/// Deterministic per-case seed: depends only on test name + case index.
pub fn case_seed(name: &str, case: u32) -> u64 {
    let mut h = FxHasher::default();
    h.write(name.as_bytes());
    h.write_u32(case);
    // Avoid the all-too-guessable 0 for empty-ish inputs.
    h.finish() ^ 0x6a09_e667_f3bc_c908
}

/// Drive `f` through `cases` generated cases. On a panic, report which
/// case and seed failed (the reproduction recipe) and re-raise.
pub fn run_cases(name: &str, cases: u32, mut f: impl FnMut(&mut SmallRng)) {
    for case in 0..cases {
        let seed = case_seed(name, case);
        let mut g = SmallRng::seed_from_u64(seed);
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(&mut g))) {
            eprintln!(
                "property `{name}` failed on case {case}/{cases} (seed {seed:#018x}); \
                 the case is deterministic — rerun this test to reproduce"
            );
            resume_unwind(payload);
        }
    }
}

/// Define property tests (in-tree `proptest!` replacement):
///
/// ```ignore
/// dcp_support::props! {
///     cases = 32;
///
///     /// Doubling is monotone.
///     fn doubling_is_monotone(x in 0u64..1000, y in 0u64..1000) {
///         if x < y { assert!(2 * x < 2 * y); }
///     }
/// }
/// ```
///
/// Each `fn` becomes a `#[test]` that runs `cases` deterministic cases;
/// use plain `assert!`/`assert_eq!` in the body.
#[macro_export]
macro_rules! props {
    (cases = $cases:expr;
     $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )+
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                $crate::prop::run_cases(stringify!($name), $cases, |__g| {
                    $(let $arg = $crate::prop::Strategy::generate(&($strat), __g);)+
                    $body
                });
            }
        )+
    };
}

/// Uniform choice among strategies yielding the same value type
/// (in-tree `prop_oneof!` replacement).
#[macro_export]
macro_rules! one_of {
    ($($s:expr),+ $(,)?) => {
        $crate::prop::OneOf::new(vec![$($crate::prop::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_name_dependent() {
        assert_eq!(case_seed("a", 0), case_seed("a", 0));
        assert_ne!(case_seed("a", 0), case_seed("a", 1));
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
    }

    #[test]
    fn generated_values_respect_strategies() {
        let mut g = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            let v = vec(0u8..4, 1..5).generate(&mut g);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));

            let (a, b, c) = (0u32..10, 5i64..6, any_bool()).generate(&mut g);
            assert!(a < 10);
            assert_eq!(b, 5);
            let _ = c;

            let m = (0u64..3).prop_map(|x| x * 100).generate(&mut g);
            assert!(m == 0 || m == 100 || m == 200);

            let j = Just("fixed").generate(&mut g);
            assert_eq!(j, "fixed");
        }
    }

    #[test]
    fn one_of_covers_all_options() {
        let strat = crate::one_of![Just(1u8), Just(2u8), Just(3u8)];
        let mut g = SmallRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strat.generate(&mut g) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    crate::props! {
        cases = 16;

        /// The macro itself: arguments bind, bodies run, plain asserts work.
        fn macro_generates_and_runs(xs in vec(0u32..100, 0..8), flip in any_bool()) {
            assert!(xs.len() < 8);
            if flip {
                assert!(xs.iter().all(|&x| x < 100));
            }
        }
    }
}
