//! Power-of-two latency histograms for server-side metrics.
//!
//! The serving daemon answers a `/metrics`-style stats query with
//! per-query latency distributions. A log2-bucketed histogram keeps that
//! cheap (one `ilog2` per record, 64 fixed buckets) and fully
//! deterministic: the rendered form is a pure function of the recorded
//! values, so the stats query itself is cacheable and testable.

/// A histogram whose bucket `i` counts values `v` with `ilog2(v) == i`
/// (value 0 lands in bucket 0). Values are dimensionless — the serving
/// layer records microseconds, but nothing here assumes a unit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self { buckets: [0; 64], count: 0, sum: 0, max: 0 }
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 { 0 } else { value.ilog2() as usize };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding the q-quantile (q in [0, 1]),
    /// i.e. an over-estimate no worse than 2x the true value. Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket i spans [2^i, 2^(i+1)); report the exclusive
                // upper bound, capped at the observed max.
                let hi = if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                return hi.min(self.max);
            }
        }
        self.max
    }

    /// One-line deterministic rendering for the stats query:
    /// `count=N sum=S mean=M p50<=A p95<=B max=C`.
    pub fn render(&self) -> String {
        format!(
            "count={} sum={} mean={:.1} p50<={} p95<={} max={}",
            self.count,
            self.sum,
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.95),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.render(), "count=0 sum=0 mean=0.0 p50<=0 p95<=0 max=0");
    }

    #[test]
    fn record_tracks_count_sum_max() {
        let mut h = LatencyHistogram::new();
        for v in [0, 1, 7, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1016);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 203.2).abs() < 1e-9);
    }

    #[test]
    fn quantile_bounds_hold() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        // Each quantile estimate must be >= the true quantile and <= 2x it.
        for (q, truth) in [(0.5, 50u64), (0.9, 90), (1.0, 100)] {
            let est = h.quantile(q);
            assert!(est >= truth, "q={q}: {est} < {truth}");
            assert!(est <= truth.saturating_mul(2), "q={q}: {est} > 2*{truth}");
        }
    }

    #[test]
    fn merge_equals_recording_union() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for v in [3, 9, 200] {
            a.record(v);
            both.record(v);
        }
        for v in [1, 5000, 12] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX); // saturating
        assert_eq!(h.quantile(1.0), u64::MAX);
    }
}
