//! Consistent-hash ring: stable key → shard placement for the sharded
//! serving tier.
//!
//! The router places whole profile sets on shard daemons by hashing the
//! set *name* onto a ring of virtual-node points (ROADMAP: "consistent
//! hashing on set name"). Placing whole sets — never splitting one
//! set's bundle stream across shards — is what keeps the distributed
//! reduction tree byte-identical to a single daemon: `cct::merge` is
//! bracket-independent but *order*-sensitive, so a set's sequential
//! fold must complete on one owner (see DESIGN.md, "Sharded serving").
//!
//! Properties the suite below pins against a brute-force model:
//!
//! * **Agreement** — `owner` equals a linear scan over all points.
//! * **Balance** — with enough virtual nodes, each shard's share of
//!   random keys stays within a pinned bound of the fair share.
//! * **Stability** — removing a shard only moves the keys it owned;
//!   adding a shard only moves keys *onto* the new shard, and the
//!   moved fraction stays near `1/(n+1)`.
//!
//! Placement must be identical on every host and every run — it is part
//! of the cluster contract, like the wire format. Point hashes are
//! therefore pure functions of `(shard id, vnode index)` through the
//! in-tree SplitMix64 finalizer; there is no per-process randomness.

use std::hash::Hasher;

use crate::hash::FxHasher;

/// SplitMix64 finalizer: a full-avalanche 64-bit mix. Sequential shard
/// and vnode indices land uniformly on the ring through this.
#[inline]
fn mix64(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Ring position of virtual node `vnode` of shard `id`.
#[inline]
fn point(id: u32, vnode: u32) -> u64 {
    mix64(((id as u64) << 32) | vnode as u64)
}

/// Ring position of a key (a profile set name's bytes).
#[inline]
fn key_point(key: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(key);
    mix64(h.finish())
}

/// A consistent-hash ring over shard ids with a fixed number of
/// virtual nodes per shard.
///
/// Lookup walks clockwise from the key's position to the next virtual
/// node; ties on equal positions break toward the smaller shard id so
/// placement is a total function of the configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// Sorted `(position, shard id)` pairs — the ring itself.
    points: Vec<(u64, u32)>,
    /// Sorted member shard ids.
    shards: Vec<u32>,
    vnodes: u32,
}

impl HashRing {
    /// Ring over shard ids `0..shards` with `vnodes` virtual nodes each.
    ///
    /// # Panics
    /// Panics if `shards` or `vnodes` is zero.
    pub fn new(shards: u32, vnodes: u32) -> Self {
        let ids: Vec<u32> = (0..shards).collect();
        Self::with_ids(&ids, vnodes)
    }

    /// Ring over explicit shard ids.
    ///
    /// # Panics
    /// Panics on an empty id list, duplicate ids, or zero `vnodes`.
    pub fn with_ids(ids: &[u32], vnodes: u32) -> Self {
        assert!(!ids.is_empty(), "ring needs at least one shard");
        assert!(vnodes > 0, "ring needs at least one virtual node per shard");
        let mut shards = ids.to_vec();
        shards.sort_unstable();
        assert!(shards.windows(2).all(|w| w[0] != w[1]), "duplicate shard id");
        let mut ring = Self { points: Vec::new(), shards, vnodes };
        ring.rebuild();
        ring
    }

    fn rebuild(&mut self) {
        self.points.clear();
        self.points.reserve(self.shards.len() * self.vnodes as usize);
        for &id in &self.shards {
            for v in 0..self.vnodes {
                self.points.push((point(id, v), id));
            }
        }
        // Sort by (position, id): equal positions resolve to the
        // smaller id, deterministically.
        self.points.sort_unstable();
    }

    /// The shard owning `key`: the first virtual node at or clockwise
    /// after the key's ring position, wrapping at the top.
    pub fn owner(&self, key: &[u8]) -> u32 {
        let k = key_point(key);
        let i = self.points.partition_point(|&(p, _)| p < k);
        self.points[if i == self.points.len() { 0 } else { i }].1
    }

    /// Add a shard to the ring.
    ///
    /// # Panics
    /// Panics if `id` is already a member.
    pub fn add_shard(&mut self, id: u32) {
        assert!(!self.shards.contains(&id), "shard {id} already in ring");
        self.shards.push(id);
        self.shards.sort_unstable();
        self.rebuild();
    }

    /// Remove a shard from the ring.
    ///
    /// # Panics
    /// Panics if `id` is not a member or is the last member.
    pub fn remove_shard(&mut self, id: u32) {
        let i = self.shards.iter().position(|&s| s == id).expect("shard not in ring");
        assert!(self.shards.len() > 1, "cannot remove the last shard");
        self.shards.remove(i);
        self.rebuild();
    }

    /// Member shard ids, sorted.
    pub fn shards(&self) -> &[u32] {
        &self.shards
    }

    /// Virtual nodes per shard.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// Total virtual-node points on the ring.
    pub fn point_count(&self) -> usize {
        self.points.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prop::vec;
    use crate::SmallRng;

    /// The brute-force model: scan *all* points, take the minimum
    /// `(position, id)` among those at or after the key, wrapping to
    /// the global minimum when none is.
    fn model_owner(ring: &HashRing, key: &[u8]) -> u32 {
        let k = key_point(key);
        let after = ring.points.iter().filter(|&&(p, _)| p >= k).min();
        let wrapped = ring.points.iter().min();
        after.or(wrapped).expect("non-empty ring").1
    }

    /// Deterministic printable key corpus.
    fn keys(n: usize, seed: u64) -> Vec<String> {
        let mut g = SmallRng::seed_from_u64(seed);
        (0..n).map(|i| format!("set-{i}-{:08x}", g.next_u64() as u32)).collect()
    }

    crate::props! {
        cases = 64;

        /// Sorted-vec binary search agrees with the linear-scan model
        /// for every configuration shape and key.
        fn lookup_agrees_with_brute_force_model(
            ids in vec(0u32..64, 1..9),
            vnodes in 1u32..96,
            key in vec(0u8..=255, 0..24),
        ) {
            let mut ids = ids;
            ids.sort_unstable();
            ids.dedup();
            let ring = HashRing::with_ids(&ids, vnodes);
            assert_eq!(ring.owner(&key), model_owner(&ring, &key));
        }

        /// Removing a shard moves only the keys that shard owned;
        /// everything else stays put (the consistent-hashing contract).
        fn remove_moves_only_the_removed_shards_keys(
            shards in 2u32..7,
            victim_pick in 0u32..6,
            seed in 0u64..u64::MAX,
        ) {
            let ring = HashRing::new(shards, 64);
            let victim = victim_pick % shards;
            let mut smaller = ring.clone();
            smaller.remove_shard(victim);
            for key in keys(256, seed) {
                let before = ring.owner(key.as_bytes());
                let after = smaller.owner(key.as_bytes());
                if before != victim {
                    assert_eq!(before, after, "key {key} moved off a surviving shard");
                } else {
                    assert_ne!(after, victim, "key {key} still on the removed shard");
                }
            }
        }

        /// Adding a shard moves keys only *onto* the new shard, and the
        /// moved fraction stays near the fair 1/(n+1) share.
        fn add_moves_at_most_the_expected_fraction(
            shards in 1u32..7,
            seed in 0u64..u64::MAX,
        ) {
            let ring = HashRing::new(shards, 64);
            let mut bigger = ring.clone();
            bigger.add_shard(shards);
            let corpus = keys(512, seed);
            let mut moved = 0usize;
            for key in &corpus {
                let before = ring.owner(key.as_bytes());
                let after = bigger.owner(key.as_bytes());
                if before != after {
                    assert_eq!(after, shards, "key {key} moved to an old shard");
                    moved += 1;
                }
            }
            // Fair share is |corpus|/(n+1); pin a generous multiple so
            // the bound holds for every seed yet still rules out
            // rehash-everything behaviour (which would move n/(n+1)).
            let fair = corpus.len() / (shards as usize + 1);
            assert!(
                moved <= fair * 2 + 24,
                "{moved} of {} keys moved; fair share {fair}",
                corpus.len()
            );
        }
    }

    #[test]
    fn placement_is_stable_across_runs() {
        // Ring placement is part of the cluster contract: these exact
        // owners must never change, or a running cluster's sets would
        // silently land on the wrong shard after an upgrade.
        let ring = HashRing::new(3, 64);
        let got: Vec<u32> =
            ["amg2006", "sweep3d", "lulesh", "streamcluster", "nw"]
                .iter()
                .map(|w| ring.owner(w.as_bytes()))
                .collect();
        assert_eq!(got, vec![0, 2, 2, 1, 2]);
    }

    #[test]
    fn load_balance_stays_within_the_pinned_bound() {
        // Deterministic corpus (fixed seed), deterministic hashes: the
        // shares below are exact, so the bound cannot flake. 128 vnodes
        // keeps every shard within [0.5, 1.6] of the fair share.
        for shards in [2u32, 3, 5, 8] {
            let ring = HashRing::new(shards, 128);
            let corpus = keys(8192, 0xba1a_ce00 + shards as u64);
            let mut counts = std::collections::HashMap::new();
            for key in &corpus {
                *counts.entry(ring.owner(key.as_bytes())).or_insert(0usize) += 1;
            }
            let fair = corpus.len() as f64 / shards as f64;
            for id in 0..shards {
                let n = counts.get(&id).copied().unwrap_or(0) as f64;
                assert!(
                    n > fair * 0.5 && n < fair * 1.6,
                    "{shards} shards: shard {id} holds {n} of {} (fair {fair:.0})",
                    corpus.len()
                );
            }
        }
    }

    #[test]
    fn ties_and_wraparound_resolve_deterministically() {
        let ring = HashRing::new(4, 32);
        // A key hashing past the last point must wrap to the first.
        let top = ring.points.last().expect("points").0;
        assert!(top < u64::MAX || ring.owner(b"anything") == ring.points[0].1);
        // Same config twice — identical ring, identical owners.
        let again = HashRing::new(4, 32);
        assert_eq!(ring, again);
    }

    #[test]
    #[should_panic(expected = "duplicate shard id")]
    fn duplicate_ids_panic() {
        let _ = HashRing::with_ids(&[1, 2, 1], 8);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn empty_ring_panics() {
        let _ = HashRing::with_ids(&[], 8);
    }

    #[test]
    #[should_panic(expected = "cannot remove the last shard")]
    fn removing_the_last_shard_panics() {
        let mut ring = HashRing::new(1, 8);
        ring.remove_shard(0);
    }
}
