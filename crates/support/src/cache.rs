//! Bounded LRU cache with byte accounting.
//!
//! The serving layer fronts its query engine with a response cache keyed
//! by `(profile-set epoch, query)`; entries from superseded epochs can
//! never hit again, so recency eviction is also the invalidation
//! mechanism (see DESIGN.md, "A serving layer over the reduction tree").
//! The cache is deliberately simple and fully deterministic: a hash map
//! plus a recency queue with lazy cleanup, bounded both by entry count
//! and by the summed byte cost the caller declares per entry. Hit and
//! miss counters feed the server's `/metrics`-style stats query.

use std::collections::VecDeque;
use std::hash::Hash;

use crate::FxHashMap;

struct Slot<V> {
    value: V,
    cost: usize,
    /// Monotonic tick of the last access; stale queue entries carry an
    /// older tick and are dropped lazily.
    tick: u64,
}

/// An LRU cache bounded by entry count and total declared byte cost.
pub struct LruCache<K, V> {
    map: FxHashMap<K, Slot<V>>,
    /// Recency queue: front is oldest. May contain stale (key, tick)
    /// pairs; an entry is live only if its tick matches the map's.
    queue: VecDeque<(K, u64)>,
    max_entries: usize,
    max_bytes: usize,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Hash + Eq + Clone, V> LruCache<K, V> {
    /// A cache holding at most `max_entries` entries totalling at most
    /// `max_bytes` of declared cost. Either bound may be 0 to disable
    /// caching entirely (every insert is immediately evicted).
    pub fn new(max_entries: usize, max_bytes: usize) -> Self {
        Self {
            map: FxHashMap::default(),
            queue: VecDeque::new(),
            max_entries,
            max_bytes,
            bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up `key`, refreshing its recency. Counts a hit or a miss.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some(slot) => {
                slot.tick = tick;
                self.queue.push_back((key.clone(), tick));
                self.hits += 1;
                self.compact_queue();
                Some(&self.map[key].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert `value` under `key` with a declared byte cost, evicting
    /// least-recently-used entries until both bounds hold. Replacing an
    /// existing key updates its cost and recency.
    pub fn insert(&mut self, key: K, value: V, cost: usize) {
        self.tick += 1;
        if let Some(old) = self.map.remove(&key) {
            self.bytes -= old.cost;
        }
        self.bytes += cost;
        self.map.insert(key.clone(), Slot { value, cost, tick: self.tick });
        self.queue.push_back((key, self.tick));
        self.evict();
        self.compact_queue();
    }

    /// Drop every entry (counters survive).
    pub fn clear(&mut self) {
        self.map.clear();
        self.queue.clear();
        self.bytes = 0;
    }

    fn evict(&mut self) {
        while self.map.len() > self.max_entries || self.bytes > self.max_bytes {
            let Some((key, tick)) = self.queue.pop_front() else {
                debug_assert!(self.map.is_empty(), "non-empty cache with empty queue");
                break;
            };
            let live = self.map.get(&key).is_some_and(|s| s.tick == tick);
            if live {
                let slot = self.map.remove(&key).expect("checked live");
                self.bytes -= slot.cost;
                self.evictions += 1;
            }
        }
    }

    /// Keep the lazy queue from growing without bound: when it holds far
    /// more entries than the map, rebuild it from live slots in recency
    /// order.
    fn compact_queue(&mut self) {
        if self.queue.len() <= 8 + self.map.len() * 2 {
            return;
        }
        let map = &self.map;
        self.queue.retain(|(k, t)| map.get(k).is_some_and(|s| s.tick == *t));
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Summed declared cost of live entries.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Hit rate over all lookups so far (0.0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_after_insert_hits() {
        let mut c: LruCache<u32, String> = LruCache::new(4, 1024);
        assert!(c.get(&1).is_none());
        c.insert(1, "one".into(), 3);
        assert_eq!(c.get(&1).map(String::as_str), Some("one"));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn entry_bound_evicts_least_recent() {
        let mut c: LruCache<u32, u32> = LruCache::new(2, 1024);
        c.insert(1, 10, 1);
        c.insert(2, 20, 1);
        assert_eq!(c.get(&1), Some(&10)); // 1 is now most recent
        c.insert(3, 30, 1); // evicts 2
        assert_eq!(c.len(), 2);
        assert!(c.get(&2).is_none());
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&3), Some(&30));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn byte_bound_evicts_until_it_fits() {
        let mut c: LruCache<u32, u32> = LruCache::new(100, 10);
        c.insert(1, 1, 4);
        c.insert(2, 2, 4);
        c.insert(3, 3, 4); // 12 bytes > 10: evicts 1
        assert_eq!(c.bytes(), 8);
        assert!(c.get(&1).is_none());
        c.insert(4, 4, 10); // evicts everything else
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), 10);
        assert_eq!(c.get(&4), Some(&4));
    }

    #[test]
    fn replacing_a_key_updates_cost_not_count() {
        let mut c: LruCache<u32, u32> = LruCache::new(4, 100);
        c.insert(1, 10, 30);
        c.insert(1, 11, 50);
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), 50);
        assert_eq!(c.get(&1), Some(&11));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c: LruCache<u32, u32> = LruCache::new(0, 0);
        c.insert(1, 10, 1);
        assert!(c.is_empty());
        assert!(c.get(&1).is_none());
    }

    #[test]
    fn heavy_reaccess_does_not_leak_queue() {
        let mut c: LruCache<u32, u32> = LruCache::new(4, 1024);
        for k in 0..4 {
            c.insert(k, k, 1);
        }
        for _ in 0..10_000 {
            for k in 0..4 {
                assert!(c.get(&k).is_some());
            }
        }
        // The lazy queue must stay proportional to the live map.
        assert!(c.queue.len() <= 8 + c.map.len() * 2, "queue grew to {}", c.queue.len());
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
    }
}
