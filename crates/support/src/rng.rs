//! Seedable small PRNG: SplitMix64 seeding into xoshiro256++.
//!
//! Drop-in for the `rand::SmallRng` uses in the PMU models: seed from a
//! `u64`, draw uniform integers from ranges. The generator is a pure
//! function of its seed — the same seed always produces the identical
//! stream on every platform and every run, which the profiler's
//! determinism guarantees (and their regression tests) depend on.
//!
//! xoshiro256++ is the same family `rand`'s `SmallRng` used on 64-bit
//! targets, chosen for speed and equidistribution, not cryptography.

/// Advance a SplitMix64 state and return the next output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A small, fast, seedable xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Build a generator whose state is derived from `seed` via
    /// SplitMix64 (the seeding procedure the xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut st = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut st);
        }
        // xoshiro's all-zero state is absorbing; SplitMix64 cannot
        // produce four consecutive zeros, but guard regardless.
        if s == [0; 4] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Self { s }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let s2 = s2 ^ s0;
        let s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        self.s = [s0, s1, s2 ^ t, s3.rotate_left(45)];
        result
    }

    /// Next 32 uniformly distributed bits (upper half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }

    /// Uniform draw from an integer range, half-open or inclusive.
    ///
    /// # Panics
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Unbiased uniform value in `0..span` (Lemire's multiply-shift
    /// rejection method). `span` must be nonzero.
    fn bounded(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut lo = m as u64;
        if lo < span {
            let t = span.wrapping_neg() % span;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// Integer ranges [`SmallRng::gen_range`] can sample uniformly.
pub trait UniformRange {
    type Output;
    fn sample(self, rng: &mut SmallRng) -> Self::Output;
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl UniformRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + rng.bounded((self.end - self.start) as u64) as $t
            }
        }
        impl UniformRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.bounded(span + 1) as $t
            }
        }
    )*};
}
impl_unsigned_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(rng.bounded(span) as $u as $t)
            }
        }
        impl UniformRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as $u as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.bounded(span + 1) as $u as $t)
            }
        }
    )*};
}
impl_signed_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(12345);
        let mut b = SmallRng::seed_from_u64(12345);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn stream_snapshot_is_stable() {
        // Locks the generator's exact output: any change to seeding or
        // the xoshiro step silently breaks every downstream determinism
        // guarantee, so fail loudly here instead.
        let mut r = SmallRng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330
            ]
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(99);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..=30);
            assert!((10..=30).contains(&v));
            let w = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let z = r.gen_range(7u8..8);
            assert_eq!(z, 7);
        }
    }

    #[test]
    fn range_coverage_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8000..12000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "p=0.25 gave {hits}/100000");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SmallRng::seed_from_u64(0);
        let _ = r.gen_range(5u32..5);
    }
}
