//! Criterion-shaped micro-benchmark harness.
//!
//! In-tree replacement for the slice of `criterion` the bench crate
//! uses: `Criterion`, benchmark groups, `bench_with_input`, `iter` /
//! `iter_batched`, and the `criterion_group!`/`criterion_main!` macros.
//! Each benchmark warms up briefly, then runs until a wall-clock budget
//! (`DCP_BENCH_MS`, default 30 ms per benchmark) and reports mean
//! ns/iter on stdout. No statistics machinery — the goal is honest
//! relative numbers (reduction tree vs. sequential fold, shared-lock
//! CCT vs. private CCTs) with zero dependencies, not confidence
//! intervals.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn budget() -> Duration {
    let ms = std::env::var("DCP_BENCH_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(30u64);
    Duration::from_millis(ms)
}

const MAX_ITERS: u64 = 10_000_000;

/// Times one benchmark routine.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    fn new() -> Self {
        Self { elapsed: Duration::ZERO, iters: 0 }
    }

    /// Time `f` repeatedly until the budget is exhausted.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        for _ in 0..3 {
            black_box(f());
        }
        let budget = budget();
        let start = Instant::now();
        let mut n = 0u64;
        loop {
            black_box(f());
            n += 1;
            if n >= MAX_ITERS || start.elapsed() >= budget {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iters = n;
    }

    /// Time `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let budget = budget();
        let wall = Instant::now();
        let mut measured = Duration::ZERO;
        let mut n = 0u64;
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            measured += t0.elapsed();
            n += 1;
            if n >= MAX_ITERS || wall.elapsed() >= budget {
                break;
            }
        }
        self.elapsed = measured;
        self.iters = n;
    }
}

/// Batch sizing hint; accepted for API compatibility, measurement is
/// per-invocation either way.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation; accepted and ignored (we report ns/iter).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: a function name plus an optional parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        Self { id: format!("{name}/{param}") }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        Self { id: param.to_string() }
    }
}

/// Names usable as a benchmark id.
pub trait IntoBenchId {
    fn into_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new();
    f(&mut b);
    let per_iter = if b.iters == 0 { 0.0 } else { b.elapsed.as_nanos() as f64 / b.iters as f64 };
    println!("{label:<52} {per_iter:>14.1} ns/iter  ({} iters)", b.iters);
}

/// Top-level benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn bench_function(
        &mut self,
        name: &str,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.into() }
    }
}

/// A named group; benchmarks print as `group/name`.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) {}

    pub fn bench_function(&mut self, id: impl IntoBenchId, mut f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(&label, &mut f);
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(&label, &mut |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// Declare a benchmark group function (in-tree `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::bench::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench binary's `main` (in-tree `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_counts() {
        std::env::set_var("DCP_BENCH_MS", "1");
        let mut b = Bencher::new();
        b.iter(|| black_box(1 + 1));
        assert!(b.iters > 0);
        let mut b2 = Bencher::new();
        b2.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        assert!(b2.iters > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        std::env::set_var("DCP_BENCH_MS", "1");
        let mut c = Criterion::default();
        c.bench_function("plain", |b| b.iter(|| black_box(2 * 2)));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.bench_function(BenchmarkId::from_parameter("param"), |b| b.iter(|| black_box(1)));
        g.finish();
    }
}
