//! Poison-free locking for always-on services.
//!
//! `std::sync::Mutex` poisons itself when a holder panics, and every
//! later `lock().expect(..)` then panics too. For a daemon that is
//! exactly the wrong failure mode: one panicking session takes the
//! whole store lock down with it, every other session thread dies on
//! the poison, and the accept loop keeps queueing sockets that nobody
//! will ever drain — new clients hang instead of being served (the
//! serve-layer regression test pins this scenario).
//!
//! [`Mutex`] here recovers the guard from a poisoned lock instead of
//! propagating the panic. That is the right trade for the consumers in
//! this workspace, whose critical sections are written to be
//! interruption-safe: the profile store validates bundles *before*
//! taking the lock and its mutations are append-then-commit, so state
//! observed after a panicking holder is a consistent prefix, not a
//! torn write. Holders that need tearing detection should keep
//! `std::sync::Mutex`.

use std::sync::{MutexGuard, PoisonError};

/// A mutex whose `lock` never panics on poison: a panic in a previous
/// holder is recovered and the guard handed out normally.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Lock, recovering from poison. Blocks like `std::sync::Mutex`.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the mutex and return its value, recovering from poison.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_recovers_after_a_panicking_holder() {
        let m = Arc::new(Mutex::new(7u64));
        let held = Arc::clone(&m);
        let t = std::thread::spawn(move || {
            let _guard = held.lock();
            panic!("injected panic while holding the lock");
        });
        assert!(t.join().is_err(), "holder must have panicked");
        // A std Mutex would now be poisoned; this one hands the lock out.
        let mut g = m.lock();
        assert_eq!(*g, 7);
        *g = 8;
        drop(g);
        assert_eq!(*m.lock(), 8);
    }

    #[test]
    fn into_inner_recovers_too() {
        let m = Arc::new(Mutex::new(vec![1, 2, 3]));
        let held = Arc::clone(&m);
        let t = std::thread::spawn(move || {
            let _guard = held.lock();
            panic!("poison it");
        });
        let _ = t.join();
        let m = Arc::try_unwrap(m).expect("sole owner");
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
