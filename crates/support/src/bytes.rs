//! Byte writer/reader pair for the compact profile codec.
//!
//! [`BytesMut`] is an append-only writer with big-endian fixed-width
//! puts; [`Bytes`] is a cheaply cloneable, sliceable read view whose
//! `get_*` calls consume from the front. The API mirrors the subset of
//! the `bytes` crate the workspace used, so the codec's wire format is
//! byte-for-byte unchanged: profiles encoded before this crate existed
//! still decode.

use std::ops::Range;
use std::sync::Arc;

/// Growable write buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn clear(&mut self) {
        self.buf.clear();
    }

    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    #[inline]
    pub fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Finish writing: convert into an immutable, shareable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.buf)
    }
}

/// Immutable byte view; reads consume from the front, `slice`/`clone`
/// share the underlying allocation.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Self { data: v.into(), start: 0, end }
    }

    pub fn from_static(s: &'static [u8]) -> Self {
        Self { data: s.into(), start: 0, end: s.len() }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Sub-view of the current view (indices relative to it).
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, r: Range<usize>) -> Bytes {
        assert!(r.start <= r.end && r.end <= self.len(), "slice {r:?} out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + r.start, end: self.start + r.end }
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.len()
    }

    pub fn has_remaining(&self) -> bool {
        !self.is_empty()
    }

    /// # Panics
    /// Panics when empty; callers check `has_remaining` first, matching
    /// the `bytes` crate's contract.
    #[inline]
    pub fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 past end of buffer");
        let v = self.data[self.start];
        self.start += 1;
        v
    }

    #[inline]
    pub fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take::<2>())
    }

    #[inline]
    pub fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take::<4>())
    }

    #[inline]
    pub fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take::<8>())
    }

    #[inline]
    fn take<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.remaining() >= N, "read of {N} bytes past end of buffer");
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.start..self.start + N]);
        self.start += N;
        out
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(0xab);
        w.put_u16(0x1234);
        w.put_u32(0xdead_beef);
        w.put_u64(0x0102_0304_0506_0708);
        w.put_slice(&[1, 2, 3]);
        assert_eq!(w.len(), 1 + 2 + 4 + 8 + 3);
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 0xab);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(r.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn big_endian_layout_matches_wire_format() {
        let mut w = BytesMut::new();
        w.put_u32(0x4443_5031); // the codec's "DCP1" magic
        assert_eq!(w.freeze().as_slice(), b"DCP1");
    }

    #[test]
    fn slices_are_views_not_copies() {
        let mut w = BytesMut::new();
        w.put_slice(b"hello world");
        let b = w.freeze();
        let hello = b.slice(0..5);
        let world = b.slice(6..11);
        assert_eq!(hello.as_slice(), b"hello");
        assert_eq!(world.as_slice(), b"world");
        // Nested slicing is relative to the view.
        assert_eq!(world.slice(1..3).as_slice(), b"or");
    }

    #[test]
    fn reads_consume_from_front() {
        let mut w = BytesMut::new();
        w.put_u8(1);
        w.put_u8(2);
        let mut b = w.freeze();
        assert_eq!(b.remaining(), 2);
        assert_eq!(b.get_u8(), 1);
        assert!(b.has_remaining());
        assert_eq!(b.get_u8(), 2);
        assert!(!b.has_remaining());
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn reading_past_end_panics() {
        let mut b = Bytes::from_static(b"ab");
        let _ = b.get_u32();
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_slice_panics() {
        let b = Bytes::from_static(b"abc");
        let _ = b.slice(1..9);
    }
}
