//! # dcp-support — in-tree runtime machinery for the memgaze workspace
//!
//! The workspace builds with **zero registry dependencies** so that
//! `cargo build --release --offline && cargo test -q --offline` works
//! from a clean checkout with no network. Profiling infrastructure that
//! owns its runtime machinery keeps overhead and behaviour predictable
//! (the same argument PROMPT and DINAMITE make for controlling their
//! instrumentation runtimes); it also makes every cycle the profiler
//! charges to the monitored program auditable in-tree.
//!
//! Provided here, replacing what the workspace previously imported from
//! the registry:
//!
//! * [`rng`] — a seedable SplitMix64-seeded xoshiro256++ PRNG
//!   (replaces `rand::SmallRng` in the PMU jitter models),
//! * [`hash`] — an FxHash-style hasher with [`FxHashMap`]/[`FxHashSet`]
//!   aliases (replaces `rustc-hash`),
//! * [`bytes`] — big-endian byte reader/writer buffers (replaces
//!   `bytes` in the profile codec and trace collector),
//! * [`pool`] — a shared fork-join thread pool with work-helping
//!   [`pool::join`] and [`pool::par_map_mut`] (replaces `rayon` in the
//!   reduction-tree merge and the world runner),
//! * [`prop`] — a minimal property-testing framework with the
//!   [`props!`](crate::props) macro (replaces `proptest`),
//! * [`bench`] — a criterion-shaped micro-benchmark harness with the
//!   [`criterion_group!`](crate::criterion_group) /
//!   [`criterion_main!`](crate::criterion_main) macros (replaces
//!   `criterion`),
//! * [`ring`] — a consistent-hash ring ([`HashRing`]) for stable
//!   set → shard placement in the sharded serving tier,
//! * [`sync`] — a poison-recovering [`sync::Mutex`] for always-on
//!   services (replaces `parking_lot::Mutex` where poisoning is the
//!   wrong failure mode — see the serve daemon's availability story),
//! * [`batch`] — a leader/follower [`GroupCommit`] batcher that
//!   coalesces concurrent durable appends into one bounded flush (the
//!   serve daemon's group-commit WAL is built on it).
//!
//! Everything is deterministic where the consumer needs determinism: the
//! PRNG is a pure function of its seed, the hasher has no random state,
//! property cases derive their seeds from the test name, and the pool's
//! `join`/`par_map_mut` preserve result ordering regardless of how work
//! is scheduled.

pub mod batch;
pub mod bench;
pub mod bytes;
pub mod cache;
pub mod hash;
pub mod pool;
pub mod prop;
pub mod ring;
pub mod rng;
pub mod stats;
pub mod sync;

pub use batch::{BatchStats, GroupCommit};
pub use cache::LruCache;
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use ring::HashRing;
pub use rng::SmallRng;
pub use stats::LatencyHistogram;
