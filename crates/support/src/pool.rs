//! Shared fork-join thread pool: work-helping `join` and ordered
//! parallel maps.
//!
//! This is the in-tree replacement for the two `rayon` primitives the
//! workspace used: [`join`] drives the reduction-tree profile merge
//! (the paper's §4.2 scalability mechanism) and [`par_map_mut`] runs
//! independent node simulations in the world runner.
//!
//! Design: a fixed set of worker threads shares one injector queue.
//! `join(a, b)` publishes `b` to the queue, runs `a` inline, then either
//! *reclaims* `b` (if no worker got to it — the common case under load,
//! making sequential execution the graceful degradation mode) or *helps*:
//! while waiting for a worker to finish `b`, the caller executes other
//! queued jobs instead of blocking. Helping is what makes nested joins
//! (the recursive merge tree) deadlock-free with a bounded pool: every
//! waiter is also an executor, so some runnable job always makes
//! progress. Jobs live on the forking caller's stack; `join` never
//! returns — not even by unwinding — until its job has run or been
//! reclaimed, which is the invariant that makes the lifetime erasure
//! below sound.
//!
//! Panics in either closure are captured and re-raised in the caller
//! after both sides have settled, so a panicking branch can never strand
//! a stack job or deadlock a waiter.
//!
//! Determinism: `join` and `par_map_mut` return results positionally, so
//! observable output never depends on scheduling. The pool size comes
//! from `DCP_THREADS` (0 forces fully sequential execution) or the
//! available parallelism.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

/// A unit of work published to the pool. `execute` must be called at
/// most once; [`StackJob`] enforces that with its `func` slot.
trait Job {
    fn execute(&self);
}

/// Lifetime-erased pointer to a [`Job`] on some caller's stack. Safety
/// rests on the `join` invariant: the pointee outlives its presence in
/// the queue because `join` blocks until the job settles.
#[derive(Clone, Copy)]
struct JobRef(*const (dyn Job + 'static));

unsafe impl Send for JobRef {}

impl JobRef {
    /// # Safety
    /// Caller must keep `job` alive and pinned until it has executed or
    /// been removed from every queue.
    unsafe fn new<'a>(job: &'a (dyn Job + 'a)) -> JobRef {
        JobRef(std::mem::transmute::<*const (dyn Job + 'a), *const (dyn Job + 'static)>(job))
    }

    fn execute(self) {
        unsafe { (*self.0).execute() }
    }

    fn is(&self, other: &JobRef) -> bool {
        std::ptr::eq(self.0 as *const u8, other.0 as *const u8)
    }
}

/// The forked half of a `join`, living on the forking caller's stack.
struct StackJob<F, R> {
    func: Mutex<Option<F>>,
    result: Mutex<Option<thread::Result<R>>>,
    done: Condvar,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(f: F) -> Self {
        Self { func: Mutex::new(Some(f)), result: Mutex::new(None), done: Condvar::new() }
    }

    fn run_inline(&self) -> thread::Result<R> {
        let f = self.func.lock().expect("job lock").take().expect("job already executed");
        catch_unwind(AssertUnwindSafe(f))
    }
}

impl<F, R> Job for StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn execute(&self) {
        let r = self.run_inline();
        *self.result.lock().expect("result lock") = Some(r);
        self.done.notify_all();
    }
}

struct Pool {
    queue: Mutex<VecDeque<JobRef>>,
    work_ready: Condvar,
    workers: usize,
}

impl Pool {
    fn push(&self, job: JobRef) {
        self.queue.lock().expect("queue lock").push_back(job);
        self.work_ready.notify_one();
    }

    fn try_pop(&self) -> Option<JobRef> {
        self.queue.lock().expect("queue lock").pop_front()
    }

    /// Remove `job` from the queue if no worker has claimed it yet.
    fn try_reclaim(&self, job: &JobRef) -> bool {
        let mut q = self.queue.lock().expect("queue lock");
        if let Some(pos) = q.iter().position(|j| j.is(job)) {
            q.remove(pos);
            true
        } else {
            false
        }
    }
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = match std::env::var("DCP_THREADS") {
            Ok(v) => v.parse::<usize>().unwrap_or(0),
            Err(_) => thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        }
        .saturating_sub(1);
        let p = Pool { queue: Mutex::new(VecDeque::new()), work_ready: Condvar::new(), workers };
        for i in 0..workers {
            thread::Builder::new()
                .name(format!("dcp-pool-{i}"))
                .spawn(worker_loop)
                .expect("spawn pool worker");
        }
        p
    })
}

fn worker_loop() {
    let p = pool();
    loop {
        let job = {
            let mut q = p.queue.lock().expect("queue lock");
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = p.work_ready.wait(q).expect("queue lock");
            }
        };
        job.execute();
    }
}

/// Number of threads that can run work simultaneously (workers plus the
/// calling thread itself).
pub fn parallelism() -> usize {
    pool().workers + 1
}

/// Run two closures, potentially in parallel, and return both results.
///
/// `b` is offered to the pool while the calling thread runs `a`; the
/// caller then reclaims `b` if it is still unclaimed, or helps execute
/// other pool jobs until a worker finishes it. A panic in either closure
/// propagates to the caller (left side first) only after both sides have
/// settled.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let p = pool();
    if p.workers == 0 {
        // No pool: sequential execution with the same contract as the
        // parallel path — both sides settle before a panic propagates.
        let ra = catch_unwind(AssertUnwindSafe(a));
        let rb = catch_unwind(AssertUnwindSafe(b));
        return match (ra, rb) {
            (Ok(ra), Ok(rb)) => (ra, rb),
            (Err(pa), _) => resume_unwind(pa),
            (_, Err(pb)) => resume_unwind(pb),
        };
    }

    let job = StackJob::new(b);
    // SAFETY: `job` stays on this stack frame and we do not return (even
    // on panic — `a` runs under catch_unwind) before the job has either
    // been reclaimed below or fully executed by a worker.
    let jref = unsafe { JobRef::new(&job) };
    p.push(jref);

    let ra = catch_unwind(AssertUnwindSafe(a));

    let rb = if p.try_reclaim(&jref) {
        job.run_inline()
    } else {
        // A worker claimed the job: help run other queued work while it
        // finishes, so nested joins on a bounded pool cannot deadlock.
        loop {
            if let Some(r) = job.result.lock().expect("result lock").take() {
                break r;
            }
            if let Some(other) = p.try_pop() {
                other.execute();
                continue;
            }
            let guard = job.result.lock().expect("result lock");
            let (mut guard, _timeout) = job
                .done
                .wait_timeout(guard, Duration::from_millis(1))
                .expect("result lock");
            if let Some(r) = guard.take() {
                break r;
            }
            // Timed out: loop around and try helping again.
        }
    };

    match (ra, rb) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(pa), _) => resume_unwind(pa),
        (_, Err(pb)) => resume_unwind(pb),
    }
}

/// Map `f` over `items` in parallel, returning results in input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    fn rec<T: Sync, R: Send, F: Fn(&T) -> R + Sync>(items: &[T], f: &F) -> Vec<R> {
        if items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        let (l, r) = items.split_at(items.len() / 2);
        let (mut lv, rv) = join(|| rec(l, f), || rec(r, f));
        lv.extend(rv);
        lv
    }
    rec(items, &f)
}

/// Map `f` over mutable `items` in parallel, returning results in input
/// order. Used by the world runner: each node simulation mutates its
/// own state, and the split-at-mid recursion guarantees disjoint
/// borrows.
pub fn par_map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    fn rec<T: Send, R: Send, F: Fn(&mut T) -> R + Sync>(items: &mut [T], f: &F) -> Vec<R> {
        if items.len() <= 1 {
            return items.iter_mut().map(f).collect();
        }
        let mid = items.len() / 2;
        let (l, r) = items.split_at_mut(mid);
        let (mut lv, rv) = join(|| rec(l, f), || rec(r, f));
        lv.extend(rv);
        lv
    }
    rec(items, &f)
}

/// Run `f` over consecutive chunks of `items` (each at most `chunk`
/// elements, the last possibly shorter), potentially in parallel, and
/// return one result per chunk in chunk order. `f` also receives the
/// chunk index so callers can key deterministic work off position.
///
/// This is the scoped parallel-for used by the epoch scheduler: each
/// simulated-socket shard is one chunk, borrows stay on the caller's
/// stack, and the result vector's order is a pure function of the input
/// — never of host scheduling.
pub fn par_chunks_mut<T, R, F>(items: &mut [T], chunk: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    fn rec<T: Send, R: Send, F: Fn(usize, &mut [T]) -> R + Sync>(
        items: &mut [T],
        chunk: usize,
        base: usize,
        f: &F,
    ) -> Vec<R> {
        let chunks = items.len().div_ceil(chunk);
        if chunks <= 1 {
            if items.is_empty() {
                return Vec::new();
            }
            return vec![f(base, items)];
        }
        // Split at a chunk boundary so indices stay aligned.
        let mid_chunks = chunks / 2;
        let (l, r) = items.split_at_mut(mid_chunks * chunk);
        let (mut lv, rv) = join(
            || rec(l, chunk, base, f),
            || rec(r, chunk, base + mid_chunks, f),
        );
        lv.extend(rv);
        lv
    }
    rec(items, chunk, 0, &f)
}

/// Parallel map-reduce with a *stable* reduction order: `map` runs over
/// the items potentially in parallel, and the per-item results are folded
/// strictly left-to-right in input order, exactly as
/// `items.iter().map(map).reduce(fold)` would. Returns `None` for an
/// empty input.
///
/// Only the map runs in parallel; the fold walks the position-ordered
/// result vector on the calling thread. A tree-shaped fold would be
/// faster asymptotically but is only equivalent for *associative*
/// folds — the simulator cannot assume that, and the map is where the
/// work is, so sequential folding buys exact left-fold semantics (and
/// with it host-scheduling independence) at negligible cost.
pub fn par_map_reduce<T, R, M, F>(items: &[T], map: M, fold: F) -> Option<R>
where
    T: Sync,
    R: Send,
    M: Fn(&T) -> R + Sync,
    F: Fn(R, R) -> R,
{
    par_map(items, map).into_iter().reduce(fold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn join_nests_deeply() {
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 64 {
                return (lo..hi).sum();
            }
            let mid = lo + (hi - lo) / 2;
            let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
            a + b
        }
        assert_eq!(sum(0, 100_000), 100_000 * 99_999 / 2);
    }

    #[test]
    fn join_borrows_stack_data() {
        let xs = vec![1u64, 2, 3, 4];
        let ys = vec![10u64, 20];
        let (sx, sy) = join(|| xs.iter().sum::<u64>(), || ys.iter().sum::<u64>());
        assert_eq!((sx, sy), (10, 30));
        drop((xs, ys)); // still owned here
    }

    #[test]
    fn right_side_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            join(|| 1, || -> i32 { panic!("right boom") });
        });
        let p = r.expect_err("must propagate");
        let msg = p.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "right boom");
    }

    #[test]
    fn left_side_panic_propagates_after_right_settles() {
        let right_ran = AtomicUsize::new(0);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            join(
                || -> i32 { panic!("left boom") },
                || right_ran.fetch_add(1, Ordering::SeqCst),
            );
        }));
        assert!(r.is_err());
        assert_eq!(right_ran.load(Ordering::SeqCst), 1, "right side must still run");
    }

    #[test]
    fn both_sides_panicking_does_not_deadlock() {
        let r = std::panic::catch_unwind(|| {
            join(|| -> i32 { panic!("left") }, || -> i32 { panic!("right") });
        });
        assert!(r.is_err());
    }

    #[test]
    fn panics_propagate_through_nested_joins() {
        let r = std::panic::catch_unwind(|| {
            join(
                || join(|| 1, || -> i32 { panic!("deep boom") }),
                || 2,
            );
        });
        assert!(r.is_err());
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map(&items, |&x| x * 3);
        assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_mut_mutates_and_preserves_order() {
        let mut items: Vec<u64> = (0..500).collect();
        let out = par_map_mut(&mut items, |x| {
            *x += 1;
            *x * 2
        });
        assert_eq!(items, (1..=500).collect::<Vec<_>>());
        assert_eq!(out, (1..=500).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn many_more_tasks_than_workers() {
        // Oversubscription: far more concurrent joins than pool threads.
        let items: Vec<u64> = (0..4096).collect();
        let out = par_map(&items, |&x| {
            // A little nested parallelism inside each task.
            let (a, b) = join(|| x, || x + 1);
            a + b
        });
        let want: Vec<u64> = (0..4096).map(|x| 2 * x + 1).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn empty_and_singleton_maps() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn par_chunks_mut_orders_and_indexes() {
        let mut items: Vec<u64> = (0..103).collect();
        let out = par_chunks_mut(&mut items, 10, |idx, chunk| {
            for x in chunk.iter_mut() {
                *x *= 2;
            }
            (idx, chunk.len())
        });
        assert_eq!(items, (0..103).map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(out.len(), 11);
        for (i, &(idx, len)) in out.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(len, if i == 10 { 3 } else { 10 });
        }
        let empty: Vec<u32> = Vec::new();
        assert!(par_chunks_mut(&mut Vec::from(empty), 4, |_, _| 0).is_empty());
    }

    /// Satellite: the scoped parallel-for's reduction order must be
    /// stable under pool oversubscription — 512 tasks folded with a
    /// deliberately non-commutative operation give the exact sequential
    /// answer every time, for any worker count (`scripts/verify.sh`
    /// additionally runs this under `DCP_THREADS=2` to pin the
    /// 512-task/2-worker case from the issue).
    #[test]
    fn reduction_order_stable_under_oversubscription() {
        let items: Vec<u64> = (1..=512).collect();
        // Non-commutative, non-associative-looking fold over an order
        // fingerprint: any reordering changes the result.
        let fold = |a: u64, b: u64| a.wrapping_mul(31).wrapping_add(b);
        let expect = items.iter().map(|&x| x * 7).reduce(fold).unwrap();
        for _ in 0..8 {
            let got = par_map_reduce(&items, |&x| x * 7, fold).unwrap();
            assert_eq!(got, expect, "reduction order must not depend on scheduling");
        }
        // Same stability for the chunked mutable form: chunk results
        // concatenate in chunk order.
        for _ in 0..8 {
            let mut v: Vec<u64> = (1..=512).collect();
            let per_chunk = par_chunks_mut(&mut v, 3, |idx, c| {
                (idx as u64).wrapping_mul(131).wrapping_add(c.iter().sum::<u64>())
            });
            let folded = per_chunk.into_iter().reduce(fold).unwrap();
            let mut w: Vec<u64> = (1..=512).collect();
            let seq: Vec<u64> = w
                .chunks_mut(3)
                .enumerate()
                .map(|(i, c)| (i as u64).wrapping_mul(131).wrapping_add(c.iter().sum::<u64>()))
                .collect();
            assert_eq!(folded, seq.into_iter().reduce(fold).unwrap());
        }
    }

    #[test]
    fn par_map_reduce_matches_sequential() {
        let items: Vec<i64> = (0..1000).collect();
        let got = par_map_reduce(&items, |&x| x - 500, |a, b| a + b);
        assert_eq!(got, Some((0..1000).map(|x| x - 500).sum()));
        let empty: Vec<i64> = Vec::new();
        assert_eq!(par_map_reduce(&empty, |&x| x, |a, b| a + b), None);
    }
}
