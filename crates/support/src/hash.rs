//! FxHash-style hashing: the non-cryptographic multiply-rotate hash the
//! Rust compiler uses for its interner tables, reimplemented in-tree.
//!
//! The profiler hashes small fixed-width keys (node ids, addresses,
//! `(parent, frame)` pairs) millions of times per run; SipHash's
//! HashDoS resistance buys nothing against simulated programs and costs
//! real throughput. FxHash has no per-process random state, so hash
//! iteration-independent structures behave identically across runs —
//! part of the workspace-wide determinism story.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const K: u64 = 0x517c_c1b7_2722_0a95;

/// Multiply-rotate hasher over 64-bit words.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Mix the tail length in so "ab" and "ab\0" hash apart.
            self.add(u64::from_le_bytes(buf) ^ ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
    #[inline]
    fn write_i8(&mut self, v: i8) {
        self.add(v as u8 as u64);
    }
    #[inline]
    fn write_i16(&mut self, v: i16) {
        self.add(v as u16 as u64);
    }
    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.add(v as u32 as u64);
    }
    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }
    #[inline]
    fn write_isize(&mut self, v: isize) {
        self.add(v as usize as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn hashes_are_stable_across_runs() {
        // No per-process randomness: these exact values must never
        // change, or profile layouts stop being reproducible.
        assert_eq!(hash_of(&0u64), 0);
        assert_eq!(hash_of(&1u64), K);
        assert_eq!(hash_of(&2u64), K.wrapping_mul(2));
        assert_eq!(hash_of(&"alpha"), hash_of(&"alpha"));
        assert_ne!(hash_of(&"alpha"), hash_of(&"beta"));
    }

    #[test]
    fn tail_length_disambiguates() {
        let mut a = FxHasher::default();
        a.write(b"ab");
        let mut b = FxHasher::default();
        b.write(b"ab\0");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(7, "seven");
        m.insert(0xdead_beef, "cow");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
    }

    #[test]
    fn distinct_words_spread() {
        // Adjacent keys must not collide in the low bits HashMap uses.
        let mut seen = FxHashSet::default();
        for i in 0..10_000u64 {
            seen.insert(hash_of(&i) & 0xfff);
        }
        assert!(seen.len() > 3000, "low-bit clustering: {} distinct", seen.len());
    }
}
